// hetesim_analyze — the whole-program static analyzer (see analyzer.h for
// the rule catalogue and DESIGN.md §15 for the policy). CI runs
// `hetesim_analyze --root=. --format=sarif --out=analyze.sarif` and fails on
// any unbaselined finding.
//
// Usage: hetesim_analyze [--root=DIR] [--format=text|json|sarif] [--out=FILE]
//                        [--baseline=FILE] [--write-baseline=FILE]
//                        [--allowlist=FILE] [--registry=FILE]
// Exit:  0 clean (no unbaselined findings), 1 findings, 2 usage or
//        unreadable input. `--write-baseline` accepts the current findings
//        as the new baseline and exits 0.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "analyzer.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root=DIR] [--format=text|json|sarif] "
               "[--out=FILE]\n"
               "          [--baseline=FILE] [--write-baseline=FILE]\n"
               "          [--allowlist=FILE] [--registry=FILE]\n",
               argv0);
  return 2;
}

/// `path` made relative to `root` for the repo model ("./" and "root/"
/// prefixes stripped, so module/role assignment sees "src/...").
std::string Relativize(const std::string& root, const std::string& path) {
  std::string prefix = root;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::string rel =
      path.rfind(prefix, 0) == 0 ? path.substr(prefix.size()) : path;
  while (rel.rfind("./", 0) == 0) rel = rel.substr(2);
  return rel;
}

bool WriteStringToFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using hetesim::lint::Diagnostic;

  std::string root = ".";
  std::string format = "text";
  std::string out_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string allowlist_path;
  std::string registry_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* flag) {
      const std::string prefix = std::string(flag) + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.substr(prefix.size())
                                       : std::string();
    };
    if (!value("--root").empty()) {
      root = value("--root");
    } else if (!value("--format").empty()) {
      format = value("--format");
    } else if (!value("--out").empty()) {
      out_path = value("--out");
    } else if (!value("--baseline").empty()) {
      baseline_path = value("--baseline");
    } else if (!value("--write-baseline").empty()) {
      write_baseline_path = value("--write-baseline");
    } else if (!value("--allowlist").empty()) {
      allowlist_path = value("--allowlist");
    } else if (!value("--registry").empty()) {
      registry_path = value("--registry");
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr, "error: unknown format '%s'\n", format.c_str());
    return Usage(argv[0]);
  }

  // Model every source file under the root except fixture corpora, which
  // contain violations on purpose.
  std::vector<hetesim::lint::SourceFile> files;
  for (const std::string& path :
       hetesim::lint::CollectSourceFiles(root, {"lint_fixtures"})) {
    hetesim::lint::SourceFile sf;
    sf.path = Relativize(root, path);
    if (!hetesim::lint::ReadFileToString(path, &sf.content)) {
      std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
      return 2;
    }
    files.push_back(std::move(sf));
  }
  if (files.empty()) {
    std::fprintf(stderr, "error: no source files under '%s'\n", root.c_str());
    return 2;
  }

  hetesim::lint::AnalyzerConfig config;
  {
    const std::string path = allowlist_path.empty()
                                 ? root + "/" + config.layering_allow_path
                                 : allowlist_path;
    if (!hetesim::lint::ReadFileToString(path, &config.layering_allow) &&
        !allowlist_path.empty()) {
      std::fprintf(stderr, "error: cannot read allowlist %s\n", path.c_str());
      return 2;  // an explicit flag must resolve; the default may be absent
    }
    if (!allowlist_path.empty()) config.layering_allow_path = allowlist_path;
  }
  {
    const std::string path = registry_path.empty()
                                 ? root + "/" + config.fault_registry_path
                                 : registry_path;
    config.has_fault_registry =
        hetesim::lint::ReadFileToString(path, &config.fault_registry);
    if (!config.has_fault_registry && !registry_path.empty()) {
      std::fprintf(stderr, "error: cannot read registry %s\n", path.c_str());
      return 2;
    }
    if (!registry_path.empty()) config.fault_registry_path = registry_path;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::string content;
    if (!hetesim::lint::ReadFileToString(baseline_path, &content)) {
      std::fprintf(stderr, "error: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    baseline = hetesim::lint::ParseBaseline(content);
  }

  const hetesim::lint::AnalyzerReport report =
      hetesim::lint::AnalyzeRepo(files, config);

  if (!write_baseline_path.empty()) {
    const std::string rendered =
        hetesim::lint::RenderBaseline(report.findings);
    if (!WriteStringToFile(write_baseline_path, rendered)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   write_baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr,
                 "hetesim_analyze: baselined %zu finding(s) into %s\n",
                 report.findings.size(), write_baseline_path.c_str());
    return 0;
  }

  const std::vector<Diagnostic> fresh =
      hetesim::lint::Unbaselined(report.findings, baseline);

  std::string rendered;
  if (format == "json") {
    rendered = hetesim::lint::RenderJson(report, baseline);
  } else if (format == "sarif") {
    rendered = hetesim::lint::RenderSarif(report, baseline);
  } else {
    for (const Diagnostic& diag : fresh) {
      rendered += hetesim::lint::FormatDiagnostic(diag) + "\n";
    }
  }
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else if (!WriteStringToFile(out_path, rendered)) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 2;
  }

  std::fprintf(stderr,
               "hetesim_analyze: %zu file(s), %zu finding(s), %zu new, "
               "%zu baselined\n",
               report.files, report.findings.size(), fresh.size(),
               report.findings.size() - fresh.size());
  return fresh.empty() ? 0 : 1;
}
