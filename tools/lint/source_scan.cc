#include "source_scan.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hetesim::lint {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Stem(const std::string& name) {
  const size_t dot = name.find_last_of('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

std::vector<size_t> LineStarts(const std::string& content) {
  std::vector<size_t> starts = {0};
  for (size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int LineOf(const std::vector<size_t>& starts, size_t offset) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), offset);
  return static_cast<int>(it - starts.begin());
}

size_t FindWord(const std::string& text, const std::string& word, size_t from) {
  for (size_t pos = text.find(word, from); pos != std::string::npos;
       pos = text.find(word, pos + 1)) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

size_t SkipParens(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

size_t SkipWs(const std::string& text, size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i])) != 0) {
    ++i;
  }
  return i;
}

std::map<int, std::set<std::string>> ParseSuppressions(
    const std::string& content) {
  static const std::string kMarker = "hetesim-lint: allow(";
  std::map<int, std::set<std::string>> allows;
  const std::vector<size_t> starts = LineStarts(content);
  for (size_t pos = content.find(kMarker); pos != std::string::npos;
       pos = content.find(kMarker, pos + 1)) {
    const size_t open = pos + kMarker.size();
    const size_t close = content.find(')', open);
    if (close == std::string::npos) continue;
    std::stringstream list(content.substr(open, close - open));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      const size_t first = rule.find_first_not_of(" \t");
      const size_t last = rule.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      allows[LineOf(starts, pos)].insert(rule.substr(first, last - first + 1));
    }
  }
  return allows;
}

// GCC 12's -Wrestrict miscomputes overlap bounds for the raw-string
// delimiter construction below at -O2 (GCC PR105329); the operands never
// alias. Scoped to this one function.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

std::string StripForScan(const std::string& content) {
  std::string out = content;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          // Raw string literal? Look back for R (uR8 prefixes unused here).
          if (i > 0 && content[i - 1] == 'R' &&
              (i < 2 || !IsIdentChar(content[i - 2]))) {
            const size_t open = content.find('(', i + 1);
            if (open != std::string::npos) {
              raw_delim = ")" + content.substr(i + 1, open - i - 1) + "\"";
              state = State::kRaw;
              break;
            }
          }
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !IsIdentChar(content[i - 1]))) {
          // Identifier boundary check keeps digit separators (1'000) code.
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRaw:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::vector<std::string> CollectSourceFiles(
    const std::string& root, const std::set<std::string>& skip_dirs) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  fs::recursive_directory_iterator it(root, ec);
  const fs::recursive_directory_iterator end;
  for (; !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (it->is_directory() &&
        (name.rfind("build", 0) == 0 || name.rfind('.', 0) == 0 ||
         skip_dirs.count(name) != 0)) {
      it.disable_recursion_pending();
      continue;
    }
    if (!it->is_regular_file()) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace hetesim::lint
