#include "analyzer.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <functional>
#include <map>
#include <sstream>
#include <utility>

namespace hetesim::lint {

namespace {

// --- repository model -----------------------------------------------------

/// Where a file sits in the tree; decides which rule families apply.
enum class Role {
  kSrc,    ///< src/** — every rule family
  kApp,    ///< tools/ bench/ examples/ — layering only
  kTest,   ///< tests/** — layering, plus fault-site reference scanning
  kOther,  ///< anything else (fixture stubs, docs snippets) — layering only
};

struct IncludeEdge {
  int line = 0;
  size_t offset = 0;
  std::string target;  ///< the quoted include path, verbatim
};

/// One function definition recovered by the token scan. Offsets index the
/// file's scan text; `body_begin`/`body_end` are the '{' and its '}'.
struct FunctionDef {
  std::string name;       ///< possibly qualified, e.g. "PathMatrixCache::Get"
  std::string qualifier;  ///< "PathMatrixCache" for the above, else ""
  std::string tail;       ///< last segment: "Get"
  size_t name_offset = 0;
  size_t params_begin = 0, params_end = 0;  ///< inside the parens
  size_t body_begin = 0, body_end = 0;
};

struct FileModel {
  std::string path;
  std::string module;  ///< "common", "core", …, "tools", "tests", "" unknown
  Role role = Role::kOther;
  const std::string* raw = nullptr;
  std::string scan;
  std::vector<size_t> starts;
  std::map<int, std::set<std::string>> allows;
  std::vector<IncludeEdge> includes;
  std::vector<FunctionDef> functions;
};

/// Layer ranks of the module DAG (DESIGN.md §15). Lower is further down the
/// stack; an include edge must point strictly down-rank (or stay inside one
/// module) unless the allowlist sanctions a same-rank edge.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},   {"matrix", 1},   {"hin", 2},       {"store", 2},
      {"core", 3},
      {"workload", 4}, {"service", 4},  {"learn", 4},     {"datagen", 4},
      {"baselines", 4},
      {"tools", 5},    {"bench", 5},    {"tests", 5},     {"examples", 5}};
  return kRanks;
}

std::string ModuleOfPath(const std::string& path) {
  if (path.rfind("src/", 0) == 0) {
    const size_t end = path.find('/', 4);
    if (end != std::string::npos) return path.substr(4, end - 4);
    return "";
  }
  const size_t end = path.find('/');
  if (end == std::string::npos) return "";
  const std::string head = path.substr(0, end);
  return LayerRanks().count(head) != 0 ? head : "";
}

Role RoleOfPath(const std::string& path) {
  if (path.rfind("src/", 0) == 0) return Role::kSrc;
  if (path.rfind("tests/", 0) == 0) return Role::kTest;
  if (path.rfind("tools/", 0) == 0 || path.rfind("bench/", 0) == 0 ||
      path.rfind("examples/", 0) == 0) {
    return Role::kApp;
  }
  return Role::kOther;
}

/// Module a quoted include target lands in: project includes are written
/// relative to src/ ("core/topk.h" -> core); anything whose first path
/// component is not a known module (gtest, same-directory includes) is
/// outside the layering model.
std::string ModuleOfInclude(const std::string& target) {
  const size_t end = target.find('/');
  if (end == std::string::npos) return "";
  const std::string head = target.substr(0, end);
  return LayerRanks().count(head) != 0 ? head : "";
}

std::vector<IncludeEdge> ParseIncludes(const std::string& scan,
                                       const std::string& raw) {
  std::vector<IncludeEdge> includes;
  std::istringstream scan_lines(scan);
  std::string scan_line;
  int line = 0;
  size_t offset = 0;
  while (std::getline(scan_lines, scan_line)) {
    ++line;
    const size_t line_offset = offset;
    offset += scan_line.size() + 1;
    const size_t hash = scan_line.find_first_not_of(" \t");
    if (hash == std::string::npos || scan_line[hash] != '#') continue;
    const size_t kw = scan_line.find("include", hash + 1);
    if (kw == std::string::npos ||
        scan_line.find_first_not_of(" \t", hash + 1) != kw) {
      continue;
    }
    // The scan text proves the directive is live (not commented out); the
    // raw text still holds the path the scan blanked.
    const size_t raw_end = raw.find('\n', line_offset);
    const std::string raw_line = raw.substr(
        line_offset, raw_end == std::string::npos ? std::string::npos
                                                  : raw_end - line_offset);
    const size_t quote = raw_line.find('"');
    if (quote == std::string::npos) continue;
    const size_t close = raw_line.find('"', quote + 1);
    if (close == std::string::npos) continue;
    includes.push_back(IncludeEdge{
        line, line_offset, raw_line.substr(quote + 1, close - quote - 1)});
  }
  return includes;
}

// --- function extraction --------------------------------------------------

bool IsDisqualifiedName(const std::string& tail) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",   "switch",   "catch",    "return",
      "sizeof",   "alignof",  "decltype", "new",     "delete",   "throw",
      "do",       "else",     "case",    "default",  "void",     "int",
      "char",     "bool",     "double",  "float",    "auto",     "long",
      "short",    "unsigned", "signed",  "const",    "constexpr", "static",
      "inline",   "template", "typename", "using",   "namespace", "operator",
      "defined",  "assert",   "static_assert", "noexcept", "alignas",
      "explicit", "virtual",  "typedef", "co_await", "co_return", "co_yield"};
  return kKeywords.count(tail) != 0;
}

/// Offset one past the '}' matching the '{' at `open`; npos if unbalanced.
size_t SkipBraces(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Recovers function definitions from the scan text: an identifier followed
/// by a balanced parameter list, then (across trailing qualifiers, lock
/// annotations, and member-initializer lists) a '{' body. Deliberately a
/// heuristic — control statements, declarations, macro definitions and
/// class heads are filtered out; nested lambdas are swallowed into their
/// enclosing function, which is the attribution the lock/poll rules want.
std::vector<FunctionDef> ExtractFunctions(const std::string& scan) {
  std::vector<FunctionDef> functions;
  size_t pos = 0;
  while (pos < scan.size()) {
    const size_t paren = scan.find('(', pos);
    if (paren == std::string::npos) break;
    pos = paren + 1;

    // Name: walk back over an optionally qualified identifier.
    size_t name_end = paren;
    while (name_end > 0 && std::isspace(static_cast<unsigned char>(
                               scan[name_end - 1])) != 0) {
      --name_end;
    }
    size_t name_begin = name_end;
    while (name_begin > 0 &&
           (IsIdentChar(scan[name_begin - 1]) || scan[name_begin - 1] == ':' ||
            scan[name_begin - 1] == '~')) {
      --name_begin;
    }
    if (name_begin == name_end) continue;
    const std::string name = scan.substr(name_begin, name_end - name_begin);
    const size_t last_sep = name.rfind("::");
    const std::string tail =
        last_sep == std::string::npos ? name : name.substr(last_sep + 2);
    if (tail.empty() || IsDisqualifiedName(tail) || IsDisqualifiedName(name)) {
      continue;
    }
    // `class CAPABILITY("x") Foo {`: the token before the name disqualifies.
    size_t prev_end = name_begin;
    while (prev_end > 0 &&
           std::isspace(static_cast<unsigned char>(scan[prev_end - 1])) != 0) {
      --prev_end;
    }
    size_t prev_begin = prev_end;
    while (prev_begin > 0 && IsIdentChar(scan[prev_begin - 1])) --prev_begin;
    const std::string prev = scan.substr(prev_begin, prev_end - prev_begin);
    if (prev == "class" || prev == "struct" || prev == "enum" ||
        prev == "union" || prev == "using") {
      continue;
    }

    const size_t params_close = SkipParens(scan, paren);
    if (params_close == std::string::npos) continue;

    // Forward from the ')' across `const noexcept ACQUIRE(mu) -> T` and
    // member-initializer lists to a '{' (definition) or ';' (declaration).
    // Any character outside the signature alphabet — notably '\\' from a
    // macro continuation — abandons the candidate.
    size_t body_open = std::string::npos;
    int depth = 0;
    bool abandoned = false;
    for (size_t i = params_close;
         i < scan.size() && i < params_close + 2000; ++i) {
      const char c = scan[i];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (depth > 0) continue;
      if (c == ';' || depth < 0) break;
      if (c == '{') {
        body_open = i;
        break;
      }
      if (IsIdentChar(c) || std::isspace(static_cast<unsigned char>(c)) != 0 ||
          c == ':' || c == ',' || c == '&' || c == '*' || c == '<' ||
          c == '>' || c == '-' || c == '=' || c == '[' || c == ']' ||
          c == ')' ) {
        continue;
      }
      abandoned = true;
      break;
    }
    if (abandoned || body_open == std::string::npos) continue;
    const size_t body_close = SkipBraces(scan, body_open);
    if (body_close == std::string::npos) continue;

    FunctionDef fn;
    fn.name = name;
    fn.qualifier = last_sep == std::string::npos ? "" : name.substr(0, last_sep);
    // Nested qualifiers ("A::B::C") keep only the innermost class.
    const size_t q_sep = fn.qualifier.rfind("::");
    if (q_sep != std::string::npos) fn.qualifier = fn.qualifier.substr(q_sep + 2);
    fn.tail = tail;
    fn.name_offset = name_begin;
    fn.params_begin = paren + 1;
    fn.params_end = params_close - 1;
    fn.body_begin = body_open;
    fn.body_end = body_close - 1;
    functions.push_back(std::move(fn));
    // Skip the body wholesale: nested lambdas belong to this function, and
    // class bodies never reach here (a class head has no parameter list).
    pos = body_close;
  }
  return functions;
}

// --- shared finding emission ----------------------------------------------

struct Analysis {
  std::vector<FileModel> files;
  std::vector<Diagnostic>* out = nullptr;

  void Emit(const FileModel& fm, size_t offset, const std::string& rule,
            std::string message) {
    const int line = LineOf(fm.starts, offset);
    const auto it = fm.allows.find(line);
    if (it != fm.allows.end() && it->second.count(rule) != 0) return;
    out->push_back(Diagnostic{fm.path, line, rule, std::move(message)});
  }

  /// For findings anchored at config files (registry) rather than sources.
  void EmitAt(const std::string& path, int line, const std::string& rule,
              std::string message) {
    out->push_back(Diagnostic{path, line, rule, std::move(message)});
  }
};

// --- rule family: layering ------------------------------------------------

/// `from -> to` module pairs sanctioned by tools/lint/layering_allow.txt.
std::set<std::pair<std::string, std::string>> ParseLayeringAllow(
    const std::string& content) {
  std::set<std::pair<std::string, std::string>> allowed;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    const size_t arrow = line.find("->");
    if (arrow == std::string::npos) continue;
    auto trim = [](std::string s) {
      const size_t first = s.find_first_not_of(" \t\r");
      const size_t last = s.find_last_not_of(" \t\r");
      return first == std::string::npos ? std::string()
                                        : s.substr(first, last - first + 1);
    };
    const std::string from = trim(line.substr(0, arrow));
    const std::string to = trim(line.substr(arrow + 2));
    if (!from.empty() && !to.empty()) allowed.emplace(from, to);
  }
  return allowed;
}

/// Resolves an include target to a modeled file index, or npos. Project
/// includes are src/-relative; tool-internal includes ("linter.h") resolve
/// against the including file's directory.
size_t ResolveInclude(const std::map<std::string, size_t>& by_path,
                      const std::string& includer,
                      const std::string& target) {
  auto it = by_path.find("src/" + target);
  if (it != by_path.end()) return it->second;
  const size_t slash = includer.find_last_of('/');
  if (slash != std::string::npos) {
    it = by_path.find(includer.substr(0, slash + 1) + target);
    if (it != by_path.end()) return it->second;
  }
  it = by_path.find(target);
  return it != by_path.end() ? it->second : static_cast<size_t>(-1);
}

void CheckLayering(Analysis& a, const AnalyzerConfig& config) {
  const auto allowed = ParseLayeringAllow(config.layering_allow);
  const auto& ranks = LayerRanks();

  std::map<std::string, size_t> by_path;
  for (size_t i = 0; i < a.files.size(); ++i) by_path[a.files[i].path] = i;

  // Module-level edges (with one witness each) and file-level edges.
  std::map<std::pair<std::string, std::string>,
           std::pair<const FileModel*, const IncludeEdge*>>
      module_edges;
  std::map<size_t, std::vector<std::pair<size_t, const IncludeEdge*>>>
      file_edges;

  for (const FileModel& fm : a.files) {
    for (const IncludeEdge& inc : fm.includes) {
      const size_t target_idx = ResolveInclude(by_path, fm.path, inc.target);
      if (target_idx != static_cast<size_t>(-1)) {
        file_edges[by_path.at(fm.path)].emplace_back(target_idx, &inc);
      }
      const std::string to = ModuleOfInclude(inc.target);
      if (fm.module.empty() || to.empty() || to == fm.module) continue;
      module_edges.emplace(std::make_pair(fm.module, to),
                           std::make_pair(&fm, &inc));
      const int from_rank = ranks.at(fm.module);
      const int to_rank = ranks.at(to);
      const bool sanctioned = allowed.count({fm.module, to}) != 0;
      if (to_rank < from_rank || (to_rank == from_rank && sanctioned)) {
        continue;
      }
      std::string message = "#include \"" + inc.target + "\" makes module '" +
                            fm.module + "' depend on '" + to + "', ";
      if (to_rank > from_rank) {
        message += "an upper layer — the layering DAG (common < matrix < hin "
                   "< core < apps < tools) forbids upward edges";
      } else {
        message += "a sibling layer — same-rank edges need an entry in " +
                   config.layering_allow_path;
      }
      a.Emit(fm, inc.offset, "layer-order", message);
    }
  }

  // Module-level cycles (possible only through allowlisted same-rank edges,
  // since legal edges point strictly down-rank).
  {
    std::map<std::string, std::vector<std::string>> graph;
    for (const auto& [edge, witness] : module_edges) {
      graph[edge.first].push_back(edge.second);
    }
    std::set<std::string> done;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    std::set<std::string> reported;
    std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          if (on_stack.count(node) != 0) {
            // Extract the cycle from the stack tail.
            auto start = std::find(stack.begin(), stack.end(), node);
            std::vector<std::string> cycle(start, stack.end());
            std::string key;
            const size_t min_at = static_cast<size_t>(
                std::min_element(cycle.begin(), cycle.end()) - cycle.begin());
            for (size_t i = 0; i < cycle.size(); ++i) {
              key += cycle[(min_at + i) % cycle.size()] + ">";
            }
            if (!reported.insert(key).second) return;
            std::string path;
            for (const std::string& m : cycle) path += m + " -> ";
            path += node;
            const auto& [fm, inc] =
                module_edges.at({cycle.back(), node});
            a.Emit(*fm, inc->offset, "module-cycle",
                   "module dependency cycle: " + path +
                       "; break the cycle (allowlisted edges do not excuse "
                       "cycles)");
            return;
          }
          if (done.count(node) != 0) return;
          stack.push_back(node);
          on_stack.insert(node);
          for (const std::string& next : graph[node]) dfs(next);
          stack.pop_back();
          on_stack.erase(node);
          done.insert(node);
        };
    for (const auto& [node, _] : graph) dfs(node);
  }

  // File-level include cycles.
  {
    enum class Mark { kNone, kActive, kDone };
    std::vector<Mark> marks(a.files.size(), Mark::kNone);
    std::vector<size_t> stack;
    std::set<std::string> reported;
    std::function<void(size_t)> dfs = [&](size_t node) {
      if (marks[node] == Mark::kActive) {
        auto start = std::find(stack.begin(), stack.end(), node);
        std::vector<size_t> cycle(start, stack.end());
        std::string key;
        const size_t min_at = static_cast<size_t>(
            std::min_element(cycle.begin(), cycle.end(),
                             [&](size_t x, size_t y) {
                               return a.files[x].path < a.files[y].path;
                             }) -
            cycle.begin());
        for (size_t i = 0; i < cycle.size(); ++i) {
          key += a.files[cycle[(min_at + i) % cycle.size()]].path + ">";
        }
        if (!reported.insert(key).second) return;
        std::string path;
        for (const size_t f : cycle) path += a.files[f].path + " -> ";
        path += a.files[node].path;
        // Anchor at the include edge closing the cycle.
        const FileModel& closer = a.files[cycle.back()];
        const IncludeEdge* witness = nullptr;
        for (const auto& [tgt, inc] : file_edges[cycle.back()]) {
          if (tgt == node) witness = inc;
        }
        a.Emit(closer, witness != nullptr ? witness->offset : 0,
               "include-cycle", "include cycle: " + path);
        return;
      }
      if (marks[node] == Mark::kDone) return;
      marks[node] = Mark::kActive;
      stack.push_back(node);
      for (const auto& [next, _] : file_edges[node]) dfs(next);
      stack.pop_back();
      marks[node] = Mark::kDone;
    };
    for (size_t i = 0; i < a.files.size(); ++i) dfs(i);
  }
}

// --- rule family: lock order ----------------------------------------------

struct LockAcquisition {
  std::string lock;  ///< canonical id, e.g. "PathMatrixCache::mutex_"
  size_t offset = 0;
  size_t hold_end = 0;  ///< offset after which the lock is released
};

struct CallSite {
  size_t fn = 0;  ///< index into the global function list
  size_t offset = 0;
};

/// Per-function lock/call facts plus back-pointers into the model.
struct LockFunction {
  const FileModel* file = nullptr;
  const FunctionDef* def = nullptr;
  std::vector<LockAcquisition> acquisitions;
  std::vector<CallSite> calls;
  std::set<std::string> may_acquire;  ///< transitive, after fixed point
};

std::string NormalizeLockExpr(std::string expr) {
  std::string out;
  for (size_t i = 0; i < expr.size(); ++i) {
    if (std::isspace(static_cast<unsigned char>(expr[i])) != 0) continue;
    if (expr[i] == '-' && i + 1 < expr.size() && expr[i + 1] == '>') {
      out += '.';
      ++i;
      continue;
    }
    out += expr[i];
  }
  if (out.rfind("this.", 0) == 0) out = out.substr(5);
  return out;
}

/// Offset of the '}' closing the innermost scope containing `offset`, or
/// `body_end` when the acquisition sits directly in the function scope.
size_t EnclosingScopeEnd(const std::string& scan, const FunctionDef& fn,
                         size_t offset) {
  std::vector<size_t> stack;
  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    if (i == offset) {
      // The innermost open brace at this point closes where?
      if (stack.empty()) return fn.body_end;
      const size_t close = SkipBraces(scan, stack.back());
      return close == std::string::npos ? fn.body_end : close - 1;
    }
    if (scan[i] == '{') stack.push_back(i);
    if (scan[i] == '}' && !stack.empty()) stack.pop_back();
  }
  return fn.body_end;
}

std::string LockScope(const FileModel& fm, const FunctionDef& fn) {
  return fn.qualifier.empty() ? Stem(Basename(fm.path)) : fn.qualifier;
}

void CollectAcquisitions(const FileModel& fm, const FunctionDef& fn,
                         LockFunction* out) {
  const std::string& scan = fm.scan;
  const std::string scope = LockScope(fm, fn);
  // RAII: `MutexLock guard(expr);` held to the end of the enclosing brace.
  for (size_t pos = FindWord(scan, "MutexLock", fn.body_begin);
       pos != std::string::npos && pos < fn.body_end;
       pos = FindWord(scan, "MutexLock", pos + 1)) {
    size_t i = SkipWs(scan, pos + 9);
    while (i < fn.body_end && IsIdentChar(scan[i])) ++i;  // guard name
    i = SkipWs(scan, i);
    if (i >= fn.body_end || scan[i] != '(') continue;
    const size_t close = SkipParens(scan, i);
    if (close == std::string::npos || close > fn.body_end) continue;
    const std::string expr =
        NormalizeLockExpr(scan.substr(i + 1, close - i - 2));
    if (expr.empty()) continue;
    out->acquisitions.push_back(LockAcquisition{
        scope + "::" + expr, pos, EnclosingScopeEnd(scan, fn, pos)});
  }
  // Manual: `expr.Lock()` held until `expr.Unlock()` (or function end).
  for (size_t pos = FindWord(scan, "Lock", fn.body_begin);
       pos != std::string::npos && pos < fn.body_end;
       pos = FindWord(scan, "Lock", pos + 1)) {
    const bool member =
        (pos >= 1 && scan[pos - 1] == '.') ||
        (pos >= 2 && scan.compare(pos - 2, 2, "->") == 0);
    if (!member) continue;
    size_t i = SkipWs(scan, pos + 4);
    if (i >= fn.body_end || scan[i] != '(') continue;
    // Receiver: walk back over the object expression.
    size_t recv_end = pos - 1;
    if (scan[recv_end] != '.') recv_end = pos - 2;  // '->'
    size_t recv_begin = recv_end;
    while (recv_begin > fn.body_begin &&
           (IsIdentChar(scan[recv_begin - 1]) || scan[recv_begin - 1] == '.' ||
            scan[recv_begin - 1] == '>' || scan[recv_begin - 1] == '-')) {
      --recv_begin;
    }
    const std::string recv =
        NormalizeLockExpr(scan.substr(recv_begin, recv_end - recv_begin));
    if (recv.empty()) continue;
    size_t hold_end = fn.body_end;
    for (size_t u = FindWord(scan, "Unlock", i);
         u != std::string::npos && u < fn.body_end;
         u = FindWord(scan, "Unlock", u + 1)) {
      size_t ub = u >= 1 && scan[u - 1] == '.' ? u - 1
                  : u >= 2 && scan.compare(u - 2, 2, "->") == 0 ? u - 2
                                                                : u;
      size_t rb = ub;
      while (rb > fn.body_begin &&
             (IsIdentChar(scan[rb - 1]) || scan[rb - 1] == '.' ||
              scan[rb - 1] == '>' || scan[rb - 1] == '-')) {
        --rb;
      }
      if (NormalizeLockExpr(scan.substr(rb, ub - rb)) == recv) {
        hold_end = u;
        break;
      }
    }
    out->acquisitions.push_back(
        LockAcquisition{scope + "::" + recv, pos, hold_end});
  }
  std::sort(out->acquisitions.begin(), out->acquisitions.end(),
            [](const LockAcquisition& x, const LockAcquisition& y) {
              return x.offset < y.offset;
            });
}

void CheckLockOrder(Analysis& a) {
  // Function universe: src-role files only.
  std::vector<LockFunction> fns;
  for (const FileModel& fm : a.files) {
    if (fm.role != Role::kSrc) continue;
    if (Basename(fm.path) == "mutex.h") continue;  // the wrapper itself
    for (const FunctionDef& def : fm.functions) {
      LockFunction lf;
      lf.file = &fm;
      lf.def = &def;
      CollectAcquisitions(fm, def, &lf);
      fns.push_back(std::move(lf));
    }
  }

  // Call resolution: a callee name is usable only when it maps to exactly
  // one function in the model (ambiguous names would fabricate edges).
  // Names shared with standard-library members are never unique in
  // practice — `buckets_[i].load()` on an atomic must not resolve to a
  // project method that happens to be called `load` — so they are excluded
  // outright.
  static const std::set<std::string> kStdLikeTails = {
      "load",  "store", "exchange", "size",  "empty", "begin", "end",
      "clear", "reset", "get",      "at",    "front", "back",  "count",
      "find",  "insert", "erase",   "swap",  "data",  "str",   "value",
      "wait",  "min",   "max",      "abs",   "push_back", "emplace_back",
      "reserve", "resize", "append", "substr", "compare"};
  std::map<std::string, std::vector<size_t>> by_tail;
  for (size_t i = 0; i < fns.size(); ++i) {
    by_tail[fns[i].def->tail].push_back(i);
  }
  std::map<std::string, size_t> unique_tail;
  for (const auto& [tail, ids] : by_tail) {
    if (ids.size() == 1 && kStdLikeTails.count(tail) == 0) {
      unique_tail[tail] = ids[0];
    }
  }

  // Seed may_acquire with direct acquisitions, collect call sites to
  // uniquely resolved callees, then iterate to a fixed point.
  for (size_t i = 0; i < fns.size(); ++i) {
    LockFunction& lf = fns[i];
    for (const LockAcquisition& acq : lf.acquisitions) {
      lf.may_acquire.insert(acq.lock);
    }
    const std::string& scan = lf.file->scan;
    for (const auto& [tail, callee] : unique_tail) {
      if (callee == i) continue;
      for (size_t pos = FindWord(scan, tail, lf.def->body_begin);
           pos != std::string::npos && pos < lf.def->body_end;
           pos = FindWord(scan, tail, pos + 1)) {
        const size_t after = SkipWs(scan, pos + tail.size());
        if (after >= scan.size() || scan[after] != '(') continue;
        lf.calls.push_back(CallSite{callee, pos});
      }
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (LockFunction& lf : fns) {
      for (const CallSite& call : lf.calls) {
        for (const std::string& lock : fns[call.fn].may_acquire) {
          changed |= lf.may_acquire.insert(lock).second;
        }
      }
    }
  }

  // Build the global lock-order graph: lock A -> lock B when B is acquired
  // (directly or through a call) while A is held.
  struct Witness {
    std::string file;
    int line = 0;
    std::string function;
    std::string via;  ///< callee name for propagated edges, "" for direct
  };
  std::map<std::pair<std::string, std::string>, Witness> edges;
  for (const LockFunction& lf : fns) {
    for (const LockAcquisition& held : lf.acquisitions) {
      for (const LockAcquisition& next : lf.acquisitions) {
        if (next.offset <= held.offset || next.offset >= held.hold_end) {
          continue;
        }
        if (next.lock == held.lock) {
          a.Emit(*lf.file, next.offset, "lock-reentry",
                  "lock '" + held.lock + "' acquired in '" + lf.def->name +
                      "' while already held (Mutex is non-reentrant: this "
                      "deadlocks)");
          continue;
        }
        edges.emplace(
            std::make_pair(held.lock, next.lock),
            Witness{lf.file->path, LineOf(lf.file->starts, next.offset),
                    lf.def->name, ""});
      }
      for (const CallSite& call : lf.calls) {
        if (call.offset <= held.offset || call.offset >= held.hold_end) {
          continue;
        }
        for (const std::string& lock : fns[call.fn].may_acquire) {
          if (lock == held.lock) continue;  // re-entry via calls is too
                                            // imprecise to assert on
          edges.emplace(
              std::make_pair(held.lock, lock),
              Witness{lf.file->path, LineOf(lf.file->starts, call.offset),
                      lf.def->name, fns[call.fn].def->name});
        }
      }
    }
  }

  // Cycle detection over the lock graph.
  std::map<std::string, std::vector<std::string>> graph;
  for (const auto& [edge, _] : edges) graph[edge.first].push_back(edge.second);
  std::set<std::string> done;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    if (on_stack.count(node) != 0) {
      auto start = std::find(stack.begin(), stack.end(), node);
      std::vector<std::string> cycle(start, stack.end());
      std::string key;
      const size_t min_at = static_cast<size_t>(
          std::min_element(cycle.begin(), cycle.end()) - cycle.begin());
      for (size_t i = 0; i < cycle.size(); ++i) {
        key += cycle[(min_at + i) % cycle.size()] + ">";
      }
      if (!reported.insert(key).second) return;
      // Render the full cycle path with witnesses.
      std::string path;
      for (size_t i = 0; i < cycle.size(); ++i) {
        const std::string& from = cycle[i];
        const std::string& to = i + 1 < cycle.size() ? cycle[i + 1] : node;
        const Witness& w = edges.at({from, to});
        path += from + " -> " + to + " (" + w.file + ":" +
                std::to_string(w.line) + " in " + w.function +
                (w.via.empty() ? "" : " via " + w.via) + ")";
        if (i + 1 < cycle.size()) path += ", ";
      }
      const Witness& w0 = edges.at(
          {cycle[0], cycle.size() > 1 ? cycle[1] : node});
      // Anchor the diagnostic at the first witness site.
      Diagnostic diag{w0.file, w0.line, "lock-order",
                      "lock-order cycle (potential deadlock): " + path +
                          "; pick one global acquisition order"};
      // Honor a same-line allow at the anchor.
      for (const FileModel& fm : a.files) {
        if (fm.path != diag.file) continue;
        const auto it = fm.allows.find(diag.line);
        if (it != fm.allows.end() && it->second.count("lock-order") != 0) {
          return;
        }
      }
      a.out->push_back(std::move(diag));
      return;
    }
    if (done.count(node) != 0) return;
    stack.push_back(node);
    on_stack.insert(node);
    for (const std::string& next : graph[node]) dfs(next);
    stack.pop_back();
    on_stack.erase(node);
    done.insert(node);
  };
  for (const auto& [node, _] : graph) dfs(node);
}

// --- rule family: cancellation responsiveness -----------------------------

/// Outermost loops below this many lines are treated as trivial
/// post-processing (copying k results, joining strings) and exempt.
constexpr int kTrivialLoopLines = 4;

struct LoopExtent {
  size_t keyword = 0;  ///< offset of for/while/do
  size_t begin = 0, end = 0;
};

/// Outermost loops of `fn` (nested loops are part of their parent's
/// extent). Consumes `do { } while (...)` as one loop.
std::vector<LoopExtent> ExtractOutermostLoops(const std::string& scan,
                                              const FunctionDef& fn) {
  std::vector<LoopExtent> loops;
  size_t pos = fn.body_begin + 1;
  while (pos < fn.body_end) {
    size_t best = std::string::npos;
    std::string kind;
    for (const char* kw : {"for", "while", "do"}) {
      const size_t at = FindWord(scan, kw, pos);
      if (at != std::string::npos && at < fn.body_end && at < best) {
        best = at;
        kind = kw;
      }
    }
    if (best == std::string::npos) break;
    pos = best + kind.size();
    size_t body_start = 0;
    if (kind == "do") {
      body_start = SkipWs(scan, pos);
    } else {
      const size_t paren = SkipWs(scan, pos);
      if (paren >= fn.body_end || scan[paren] != '(') continue;
      const size_t close = SkipParens(scan, paren);
      if (close == std::string::npos || close > fn.body_end) continue;
      body_start = SkipWs(scan, close);
    }
    if (body_start >= fn.body_end) break;
    size_t extent_end;
    if (scan[body_start] == '{') {
      extent_end = SkipBraces(scan, body_start);
      if (extent_end == std::string::npos || extent_end > fn.body_end) break;
    } else {
      // Single statement: to the ';' at paren/brace depth zero.
      int depth = 0;
      extent_end = body_start;
      while (extent_end < fn.body_end) {
        const char c = scan[extent_end];
        if (c == '(' || c == '{') ++depth;
        if (c == ')' || c == '}') --depth;
        if (c == ';' && depth == 0) break;
        ++extent_end;
      }
    }
    if (kind == "do") {
      // Consume the trailing `while (...)` so it is not seen as a loop.
      const size_t trailer = FindWord(scan, "while", extent_end);
      if (trailer != std::string::npos && trailer < fn.body_end) {
        const size_t paren = SkipWs(scan, trailer + 5);
        if (paren < fn.body_end && scan[paren] == '(') {
          const size_t close = SkipParens(scan, paren);
          if (close != std::string::npos) extent_end = close;
        }
      }
    }
    loops.push_back(LoopExtent{best, body_start, extent_end});
    pos = extent_end + 1;
  }
  return loops;
}

/// Identifier names bound to QueryContext / CancelToken parameters.
std::vector<std::string> ContextParamNames(const std::string& scan,
                                           const FunctionDef& fn) {
  std::vector<std::string> names;
  for (const char* type : {"QueryContext", "CancelToken"}) {
    for (size_t pos = FindWord(scan, type, fn.params_begin);
         pos != std::string::npos && pos < fn.params_end;
         pos = FindWord(scan, type, pos + 1)) {
      size_t i = pos + std::string(type).size();
      // Skip cv/ref/pointer decoration to the parameter name.
      while (i < fn.params_end) {
        i = SkipWs(scan, i);
        if (i < fn.params_end && (scan[i] == '&' || scan[i] == '*')) {
          ++i;
          continue;
        }
        break;
      }
      size_t name_end = i;
      while (name_end < fn.params_end && IsIdentChar(scan[name_end])) {
        ++name_end;
      }
      if (name_end > i) names.push_back(scan.substr(i, name_end - i));
    }
  }
  return names;
}

void CheckCancellation(Analysis& a) {
  static const char* const kPollTokens[] = {
      "CheckAlive",   "Expired",     "cancelled",          "deadline_expired",
      "ShouldPoll",   "ShouldStop",  "HETESIM_FAULT_POINT", "PollStride",
      "QueryContext", "CancelToken", "SharedStatus"};
  for (const FileModel& fm : a.files) {
    if (fm.role != Role::kSrc) continue;
    for (const FunctionDef& fn : fm.functions) {
      const std::string params =
          fm.scan.substr(fn.params_begin, fn.params_end - fn.params_begin);
      if (FindWord(params, "QueryContext", 0) == std::string::npos &&
          FindWord(params, "CancelToken", 0) == std::string::npos) {
        continue;
      }
      const std::vector<std::string> ctx_names = ContextParamNames(fm.scan, fn);
      for (const LoopExtent& loop : ExtractOutermostLoops(fm.scan, fn)) {
        const int lines = LineOf(fm.starts, loop.end) -
                          LineOf(fm.starts, loop.keyword);
        if (lines < kTrivialLoopLines) continue;
        bool polls = false;
        for (const char* token : kPollTokens) {
          size_t at = FindWord(fm.scan, token, loop.begin);
          if (at != std::string::npos && at < loop.end) {
            polls = true;
            break;
          }
        }
        for (const std::string& name : ctx_names) {
          if (polls) break;
          size_t at = FindWord(fm.scan, name, loop.begin);
          if (at != std::string::npos && at < loop.end) polls = true;
        }
        if (polls) continue;
        a.Emit(fm, loop.keyword, "cancel-poll",
               "loop in '" + fn.name +
                   "' (takes QueryContext/CancelToken) never polls for "
                   "cancellation or forwards the context; check "
                   "ctx.CheckAlive()/PollStrideController in the loop body "
                   "so deadlines hold");
      }
    }
  }
}

// --- rule family: fault-point registry ------------------------------------

struct RegistryEntry {
  std::string site;
  int line = 0;
};

std::vector<RegistryEntry> ParseFaultRegistry(const std::string& content) {
  std::vector<RegistryEntry> entries;
  std::istringstream lines(content);
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    ++n;
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const size_t last = line.find_last_not_of(" \t\r");
    entries.push_back(RegistryEntry{line.substr(first, last - first + 1), n});
  }
  return entries;
}

void CheckFaultRegistry(Analysis& a, const AnalyzerConfig& config) {
  if (!config.has_fault_registry) return;
  const std::vector<RegistryEntry> registry =
      ParseFaultRegistry(config.fault_registry);
  std::set<std::string> registered;
  for (const RegistryEntry& entry : registry) registered.insert(entry.site);

  // Sites used in src/ (the macro's own definition/doc file is exempt).
  std::map<std::string, int> used;  // site -> occurrence count
  for (const FileModel& fm : a.files) {
    if (fm.role != Role::kSrc) continue;
    if (Stem(Basename(fm.path)) == "fault_injection") continue;
    for (size_t pos = FindWord(fm.scan, "HETESIM_FAULT_POINT", 0);
         pos != std::string::npos;
         pos = FindWord(fm.scan, "HETESIM_FAULT_POINT", pos + 1)) {
      const size_t open = SkipWs(fm.scan, pos + 19);
      if (open >= fm.scan.size() || fm.scan[open] != '(') continue;
      const size_t close = SkipParens(fm.scan, open);
      if (close == std::string::npos) continue;
      // The scan blanked the literal; the raw text still holds it.
      const size_t quote = fm.raw->find('"', open);
      if (quote == std::string::npos || quote >= close) continue;
      const size_t endq = fm.raw->find('"', quote + 1);
      if (endq == std::string::npos || endq >= close) continue;
      const std::string site = fm.raw->substr(quote + 1, endq - quote - 1);
      ++used[site];
      if (registered.count(site) == 0) {
        a.Emit(fm, pos, "fault-unregistered",
               "fault point \"" + site + "\" is not listed in " +
                   config.fault_registry_path +
                   "; register it and cover it with a resilience test");
      }
    }
  }

  for (const RegistryEntry& entry : registry) {
    if (used.count(entry.site) == 0) {
      a.EmitAt(config.fault_registry_path, entry.line, "fault-stale",
               "registry entry \"" + entry.site +
                   "\" matches no HETESIM_FAULT_POINT in src/; retire the "
                   "entry (and its tests) or restore the site");
      continue;
    }
    bool tested = false;
    const std::string quoted = "\"" + entry.site + "\"";
    for (const FileModel& fm : a.files) {
      if (fm.role != Role::kTest) continue;
      if (fm.raw->find(quoted) != std::string::npos) {
        tested = true;
        break;
      }
    }
    if (!tested) {
      a.EmitAt(config.fault_registry_path, entry.line, "fault-untested",
               "fault site \"" + entry.site +
                   "\" is referenced by no test under tests/; every site "
                   "needs a deterministic resilience test");
    }
  }
}

}  // namespace

// --- public API -----------------------------------------------------------

AnalyzerReport AnalyzeRepo(const std::vector<SourceFile>& files,
                           const AnalyzerConfig& config) {
  AnalyzerReport report;
  Analysis a;
  a.out = &report.findings;
  a.files.reserve(files.size());
  for (const SourceFile& sf : files) {
    FileModel fm;
    fm.path = sf.path;
    fm.module = ModuleOfPath(sf.path);
    fm.role = RoleOfPath(sf.path);
    fm.raw = &sf.content;
    fm.scan = StripForScan(sf.content);
    fm.starts = LineStarts(sf.content);
    fm.allows = ParseSuppressions(sf.content);
    fm.includes = ParseIncludes(fm.scan, sf.content);
    if (fm.role == Role::kSrc) fm.functions = ExtractFunctions(fm.scan);
    a.files.push_back(std::move(fm));
  }
  report.files = a.files.size();

  CheckLayering(a, config);
  CheckLockOrder(a);
  CheckCancellation(a);
  CheckFaultRegistry(a, config);

  if (config.per_file_rules) {
    for (size_t i = 0; i < a.files.size(); ++i) {
      if (a.files[i].role != Role::kSrc) continue;
      std::vector<Diagnostic> per_file =
          LintSource(files[i].path, files[i].content);
      report.findings.insert(report.findings.end(),
                             std::make_move_iterator(per_file.begin()),
                             std::make_move_iterator(per_file.end()));
    }
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Diagnostic& x, const Diagnostic& y) {
              if (x.file != y.file) return x.file < y.file;
              if (x.line != y.line) return x.line < y.line;
              return x.rule < y.rule;
            });
  return report;
}

std::string Fingerprint(const Diagnostic& diag) {
  // Digit runs collapse to '#' so witness line numbers inside messages do
  // not churn the fingerprint when unrelated lines move.
  std::string key = diag.rule + "|" + diag.file + "|";
  bool in_digits = false;
  for (const char c : diag.message) {
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      if (!in_digits) key += '#';
      in_digits = true;
    } else {
      key += c;
      in_digits = false;
    }
  }
  uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

std::set<std::string> ParseBaseline(const std::string& content) {
  std::set<std::string> fingerprints;
  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    size_t end = first;
    while (end < line.size() &&
           std::isspace(static_cast<unsigned char>(line[end])) == 0) {
      ++end;
    }
    fingerprints.insert(line.substr(first, end - first));
  }
  return fingerprints;
}

std::string RenderBaseline(const std::vector<Diagnostic>& findings) {
  std::string out =
      "# hetesim_analyze baseline — accepted pre-existing findings.\n"
      "# Regenerate with `hetesim_analyze --write-baseline=<this file>`;\n"
      "# policy: new code never adds entries here (DESIGN.md §15).\n";
  for (const Diagnostic& diag : findings) {
    out += Fingerprint(diag) + "  " + diag.rule + "  " + diag.file + ":" +
           std::to_string(diag.line) + "\n";
  }
  return out;
}

std::vector<Diagnostic> Unbaselined(const std::vector<Diagnostic>& findings,
                                    const std::set<std::string>& baseline) {
  std::vector<Diagnostic> fresh;
  for (const Diagnostic& diag : findings) {
    if (baseline.count(Fingerprint(diag)) == 0) fresh.push_back(diag);
  }
  return fresh;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderJson(const AnalyzerReport& report,
                       const std::set<std::string>& baseline) {
  std::string out = "{\n  \"tool\": \"hetesim_analyze\",\n  \"files\": " +
                    std::to_string(report.files) + ",\n  \"findings\": [";
  size_t fresh = 0;
  for (size_t i = 0; i < report.findings.size(); ++i) {
    const Diagnostic& diag = report.findings[i];
    const std::string fp = Fingerprint(diag);
    const bool baselined = baseline.count(fp) != 0;
    if (!baselined) ++fresh;
    out += std::string(i == 0 ? "\n" : ",\n") + "    {\"file\": \"" +
           JsonEscape(diag.file) + "\", \"line\": " +
           std::to_string(diag.line) + ", \"rule\": \"" +
           JsonEscape(diag.rule) + "\", \"message\": \"" +
           JsonEscape(diag.message) + "\", \"fingerprint\": \"" + fp +
           "\", \"baselined\": " + (baselined ? "true" : "false") + "}";
  }
  out += "\n  ],\n  \"new_findings\": " + std::to_string(fresh) + "\n}\n";
  return out;
}

std::string RenderSarif(const AnalyzerReport& report,
                        const std::set<std::string>& baseline) {
  std::set<std::string> rules;
  for (const Diagnostic& diag : report.findings) rules.insert(diag.rule);
  std::string out =
      "{\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\"name\": \"hetesim_analyze\", "
      "\"rules\": [";
  size_t i = 0;
  for (const std::string& rule : rules) {
    out += std::string(i++ == 0 ? "" : ", ") + "{\"id\": \"" +
           JsonEscape(rule) + "\"}";
  }
  out += "]}},\n    \"results\": [";
  for (size_t j = 0; j < report.findings.size(); ++j) {
    const Diagnostic& diag = report.findings[j];
    const std::string fp = Fingerprint(diag);
    out += std::string(j == 0 ? "\n" : ",\n") +
           "      {\"ruleId\": \"" + JsonEscape(diag.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           JsonEscape(diag.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           JsonEscape(diag.file) + "\"}, \"region\": {\"startLine\": " +
           std::to_string(diag.line) +
           "}}}], \"partialFingerprints\": {\"hetesimAnalyze/v1\": \"" + fp +
           "\"}, \"baselineState\": \"" +
           (baseline.count(fp) != 0 ? "unchanged" : "new") + "\"}";
  }
  out += "\n    ]\n  }]\n}\n";
  return out;
}

}  // namespace hetesim::lint
