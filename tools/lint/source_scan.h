#ifndef HETESIM_TOOLS_LINT_SOURCE_SCAN_H_
#define HETESIM_TOOLS_LINT_SOURCE_SCAN_H_

#include <map>
#include <set>
#include <string>
#include <vector>

/// \file
/// \brief The shared token-scan substrate behind both checkers.
///
/// `hetesim_lint` (per-file conventions, linter.h) and `hetesim_analyze`
/// (whole-program invariants, analyzer.h) are deliberately *token scanners*,
/// not parsers: they strip comments and literals (preserving line numbers)
/// and match token patterns in what remains. That keeps them dependency-free
/// and immune to build flags; the shared primitives live here so both tools
/// agree on what "a token" and "a suppressed line" mean.

namespace hetesim::lint {

/// True for characters that can appear in a C++ identifier.
bool IsIdentChar(char c);

/// Final path component.
std::string Basename(const std::string& path);

/// `name` with its last extension removed.
std::string Stem(const std::string& name);

/// Replaces comments and string/character-literal contents with spaces,
/// preserving every newline so line numbers survive.
std::string StripForScan(const std::string& content);

/// 0-based byte offset of the start of every line, for offset -> line
/// translation after a scan.
std::vector<size_t> LineStarts(const std::string& content);

/// 1-based line number of byte `offset` given `LineStarts` output.
int LineOf(const std::vector<size_t>& starts, size_t offset);

/// Finds `word` at an identifier boundary in `text` starting at `from`;
/// npos when absent.
size_t FindWord(const std::string& text, const std::string& word, size_t from);

/// Offset one past the `)` matching the paren at/after `open`; npos when
/// unbalanced.
size_t SkipParens(const std::string& text, size_t open);

/// First non-whitespace offset at or after `i`.
size_t SkipWs(const std::string& text, size_t i);

/// Per-line `// hetesim-lint: allow(rule-a, rule-b)` suppressions, parsed
/// from the *raw* content (the marker lives in a comment, which the scan
/// text has blanked out). Shared by both tools: one suppression syntax, one
/// policy (DESIGN.md §11/§15).
std::map<int, std::set<std::string>> ParseSuppressions(
    const std::string& content);

/// All lintable sources (.h/.cc/.cpp) under `root`, sorted, recursing into
/// subdirectories. Hidden directories, `build*` trees, and any directory
/// named in `skip_dirs` (e.g. `lint_fixtures`, which holds intentionally
/// broken sources) are skipped.
std::vector<std::string> CollectSourceFiles(
    const std::string& root, const std::set<std::string>& skip_dirs = {});

/// Reads `path` into `out`; false when the file cannot be opened.
bool ReadFileToString(const std::string& path, std::string* out);

}  // namespace hetesim::lint

#endif  // HETESIM_TOOLS_LINT_SOURCE_SCAN_H_
