#ifndef HETESIM_TOOLS_LINT_ANALYZER_H_
#define HETESIM_TOOLS_LINT_ANALYZER_H_

#include <set>
#include <string>
#include <vector>

#include "linter.h"
#include "source_scan.h"

/// \file
/// \brief `hetesim_analyze`: the whole-program static analyzer.
///
/// Where `hetesim_lint` (linter.h) checks one translation unit at a time,
/// this analyzer builds a cross-file model of the repository — the include
/// graph, every function definition with its lock acquisitions and loops,
/// every fault-point literal — and enforces the invariants that only exist
/// *between* files (DESIGN.md §15):
///
///   layer-order     #include edges must respect the module layering DAG
///                   common < matrix < hin < core < {workload, service,
///                   learn, datagen, baselines} < tools/bench/tests.
///                   Same-layer edges need an entry in the checked-in
///                   allowlist (tools/lint/layering_allow.txt).
///   module-cycle    the module-level include graph must stay acyclic even
///                   across allowlisted edges.
///   include-cycle   no file-level include cycles.
///   lock-order      the global lock-order graph (MutexLock nesting per
///                   function, propagated across calls) must be acyclic; a
///                   cycle is a potential deadlock and is reported with the
///                   full cycle path and witness sites.
///   lock-reentry    the same lock acquired again while already held (the
///                   Mutex wrapper is non-reentrant: guaranteed deadlock).
///   cancel-poll     a function taking QueryContext/CancelToken whose body
///                   loops must poll (CheckAlive/Expired/ShouldPoll/… or
///                   pass the context onward) inside each non-trivial
///                   outermost loop, so new kernels cannot silently ignore
///                   deadlines.
///   fault-unregistered  every HETESIM_FAULT_POINT("site") literal in src/
///                   must be listed in tools/lint/fault_sites.txt.
///   fault-stale     every registry entry must still exist in src/.
///   fault-untested  every registry entry must be referenced by at least
///                   one test under tests/.
///
/// Per-file `hetesim_lint` rules also run over src/ files, so one
/// `hetesim_analyze` invocation is a superset of `hetesim_lint src/`.
///
/// Point suppressions reuse the same-line `// hetesim-lint: allow(rule-id)`
/// marker; pre-existing findings can be carried in a baseline file of
/// fingerprints (see ParseBaseline / --write-baseline). The suppression and
/// baseline policy lives in DESIGN.md §15.
namespace hetesim::lint {

/// One input file. `path` is repository-relative with '/' separators
/// (e.g. "src/core/topk.cc") — module and role assignment key off it.
struct SourceFile {
  std::string path;
  std::string content;
};

struct AnalyzerConfig {
  /// Content of the layering allowlist (lines of `from -> to` module
  /// edges; '#' comments). Empty = no sanctioned same-layer edges.
  std::string layering_allow;
  std::string layering_allow_path = "tools/lint/layering_allow.txt";

  /// Content of the fault-site registry (one site name per line; '#'
  /// comments). The three fault-* rules run only when
  /// `has_fault_registry` is true; diagnostics against the registry
  /// itself anchor at `fault_registry_path`.
  std::string fault_registry;
  std::string fault_registry_path = "tools/lint/fault_sites.txt";
  bool has_fault_registry = false;

  /// Also run the per-file hetesim_lint rules over src-role files.
  bool per_file_rules = true;
};

struct AnalyzerReport {
  std::vector<Diagnostic> findings;  ///< sorted by (file, line, rule)
  size_t files = 0;                  ///< files modeled
};

/// Builds the whole-program model and runs every rule family. Same-line
/// `allow(...)` suppressions are already applied; baseline filtering is the
/// caller's (use Unbaselined).
AnalyzerReport AnalyzeRepo(const std::vector<SourceFile>& files,
                           const AnalyzerConfig& config);

/// Stable identity of a finding for the baseline file: a 64-bit FNV-1a hash
/// (hex) over rule, file, and the message with digit runs collapsed — so
/// line drift from unrelated edits does not invalidate a baseline entry.
std::string Fingerprint(const Diagnostic& diag);

/// Parses a baseline file: the first whitespace-separated token of every
/// non-comment line is a fingerprint.
std::set<std::string> ParseBaseline(const std::string& content);

/// Renders `findings` as a baseline file (fingerprint + human context).
std::string RenderBaseline(const std::vector<Diagnostic>& findings);

/// The findings whose fingerprints are not in `baseline`.
std::vector<Diagnostic> Unbaselined(const std::vector<Diagnostic>& findings,
                                    const std::set<std::string>& baseline);

/// Machine-readable renderings of a report. Baselined findings are included
/// with `"baselined": true` (JSON) / `"baselineState": "unchanged"` (SARIF);
/// new findings carry `"new"` so CI annotation can gate on them.
std::string RenderJson(const AnalyzerReport& report,
                       const std::set<std::string>& baseline);
std::string RenderSarif(const AnalyzerReport& report,
                        const std::set<std::string>& baseline);

}  // namespace hetesim::lint

#endif  // HETESIM_TOOLS_LINT_ANALYZER_H_
