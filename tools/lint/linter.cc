#include "linter.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace hetesim::lint {

namespace {

/// Shared state for one file's scan.
struct FileScan {
  std::string path;
  std::string basename;
  const std::string& raw;       ///< original content (include directives)
  std::string scan;             ///< comments/strings blanked
  std::vector<size_t> starts;   ///< line-start offsets
  std::map<int, std::set<std::string>> allows;
  std::vector<Diagnostic>* out;

  void Emit(size_t offset, const std::string& rule, std::string message) {
    const int line = LineOf(starts, offset);
    const auto it = allows.find(line);
    if (it != allows.end() && it->second.count(rule) != 0) return;
    out->push_back(Diagnostic{path, line, rule, std::move(message)});
  }
};

// --- rule: no-raw-thread -------------------------------------------------

void CheckRawThread(FileScan& fs) {
  // The pool runtime is the one place allowed to own std::thread objects.
  if (fs.basename == "thread_pool.cc" || fs.basename == "thread_pool.h") return;
  for (size_t pos = FindWord(fs.scan, "std::thread", 0);
       pos != std::string::npos;
       pos = FindWord(fs.scan, "std::thread", pos + 1)) {
    // Querying the core count is not spawning a thread.
    if (fs.scan.compare(pos, 33, "std::thread::hardware_concurrency") == 0) {
      continue;
    }
    fs.Emit(pos, "no-raw-thread",
            "raw std::thread outside the thread-pool runtime; use "
            "ThreadPool/ParallelFor (common/parallel.h)");
  }
  for (size_t pos = FindWord(fs.scan, "std::async", 0);
       pos != std::string::npos;
       pos = FindWord(fs.scan, "std::async", pos + 1)) {
    fs.Emit(pos, "no-raw-thread",
            "std::async outside the thread-pool runtime; use "
            "ThreadPool::Submit");
  }
}

// --- rule: no-naked-new --------------------------------------------------

void CheckNakedNew(FileScan& fs) {
  static const char* const kAllocators[] = {"new", "malloc", "calloc",
                                            "realloc"};
  for (const char* word : kAllocators) {
    for (size_t pos = FindWord(fs.scan, word, 0); pos != std::string::npos;
         pos = FindWord(fs.scan, word, pos + 1)) {
      fs.Emit(pos, "no-naked-new",
              std::string("naked '") + word +
                  "'; use containers/std::make_unique (leaked singletons "
                  "need an allow comment)");
    }
  }
}

// --- rule: no-raw-mutex --------------------------------------------------

void CheckRawMutex(FileScan& fs) {
  // common/mutex.h *is* the wrapper over the standard primitives.
  if (fs.basename == "mutex.h") return;
  static const char* const kPrimitives[] = {
      "std::mutex",          "std::recursive_mutex", "std::timed_mutex",
      "std::shared_mutex",   "std::condition_variable",
      "std::lock_guard",     "std::unique_lock",     "std::scoped_lock"};
  for (const char* word : kPrimitives) {
    for (size_t pos = FindWord(fs.scan, word, 0); pos != std::string::npos;
         pos = FindWord(fs.scan, word, pos + 1)) {
      fs.Emit(pos, "no-raw-mutex",
              std::string("raw '") + word +
                  "' is invisible to thread-safety analysis; use "
                  "Mutex/MutexLock/CondVar (common/mutex.h)");
    }
  }
}

// --- rule: fault-point-alloc ---------------------------------------------

/// A budget reservation more than this many lines below the nearest
/// HETESIM_FAULT_POINT is considered unpaired.
constexpr int kFaultPointWindowLines = 15;

void CheckFaultPointAlloc(FileScan& fs) {
  // Only the context-aware multiplication kernels carry the pairing
  // contract; elsewhere Reserve is plain accounting.
  if (fs.basename != "spgemm.cc" && fs.basename != "path_matrix.cc") return;
  std::set<int> fault_lines;
  for (size_t pos = FindWord(fs.scan, "HETESIM_FAULT_POINT", 0);
       pos != std::string::npos;
       pos = FindWord(fs.scan, "HETESIM_FAULT_POINT", pos + 1)) {
    fault_lines.insert(LineOf(fs.starts, pos));
  }
  for (size_t pos = FindWord(fs.scan, "Reserve", 0); pos != std::string::npos;
       pos = FindWord(fs.scan, "Reserve", pos + 1)) {
    // Member call only: `.Reserve(` / `->Reserve(` — skips declarations and
    // unrelated identifiers.
    const bool member =
        (pos >= 1 && fs.scan[pos - 1] == '.') ||
        (pos >= 2 && fs.scan.compare(pos - 2, 2, "->") == 0);
    size_t after = pos + 7;
    while (after < fs.scan.size() &&
           std::isspace(static_cast<unsigned char>(fs.scan[after])) != 0) {
      ++after;
    }
    if (!member || after >= fs.scan.size() || fs.scan[after] != '(') continue;
    const int line = LineOf(fs.starts, pos);
    const auto it = fault_lines.lower_bound(line - kFaultPointWindowLines);
    if (it != fault_lines.end() && *it <= line) continue;
    fs.Emit(pos, "fault-point-alloc",
            "budget reservation without a HETESIM_FAULT_POINT in the " +
                std::to_string(kFaultPointWindowLines) +
                " lines above; kernel allocations must be fault-testable");
  }
}

// --- rule: no-check-in-status-fn -----------------------------------------

/// Matches `<...>` starting at `open` (which must be '<'); returns the
/// offset one past the closing '>' or npos.
size_t SkipAngles(const std::string& text, size_t open) {
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '<') ++depth;
    if (text[i] == '>' && --depth == 0) return i + 1;
    if (text[i] == ';' || text[i] == '{') return std::string::npos;
  }
  return std::string::npos;
}

void CheckStatusFn(FileScan& fs) {
  static const char* const kChecks[] = {
      "HETESIM_CHECK",    "HETESIM_CHECK_EQ", "HETESIM_CHECK_NE",
      "HETESIM_CHECK_LT", "HETESIM_CHECK_LE", "HETESIM_CHECK_GT",
      "HETESIM_CHECK_GE"};
  const std::string& text = fs.scan;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t status_at = FindWord(text, "Status", pos);
    const size_t result_at = FindWord(text, "Result", pos);
    size_t at = std::min(status_at, result_at);
    if (at == std::string::npos) return;
    const bool is_result = at == result_at;
    pos = at + 6;  // both keywords are six characters

    // A by-value return type: `Status` bare, `Result<...>` with arguments.
    // `Status::Foo` qualified uses and `Status&` / `Status*` returns are
    // out of scope (the rule targets functions whose *value* the caller
    // must handle).
    size_t i = at + 6;
    if (is_result) {
      i = SkipWs(text, i);
      if (i >= text.size() || text[i] != '<') continue;
      i = SkipAngles(text, i);
      if (i == std::string::npos) continue;
    }
    i = SkipWs(text, i);
    if (i < text.size() && (text[i] == ':' || text[i] == '&' || text[i] == '*'))
      continue;

    // Function name: identifier, possibly class-qualified.
    const size_t name_begin = i;
    while (i < text.size() && (IsIdentChar(text[i]) || text[i] == ':')) ++i;
    if (i == name_begin) continue;
    const std::string name = text.substr(name_begin, i - name_begin);

    i = SkipWs(text, i);
    if (i >= text.size() || text[i] != '(') continue;
    i = SkipParens(text, i);
    if (i == std::string::npos) continue;

    // Declaration or definition? Scan past trailing qualifiers (`const`,
    // `noexcept`, lock annotations — balanced parens) to the first `;` or
    // `{` at depth zero.
    size_t body_open = std::string::npos;
    int depth = 0;
    for (size_t guard = 0; i < text.size() && guard < 400; ++i, ++guard) {
      const char c = text[i];
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (depth != 0) continue;
      if (c == ';') break;
      if (c == '{') {
        body_open = i;
        break;
      }
    }
    if (body_open == std::string::npos) continue;

    // Body extent.
    size_t body_close = body_open;
    depth = 0;
    for (size_t j = body_open; j < text.size(); ++j) {
      if (text[j] == '{') ++depth;
      if (text[j] == '}' && --depth == 0) {
        body_close = j;
        break;
      }
    }

    for (const char* check : kChecks) {
      for (size_t c = FindWord(text, check, body_open);
           c != std::string::npos && c < body_close;
           c = FindWord(text, check, c + 1)) {
        fs.Emit(c, "no-check-in-status-fn",
                std::string(check) + " in '" + name +
                    "', which returns Status/Result; return an error instead "
                    "(HETESIM_DCHECK is fine for internal invariants)");
      }
    }
    pos = body_open;  // rescan the body for nested Status-returning lambdas
  }
}

// --- rules: include-self-first / include-src-prefix ----------------------

struct IncludeDirective {
  int line;
  std::string target;  ///< path for "..." includes, empty for <...>
  size_t offset;
};

std::vector<IncludeDirective> ParseIncludes(const FileScan& fs) {
  std::vector<IncludeDirective> includes;
  std::istringstream scan_lines(fs.scan);
  std::string scan_line;
  int line = 0;
  size_t offset = 0;
  while (std::getline(scan_lines, scan_line)) {
    ++line;
    const size_t line_offset = offset;
    offset += scan_line.size() + 1;
    // Use the *scan* text to decide it is a live directive (not inside a
    // comment), then the raw text for the path (the scan blanked it).
    const size_t hash = scan_line.find_first_not_of(" \t");
    if (hash == std::string::npos || scan_line[hash] != '#') continue;
    const size_t kw = scan_line.find("include", hash + 1);
    if (kw == std::string::npos ||
        scan_line.find_first_not_of(" \t", hash + 1) != kw) {
      continue;
    }
    const size_t raw_end = fs.raw.find('\n', line_offset);
    const std::string raw_line = fs.raw.substr(
        line_offset, raw_end == std::string::npos ? std::string::npos
                                                  : raw_end - line_offset);
    IncludeDirective directive{line, "", line_offset};
    const size_t quote = raw_line.find('"');
    if (quote != std::string::npos) {
      const size_t close = raw_line.find('"', quote + 1);
      if (close != std::string::npos) {
        directive.target = raw_line.substr(quote + 1, close - quote - 1);
      }
    }
    includes.push_back(std::move(directive));
  }
  return includes;
}

void CheckIncludes(FileScan& fs) {
  const std::vector<IncludeDirective> includes = ParseIncludes(fs);

  for (const IncludeDirective& inc : includes) {
    if (inc.target.rfind("src/", 0) == 0 ||
        inc.target.find("../") != std::string::npos) {
      fs.Emit(inc.offset, "include-src-prefix",
              "#include \"" + inc.target +
                  "\" leaks the tree layout; include relative to src/ "
                  "(e.g. \"common/status.h\")");
    }
  }

  // Self-header-first applies to implementation files that *have* a
  // same-stem header among their includes.
  const bool is_impl = fs.basename.size() > 3 &&
                       (fs.basename.rfind(".cc") == fs.basename.size() - 3 ||
                        fs.basename.rfind(".cpp") == fs.basename.size() - 4);
  if (!is_impl || includes.empty()) return;
  const std::string self = Stem(fs.basename) + ".h";
  for (size_t k = 1; k < includes.size(); ++k) {
    if (Basename(includes[k].target) == self) {
      fs.Emit(includes[k].offset, "include-self-first",
              "own header \"" + includes[k].target +
                  "\" must be the first #include so it is proven "
                  "self-contained");
    }
  }
}

}  // namespace

std::string FormatDiagnostic(const Diagnostic& diag) {
  return diag.file + ":" + std::to_string(diag.line) + ": [" + diag.rule +
         "] " + diag.message;
}

std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content) {
  std::vector<Diagnostic> diagnostics;
  FileScan fs{path,
              Basename(path),
              content,
              StripForScan(content),
              LineStarts(content),
              ParseSuppressions(content),
              &diagnostics};
  CheckRawThread(fs);
  CheckNakedNew(fs);
  CheckRawMutex(fs);
  CheckFaultPointAlloc(fs);
  CheckStatusFn(fs);
  CheckIncludes(fs);
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return diagnostics;
}

bool LintFile(const std::string& path, std::vector<Diagnostic>* out) {
  std::string content;
  if (!ReadFileToString(path, &content)) return false;
  std::vector<Diagnostic> diagnostics = LintSource(path, content);
  out->insert(out->end(), std::make_move_iterator(diagnostics.begin()),
              std::make_move_iterator(diagnostics.end()));
  return true;
}

}  // namespace hetesim::lint
