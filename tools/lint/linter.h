#ifndef HETESIM_TOOLS_LINT_LINTER_H_
#define HETESIM_TOOLS_LINT_LINTER_H_

#include <string>
#include <vector>

#include "source_scan.h"

/// \file
/// \brief The `hetesim_lint` project checker: token-level enforcement of the
/// project conventions the compiler cannot see (DESIGN.md §11).
///
/// The checker is deliberately a *token scan*, not a parser: it strips
/// comments and string literals (preserving line numbers) and then looks for
/// forbidden token patterns. That keeps it dependency-free, fast enough to
/// run on every CI push, and immune to the build flags / include paths a
/// real frontend would need. The cost is a small amount of strictness — a
/// forbidden token inside a macro body or nested lambda is flagged even when
/// a full parse might excuse it — which is resolved case by case with an
/// explicit same-line suppression:
///
///     ... flagged code ...  // hetesim-lint: allow(rule-id)
///
/// (comma-separate several rule ids to suppress more than one). Every
/// suppression is expected to carry a one-line justification nearby; the
/// rule catalogue and the suppression policy live in DESIGN.md §11.
///
/// Rules:
///   no-raw-thread        std::thread / std::async outside the thread-pool
///                        runtime (thread_pool.h/.cc are exempt;
///                        std::thread::hardware_concurrency is allowed).
///   no-naked-new         new / malloc / calloc / realloc anywhere — owning
///                        containers and smart pointers only. Leaked
///                        singletons carry an allow comment.
///   no-raw-mutex         std::mutex / std::lock_guard / std::unique_lock /
///                        std::condition_variable etc. outside
///                        common/mutex.h — use the annotated Mutex wrappers
///                        so Clang thread-safety analysis sees the locks.
///   fault-point-alloc    in the context-aware kernels (spgemm.cc,
///                        path_matrix.cc) every budget reservation
///                        (`ctx.Reserve(...)`) must sit within a few lines
///                        after a HETESIM_FAULT_POINT so the resilience
///                        suite can fail it deterministically.
///   no-check-in-status-fn  HETESIM_CHECK* inside a function returning
///                        Status / Result<T> by value — recoverable paths
///                        report errors, they do not abort. HETESIM_DCHECK
///                        remains allowed for internal invariants.
///   include-self-first   a .cc file that has a same-stem header must
///                        include it first (catches headers that do not
///                        stand alone).
///   include-src-prefix   no `#include "src/..."` and no `#include "../..."`
///                        — all project includes are relative to src/, so
///                        the tree layout never leaks into public headers.
namespace hetesim::lint {

/// One finding. `line` is 1-based. `rule` is the kebab-case rule id the
/// suppression syntax refers to.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Renders a diagnostic as `file:line: [rule-id] message` — the exact format
/// the fixture tests assert against.
std::string FormatDiagnostic(const Diagnostic& diag);

/// Runs every rule over one translation unit. `path` is used for rule
/// scoping (basename exemptions) and for the emitted diagnostics; `content`
/// is the raw file text. Diagnostics come back in line order.
std::vector<Diagnostic> LintSource(const std::string& path,
                                   const std::string& content);

/// Reads `path` and lints it; appends to `out`. Returns false (appending
/// nothing) when the file cannot be read.
bool LintFile(const std::string& path, std::vector<Diagnostic>* out);

// StripForScan / CollectSourceFiles and the other token-scan primitives the
// fixtures exercise moved to source_scan.h (shared with hetesim_analyze).

}  // namespace hetesim::lint

#endif  // HETESIM_TOOLS_LINT_LINTER_H_
