// hetesim_lint — the project conventions checker (see linter.h for the rule
// catalogue and DESIGN.md §11 for the policy). CI runs `hetesim_lint src/`
// and requires a clean exit.
//
// Usage: hetesim_lint <file-or-directory>...
// Exit:  0 clean, 1 findings, 2 usage or unreadable input.

#include <cstdio>
#include <string>
#include <vector>

#include "linter.h"

int main(int argc, char** argv) {
  using hetesim::lint::Diagnostic;

  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file-or-directory>...\n", argv[0]);
    return 2;
  }

  std::vector<Diagnostic> diagnostics;
  size_t files_scanned = 0;
  for (int i = 1; i < argc; ++i) {
    std::vector<std::string> files =
        hetesim::lint::CollectSourceFiles(argv[i]);
    if (files.empty()) files.push_back(argv[i]);  // plain file (or bad path)
    for (const std::string& file : files) {
      if (!hetesim::lint::LintFile(file, &diagnostics)) {
        std::fprintf(stderr, "error: cannot read %s\n", file.c_str());
        return 2;
      }
      ++files_scanned;
    }
  }

  for (const Diagnostic& diag : diagnostics) {
    std::printf("%s\n", hetesim::lint::FormatDiagnostic(diag).c_str());
  }
  std::fprintf(stderr, "hetesim_lint: %zu finding(s) in %zu file(s)\n",
               diagnostics.size(), files_scanned);
  return diagnostics.empty() ? 0 : 1;
}
