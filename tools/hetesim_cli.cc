// hetesim_cli — command-line front end for the HeteSim library.
//
// Usage:
//   hetesim_cli generate --dataset acm|dblp --out FILE [--seed N]
//                        [--papers N] [--authors N]
//   hetesim_cli summary  --graph FILE
//   hetesim_cli paths    --graph FILE --from TYPE --to TYPE
//                        [--max-length N] [--symmetric]
//   hetesim_cli pair     --graph FILE --path SPEC --source NAME --target NAME
//                        [--unnormalized] [--threads N] [--algo NAME]
//   hetesim_cli topk     --graph FILE --path SPEC --source NAME [--k N]
//                        [--deadline-ms N] [--algo NAME]
//   hetesim_cli topk-pairs --graph FILE --path SPEC [--k N]
//                        [--exclude-diagonal]
//   hetesim_cli matrix   --graph FILE --path SPEC --out FILE.csv
//                        [--threads N] [--deadline-ms N] [--max-cache-mb N]
//   hetesim_cli materialize --graph FILE --store-dir DIR
//                        --paths SPEC[,SPEC...]
//                        [--store-codec lossless|quantized] [--threads N]
//   hetesim_cli workload --config FILE[,FILE...] [--out FILE.json]
//                        [--queries N] [--workers N] [--no-realtime]
//                        [--service-socket PATH] [--algo NAME]
//
// `materialize` is the paper's Section 4.6 offline step: it computes the
// left/right reachable-probability partials of every listed path and writes
// them, compressed, into the on-disk store at --store-dir. Query commands
// (`pair`, `topk`, `matrix`) then accept `--store-dir DIR` (plus
// `--store-codec` for demotion writes): misses are served from the store
// before recomputing, and evicted entries are demoted to it instead of
// dropped. A store recorded against a different graph is detected via a
// digest in its manifest and ignored.
//
// Exit codes: 0 success, 2 usage error (unparseable command line or invalid
// arguments), 1 runtime failure.
//
// --threads follows the library convention: 1 (default) is sequential,
// 0 uses every hardware thread via the shared pool.
//
// --algo picks the relevance strategy (exhaustive | pruned | frontier,
// default pruned). `pair` and `topk` honour it directly; `workload` uses it
// to override the scenario files' `algo` directive (including any per-class
// `algo=` options), which makes A/B sweeps of the same scenario a one-flag
// affair. An unknown name is a usage error (exit 2).
//
// --deadline-ms bounds a query's wall-clock time. `topk` degrades
// gracefully: on expiry it prints whatever partial ranking was accumulated
// plus an explicit truncation marker and exits 0; `matrix` and `pair` are
// all-or-nothing and report Deadline exceeded. --max-cache-mb caps the
// path-matrix cache's accounted bytes (a hard limit, enforced by eviction
// and by serving oversized products uncached).
//
// Observability (DESIGN.md §12): every command accepts
//   --metrics-out=FILE   dump the process-wide metrics registry after the
//                        command finishes. A `.json` extension selects the
//                        structured JSON sink; anything else gets the
//                        Prometheus text exposition.
//   --trace-out=FILE     record the query's span tree (engine / chain /
//                        top-k stages) and write it as JSON.
// Both options also accept the space-separated `--metrics-out FILE` form.
//
// Path SPECs use the meta-path syntax of MetaPath::Parse: type codes
// ("APVC", "A-P-V-C") or full type names ("author-paper-venue-conference").
// Graph files use the text format of datagen/io.h.

#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cli_args.h"
#include "common/context.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "core/hetesim.h"
#include "core/materialize.h"
#include "core/topk.h"
#include "datagen/acm_generator.h"
#include "datagen/dblp_generator.h"
#include "datagen/io.h"
#include "hin/digest.h"
#include "hin/dot.h"
#include "hin/enumerate.h"
#include "hin/metapath.h"
#include "hin/stats.h"
#include "learn/spectral.h"
#include "store/store.h"
#include "workload/config.h"
#include "workload/report.h"
#include "workload/runner.h"

namespace {

using namespace hetesim;
using cli::Args;

Result<HinGraph> LoadGraphArg(const Args& args) {
  auto path = args.Get("graph");
  if (!path) return Status::InvalidArgument("--graph FILE is required");
  return LoadHinGraphFromFile(*path);
}

Result<MetaPath> ParsePathArg(const HinGraph& graph, const Args& args) {
  auto spec = args.Get("path");
  if (!spec) return Status::InvalidArgument("--path SPEC is required");
  return MetaPath::Parse(graph.schema(), *spec);
}

/// Execution bounds shared by the query commands: a deadline from
/// --deadline-ms and, when --max-cache-mb is present, a budgeted
/// path-matrix cache. The budget must outlive the context/cache pair.
struct QueryBounds {
  QueryContext ctx;
  std::shared_ptr<MemoryBudget> budget;
  std::shared_ptr<PathMatrixCache> cache;
};

/// The trace collecting this invocation's spans, set in main() when
/// --trace-out is present. A pointer (not an owning object) so the trace's
/// lifetime brackets the command dispatch and the final RenderJson.
Trace* g_trace = nullptr;

/// Opens the --store-dir/--store-codec store against `graph`'s digest.
/// Shared by MakeQueryBounds and `materialize`.
Result<std::shared_ptr<MatrixStore>> OpenStoreArg(const Args& args,
                                                  const HinGraph& graph,
                                                  const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("--store-dir needs a path");
  StoreOptions options;
  options.directory = dir;
  options.graph_digest = GraphDigest(graph);
  HETESIM_ASSIGN_OR_RETURN(
      const std::string codec_word,
      args.GetChoice("store-codec", "lossless", {"lossless", "quantized"}));
  HETESIM_ASSIGN_OR_RETURN(options.codec, StoreCodecFromString(codec_word));
  HETESIM_ASSIGN_OR_RETURN(std::unique_ptr<MatrixStore> store,
                           MatrixStore::Open(options));
  return std::shared_ptr<MatrixStore>(std::move(store));
}

Result<QueryBounds> MakeQueryBounds(const Args& args, const HinGraph& graph) {
  QueryBounds bounds;
  if (args.Has("deadline-ms")) {
    HETESIM_ASSIGN_OR_RETURN(
        int deadline_ms,
        args.GetInt("deadline-ms", 0, /*min=*/0,
                    /*max=*/std::numeric_limits<int>::max()));
    bounds.ctx = bounds.ctx.WithDeadlineAfterMs(deadline_ms);
  }
  if (args.Has("max-cache-mb")) {
    HETESIM_ASSIGN_OR_RETURN(
        int cache_mb,
        args.GetInt("max-cache-mb", 0, /*min=*/0, /*max=*/1 << 20));
    const size_t limit = static_cast<size_t>(cache_mb) * 1024 * 1024;
    bounds.budget = std::make_shared<MemoryBudget>(limit);
    bounds.cache = std::make_shared<PathMatrixCache>();
    bounds.cache->SetMemoryBudget(bounds.budget);
  }
  if (auto dir = args.Get("store-dir"); dir) {
    HETESIM_ASSIGN_OR_RETURN(std::shared_ptr<MatrixStore> store,
                             OpenStoreArg(args, graph, *dir));
    if (bounds.cache == nullptr) {
      bounds.cache = std::make_shared<PathMatrixCache>();
    }
    bounds.cache->AttachStore(std::move(store));
  }
  if (g_trace != nullptr) bounds.ctx = bounds.ctx.WithTrace(g_trace);
  return bounds;
}

/// --threads follows the library convention: 0 = every hardware thread,
/// N >= 1 explicit. Negative or garbage is a usage error.
Result<int> GetThreadsArg(const Args& args) {
  return args.GetInt("threads", 1, /*min=*/0, /*max=*/4096);
}

Result<int> GetKArg(const Args& args, int fallback) {
  return args.GetInt("k", fallback, /*min=*/1,
                     /*max=*/std::numeric_limits<int>::max());
}

/// --algo selects the relevance strategy; an unrecognised word is a usage
/// error (InvalidArgument -> exit 2), validated by GetChoice so the message
/// names the flag and the vocabulary.
Result<RelevanceAlgo> GetAlgoArg(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(
      const std::string word,
      args.GetChoice("algo", "pruned", {"exhaustive", "pruned", "frontier"}));
  return ParseRelevanceAlgo(word);
}

void PrintCacheStats(const QueryBounds& bounds) {
  if (bounds.cache == nullptr) return;
  const PathMatrixCache::Stats stats = bounds.cache->stats();
  if (bounds.budget != nullptr) {
    std::printf(
        "cache: %zu entries, %zu evictions, %zu uncached; peak %zu of %zu bytes\n",
        stats.entries, stats.evictions, stats.rejected_inserts,
        stats.peak_accounted_bytes, bounds.budget->limit_bytes());
  }
  if (bounds.cache->store() != nullptr) {
    std::printf("store: %zu hits, %zu misses, %zu demotions\n",
                stats.store_hits, stats.store_misses, stats.store_demotions);
  }
}

Result<TypeId> ResolveType(const Schema& schema, const std::string& token) {
  if (token.size() == 1) {
    Result<TypeId> by_code = schema.TypeByCode(token[0]);
    if (by_code.ok()) return by_code;
  }
  return schema.TypeByName(token);
}

Status RunGenerate(const Args& args) {
  auto out = args.Get("out");
  auto dataset = args.Get("dataset");
  if (!out || !dataset) {
    return Status::InvalidArgument("generate needs --dataset acm|dblp and --out FILE");
  }
  if (*dataset == "acm") {
    AcmConfig config;
    HETESIM_ASSIGN_OR_RETURN(config.seed, args.GetUint64("seed", 7));
    HETESIM_ASSIGN_OR_RETURN(
        config.num_papers,
        args.GetInt("papers", config.num_papers, /*min=*/1));
    HETESIM_ASSIGN_OR_RETURN(
        config.num_authors,
        args.GetInt("authors", config.num_authors, /*min=*/1));
    HETESIM_ASSIGN_OR_RETURN(AcmDataset acm, GenerateAcm(config));
    HETESIM_RETURN_NOT_OK(SaveHinGraphToFile(acm.graph, *out));
    std::printf("wrote ACM-style network to %s\n%s", out->c_str(),
                acm.graph.Summary().c_str());
    return Status::OK();
  }
  if (*dataset == "dblp") {
    DblpConfig config;
    HETESIM_ASSIGN_OR_RETURN(config.seed, args.GetUint64("seed", 11));
    HETESIM_ASSIGN_OR_RETURN(
        config.num_papers,
        args.GetInt("papers", config.num_papers, /*min=*/1));
    HETESIM_ASSIGN_OR_RETURN(
        config.num_authors,
        args.GetInt("authors", config.num_authors, /*min=*/1));
    HETESIM_ASSIGN_OR_RETURN(DblpDataset dblp, GenerateDblp(config));
    HETESIM_RETURN_NOT_OK(SaveHinGraphToFile(dblp.graph, *out));
    std::printf("wrote DBLP-style network to %s\n%s", out->c_str(),
                dblp.graph.Summary().c_str());
    return Status::OK();
  }
  return Status::InvalidArgument("unknown dataset '" + *dataset + "'");
}

Status RunSummary(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  std::printf("%s", graph.Summary().c_str());
  if (args.Has("detailed")) {
    std::printf("%s", RenderGraphStats(graph, ComputeGraphStats(graph)).c_str());
  }
  return Status::OK();
}

Status RunDot(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  if (args.Has("schema")) {
    std::printf("%s", SchemaToDot(graph.schema()).c_str());
    return Status::OK();
  }
  auto type_token = args.Get("type");
  auto node_name = args.Get("node");
  if (!type_token || !node_name) {
    return Status::InvalidArgument(
        "dot needs --schema, or --type TYPE --node NAME");
  }
  HETESIM_ASSIGN_OR_RETURN(TypeId type, ResolveType(graph.schema(), *type_token));
  HETESIM_ASSIGN_OR_RETURN(Index id, graph.FindNode(type, *node_name));
  HETESIM_ASSIGN_OR_RETURN(int radius, args.GetInt("radius", 2, /*min=*/0));
  HETESIM_ASSIGN_OR_RETURN(int max_nodes,
                           args.GetInt("max-nodes", 50, /*min=*/1));
  HETESIM_ASSIGN_OR_RETURN(
      std::string dot, NeighborhoodToDot(graph, type, id, radius, max_nodes));
  std::printf("%s", dot.c_str());
  return Status::OK();
}

Status RunCluster(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  HETESIM_ASSIGN_OR_RETURN(MetaPath path, ParsePathArg(graph, args));
  if (path.SourceType() != path.TargetType()) {
    return Status::InvalidArgument(
        "cluster needs a same-typed (ideally symmetric) path");
  }
  HETESIM_ASSIGN_OR_RETURN(const int k, GetKArg(args, 4));
  HeteSimOptions options;
  HETESIM_ASSIGN_OR_RETURN(options.num_threads, GetThreadsArg(args));
  HeteSimEngine engine(graph, options);
  DenseMatrix affinity = engine.Compute(path);
  HETESIM_ASSIGN_OR_RETURN(std::vector<int> clusters,
                           SpectralClusterNormalizedCut(affinity, k));
  for (size_t i = 0; i < clusters.size(); ++i) {
    std::printf("%-24s %d\n",
                graph.NodeName(path.SourceType(), static_cast<Index>(i)).c_str(),
                clusters[i]);
  }
  return Status::OK();
}

Status RunPaths(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  auto from = args.Get("from");
  auto to = args.Get("to");
  if (!from || !to) {
    return Status::InvalidArgument("paths needs --from TYPE and --to TYPE");
  }
  HETESIM_ASSIGN_OR_RETURN(TypeId source, ResolveType(graph.schema(), *from));
  HETESIM_ASSIGN_OR_RETURN(TypeId target, ResolveType(graph.schema(), *to));
  EnumerateOptions options;
  HETESIM_ASSIGN_OR_RETURN(options.max_length,
                           args.GetInt("max-length", 4, /*min=*/1, /*max=*/32));
  options.symmetric_only = args.Has("symmetric");
  HETESIM_ASSIGN_OR_RETURN(std::vector<MetaPath> paths,
                           EnumerateMetaPaths(graph.schema(), source, target,
                                              options));
  for (const MetaPath& path : paths) {
    std::printf("%-20s %s\n", path.ToString().c_str(),
                path.ToRelationString().c_str());
  }
  std::printf("%zu paths\n", paths.size());
  return Status::OK();
}

Status RunPair(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  HETESIM_ASSIGN_OR_RETURN(MetaPath path, ParsePathArg(graph, args));
  auto source_name = args.Get("source");
  auto target_name = args.Get("target");
  if (!source_name || !target_name) {
    return Status::InvalidArgument("pair needs --source NAME and --target NAME");
  }
  HETESIM_ASSIGN_OR_RETURN(Index source,
                           graph.FindNode(path.SourceType(), *source_name));
  HETESIM_ASSIGN_OR_RETURN(Index target,
                           graph.FindNode(path.TargetType(), *target_name));
  HeteSimOptions options;
  options.normalized = !args.Has("unnormalized");
  HETESIM_ASSIGN_OR_RETURN(options.num_threads, GetThreadsArg(args));
  HETESIM_ASSIGN_OR_RETURN(options.algo, GetAlgoArg(args));
  HETESIM_ASSIGN_OR_RETURN(const QueryBounds bounds, MakeQueryBounds(args, graph));
  HeteSimEngine engine(graph, options, bounds.cache);
  HETESIM_ASSIGN_OR_RETURN(
      std::vector<double> scores,
      engine.ComputePairs(path, {{source, target}}, bounds.ctx));
  std::printf("HeteSim(%s, %s | %s) = %.6f\n", source_name->c_str(),
              target_name->c_str(), path.ToString().c_str(), scores[0]);
  PrintCacheStats(bounds);
  return Status::OK();
}

Status RunTopK(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  HETESIM_ASSIGN_OR_RETURN(MetaPath path, ParsePathArg(graph, args));
  auto source_name = args.Get("source");
  if (!source_name) return Status::InvalidArgument("topk needs --source NAME");
  HETESIM_ASSIGN_OR_RETURN(Index source,
                           graph.FindNode(path.SourceType(), *source_name));
  HETESIM_ASSIGN_OR_RETURN(const int k, GetKArg(args, 10));
  HeteSimOptions options;
  HETESIM_ASSIGN_OR_RETURN(options.algo, GetAlgoArg(args));
  HETESIM_ASSIGN_OR_RETURN(const QueryBounds bounds, MakeQueryBounds(args, graph));
  Result<TopKSearcher> searcher = TopKSearcher::Prepare(
      graph, path, options, bounds.ctx, bounds.cache.get());
  if (searcher.status().IsDeadlineExceeded()) {
    // The deadline died during the one-time path materialization: an empty
    // partial answer, reported as such rather than as a failure.
    std::printf(
        "[truncated: deadline exceeded while materializing %s; no results]\n",
        path.ToString().c_str());
    return Status::OK();
  }
  HETESIM_RETURN_NOT_OK(searcher.status());
  HETESIM_ASSIGN_OR_RETURN(TopKResult result,
                           searcher->Query(source, k, bounds.ctx));
  int rank = 1;
  for (const Scored& item : result.items) {
    std::printf("%3d. %-24s %.6f\n", rank++,
                graph.NodeName(path.TargetType(), item.id).c_str(), item.score);
  }
  std::printf("(%lld of %lld candidates examined)\n",
              static_cast<long long>(result.candidates_examined),
              static_cast<long long>(searcher->num_targets()));
  if (result.truncated) {
    std::printf(
        "[truncated: deadline exceeded after %lld of %lld middle objects; "
        "scores are partial lower bounds]\n",
        static_cast<long long>(result.middle_processed),
        static_cast<long long>(result.middle_total));
  }
  PrintCacheStats(bounds);
  return Status::OK();
}

Status RunTopKPairs(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  HETESIM_ASSIGN_OR_RETURN(MetaPath path, ParsePathArg(graph, args));
  HETESIM_ASSIGN_OR_RETURN(const int k, GetKArg(args, 10));
  HETESIM_ASSIGN_OR_RETURN(
      std::vector<ScoredPair> pairs,
      TopKPairs(graph, path, k, args.Has("exclude-diagonal")));
  int rank = 1;
  for (const ScoredPair& pair : pairs) {
    std::printf("%3d. %-20s %-20s %.6f\n", rank++,
                graph.NodeName(path.SourceType(), pair.source).c_str(),
                graph.NodeName(path.TargetType(), pair.target).c_str(),
                pair.score);
  }
  return Status::OK();
}

Status RunMatrix(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  HETESIM_ASSIGN_OR_RETURN(MetaPath path, ParsePathArg(graph, args));
  auto out = args.Get("out");
  if (!out) return Status::InvalidArgument("matrix needs --out FILE.csv");
  HeteSimOptions options;
  HETESIM_ASSIGN_OR_RETURN(options.num_threads, GetThreadsArg(args));
  HETESIM_ASSIGN_OR_RETURN(const QueryBounds bounds, MakeQueryBounds(args, graph));
  HeteSimEngine engine(graph, options, bounds.cache);
  HETESIM_ASSIGN_OR_RETURN(DenseMatrix scores, engine.Compute(path, bounds.ctx));
  std::ofstream file(*out);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + *out + "' for writing");
  }
  const TypeId source_type = path.SourceType();
  const TypeId target_type = path.TargetType();
  file << "source";
  for (Index b = 0; b < scores.cols(); ++b) {
    file << "," << graph.NodeName(target_type, b);
  }
  file << "\n";
  for (Index a = 0; a < scores.rows(); ++a) {
    file << graph.NodeName(source_type, a);
    for (Index b = 0; b < scores.cols(); ++b) file << "," << scores(a, b);
    file << "\n";
  }
  if (!file.good()) return Status::IOError("matrix write failed");
  std::printf("wrote %lld x %lld relevance matrix along %s to %s\n",
              static_cast<long long>(scores.rows()),
              static_cast<long long>(scores.cols()), path.ToString().c_str(),
              out->c_str());
  PrintCacheStats(bounds);
  return Status::OK();
}

/// The Section 4.6 offline step: compute the left/right partials of every
/// listed path and flush them into the on-disk store. Existing store
/// entries short-circuit the compute (the cache probes the store on a
/// miss), so re-running after adding one path to the list only pays for
/// the new path.
Status RunMaterialize(const Args& args) {
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadGraphArg(args));
  auto dir = args.Get("store-dir");
  if (!dir) return Status::InvalidArgument("materialize needs --store-dir DIR");
  auto specs_arg = args.Get("paths");
  if (!specs_arg || specs_arg->empty()) {
    return Status::InvalidArgument("materialize needs --paths SPEC[,SPEC...]");
  }
  HETESIM_ASSIGN_OR_RETURN(const int threads, GetThreadsArg(args));
  HETESIM_ASSIGN_OR_RETURN(std::shared_ptr<MatrixStore> store,
                           OpenStoreArg(args, graph, *dir));
  auto cache = std::make_shared<PathMatrixCache>();
  cache->AttachStore(store);
  QueryContext ctx;
  if (g_trace != nullptr) ctx = ctx.WithTrace(g_trace);
  for (size_t start = 0; start <= specs_arg->size();) {
    size_t comma = specs_arg->find(',', start);
    if (comma == std::string::npos) comma = specs_arg->size();
    if (comma > start) {
      const std::string spec = specs_arg->substr(start, comma - start);
      HETESIM_ASSIGN_OR_RETURN(MetaPath path,
                               MetaPath::Parse(graph.schema(), spec));
      HETESIM_RETURN_NOT_OK(
          cache->GetLeft(graph, path, ctx, threads).status());
      HETESIM_RETURN_NOT_OK(
          cache->GetRight(graph, path, ctx, threads).status());
      std::printf("materialized %s\n", path.ToString().c_str());
    }
    start = comma + 1;
  }
  HETESIM_RETURN_NOT_OK(cache->FlushToStore());
  const MatrixStore::Stats stats = store->stats();
  const PathMatrixCache::Stats cache_stats = cache->stats();
  std::printf(
      "store %s: %zu entries, %zu bytes on disk "
      "(%zu reused from a previous run, %zu written)\n",
      dir->c_str(), stats.entries, stats.bytes, cache_stats.store_hits,
      stats.writes);
  return Status::OK();
}

Status RunWorkload(const Args& args) {
  auto config_arg = args.Get("config");
  if (!config_arg || config_arg->empty()) {
    return Status::InvalidArgument("workload needs --config FILE[,FILE...]");
  }
  workload::RunOptions run_options;
  HETESIM_ASSIGN_OR_RETURN(
      run_options.override_queries,
      args.GetInt64("queries", 0, /*min=*/0,
                    /*max=*/std::numeric_limits<int64_t>::max()));
  HETESIM_ASSIGN_OR_RETURN(run_options.override_workers,
                           args.GetInt("workers", 0, /*min=*/0, /*max=*/4096));
  run_options.realtime = !args.Has("no-realtime");
  if (auto socket = args.Get("service-socket"); socket) {
    if (socket->empty()) {
      return Status::InvalidArgument("--service-socket needs a path");
    }
    run_options.service_socket = *socket;
  }

  std::vector<std::string> files;
  for (size_t start = 0; start <= config_arg->size();) {
    size_t comma = config_arg->find(',', start);
    if (comma == std::string::npos) comma = config_arg->size();
    if (comma > start) files.push_back(config_arg->substr(start, comma - start));
    start = comma + 1;
  }
  if (files.empty()) {
    return Status::InvalidArgument("workload needs --config FILE[,FILE...]");
  }

  std::vector<workload::ScenarioReport> reports;
  for (const std::string& file : files) {
    HETESIM_ASSIGN_OR_RETURN(workload::WorkloadConfig config,
                             workload::LoadWorkloadConfigFromFile(file));
    if (args.Has("algo")) {
      // A command-line --algo beats both the scenario-level directive and
      // any per-class overrides: the point of the flag is A/B runs of one
      // unmodified scenario file.
      HETESIM_ASSIGN_OR_RETURN(config.algo, GetAlgoArg(args));
      for (workload::QueryClassSpec& cls : config.classes) cls.algo.reset();
    }
    HETESIM_ASSIGN_OR_RETURN(std::unique_ptr<workload::WorkloadRunner> runner,
                             workload::WorkloadRunner::Create(config));
    HETESIM_ASSIGN_OR_RETURN(workload::ScenarioReport report,
                             runner->Run(run_options));
    std::printf("%s", workload::RenderScenarioSummary(report).c_str());
    reports.push_back(std::move(report));
  }
  if (auto out = args.Get("out"); out) {
    HETESIM_RETURN_NOT_OK(workload::WriteWorkloadReports(*out, reports));
    std::printf("wrote %zu scenario report(s) to %s\n", reports.size(),
                out->c_str());
  }
  return Status::OK();
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: hetesim_cli COMMAND [--options]\n"
               "commands:\n"
               "  generate --dataset acm|dblp --out FILE [--seed N] "
               "[--papers N] [--authors N]\n"
               "  summary  --graph FILE [--detailed]\n"
               "  dot      --graph FILE (--schema | --type TYPE --node NAME "
               "[--radius N] [--max-nodes N])\n"
               "  cluster  --graph FILE --path SPEC [--k N] [--threads N]\n"
               "  paths    --graph FILE --from TYPE --to TYPE "
               "[--max-length N] [--symmetric]\n"
               "  pair     --graph FILE --path SPEC --source NAME "
               "--target NAME [--unnormalized] [--threads N] "
               "[--deadline-ms N] [--max-cache-mb N] [--algo NAME]\n"
               "  topk     --graph FILE --path SPEC --source NAME [--k N] "
               "[--deadline-ms N] [--max-cache-mb N] [--algo NAME]\n"
               "  topk-pairs --graph FILE --path SPEC [--k N] "
               "[--exclude-diagonal]\n"
               "  matrix   --graph FILE --path SPEC --out FILE.csv "
               "[--threads N] [--deadline-ms N] [--max-cache-mb N]\n"
               "  materialize --graph FILE --store-dir DIR "
               "--paths SPEC[,SPEC...] "
               "[--store-codec lossless|quantized] [--threads N]\n"
               "  workload --config FILE[,FILE...] [--out FILE.json] "
               "[--queries N] [--workers N] [--no-realtime] "
               "[--service-socket PATH] [--algo NAME]\n"
               "--algo NAME picks the relevance strategy: "
               "exhaustive | pruned | frontier (default pruned)\n"
               "--store-dir DIR (pair, topk, matrix) serves cache misses "
               "from an on-disk store and demotes evictions into it; "
               "--store-codec picks the demotion encoding\n"
               "observability (any command):\n"
               "  --metrics-out=FILE  dump the metrics registry "
               "(.json -> JSON, else Prometheus text)\n"
               "  --trace-out=FILE    write the query's span tree as JSON\n");
}

/// Writes `contents` to `path`; a failed dump is reported but never turns a
/// successful command into a failing exit code.
void DumpObservability(const std::string& path, const std::string& contents) {
  std::ofstream file(path);
  if (file.is_open()) file << contents;
  if (!file.good()) {
    std::fprintf(stderr, "warning: could not write '%s'\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  Result<Args> args = Args::Parse(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  std::optional<Trace> trace;
  if (args->Has("trace-out")) {
    trace.emplace();
    g_trace = &*trace;
  }
  Status status;
  if (args->command == "generate") {
    status = RunGenerate(*args);
  } else if (args->command == "summary") {
    status = RunSummary(*args);
  } else if (args->command == "dot") {
    status = RunDot(*args);
  } else if (args->command == "cluster") {
    status = RunCluster(*args);
  } else if (args->command == "paths") {
    status = RunPaths(*args);
  } else if (args->command == "pair") {
    status = RunPair(*args);
  } else if (args->command == "topk") {
    status = RunTopK(*args);
  } else if (args->command == "topk-pairs") {
    status = RunTopKPairs(*args);
  } else if (args->command == "matrix") {
    status = RunMatrix(*args);
  } else if (args->command == "materialize") {
    status = RunMaterialize(*args);
  } else if (args->command == "workload") {
    status = RunWorkload(*args);
  } else if (args->command == "help" || args->command == "--help") {
    PrintUsage();
    return 0;
  } else {
    std::fprintf(stderr, "error: unknown command '%s'\n", args->command.c_str());
    PrintUsage();
    return 2;
  }
  if (auto metrics_out = args->Get("metrics-out"); metrics_out) {
    const bool json = metrics_out->size() >= 5 &&
                      metrics_out->compare(metrics_out->size() - 5, 5,
                                           ".json") == 0;
    const MetricsRegistry& registry = MetricsRegistry::Global();
    DumpObservability(*metrics_out, json ? registry.RenderJson()
                                         : registry.RenderPrometheus());
  }
  if (auto trace_out = args->Get("trace-out"); trace_out && trace) {
    DumpObservability(*trace_out, trace->RenderJson());
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    // Usage mistakes (bad/missing flags) exit 2, matching parse failures
    // above; genuine runtime failures (IO, compute) exit 1, so scripts can
    // tell "fix the command line" from "investigate the run".
    return status.IsInvalidArgument() ? 2 : 1;
  }
  return 0;
}
