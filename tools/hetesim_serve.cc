// hetesim_serve — the resident HeteSim query server (DESIGN.md §13).
//
// Usage:
//   hetesim_serve --graph FILE --socket PATH
//       [--workers N]            executor threads draining admitted queries (2)
//       [--queue-depth N]        admission queue capacity (64)
//       [--memory-mb N]          service memory budget, 0 = unlimited (0)
//       [--no-cache]             disable the shared path-matrix cache
//       [--store-dir DIR]        persistent tier under the cache: misses
//                                read from it, evictions demote into it,
//                                so restarts are warm (DESIGN.md §16)
//       [--store-codec NAME]     demotion encoding: lossless | quantized
//       [--tenant-rate X]        per-tenant quota, cost-seconds/second (0 = off)
//       [--tenant-burst X]       per-tenant burst allowance, cost-seconds (1.0)
//       [--truncate-slice-ms X]  degraded top-k deadline slice (10)
//       [--algo NAME]            top-k/pair strategy:
//                                exhaustive | pruned | frontier (pruned)
//       [--io-timeout-ms N]      slow-client stall guard (5000)
//       [--max-connections N]    concurrent connections (32)
//       [--metrics-out FILE]     write a Prometheus-text metrics snapshot
//                                on shutdown
//
// Prints "listening on PATH" once ready (CI waits for this line), then
// serves until SIGTERM/SIGINT, on which it stops accepting, cancels
// in-flight queries, drains, and exits 0. Usage errors exit 2; runtime
// failures exit 1.
//
// Graph files use the text format of datagen/io.h.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cli_args.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "datagen/io.h"
#include "hin/digest.h"
#include "hin/graph.h"
#include "service/server.h"
#include "service/service.h"
#include "store/store.h"

namespace hetesim {
namespace {

using cli::Args;
using service::QueryService;
using service::ServerOptions;
using service::ServiceOptions;
using service::SocketServer;

// Self-pipe: the signal handler writes one byte; the main thread blocks on
// the read end. Keeps the handler async-signal-safe (no locks, no IO).
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int /*signo*/) {
  const char byte = 1;
  // A full pipe just means a signal is already pending; dropping is fine.
  [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

Result<ServiceOptions> ServiceOptionsFromArgs(const Args& args) {
  ServiceOptions options;
  HETESIM_ASSIGN_OR_RETURN(options.admission.workers,
                           args.GetInt("workers", 2, 1, 256));
  HETESIM_ASSIGN_OR_RETURN(options.admission.queue_capacity,
                           args.GetInt("queue-depth", 64, 1, 1 << 20));
  HETESIM_ASSIGN_OR_RETURN(options.admission.tenant_rate,
                           args.GetDouble("tenant-rate", 0.0, 0.0, 1e9));
  HETESIM_ASSIGN_OR_RETURN(options.admission.tenant_burst,
                           args.GetDouble("tenant-burst", 1.0, 0.0, 1e9));
  HETESIM_ASSIGN_OR_RETURN(int64_t memory_mb,
                           args.GetInt64("memory-mb", 0, 0, 1 << 20));
  options.memory_mb = static_cast<size_t>(memory_mb);
  options.cache_enabled = !args.Has("no-cache");
  HETESIM_ASSIGN_OR_RETURN(options.truncate_slice_ms,
                           args.GetDouble("truncate-slice-ms", 10.0, 0.0, 1e6));
  HETESIM_ASSIGN_OR_RETURN(
      const std::string algo_word,
      args.GetChoice("algo", "pruned", {"exhaustive", "pruned", "frontier"}));
  HETESIM_ASSIGN_OR_RETURN(options.engine.algo, ParseRelevanceAlgo(algo_word));
  return options;
}

Result<ServerOptions> ServerOptionsFromArgs(const Args& args) {
  ServerOptions options;
  auto socket_path = args.Get("socket");
  if (!socket_path) {
    return Status::InvalidArgument("--socket PATH is required");
  }
  options.socket_path = *socket_path;
  HETESIM_ASSIGN_OR_RETURN(options.io_timeout_ms,
                           args.GetInt("io-timeout-ms", 5000, 1, 3600000));
  HETESIM_ASSIGN_OR_RETURN(options.max_connections,
                           args.GetInt("max-connections", 32, 1, 4096));
  return options;
}

[[nodiscard]] Status RunServer(const Args& args) {
  auto graph_path = args.Get("graph");
  if (!graph_path) return Status::InvalidArgument("--graph FILE is required");
  HETESIM_ASSIGN_OR_RETURN(ServiceOptions service_options,
                           ServiceOptionsFromArgs(args));
  HETESIM_ASSIGN_OR_RETURN(ServerOptions server_options,
                           ServerOptionsFromArgs(args));
  HETESIM_ASSIGN_OR_RETURN(HinGraph graph, LoadHinGraphFromFile(*graph_path));
  if (auto store_dir = args.Get("store-dir")) {
    if (store_dir->empty()) {
      return Status::InvalidArgument("--store-dir needs a path");
    }
    StoreOptions store_options;
    store_options.directory = *store_dir;
    store_options.graph_digest = GraphDigest(graph);
    HETESIM_ASSIGN_OR_RETURN(
        const std::string codec_word,
        args.GetChoice("store-codec", "lossless", {"lossless", "quantized"}));
    HETESIM_ASSIGN_OR_RETURN(store_options.codec,
                             StoreCodecFromString(codec_word));
    HETESIM_ASSIGN_OR_RETURN(std::unique_ptr<MatrixStore> store,
                             MatrixStore::Open(store_options));
    service_options.store = std::move(store);
  }

  if (pipe(g_signal_pipe) != 0) {
    return Status::IOError(std::string("pipe(): ") + strerror(errno));
  }
  struct sigaction action;
  memset(&action, 0, sizeof(action));
  action.sa_handler = HandleShutdownSignal;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
  // A client vanishing mid-write must not kill the process.
  signal(SIGPIPE, SIG_IGN);

  std::unique_ptr<QueryService> query_service =
      QueryService::Create(graph, service_options);
  HETESIM_ASSIGN_OR_RETURN(
      std::unique_ptr<SocketServer> server,
      SocketServer::Start(query_service.get(), server_options));

  printf("listening on %s\n", server_options.socket_path.c_str());
  fflush(stdout);

  // Block until a shutdown signal arrives.
  char byte = 0;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  printf("shutting down\n");
  fflush(stdout);
  server->Stop();
  query_service->Shutdown();

  if (auto metrics_out = args.Get("metrics-out")) {
    std::ofstream out(*metrics_out);
    if (out) out << MetricsRegistry::Global().RenderPrometheus();
  }
  const service::ServiceStats stats = query_service->stats();
  printf("served=%llu rejected=%llu shed=%llu degraded=%llu\n",
         static_cast<unsigned long long>(stats.served),
         static_cast<unsigned long long>(stats.admission.rejected()),
         static_cast<unsigned long long>(stats.admission.shed()),
         static_cast<unsigned long long>(stats.degraded));
  return Status::OK();
}

int Main(int argc, char** argv) {
  // The binary has exactly one job, so there is no command word on the
  // real command line; Args::Parse expects one, so inject "serve".
  std::vector<const char*> argv_with_command;
  argv_with_command.push_back(argc > 0 ? argv[0] : "hetesim_serve");
  argv_with_command.push_back("serve");
  for (int i = 1; i < argc; ++i) argv_with_command.push_back(argv[i]);
  Result<Args> args = Args::Parse(static_cast<int>(argv_with_command.size()),
                                  argv_with_command.data());
  if (!args.ok()) {
    fprintf(stderr, "error: %s\n", std::string(args.status().message()).c_str());
    return 2;
  }
  const Status status = RunServer(*args);
  if (!status.ok()) {
    fprintf(stderr, "error: %s\n", std::string(status.message()).c_str());
    return status.IsInvalidArgument() ? 2 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace hetesim

int main(int argc, char** argv) { return hetesim::Main(argc, argv); }
