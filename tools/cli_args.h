#ifndef HETESIM_TOOLS_CLI_ARGS_H_
#define HETESIM_TOOLS_CLI_ARGS_H_

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace hetesim::cli {

/// \brief Parsed command line: a command word plus `--key value` (or
/// `--key=value`, or bare `--flag`) options, with *validated* numeric
/// accessors.
///
/// The numeric getters are strict: an absent key yields the fallback, but a
/// key that is present must parse completely and sit inside the caller's
/// range, otherwise they return `InvalidArgument` naming the offending flag
/// (`--threads banana` is a usage error, not thread count 0).
struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  /// Parses `argv[1]` as the command and the rest as options. Errors on a
  /// positional token where an option was expected.
  [[nodiscard]] static Result<Args> Parse(int argc, const char* const* argv);

  std::optional<std::string> Get(const std::string& key) const {
    auto it = options.find(key);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }
  bool Has(const std::string& key) const { return options.count(key) != 0; }

  /// `--key N` as int, restricted to `[min, max]`.
  [[nodiscard]] Result<int> GetInt(
      const std::string& key, int fallback,
      int min = std::numeric_limits<int>::min(),
      int max = std::numeric_limits<int>::max()) const;

  /// `--key N` as int64, restricted to `[min, max]`.
  [[nodiscard]] Result<int64_t> GetInt64(
      const std::string& key, int64_t fallback,
      int64_t min = std::numeric_limits<int64_t>::min(),
      int64_t max = std::numeric_limits<int64_t>::max()) const;

  /// `--key N` as uint64 (rejects negatives, e.g. for seeds).
  [[nodiscard]] Result<uint64_t> GetUint64(const std::string& key,
                                           uint64_t fallback) const;

  /// `--key X` as a finite double, restricted to `[min, max]`.
  [[nodiscard]] Result<double> GetDouble(
      const std::string& key, double fallback,
      double min = std::numeric_limits<double>::lowest(),
      double max = std::numeric_limits<double>::max()) const;

  /// `--key WORD` restricted to an enumerated vocabulary (e.g.
  /// `--algo exhaustive|pruned|frontier`). An absent key yields `fallback`;
  /// a present key must match one of `allowed` exactly, otherwise
  /// `InvalidArgument` naming the flag and the choices — a usage error
  /// (exit 2) at the CLI layer.
  [[nodiscard]] Result<std::string> GetChoice(
      const std::string& key, const std::string& fallback,
      std::initializer_list<std::string_view> allowed) const;
};

}  // namespace hetesim::cli

#endif  // HETESIM_TOOLS_CLI_ARGS_H_
