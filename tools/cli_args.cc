#include "cli_args.h"

#include "common/string_util.h"

namespace hetesim::cli {
namespace {

Status BadFlag(const std::string& key, const std::string& value,
               const char* expected) {
  return Status::InvalidArgument("--" + key + ": expected " + expected +
                                 ", got '" + value + "'");
}

Status OutOfRange(const std::string& key, const std::string& value,
                  const std::string& lo, const std::string& hi) {
  return Status::InvalidArgument("--" + key + ": value " + value +
                                 " out of range [" + lo + ", " + hi + "]");
}

}  // namespace

Result<Args> Args::Parse(int argc, const char* const* argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected argument '" + token + "'");
    }
    std::string key = token.substr(2);
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      // --key=value form.
      args.options[key.substr(0, eq)] = key.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "";  // bare flag
    }
  }
  return args;
}

Result<int> Args::GetInt(const std::string& key, int fallback, int min,
                         int max) const {
  HETESIM_ASSIGN_OR_RETURN(
      int64_t wide, GetInt64(key, fallback, static_cast<int64_t>(min),
                             static_cast<int64_t>(max)));
  return static_cast<int>(wide);
}

Result<int64_t> Args::GetInt64(const std::string& key, int64_t fallback,
                               int64_t min, int64_t max) const {
  auto value = Get(key);
  if (!value) return fallback;
  Result<int64_t> parsed = ParseInt64(*value);
  if (!parsed.ok()) return BadFlag(key, *value, "an integer");
  if (*parsed < min || *parsed > max) {
    return OutOfRange(key, *value, std::to_string(min), std::to_string(max));
  }
  return *parsed;
}

Result<uint64_t> Args::GetUint64(const std::string& key,
                                 uint64_t fallback) const {
  auto value = Get(key);
  if (!value) return fallback;
  Result<uint64_t> parsed = ParseUint64(*value);
  if (!parsed.ok()) return BadFlag(key, *value, "a non-negative integer");
  return *parsed;
}

Result<double> Args::GetDouble(const std::string& key, double fallback,
                               double min, double max) const {
  auto value = Get(key);
  if (!value) return fallback;
  Result<double> parsed = ParseDouble(*value);
  if (!parsed.ok()) return BadFlag(key, *value, "a number");
  if (*parsed < min || *parsed > max) {
    return OutOfRange(key, *value, StrFormat("%g", min), StrFormat("%g", max));
  }
  return *parsed;
}

Result<std::string> Args::GetChoice(
    const std::string& key, const std::string& fallback,
    std::initializer_list<std::string_view> allowed) const {
  auto value = Get(key);
  if (!value) return fallback;
  for (std::string_view choice : allowed) {
    if (*value == choice) return *value;
  }
  std::string expected = "one of";
  const char* separator = " ";
  for (std::string_view choice : allowed) {
    expected += separator;
    expected += choice;
    separator = " | ";
  }
  return BadFlag(key, *value, expected.c_str());
}

}  // namespace hetesim::cli
