#ifndef HETESIM_STORE_STORE_H_
#define HETESIM_STORE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "matrix/sparse.h"
#include "store/codec.h"

namespace hetesim {

/// Configuration of a `MatrixStore`.
struct StoreOptions {
  std::string directory;  ///< created on first write if missing
  /// Digest of the graph the stored partials were computed from (see
  /// `GraphDigest`, hin/digest.h — computed by the caller so the store
  /// stays below the hin layer). A manifest recorded under a different
  /// digest is foreign: the store opens empty rather than serving partials
  /// of some other graph.
  uint64_t graph_digest = 0;
  StoreCodec codec = StoreCodec::kLossless;  ///< codec for NEW entries
};

/// \brief Durable second tier for materialized path matrices: a directory
/// of HPS1-encoded entries (store/codec.h) plus a text manifest recording
/// format version, graph digest, and per-entry file/codec/bytes/checksum.
///
/// This is the paper's Section 4.6 offline materialization made restart-
/// proof: `hetesim_cli materialize` fills a store ahead of time, and
/// `PathMatrixCache` demotes cold entries here instead of dropping them,
/// promoting them back (checksum-validated) on a later miss.
///
/// Durability contract — a crash never publishes a torn entry:
///  * Entry payloads are written to `<name>.tmp` and atomically renamed
///    into place; the manifest is rewritten the same way. An entry file is
///    therefore only ever referenced by a manifest written AFTER the entry
///    was fully on disk.
///  * Readers trust nothing: a missing/truncated/stale-version manifest, a
///    digest mismatch, a short or bit-flipped payload (checksum), or a
///    structurally invalid encoding all degrade to a clean miss —
///    `corrupt_entries` is incremented and the entry is dropped from the
///    index so it is never retried. No corruption mode crashes or yields a
///    wrong matrix.
///
/// Thread-safe. The index mutex is never held across file IO for payloads
/// (reads/writes happen on local copies); only the small manifest rewrite
/// is serialized.
class MatrixStore {
 public:
  /// Opens the store, reading an existing manifest if one is present. A
  /// manifest that is foreign (version/digest mismatch) or damaged yields
  /// an EMPTY store, not an error — the caller can always proceed and
  /// recompute; `stats().corrupt_entries` records that something was wrong.
  /// Only a directory that can be neither read nor created is an error.
  static Result<std::unique_ptr<MatrixStore>> Open(const StoreOptions& options);

  MatrixStore(const MatrixStore&) = delete;
  MatrixStore& operator=(const MatrixStore&) = delete;

  /// Reads, checksum-validates, and decodes the entry for `key`.
  /// `NotFound` when absent; corrupt entries are dropped (see class
  /// comment) and also reported as `NotFound`. Any other error code means
  /// the store itself misbehaved (e.g. the directory vanished).
  [[nodiscard]] Result<SparseMatrix> Get(const std::string& key)
      EXCLUDES(mutex_);

  /// Encodes and durably writes `matrix` under `key` (overwriting any
  /// previous entry), then republishes the manifest. On error the previous
  /// manifest is still in place — a failed write never corrupts the store.
  [[nodiscard]] Status Put(const std::string& key, const SparseMatrix& matrix)
      EXCLUDES(mutex_);

  /// True iff the manifest currently lists `key` (no payload IO).
  bool Contains(const std::string& key) const EXCLUDES(mutex_);

  /// How many times `Get(key)` performed an actual disk read (hit or
  /// corrupt). Lets tests assert exactly-once promotion under miss-storms.
  size_t ReadCount(const std::string& key) const EXCLUDES(mutex_);

  struct Stats {
    size_t entries = 0;          ///< keys currently listed in the manifest
    size_t hits = 0;             ///< Get calls served with a valid matrix
    size_t misses = 0;           ///< Get calls for absent keys
    size_t corrupt_entries = 0;  ///< entries dropped as damaged/foreign
    size_t writes = 0;           ///< successful Put calls
    size_t bytes = 0;            ///< payload bytes currently on disk
  };
  Stats stats() const EXCLUDES(mutex_);

  StoreCodec codec() const { return codec_; }
  const std::string& directory() const { return directory_; }

 private:
  MatrixStore(std::string directory, uint64_t graph_digest, StoreCodec codec);

  struct Entry {
    int seq = 0;            ///< payload file is `entry_<seq>.hps`
    size_t bytes = 0;       ///< payload size (manifest cross-check)
    uint64_t checksum = 0;  ///< FNV-1a of the payload bytes
  };

  /// Rewrites manifest.tmp from the current index and renames it into
  /// place. Holds `mutex_` (the manifest is small; payload IO never does).
  [[nodiscard]] Status PublishManifestLocked() REQUIRES(mutex_);

  /// Parses an existing manifest into the index; any damage empties the
  /// index and counts one corrupt entry.
  void LoadManifest() EXCLUDES(mutex_);

  const std::string directory_;
  const uint64_t graph_digest_;
  const StoreCodec codec_;

  mutable Mutex mutex_;
  std::map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  std::map<std::string, size_t> read_counts_ GUARDED_BY(mutex_);
  size_t hits_ GUARDED_BY(mutex_) = 0;
  size_t misses_ GUARDED_BY(mutex_) = 0;
  size_t corrupt_entries_ GUARDED_BY(mutex_) = 0;
  size_t writes_ GUARDED_BY(mutex_) = 0;
  size_t bytes_ GUARDED_BY(mutex_) = 0;
  int next_file_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hetesim

#endif  // HETESIM_STORE_STORE_H_
