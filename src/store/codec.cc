#include "store/codec.h"

#include <cmath>
#include <cstring>

namespace hetesim {

namespace {

constexpr char kMagic[4] = {'H', 'P', 'S', '1'};
// Same bound as matrix/serialize.cc: refuse absurd shapes from corrupt
// headers; 2^31 keeps rows * cols inside int64.
constexpr int64_t kMaxReasonableDimension = int64_t{1} << 31;
// Signed 32-bit fixed-point scale for the quantized codec.
constexpr double kQuantScale = 2147483647.0;  // 2^31 - 1

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

/// LEB128 reader over `[*pos, end)`; rejects truncation and encodings
/// longer than 10 bytes (an u64 never needs more, so an 11th continuation
/// byte is corruption, not a big number).
bool ReadVarint(const char** pos, const char* end, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < end && shift < 70) {
    const uint8_t byte = static_cast<uint8_t>(**pos);
    ++*pos;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

template <typename T>
void AppendRaw(std::string* out, T value) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

template <typename T>
bool ReadRaw(const char** pos, const char* end, T* value) {
  if (end - *pos < static_cast<ptrdiff_t>(sizeof(T))) return false;
  std::memcpy(value, *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

Result<StoreCodec> StoreCodecFromString(std::string_view name) {
  if (name == "lossless") return StoreCodec::kLossless;
  if (name == "quantized") return StoreCodec::kQuantized;
  return Status::InvalidArgument("unknown store codec '" + std::string(name) +
                                 "' (expected lossless|quantized)");
}

std::string_view StoreCodecToString(StoreCodec codec) {
  return codec == StoreCodec::kLossless ? "lossless" : "quantized";
}

uint64_t StoreChecksum(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

Status EncodeStoreEntry(const SparseMatrix& matrix, StoreCodec codec,
                        std::string* out) {
  const std::vector<Index>& row_ptr = matrix.row_ptr();
  const std::vector<Index>& col_idx = matrix.col_idx();
  const std::vector<double>& values = matrix.values();

  out->append(kMagic, sizeof(kMagic));
  out->push_back(static_cast<char>(codec));
  AppendVarint(out, static_cast<uint64_t>(matrix.rows()));
  AppendVarint(out, static_cast<uint64_t>(matrix.cols()));
  AppendVarint(out, static_cast<uint64_t>(matrix.NumNonZeros()));
  for (size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    AppendVarint(out, static_cast<uint64_t>(row_ptr[r + 1] - row_ptr[r]));
  }
  // Columns are strictly ascending within a row, so later ids are stored as
  // (delta - 1): dense rows of consecutive columns cost one byte per entry.
  for (size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    for (Index k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const uint64_t col = static_cast<uint64_t>(col_idx[static_cast<size_t>(k)]);
      if (k == row_ptr[r]) {
        AppendVarint(out, col);
      } else {
        const uint64_t prev =
            static_cast<uint64_t>(col_idx[static_cast<size_t>(k) - 1]);
        AppendVarint(out, col - prev - 1);
      }
    }
  }

  if (codec == StoreCodec::kLossless) {
    for (const double v : values) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "refusing to encode non-finite matrix value");
      }
      AppendRaw(out, v);
    }
    return Status::OK();
  }

  double scale = 0.0;
  for (const double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "refusing to encode non-finite matrix value");
    }
    scale = std::max(scale, std::fabs(v));
  }
  AppendRaw(out, scale);
  for (const double v : values) {
    const int32_t q =
        scale == 0.0
            ? 0
            : static_cast<int32_t>(std::llround(v / scale * kQuantScale));
    AppendRaw(out, q);
  }
  return Status::OK();
}

Result<SparseMatrix> DecodeStoreEntry(std::string_view bytes) {
  const char* pos = bytes.data();
  const char* end = bytes.data() + bytes.size();
  if (bytes.size() < sizeof(kMagic) + 1 ||
      std::memcmp(pos, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an HPS1 store entry");
  }
  pos += sizeof(kMagic);
  const uint8_t codec_byte = static_cast<uint8_t>(*pos++);
  if (codec_byte > static_cast<uint8_t>(StoreCodec::kQuantized)) {
    return Status::InvalidArgument("unknown store entry codec byte");
  }
  const StoreCodec codec = static_cast<StoreCodec>(codec_byte);

  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t nnz = 0;
  if (!ReadVarint(&pos, end, &rows) || !ReadVarint(&pos, end, &cols) ||
      !ReadVarint(&pos, end, &nnz)) {
    return Status::InvalidArgument("truncated store entry header");
  }
  if (rows > static_cast<uint64_t>(kMaxReasonableDimension) ||
      cols > static_cast<uint64_t>(kMaxReasonableDimension) ||
      nnz > rows * cols) {
    return Status::InvalidArgument("corrupt store entry header");
  }
  // The payload holds >= 1 byte per entry (row length + column + value all
  // varint-or-wider); an nnz beyond the remaining bytes is corruption and
  // must be rejected BEFORE the reserve calls below can attempt a huge
  // allocation.
  if (nnz > static_cast<uint64_t>(end - pos)) {
    return Status::InvalidArgument(
        "store entry header claims more entries than the payload holds");
  }

  std::vector<Index> row_ptr;
  row_ptr.reserve(static_cast<size_t>(rows) + 1);
  row_ptr.push_back(0);
  uint64_t total = 0;
  for (uint64_t r = 0; r < rows; ++r) {
    uint64_t row_nnz = 0;
    if (!ReadVarint(&pos, end, &row_nnz)) {
      return Status::InvalidArgument("truncated store entry row lengths");
    }
    total += row_nnz;
    if (total > nnz) {
      return Status::InvalidArgument("store entry row lengths exceed nnz");
    }
    row_ptr.push_back(static_cast<Index>(total));
  }
  if (total != nnz) {
    return Status::InvalidArgument("store entry row lengths do not sum to nnz");
  }

  std::vector<Index> col_idx;
  col_idx.reserve(static_cast<size_t>(nnz));
  for (uint64_t r = 0; r < rows; ++r) {
    uint64_t col = 0;
    for (Index k = row_ptr[static_cast<size_t>(r)];
         k < row_ptr[static_cast<size_t>(r) + 1]; ++k) {
      uint64_t delta = 0;
      if (!ReadVarint(&pos, end, &delta)) {
        return Status::InvalidArgument("truncated store entry columns");
      }
      col = (k == row_ptr[static_cast<size_t>(r)]) ? delta : col + delta + 1;
      if (col >= cols) {
        return Status::InvalidArgument("store entry column out of range");
      }
      col_idx.push_back(static_cast<Index>(col));
    }
  }

  std::vector<double> values;
  values.reserve(static_cast<size_t>(nnz));
  if (codec == StoreCodec::kLossless) {
    for (uint64_t k = 0; k < nnz; ++k) {
      double v = 0;
      if (!ReadRaw(&pos, end, &v)) {
        return Status::InvalidArgument("truncated store entry values");
      }
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite store entry value");
      }
      values.push_back(v);
    }
  } else {
    double scale = 0;
    if (!ReadRaw(&pos, end, &scale)) {
      return Status::InvalidArgument("truncated store entry values");
    }
    if (!std::isfinite(scale) || scale < 0) {
      return Status::InvalidArgument("corrupt store entry quantization scale");
    }
    for (uint64_t k = 0; k < nnz; ++k) {
      int32_t q = 0;
      if (!ReadRaw(&pos, end, &q)) {
        return Status::InvalidArgument("truncated store entry values");
      }
      values.push_back(static_cast<double>(q) * scale / kQuantScale);
    }
  }
  if (pos != end) {
    return Status::InvalidArgument("store entry has trailing bytes");
  }
  return SparseMatrix::FromCsr(static_cast<Index>(rows),
                               static_cast<Index>(cols), std::move(row_ptr),
                               std::move(col_idx), std::move(values));
}

}  // namespace hetesim
