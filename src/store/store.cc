#include "store/store.h"

#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace hetesim {

namespace {

/// Manifest header tokens. Bumping the format bumps `kVersion`; an old
/// process reading a new manifest (or vice versa) treats it as foreign and
/// starts empty rather than misparse it.
constexpr const char* kManifestMagic = "HETESIM-STORE";
constexpr const char* kVersion = "v1";
constexpr const char* kManifestName = "manifest.txt";

/// Process-wide store instruments (DESIGN.md §12), resolved once. The
/// demotion counter lives with the cache (core/materialize.cc), which is
/// the layer that decides to demote.
struct StoreMetrics {
  Counter& hits;
  Counter& misses;
  Counter& corrupt_entries;
  Counter& writes;
  Gauge& bytes;
};

StoreMetrics& GlobalStoreMetrics() {
  static StoreMetrics metrics{
      MetricsRegistry::Global().GetCounter("hetesim_store_hits_total"),
      MetricsRegistry::Global().GetCounter("hetesim_store_misses_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_store_corrupt_entries_total"),
      MetricsRegistry::Global().GetCounter("hetesim_store_writes_total"),
      MetricsRegistry::Global().GetGauge("hetesim_store_bytes"),
  };
  return metrics;
}

std::string HexDigest(uint64_t value) {
  return StrFormat("%016llx", static_cast<unsigned long long>(value));
}

bool ParseHex64(std::string_view text, uint64_t* value) {
  if (text.empty() || text.size() > 16) return false;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *value, 16);
  return ec == std::errc() && ptr == end;
}

/// Reads a whole file into `out`; false on open/read failure.
bool ReadFileBytes(const std::filesystem::path& path, std::string* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (file.bad()) return false;
  *out = buffer.str();
  return true;
}

/// Write-temp-then-rename: `bytes` lands at `target` atomically or not at
/// all. `tmp` must be unique to this call (same filesystem as `target`).
Status WriteFileAtomic(const std::filesystem::path& tmp,
                       const std::filesystem::path& target,
                       std::string_view bytes) {
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file.is_open()) {
      return Status::IOError("cannot open '" + tmp.string() + "' for writing");
    }
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    file.flush();
    if (!file.good()) {
      return Status::IOError("short write to '" + tmp.string() + "'");
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, target, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);  // best-effort cleanup
    return Status::IOError("cannot publish '" + target.string() +
                           "': " + ec.message());
  }
  return Status::OK();
}

}  // namespace

MatrixStore::MatrixStore(std::string directory, uint64_t graph_digest,
                         StoreCodec codec)
    : directory_(std::move(directory)),
      graph_digest_(graph_digest),
      codec_(codec) {}

Result<std::unique_ptr<MatrixStore>> MatrixStore::Open(
    const StoreOptions& options) {
  namespace fs = std::filesystem;
  if (options.directory.empty()) {
    return Status::InvalidArgument("store directory must not be empty");
  }
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return Status::IOError("cannot create store directory '" +
                           options.directory + "': " + ec.message());
  }
  // Private constructor (factory enforces the validated-open invariant),
  // so make_unique cannot reach it.
  std::unique_ptr<MatrixStore> store(
      new MatrixStore(  // hetesim-lint: allow(no-naked-new)
          options.directory, options.graph_digest, options.codec));
  store->LoadManifest();
  return store;
}

void MatrixStore::LoadManifest() {
  namespace fs = std::filesystem;
  std::ifstream manifest(fs::path(directory_) / kManifestName);
  if (!manifest.is_open()) return;  // fresh store: nothing to load

  // Any structural damage from here on makes the remainder of the manifest
  // untrusted: keep the entries parsed so far (each was fully published
  // before the manifest line referencing it) and record one corruption.
  std::map<std::string, Entry> loaded;
  size_t loaded_bytes = 0;
  int max_file_seq = -1;
  bool damaged = false;

  std::string line;
  if (!std::getline(manifest, line) ||
      line != std::string(kManifestMagic) + "\t" + kVersion) {
    damaged = true;  // stale format magic / version, or empty file
  } else if (!std::getline(manifest, line)) {
    damaged = true;
  } else {
    uint64_t digest = 0;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() != 2 || fields[0] != "digest" ||
        !ParseHex64(fields[1], &digest)) {
      damaged = true;
    } else if (digest != graph_digest_) {
      // Foreign store: partials of some other graph. Serving them would be
      // silently wrong answers, so start empty.
      damaged = true;
    }
  }

  while (!damaged && std::getline(manifest, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = Split(line, '\t');
    if (fields.size() == 2 && fields[0] == "codec") continue;  // informational
    uint64_t checksum = 0;
    const Result<uint64_t> seq =
        fields.size() >= 2 ? ParseUint64(fields[1]) : Result<uint64_t>(0);
    const Result<uint64_t> bytes =
        fields.size() >= 3 ? ParseUint64(fields[2]) : Result<uint64_t>(0);
    if (fields.size() != 5 || fields[0] != "entry" || !seq.ok() ||
        !bytes.ok() || !ParseHex64(fields[3], &checksum)) {
      damaged = true;  // torn/garbled tail: trust nothing past this line
      break;
    }
    const std::string& key = fields[4];
    max_file_seq = std::max(max_file_seq, static_cast<int>(*seq));
    loaded_bytes += static_cast<size_t>(*bytes);
    loaded[key] =
        Entry{static_cast<int>(*seq), static_cast<size_t>(*bytes), checksum};
  }

  MutexLock lock(mutex_);
  entries_ = std::move(loaded);
  bytes_ = loaded_bytes;
  next_file_ = max_file_seq + 1;
  if (damaged) {
    ++corrupt_entries_;
    if (MetricsEnabled()) GlobalStoreMetrics().corrupt_entries.Increment();
  }
  if (MetricsEnabled()) {
    GlobalStoreMetrics().bytes.Add(static_cast<int64_t>(bytes_));
  }
}

Result<SparseMatrix> MatrixStore::Get(const std::string& key) {
  Entry entry;
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      if (MetricsEnabled()) GlobalStoreMetrics().misses.Increment();
      return Status::NotFound("store has no entry for '" + key + "'");
    }
    entry = it->second;
    ++read_counts_[key];
  }

  // Payload IO happens outside the lock; the entry copy pins what we
  // expect to find on disk.
  const std::string file = StrFormat("entry_%06d.hps", entry.seq);
  std::string bytes;
  Status failure = Status::OK();
  if (HETESIM_FAULT_POINT("store.read.corrupt")) {
    failure = Status::InvalidArgument("injected: store.read.corrupt");
  } else if (!ReadFileBytes(std::filesystem::path(directory_) / file,
                            &bytes)) {
    failure = Status::IOError("cannot read store entry '" + file + "'");
  } else if (bytes.size() != entry.bytes) {
    failure = Status::InvalidArgument(
        StrFormat("store entry '%s' is %zu bytes, manifest says %zu",
                  file.c_str(), bytes.size(), entry.bytes));
  } else if (StoreChecksum(bytes) != entry.checksum) {
    failure =
        Status::InvalidArgument("store entry '" + file + "' fails its checksum");
  }
  Result<SparseMatrix> decoded =
      failure.ok() ? DecodeStoreEntry(bytes) : Result<SparseMatrix>(failure);
  MutexLock lock(mutex_);
  if (!decoded.ok()) {
    // Damaged entry: drop it from the in-memory index so it is never
    // retried, and report a plain miss — the caller recomputes. The
    // on-disk manifest is NOT rewritten here: readers of a shared (or
    // read-only, e.g. a committed corpus) store must never mutate it.
    ++corrupt_entries_;
    if (MetricsEnabled()) GlobalStoreMetrics().corrupt_entries.Increment();
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.seq == entry.seq) {
      bytes_ -= it->second.bytes;
      if (MetricsEnabled()) {
        GlobalStoreMetrics().bytes.Add(-static_cast<int64_t>(it->second.bytes));
      }
      entries_.erase(it);
    }
    return Status::NotFound("store entry for '" + key + "' is corrupt (" +
                            decoded.status().message() + ")");
  }
  ++hits_;
  if (MetricsEnabled()) GlobalStoreMetrics().hits.Increment();
  return decoded;
}

Status MatrixStore::Put(const std::string& key, const SparseMatrix& matrix) {
  if (key.find('\n') != std::string::npos ||
      key.find('\t') != std::string::npos) {
    return Status::InvalidArgument("store key contains a tab or newline");
  }
  if (HETESIM_FAULT_POINT("store.write.alloc")) {
    return Status::ResourceExhausted("injected: store.write.alloc");
  }
  std::string bytes;
  HETESIM_RETURN_NOT_OK(EncodeStoreEntry(matrix, codec_, &bytes));
  const uint64_t checksum = StoreChecksum(bytes);

  int file_seq = 0;
  {
    MutexLock lock(mutex_);
    // Overwrites reuse the key's file sequence (the rename is atomic, so a
    // reader holding the old Entry copy still sees a consistent file);
    // fresh keys claim the next one. The sequence doubles as a unique tmp
    // suffix, so concurrent Puts never collide on the temp file either.
    auto it = entries_.find(key);
    file_seq = it != entries_.end() ? it->second.seq : next_file_++;
  }
  const std::string file = StrFormat("entry_%06d.hps", file_seq);
  namespace fs = std::filesystem;
  HETESIM_RETURN_NOT_OK(WriteFileAtomic(
      fs::path(directory_) / (file + ".tmp"), fs::path(directory_) / file,
      bytes));

  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    if (MetricsEnabled()) {
      GlobalStoreMetrics().bytes.Add(-static_cast<int64_t>(it->second.bytes));
    }
  }
  entries_[key] = Entry{file_seq, bytes.size(), checksum};
  bytes_ += bytes.size();
  ++writes_;
  if (MetricsEnabled()) {
    StoreMetrics& metrics = GlobalStoreMetrics();
    metrics.writes.Increment();
    metrics.bytes.Add(static_cast<int64_t>(bytes.size()));
  }
  return PublishManifestLocked();
}

Status MatrixStore::PublishManifestLocked() {
  std::ostringstream out;
  out << kManifestMagic << "\t" << kVersion << "\n";
  out << "digest\t" << HexDigest(graph_digest_) << "\n";
  out << "codec\t" << StoreCodecToString(codec_) << "\n";
  for (const auto& [key, entry] : entries_) {
    out << "entry\t" << entry.seq << "\t" << entry.bytes << "\t"
        << HexDigest(entry.checksum) << "\t" << key << "\n";
  }
  namespace fs = std::filesystem;
  return WriteFileAtomic(fs::path(directory_) / (std::string(kManifestName) + ".tmp"),
                         fs::path(directory_) / kManifestName, out.str());
}

bool MatrixStore::Contains(const std::string& key) const {
  MutexLock lock(mutex_);
  return entries_.count(key) != 0;
}

size_t MatrixStore::ReadCount(const std::string& key) const {
  MutexLock lock(mutex_);
  auto it = read_counts_.find(key);
  return it == read_counts_.end() ? 0 : it->second;
}

MatrixStore::Stats MatrixStore::stats() const {
  MutexLock lock(mutex_);
  Stats s;
  s.entries = entries_.size();
  s.hits = hits_;
  s.misses = misses_;
  s.corrupt_entries = corrupt_entries_;
  s.writes = writes_;
  s.bytes = bytes_;
  return s;
}

}  // namespace hetesim
