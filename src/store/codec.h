#ifndef HETESIM_STORE_CODEC_H_
#define HETESIM_STORE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "matrix/sparse.h"

namespace hetesim {

/// \brief Compressed on-disk encoding of path-matrix partials (HPS1), the
/// byte format underneath `MatrixStore`.
///
/// Reachable-probability partials are sparse row-sorted CSR matrices whose
/// column ids are strictly ascending within a row — ideal for delta coding —
/// and whose values are probabilities, so a fixed-point quantization with a
/// per-matrix scale loses almost nothing. Layout (little-endian):
///
///   "HPS1" | codec u8 |
///   varint rows | varint cols | varint nnz |
///   rows x varint row_nnz |                      (row lengths, not offsets)
///   per row: varint first_col, then varint(delta - 1) per later column |
///   values:
///     lossless (0):  nnz x raw 8-byte double     (bitwise round trip)
///     quantized (1): scale f64 (max |value|), then nnz x int32 fixed point
///                    q = round(value / scale * (2^31 - 1)); max abs error
///                    scale * 4.7e-10, far inside the 1e-6 contract
///
/// Varints are LEB128 (7 bits per byte, low first), at most 10 bytes.
/// `DecodeStoreEntry` trusts nothing: magic, codec byte, dimension bounds,
/// row-length sums, column monotonicity/range, value finiteness, and exact
/// buffer consumption are all verified before a matrix is constructed, so a
/// corrupt or truncated entry is a clean `InvalidArgument`, never UB.

/// Value encoding of a store entry.
enum class StoreCodec : uint8_t {
  kLossless = 0,   ///< raw doubles; demote -> promote is bitwise
  kQuantized = 1,  ///< int32 fixed point; ~2.4x smaller values section
};

/// Parses "lossless" / "quantized".
[[nodiscard]] Result<StoreCodec> StoreCodecFromString(std::string_view name);
/// Canonical name of a codec.
std::string_view StoreCodecToString(StoreCodec codec);

/// Appends the HPS1 encoding of `matrix` to `out`.
[[nodiscard]] Status EncodeStoreEntry(const SparseMatrix& matrix,
                                      StoreCodec codec, std::string* out);

/// Decodes an HPS1 entry, validating every structural invariant.
[[nodiscard]] Result<SparseMatrix> DecodeStoreEntry(std::string_view bytes);

/// FNV-1a 64-bit checksum of `bytes`; the manifest records one per entry so
/// bit flips in a payload are detected before decoding is even attempted.
uint64_t StoreChecksum(std::string_view bytes);

}  // namespace hetesim

#endif  // HETESIM_STORE_CODEC_H_
