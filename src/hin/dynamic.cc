#include "hin/dynamic.h"

#include "common/check.h"

namespace hetesim {

DynamicHinGraph::DynamicHinGraph(HinGraph base) : snapshot_(std::move(base)) {
  pending_nodes_.resize(static_cast<size_t>(schema().NumObjectTypes()));
  pending_index_.resize(static_cast<size_t>(schema().NumObjectTypes()));
  pending_edges_.resize(static_cast<size_t>(schema().NumRelations()));
}

Result<Index> DynamicHinGraph::AddNode(TypeId type, const std::string& name) {
  if (!schema().IsValidType(type)) {
    return Status::InvalidArgument("invalid type id");
  }
  if (!name.empty()) {
    // Existing snapshot node with this name?
    Result<Index> existing = snapshot_.FindNode(type, name);
    if (existing.ok()) return existing;
    // Pending node with this name?
    auto it = pending_index_[static_cast<size_t>(type)].find(name);
    if (it != pending_index_[static_cast<size_t>(type)].end()) return it->second;
  }
  const Index id = NumNodes(type);
  pending_nodes_[static_cast<size_t>(type)].push_back(name);
  if (!name.empty()) pending_index_[static_cast<size_t>(type)].emplace(name, id);
  return id;
}

Status DynamicHinGraph::AddEdge(RelationId relation, Index src, Index dst,
                                double weight) {
  if (!schema().IsValidRelation(relation)) {
    return Status::InvalidArgument("invalid relation id");
  }
  if (weight <= 0.0) {
    return Status::InvalidArgument("edge weight must be positive");
  }
  const TypeId src_type = schema().RelationSource(relation);
  const TypeId dst_type = schema().RelationTarget(relation);
  if (src < 0 || src >= NumNodes(src_type)) {
    return Status::OutOfRange("source node id out of range");
  }
  if (dst < 0 || dst >= NumNodes(dst_type)) {
    return Status::OutOfRange("target node id out of range");
  }
  pending_edges_[static_cast<size_t>(relation)].push_back({src, dst, weight});
  ++pending_edge_count_;
  return Status::OK();
}

Index DynamicHinGraph::NumNodes(TypeId type) const {
  HETESIM_CHECK(schema().IsValidType(type));
  return snapshot_.NumNodes(type) +
         static_cast<Index>(pending_nodes_[static_cast<size_t>(type)].size());
}

Index DynamicHinGraph::PendingEdges() const { return pending_edge_count_; }

bool DynamicHinGraph::IsDirty() const {
  if (pending_edge_count_ > 0) return true;
  for (const auto& nodes : pending_nodes_) {
    if (!nodes.empty()) return true;
  }
  return false;
}

const HinGraph& DynamicHinGraph::snapshot() {
  if (IsDirty()) Compact();
  return snapshot_;
}

void DynamicHinGraph::Compact() {
  if (!IsDirty()) return;
  const Schema& old_schema = schema();
  // Extended node-name table: snapshot nodes followed by pending ones.
  std::vector<std::vector<std::string>> node_names(
      static_cast<size_t>(old_schema.NumObjectTypes()));
  for (TypeId t = 0; t < old_schema.NumObjectTypes(); ++t) {
    auto& names = node_names[static_cast<size_t>(t)];
    names.reserve(static_cast<size_t>(NumNodes(t)));
    for (Index i = 0; i < snapshot_.NumNodes(t); ++i) {
      names.push_back(snapshot_.NodeName(t, i));
    }
    for (const std::string& name : pending_nodes_[static_cast<size_t>(t)]) {
      names.push_back(name);
    }
  }
  // Rebuilt adjacency: existing entries plus pending deltas, resized to the
  // new node counts.
  std::vector<SparseMatrix> adjacency;
  adjacency.reserve(static_cast<size_t>(old_schema.NumRelations()));
  for (RelationId r = 0; r < old_schema.NumRelations(); ++r) {
    const SparseMatrix& old = snapshot_.Adjacency(r);
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<size_t>(old.NumNonZeros()) +
                     pending_edges_[static_cast<size_t>(r)].size());
    for (Index i = 0; i < old.rows(); ++i) {
      auto indices = old.RowIndices(i);
      auto values = old.RowValues(i);
      for (size_t k = 0; k < indices.size(); ++k) {
        triplets.push_back({i, indices[k], values[k]});
      }
    }
    for (const Triplet& t : pending_edges_[static_cast<size_t>(r)]) {
      triplets.push_back(t);
    }
    adjacency.push_back(SparseMatrix::FromTriplets(
        NumNodes(old_schema.RelationSource(r)), NumNodes(old_schema.RelationTarget(r)),
        std::move(triplets)));
  }
  Schema schema_copy = old_schema;
  snapshot_ = HinGraph(std::move(schema_copy), std::move(node_names),
                       std::move(adjacency));
  for (auto& nodes : pending_nodes_) nodes.clear();
  for (auto& index : pending_index_) index.clear();
  for (auto& edges : pending_edges_) edges.clear();
  pending_edge_count_ = 0;
  ++version_;
}

}  // namespace hetesim
