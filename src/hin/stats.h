#ifndef HETESIM_HIN_STATS_H_
#define HETESIM_HIN_STATS_H_

#include <string>
#include <vector>

#include "hin/graph.h"

namespace hetesim {

/// Five-number-style summary of one relation's degree distribution.
struct DegreeSummary {
  Index min = 0;
  Index max = 0;
  double mean = 0.0;
  Index median = 0;
  Index p90 = 0;
  /// Nodes with no incident edge in this relation/orientation.
  Index isolated = 0;
};

/// Structural statistics of one relation.
struct RelationStats {
  RelationId relation = -1;
  Index edges = 0;
  /// Source-side (out) and target-side (in) degree summaries.
  DegreeSummary out_degree;
  DegreeSummary in_degree;
  /// Fraction of stored entries vs the full |src| x |dst| rectangle.
  double density = 0.0;
};

/// Structural statistics of a whole network.
struct GraphStats {
  Index total_nodes = 0;
  Index total_edges = 0;
  std::vector<RelationStats> relations;  // indexed by RelationId
};

/// Computes degree and density statistics for every relation of `graph`.
/// The numbers drive dataset sanity checks (generators plant Zipf-ish
/// degrees — visible as mean >> median) and capacity planning for
/// materialization (density bounds PM product sizes).
GraphStats ComputeGraphStats(const HinGraph& graph);

/// Multi-line human-readable rendering of `stats` (relation names resolved
/// against `graph`).
std::string RenderGraphStats(const HinGraph& graph, const GraphStats& stats);

}  // namespace hetesim

#endif  // HETESIM_HIN_STATS_H_
