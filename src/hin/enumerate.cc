#include "hin/enumerate.h"

#include <algorithm>

namespace hetesim {

namespace {

/// Depth-first expansion of step sequences from `current` toward `target`.
void Expand(const Schema& schema, TypeId current, TypeId target,
            const EnumerateOptions& options, std::vector<RelationStep>& prefix,
            std::vector<MetaPath>& out) {
  if (out.size() >= options.max_paths) return;
  if (!prefix.empty() && current == target) {
    Result<MetaPath> path = MetaPath::FromSteps(schema, prefix);
    if (path.ok() && (!options.symmetric_only || path->IsSymmetric())) {
      out.push_back(*std::move(path));
    }
  }
  if (static_cast<int>(prefix.size()) >= options.max_length) return;
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    for (bool forward : {true, false}) {
      RelationStep step{r, forward};
      if (schema.StepSource(step) != current) continue;
      if (options.forbid_backtrack && !prefix.empty() &&
          step == prefix.back().Inverse()) {
        // A symmetric path reflects at its center; allow the reversal there
        // (prefix length exactly half the final length is unknowable here,
        // so we allow it whenever symmetric paths are requested).
        if (!options.symmetric_only) continue;
      }
      prefix.push_back(step);
      Expand(schema, schema.StepTarget(step), target, options, prefix, out);
      prefix.pop_back();
      if (out.size() >= options.max_paths) return;
    }
  }
}

}  // namespace

Result<std::vector<MetaPath>> EnumerateMetaPaths(const Schema& schema,
                                                 TypeId source, TypeId target,
                                                 const EnumerateOptions& options) {
  if (!schema.IsValidType(source) || !schema.IsValidType(target)) {
    return Status::InvalidArgument("enumeration endpoints must be schema types");
  }
  if (options.max_length < 1) {
    return Status::InvalidArgument("max_length must be at least 1");
  }
  std::vector<MetaPath> out;
  std::vector<RelationStep> prefix;
  Expand(schema, source, target, options, prefix, out);
  // Order by increasing length, stable within a length class (DFS emits
  // lexicographic step order already).
  std::stable_sort(out.begin(), out.end(), [](const MetaPath& a, const MetaPath& b) {
    return a.length() < b.length();
  });
  return out;
}

}  // namespace hetesim
