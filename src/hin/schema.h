#ifndef HETESIM_HIN_SCHEMA_H_
#define HETESIM_HIN_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hetesim {

/// Identifier of an object (node) type within a schema.
using TypeId = int32_t;
/// Identifier of a relation (typed edge) within a schema.
using RelationId = int32_t;

/// \brief One directed traversal step over a relation.
///
/// A relation `R: A -> B` can be walked forward (A to B) or backward
/// (B to A, i.e. along the inverse relation `R^-1` of the paper). Meta-paths
/// are sequences of `RelationStep`s.
struct RelationStep {
  RelationId relation = -1;
  bool forward = true;

  /// The step along the inverse relation.
  RelationStep Inverse() const { return {relation, !forward}; }

  friend bool operator==(const RelationStep& a, const RelationStep& b) {
    return a.relation == b.relation && a.forward == b.forward;
  }
};

/// \brief Network schema `S = (A, R)` (Definition 1): the set of object
/// types and the set of directed relations between them.
///
/// Each object type has a unique full name ("author") and a unique
/// single-character code ('A') used in compact meta-path strings such as
/// "APVC". Each relation has a unique name ("writes") plus source and target
/// types; its inverse needs no separate registration — traversal direction
/// is carried by `RelationStep::forward`.
class Schema {
 public:
  Schema() = default;

  /// Registers an object type. `code` must be unique; if 0, the first
  /// character of `name`, uppercased, is used.
  [[nodiscard]] Result<TypeId> AddObjectType(const std::string& name, char code = 0);

  /// Registers a directed relation `name: src -> dst`.
  [[nodiscard]] Result<RelationId> AddRelation(const std::string& name, TypeId src, TypeId dst);

  /// Number of registered object types.
  int32_t NumObjectTypes() const { return static_cast<int32_t>(type_names_.size()); }
  /// Number of registered relations.
  int32_t NumRelations() const { return static_cast<int32_t>(relations_.size()); }

  /// Full name of a type.
  const std::string& TypeName(TypeId type) const;
  /// Single-character code of a type.
  char TypeCode(TypeId type) const;
  /// Looks up a type by full name.
  [[nodiscard]] Result<TypeId> TypeByName(const std::string& name) const;
  /// Looks up a type by single-character code.
  [[nodiscard]] Result<TypeId> TypeByCode(char code) const;

  /// Name of a relation.
  const std::string& RelationName(RelationId relation) const;
  /// Source type of a relation (the `R.S` of the paper).
  TypeId RelationSource(RelationId relation) const;
  /// Target type of a relation (the `R.T` of the paper).
  TypeId RelationTarget(RelationId relation) const;
  /// Looks up a relation by name.
  [[nodiscard]] Result<RelationId> RelationByName(const std::string& name) const;

  /// All steps leading from `src` to `dst`: forward relations `src -> dst`
  /// and backward traversals of relations `dst -> src`.
  std::vector<RelationStep> StepsBetween(TypeId src, TypeId dst) const;

  /// The type a step starts from.
  TypeId StepSource(const RelationStep& step) const;
  /// The type a step ends at.
  TypeId StepTarget(const RelationStep& step) const;
  /// Human-readable rendering of a step, e.g. "writes" or "~writes".
  std::string StepToString(const RelationStep& step) const;

  /// True iff `type` is a valid type id.
  bool IsValidType(TypeId type) const {
    return type >= 0 && type < NumObjectTypes();
  }
  /// True iff `relation` is a valid relation id.
  bool IsValidRelation(RelationId relation) const {
    return relation >= 0 && relation < NumRelations();
  }

 private:
  struct Relation {
    std::string name;
    TypeId src;
    TypeId dst;
  };

  std::vector<std::string> type_names_;
  std::vector<char> type_codes_;
  std::unordered_map<std::string, TypeId> type_by_name_;
  std::unordered_map<char, TypeId> type_by_code_;

  std::vector<Relation> relations_;
  std::unordered_map<std::string, RelationId> relation_by_name_;
};

}  // namespace hetesim

#endif  // HETESIM_HIN_SCHEMA_H_
