#ifndef HETESIM_HIN_DOT_H_
#define HETESIM_HIN_DOT_H_

#include <string>

#include "common/result.h"
#include "hin/graph.h"

namespace hetesim {

/// \brief Graphviz DOT exports for visual inspection: the network schema
/// (one node per object type, one labeled edge per relation — the Fig. 3
/// view) and bounded instance neighborhoods.

/// DOT rendering of `schema` (a directed graph of types).
std::string SchemaToDot(const Schema& schema);

/// DOT rendering of the `radius`-hop neighborhood of node `id` of `type`
/// (edges traversed in both orientations), capped at `max_nodes` nodes.
/// Node labels are "<type code>:<name or id>". Errors if the seed node is
/// invalid or the limits are non-positive.
[[nodiscard]] Result<std::string> NeighborhoodToDot(const HinGraph& graph, TypeId type, Index id,
                                      int radius = 2, int max_nodes = 50);

}  // namespace hetesim

#endif  // HETESIM_HIN_DOT_H_
