#ifndef HETESIM_HIN_DIGEST_H_
#define HETESIM_HIN_DIGEST_H_

#include <cstdint>

#include "hin/graph.h"

namespace hetesim {

/// Structural digest of a graph: an FNV-1a fold of the schema (type names,
/// codes, relation names and endpoints) and every relation's adjacency CSR
/// arrays, values included. Two graphs share a digest exactly when every
/// path matrix computed from them is identical, which is the validity
/// condition for reusing a `MatrixStore` (store/store.h): a store opened
/// under a different digest would serve partials of some other graph as
/// silently wrong answers. Node names are deliberately excluded — renaming
/// nodes changes no matrix. O(edges); computed once per store open.
uint64_t GraphDigest(const HinGraph& graph);

}  // namespace hetesim

#endif  // HETESIM_HIN_DIGEST_H_
