#include "hin/stats.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace hetesim {

namespace {

DegreeSummary Summarize(std::vector<Index> degrees) {
  DegreeSummary summary;
  if (degrees.empty()) return summary;
  std::sort(degrees.begin(), degrees.end());
  summary.min = degrees.front();
  summary.max = degrees.back();
  double total = 0.0;
  for (Index d : degrees) {
    total += static_cast<double>(d);
    if (d == 0) ++summary.isolated;
  }
  summary.mean = total / static_cast<double>(degrees.size());
  summary.median = degrees[degrees.size() / 2];
  summary.p90 = degrees[degrees.size() * 9 / 10];
  return summary;
}

std::vector<Index> RowDegrees(const SparseMatrix& m) {
  std::vector<Index> degrees(static_cast<size_t>(m.rows()));
  for (Index r = 0; r < m.rows(); ++r) degrees[static_cast<size_t>(r)] = m.RowNnz(r);
  return degrees;
}

}  // namespace

GraphStats ComputeGraphStats(const HinGraph& graph) {
  GraphStats stats;
  stats.total_nodes = graph.TotalNodes();
  stats.total_edges = graph.TotalEdges();
  const Schema& schema = graph.schema();
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    const SparseMatrix& w = graph.Adjacency(r);
    RelationStats relation;
    relation.relation = r;
    relation.edges = w.NumNonZeros();
    relation.out_degree = Summarize(RowDegrees(w));
    relation.in_degree = Summarize(RowDegrees(graph.AdjacencyTranspose(r)));
    relation.density = w.Density();
    stats.relations.push_back(relation);
  }
  return stats;
}

std::string RenderGraphStats(const HinGraph& graph, const GraphStats& stats) {
  const Schema& schema = graph.schema();
  std::ostringstream out;
  out << "nodes: " << stats.total_nodes << ", edges: " << stats.total_edges
      << "\n";
  for (const RelationStats& relation : stats.relations) {
    out << StrFormat(
        "%-16s %8lld edges, density %.5f\n",
        schema.RelationName(relation.relation).c_str(),
        static_cast<long long>(relation.edges), relation.density);
    auto render_side = [&out](const char* label, const DegreeSummary& s) {
      out << StrFormat(
          "  %-4s degree: min %lld / median %lld / mean %.2f / p90 %lld / "
          "max %lld, isolated %lld\n",
          label, static_cast<long long>(s.min), static_cast<long long>(s.median),
          s.mean, static_cast<long long>(s.p90), static_cast<long long>(s.max),
          static_cast<long long>(s.isolated));
    };
    render_side("out", relation.out_degree);
    render_side("in", relation.in_degree);
  }
  return out.str();
}

}  // namespace hetesim
