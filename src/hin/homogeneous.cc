#include "hin/homogeneous.h"

namespace hetesim {

HomogeneousView BuildHomogeneousView(const HinGraph& graph) {
  const Schema& schema = graph.schema();
  HomogeneousView view;
  view.type_offset.resize(static_cast<size_t>(schema.NumObjectTypes()) + 1, 0);
  for (TypeId t = 0; t < schema.NumObjectTypes(); ++t) {
    view.type_offset[static_cast<size_t>(t) + 1] =
        view.type_offset[static_cast<size_t>(t)] + graph.NumNodes(t);
  }
  const Index total = view.type_offset.back();
  std::vector<Triplet> triplets;
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    const TypeId src_type = schema.RelationSource(r);
    const TypeId dst_type = schema.RelationTarget(r);
    const SparseMatrix& w = graph.Adjacency(r);
    for (Index i = 0; i < w.rows(); ++i) {
      auto indices = w.RowIndices(i);
      auto values = w.RowValues(i);
      for (size_t k = 0; k < indices.size(); ++k) {
        const Index a = view.GlobalId(src_type, i);
        const Index b = view.GlobalId(dst_type, indices[k]);
        triplets.push_back({a, b, values[k]});
        triplets.push_back({b, a, values[k]});
      }
    }
  }
  view.adjacency = SparseMatrix::FromTriplets(total, total, std::move(triplets));
  return view;
}

}  // namespace hetesim
