#include "hin/schema.h"

#include <cctype>

#include "common/check.h"
#include "common/string_util.h"

namespace hetesim {

Result<TypeId> Schema::AddObjectType(const std::string& name, char code) {
  if (name.empty()) {
    return Status::InvalidArgument("object type name must be non-empty");
  }
  if (type_by_name_.count(name) != 0) {
    return Status::AlreadyExists("object type '" + name + "' already registered");
  }
  if (code == 0) {
    code = static_cast<char>(std::toupper(static_cast<unsigned char>(name[0])));
  }
  if (type_by_code_.count(code) != 0) {
    return Status::AlreadyExists(
        StrFormat("type code '%c' already used by '%s'; pass an explicit code",
                  code, TypeName(type_by_code_.at(code)).c_str()));
  }
  const TypeId id = static_cast<TypeId>(type_names_.size());
  type_names_.push_back(name);
  type_codes_.push_back(code);
  type_by_name_.emplace(name, id);
  type_by_code_.emplace(code, id);
  return id;
}

Result<RelationId> Schema::AddRelation(const std::string& name, TypeId src, TypeId dst) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (!IsValidType(src) || !IsValidType(dst)) {
    return Status::InvalidArgument("relation '" + name + "' references unknown type");
  }
  if (relation_by_name_.count(name) != 0) {
    return Status::AlreadyExists("relation '" + name + "' already registered");
  }
  const RelationId id = static_cast<RelationId>(relations_.size());
  relations_.push_back({name, src, dst});
  relation_by_name_.emplace(name, id);
  return id;
}

const std::string& Schema::TypeName(TypeId type) const {
  HETESIM_CHECK(IsValidType(type)) << "type id" << type;
  return type_names_[static_cast<size_t>(type)];
}

char Schema::TypeCode(TypeId type) const {
  HETESIM_CHECK(IsValidType(type)) << "type id" << type;
  return type_codes_[static_cast<size_t>(type)];
}

Result<TypeId> Schema::TypeByName(const std::string& name) const {
  auto it = type_by_name_.find(name);
  if (it == type_by_name_.end()) {
    return Status::NotFound("no object type named '" + name + "'");
  }
  return it->second;
}

Result<TypeId> Schema::TypeByCode(char code) const {
  auto it = type_by_code_.find(code);
  if (it == type_by_code_.end()) {
    return Status::NotFound(StrFormat("no object type with code '%c'", code));
  }
  return it->second;
}

const std::string& Schema::RelationName(RelationId relation) const {
  HETESIM_CHECK(IsValidRelation(relation)) << "relation id" << relation;
  return relations_[static_cast<size_t>(relation)].name;
}

TypeId Schema::RelationSource(RelationId relation) const {
  HETESIM_CHECK(IsValidRelation(relation)) << "relation id" << relation;
  return relations_[static_cast<size_t>(relation)].src;
}

TypeId Schema::RelationTarget(RelationId relation) const {
  HETESIM_CHECK(IsValidRelation(relation)) << "relation id" << relation;
  return relations_[static_cast<size_t>(relation)].dst;
}

Result<RelationId> Schema::RelationByName(const std::string& name) const {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return it->second;
}

std::vector<RelationStep> Schema::StepsBetween(TypeId src, TypeId dst) const {
  std::vector<RelationStep> steps;
  for (RelationId r = 0; r < NumRelations(); ++r) {
    const Relation& rel = relations_[static_cast<size_t>(r)];
    if (rel.src == src && rel.dst == dst) steps.push_back({r, /*forward=*/true});
    if (rel.src == dst && rel.dst == src) steps.push_back({r, /*forward=*/false});
  }
  return steps;
}

TypeId Schema::StepSource(const RelationStep& step) const {
  return step.forward ? RelationSource(step.relation) : RelationTarget(step.relation);
}

TypeId Schema::StepTarget(const RelationStep& step) const {
  return step.forward ? RelationTarget(step.relation) : RelationSource(step.relation);
}

std::string Schema::StepToString(const RelationStep& step) const {
  return step.forward ? RelationName(step.relation) : "~" + RelationName(step.relation);
}

}  // namespace hetesim
