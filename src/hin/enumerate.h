#ifndef HETESIM_HIN_ENUMERATE_H_
#define HETESIM_HIN_ENUMERATE_H_

#include <vector>

#include "common/result.h"
#include "hin/metapath.h"
#include "hin/schema.h"

namespace hetesim {

/// Options for meta-path enumeration.
struct EnumerateOptions {
  /// Maximum number of relations in a path (inclusive).
  int max_length = 4;
  /// Keep only symmetric paths (`P == P^-1`); useful for PathSim-style
  /// tasks and clustering, which require symmetric paths.
  bool symmetric_only = false;
  /// Forbid immediately undoing a step (e.g. `writes, ~writes` as a prefix
  /// of a longer path). Symmetric paths necessarily violate this at their
  /// center, so the check exempts the middle reflection when
  /// `symmetric_only` is set.
  bool forbid_backtrack = false;
  /// Safety cap on the number of returned paths.
  size_t max_paths = 10000;
};

/// \brief Enumerates every meta-path from `source` to `target` over
/// `schema` with length in `[1, max_length]`, in order of increasing
/// length (ties: lexicographic step order).
///
/// This is the search space for path selection (Section 5.1 of the paper:
/// "the user can try multiple relevance paths" / "supervised learning can
/// be used to automatically select relevance paths"); feed the result to
/// `LearnPathWeights` (learn/path_weights.h) to weight them from labels.
///
/// Errors on invalid types or a non-positive `max_length`.
[[nodiscard]] Result<std::vector<MetaPath>> EnumerateMetaPaths(const Schema& schema,
                                                 TypeId source, TypeId target,
                                                 const EnumerateOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_HIN_ENUMERATE_H_
