#include "hin/dot.h"

#include <deque>
#include <set>
#include <sstream>

#include "common/result.h"
#include "common/string_util.h"

namespace hetesim {

namespace {

/// Escapes double quotes for DOT string literals.
std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string NodeLabel(const HinGraph& graph, TypeId type, Index id) {
  const std::string& name = graph.NodeName(type, id);
  if (!name.empty()) {
    return StrFormat("%c:%s", graph.schema().TypeCode(type), Escape(name).c_str());
  }
  return StrFormat("%c:%lld", graph.schema().TypeCode(type),
                   static_cast<long long>(id));
}

std::string NodeId(TypeId type, Index id) {
  return StrFormat("n_%d_%lld", type, static_cast<long long>(id));
}

}  // namespace

std::string SchemaToDot(const Schema& schema) {
  std::ostringstream out;
  out << "digraph schema {\n  rankdir=LR;\n  node [shape=box];\n";
  for (TypeId t = 0; t < schema.NumObjectTypes(); ++t) {
    out << "  t" << t << " [label=\"" << Escape(schema.TypeName(t)) << " ("
        << schema.TypeCode(t) << ")\"];\n";
  }
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    out << "  t" << schema.RelationSource(r) << " -> t" << schema.RelationTarget(r)
        << " [label=\"" << Escape(schema.RelationName(r)) << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

Result<std::string> NeighborhoodToDot(const HinGraph& graph, TypeId type, Index id,
                                      int radius, int max_nodes) {
  const Schema& schema = graph.schema();
  if (!schema.IsValidType(type) || id < 0 || id >= graph.NumNodes(type)) {
    return Status::OutOfRange("seed node out of range");
  }
  if (radius < 0 || max_nodes < 1) {
    return Status::InvalidArgument("radius/max_nodes must be positive");
  }

  struct Visit {
    TypeId type;
    Index id;
    int depth;
  };
  std::set<std::pair<TypeId, Index>> seen = {{type, id}};
  std::deque<Visit> frontier = {{type, id, 0}};
  std::ostringstream edges;
  std::set<std::string> edge_lines;  // dedupe both orientations
  while (!frontier.empty() && static_cast<int>(seen.size()) < max_nodes) {
    Visit current = frontier.front();
    frontier.pop_front();
    if (current.depth >= radius) continue;
    for (RelationId r = 0; r < schema.NumRelations(); ++r) {
      for (bool forward : {true, false}) {
        RelationStep step{r, forward};
        if (schema.StepSource(step) != current.type) continue;
        const SparseMatrix& adjacency = graph.StepAdjacency(step);
        const TypeId next_type = schema.StepTarget(step);
        for (Index next : adjacency.RowIndices(current.id)) {
          // Render the edge in the relation's canonical direction.
          const std::string from =
              forward ? NodeId(current.type, current.id) : NodeId(next_type, next);
          const std::string to =
              forward ? NodeId(next_type, next) : NodeId(current.type, current.id);
          if (seen.count({next_type, next}) == 0) {
            if (static_cast<int>(seen.size()) >= max_nodes) break;
            seen.insert({next_type, next});
            frontier.push_back({next_type, next, current.depth + 1});
          }
          if (seen.count({next_type, next}) != 0) {
            edge_lines.insert(StrFormat("  %s -> %s [label=\"%s\"];\n",
                                        from.c_str(), to.c_str(),
                                        Escape(schema.RelationName(r)).c_str()));
          }
        }
      }
    }
  }

  std::ostringstream out;
  out << "digraph neighborhood {\n";
  for (const auto& [node_type, node_id] : seen) {
    out << "  " << NodeId(node_type, node_id) << " [label=\""
        << NodeLabel(graph, node_type, node_id) << "\"];\n";
  }
  for (const std::string& line : edge_lines) out << line;
  out << "}\n";
  return out.str();
}

}  // namespace hetesim
