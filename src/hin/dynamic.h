#ifndef HETESIM_HIN_DYNAMIC_H_
#define HETESIM_HIN_DYNAMIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "hin/graph.h"

namespace hetesim {

/// \brief A mutable heterogeneous network: an immutable `HinGraph`
/// snapshot plus a buffered delta of new nodes and edges.
///
/// Production bibliographic networks grow continuously (new papers,
/// authors, citations); `DynamicHinGraph` supports that without giving up
/// the immutable, cache-friendly snapshot the query engines are built on:
///
///  * mutations (`AddNode`, `AddEdge`) buffer into a delta in O(1);
///  * `snapshot()` returns the current immutable graph, compacting the
///    delta into a fresh snapshot first if one is pending;
///  * `version()` increments on every compaction, so query-side caches
///    (e.g. `PathMatrixCache`) know when their materialized matrices are
///    stale — one cache per version.
///
/// The schema is fixed at construction (types and relations cannot be
/// added after the fact); only objects and links grow, which matches the
/// paper's setting where the network schema is a design-time artifact.
class DynamicHinGraph {
 public:
  /// Starts from an existing snapshot.
  explicit DynamicHinGraph(HinGraph base);

  DynamicHinGraph(const DynamicHinGraph&) = delete;
  DynamicHinGraph& operator=(const DynamicHinGraph&) = delete;
  DynamicHinGraph(DynamicHinGraph&&) noexcept = default;
  DynamicHinGraph& operator=(DynamicHinGraph&&) noexcept = default;

  /// The schema (never changes).
  const Schema& schema() const { return snapshot_.schema(); }

  /// Adds a node of `type`; returns its id (stable across compactions).
  /// A non-empty `name` that already exists returns the existing id.
  [[nodiscard]] Result<Index> AddNode(TypeId type, const std::string& name = "");

  /// Buffers a weighted edge; endpoints may be snapshot nodes or nodes
  /// added since. Duplicate edges sum their weights at compaction.
  [[nodiscard]] Status AddEdge(RelationId relation, Index src, Index dst, double weight = 1.0);

  /// Number of nodes of `type`, including pending additions.
  Index NumNodes(TypeId type) const;

  /// Number of buffered, not-yet-compacted edges.
  Index PendingEdges() const;

  /// True iff mutations are buffered since the last compaction.
  bool IsDirty() const;

  /// Current snapshot; compacts first when dirty. The returned reference
  /// designates a member that is *replaced in place* on compaction, so a
  /// long-lived reference observes future compactions — pair each
  /// compaction version with its own `PathMatrixCache`, and do not mutate
  /// concurrently with queries.
  const HinGraph& snapshot();

  /// Forces compaction now (no-op when clean).
  void Compact();

  /// Monotonic snapshot version; bumps on every compaction.
  uint64_t version() const { return version_; }

 private:
  HinGraph snapshot_;
  uint64_t version_ = 0;
  // Pending node names per type (appended after the snapshot's nodes).
  std::vector<std::vector<std::string>> pending_nodes_;
  std::vector<std::unordered_map<std::string, Index>> pending_index_;
  // Pending edges per relation.
  std::vector<std::vector<Triplet>> pending_edges_;
  Index pending_edge_count_ = 0;
};

}  // namespace hetesim

#endif  // HETESIM_HIN_DYNAMIC_H_
