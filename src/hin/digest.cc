#include "hin/digest.h"

#include <cstring>

namespace hetesim {

namespace {

/// Incremental FNV-1a 64-bit. Length-prefixing every variable-size field
/// keeps the fold injective over field boundaries ("ab","c" != "a","bc").
class Fnv1a {
 public:
  void Bytes(const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void U64(uint64_t value) { Bytes(&value, sizeof(value)); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(T));
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

}  // namespace

uint64_t GraphDigest(const HinGraph& graph) {
  const Schema& schema = graph.schema();
  Fnv1a fold;
  fold.U64(static_cast<uint64_t>(schema.NumObjectTypes()));
  for (TypeId t = 0; t < schema.NumObjectTypes(); ++t) {
    fold.Str(schema.TypeName(t));
    fold.U64(static_cast<uint64_t>(schema.TypeCode(t)));
    fold.U64(static_cast<uint64_t>(graph.NumNodes(t)));
  }
  fold.U64(static_cast<uint64_t>(schema.NumRelations()));
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    fold.Str(schema.RelationName(r));
    fold.U64(static_cast<uint64_t>(schema.RelationSource(r)));
    fold.U64(static_cast<uint64_t>(schema.RelationTarget(r)));
    const SparseMatrix& adjacency = graph.Adjacency(r);
    fold.U64(static_cast<uint64_t>(adjacency.rows()));
    fold.U64(static_cast<uint64_t>(adjacency.cols()));
    fold.Vec(adjacency.row_ptr());
    fold.Vec(adjacency.col_idx());
    fold.Vec(adjacency.values());
  }
  return fold.value();
}

}  // namespace hetesim
