#include "hin/graph.h"

#include <sstream>

#include "common/check.h"

namespace hetesim {

namespace {
const std::string& EmptyName() {
  // Leaked singleton: immune to static destruction order.
  static const std::string* const kEmpty = new std::string();  // hetesim-lint: allow(no-naked-new)
  return *kEmpty;
}
}  // namespace

HinGraph::HinGraph(Schema schema, std::vector<std::vector<std::string>> node_names,
                   std::vector<SparseMatrix> adjacency)
    : schema_(std::move(schema)),
      node_names_(std::move(node_names)),
      adjacency_(std::move(adjacency)) {
  HETESIM_CHECK_EQ(node_names_.size(),
                   static_cast<size_t>(schema_.NumObjectTypes()));
  HETESIM_CHECK_EQ(adjacency_.size(), static_cast<size_t>(schema_.NumRelations()));
  for (RelationId r = 0; r < schema_.NumRelations(); ++r) {
    const SparseMatrix& w = adjacency_[static_cast<size_t>(r)];
    HETESIM_CHECK_EQ(w.rows(), NumNodes(schema_.RelationSource(r)))
        << "relation" << schema_.RelationName(r);
    HETESIM_CHECK_EQ(w.cols(), NumNodes(schema_.RelationTarget(r)))
        << "relation" << schema_.RelationName(r);
    adjacency_transpose_.push_back(w.Transpose());
  }
  node_index_.resize(node_names_.size());
  for (size_t t = 0; t < node_names_.size(); ++t) {
    for (size_t i = 0; i < node_names_[t].size(); ++i) {
      const std::string& name = node_names_[t][i];
      if (!name.empty()) node_index_[t].emplace(name, static_cast<Index>(i));
    }
  }
}

Index HinGraph::NumNodes(TypeId type) const {
  HETESIM_CHECK(schema_.IsValidType(type));
  return static_cast<Index>(node_names_[static_cast<size_t>(type)].size());
}

Index HinGraph::TotalNodes() const {
  Index total = 0;
  for (TypeId t = 0; t < schema_.NumObjectTypes(); ++t) total += NumNodes(t);
  return total;
}

Index HinGraph::TotalEdges() const {
  Index total = 0;
  for (const SparseMatrix& w : adjacency_) total += w.NumNonZeros();
  return total;
}

const std::string& HinGraph::NodeName(TypeId type, Index id) const {
  HETESIM_CHECK(schema_.IsValidType(type));
  if (id < 0 || id >= NumNodes(type)) return EmptyName();
  return node_names_[static_cast<size_t>(type)][static_cast<size_t>(id)];
}

Result<Index> HinGraph::FindNode(TypeId type, const std::string& name) const {
  if (!schema_.IsValidType(type)) {
    return Status::InvalidArgument("invalid type id");
  }
  const auto& index = node_index_[static_cast<size_t>(type)];
  auto it = index.find(name);
  if (it == index.end()) {
    return Status::NotFound("no node '" + name + "' of type '" +
                            schema_.TypeName(type) + "'");
  }
  return it->second;
}

const SparseMatrix& HinGraph::Adjacency(RelationId relation) const {
  HETESIM_CHECK(schema_.IsValidRelation(relation));
  return adjacency_[static_cast<size_t>(relation)];
}

const SparseMatrix& HinGraph::AdjacencyTranspose(RelationId relation) const {
  HETESIM_CHECK(schema_.IsValidRelation(relation));
  return adjacency_transpose_[static_cast<size_t>(relation)];
}

const SparseMatrix& HinGraph::StepAdjacency(const RelationStep& step) const {
  return step.forward ? Adjacency(step.relation) : AdjacencyTranspose(step.relation);
}

SparseMatrix HinGraph::StepTransition(const RelationStep& step) const {
  return StepAdjacency(step).RowNormalized();
}

Index HinGraph::OutDegree(RelationId relation, Index id) const {
  return Adjacency(relation).RowNnz(id);
}

Index HinGraph::InDegree(RelationId relation, Index id) const {
  return AdjacencyTranspose(relation).RowNnz(id);
}

std::string HinGraph::Summary() const {
  std::ostringstream out;
  out << "HinGraph: " << TotalNodes() << " nodes, " << TotalEdges() << " edges\n";
  for (TypeId t = 0; t < schema_.NumObjectTypes(); ++t) {
    out << "  type " << schema_.TypeCode(t) << " (" << schema_.TypeName(t)
        << "): " << NumNodes(t) << " nodes\n";
  }
  for (RelationId r = 0; r < schema_.NumRelations(); ++r) {
    out << "  relation " << schema_.RelationName(r) << ": "
        << schema_.TypeName(schema_.RelationSource(r)) << " -> "
        << schema_.TypeName(schema_.RelationTarget(r)) << ", "
        << Adjacency(r).NumNonZeros() << " edges\n";
  }
  return out.str();
}

}  // namespace hetesim
