#include "hin/metapath.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace hetesim {

namespace {

/// Resolves a list of type tokens ("A", "author") to type ids.
Result<std::vector<TypeId>> ResolveTypes(const Schema& schema,
                                         const std::vector<std::string>& tokens) {
  std::vector<TypeId> types;
  types.reserve(tokens.size());
  for (const std::string& token : tokens) {
    if (token.size() == 1) {
      Result<TypeId> by_code = schema.TypeByCode(token[0]);
      if (by_code.ok()) {
        types.push_back(*by_code);
        continue;
      }
    }
    Result<TypeId> by_name = schema.TypeByName(token);
    if (!by_name.ok()) {
      return Status::NotFound("meta-path type '" + token + "' not in schema");
    }
    types.push_back(*by_name);
  }
  return types;
}

/// Converts a validated type sequence into steps, requiring uniqueness of
/// the connecting relation between each consecutive pair.
Result<std::vector<RelationStep>> TypesToSteps(const Schema& schema,
                                               const std::vector<TypeId>& types) {
  std::vector<RelationStep> steps;
  steps.reserve(types.size() - 1);
  for (size_t i = 0; i + 1 < types.size(); ++i) {
    std::vector<RelationStep> candidates = schema.StepsBetween(types[i], types[i + 1]);
    if (candidates.empty()) {
      return Status::InvalidArgument(StrFormat(
          "no relation connects '%s' to '%s'",
          schema.TypeName(types[i]).c_str(), schema.TypeName(types[i + 1]).c_str()));
    }
    if (candidates.size() > 1) {
      std::vector<std::string> names;
      for (const RelationStep& s : candidates) names.push_back(schema.StepToString(s));
      return Status::InvalidArgument(StrFormat(
          "multiple relations connect '%s' to '%s' (%s); use "
          "MetaPath::FromRelations to disambiguate",
          schema.TypeName(types[i]).c_str(), schema.TypeName(types[i + 1]).c_str(),
          Join(names, ", ").c_str()));
    }
    steps.push_back(candidates[0]);
  }
  return steps;
}

}  // namespace

Result<MetaPath> MetaPath::Parse(const Schema& schema, std::string_view spec) {
  std::string_view trimmed = Trim(spec);
  if (trimmed.empty()) {
    return Status::InvalidArgument("meta-path specification is empty");
  }
  std::vector<std::string> tokens;
  if (trimmed.find('-') != std::string_view::npos) {
    tokens = SplitSkipEmpty(trimmed, '-');
  } else {
    // Compact code form: each character is one type code.
    for (char c : trimmed) tokens.emplace_back(1, c);
  }
  if (tokens.size() < 2) {
    return Status::InvalidArgument("meta-path must contain at least two types: '" +
                                   std::string(trimmed) + "'");
  }
  HETESIM_ASSIGN_OR_RETURN(std::vector<TypeId> types, ResolveTypes(schema, tokens));
  HETESIM_ASSIGN_OR_RETURN(std::vector<RelationStep> steps,
                           TypesToSteps(schema, types));
  return MetaPath(&schema, std::move(steps));
}

Result<MetaPath> MetaPath::FromRelations(const Schema& schema,
                                         const std::vector<std::string>& relations) {
  if (relations.empty()) {
    return Status::InvalidArgument("meta-path needs at least one relation");
  }
  std::vector<RelationStep> steps;
  steps.reserve(relations.size());
  for (const std::string& spec : relations) {
    const bool inverse = StartsWith(spec, "~");
    const std::string name = inverse ? spec.substr(1) : spec;
    HETESIM_ASSIGN_OR_RETURN(RelationId rel, schema.RelationByName(name));
    steps.push_back({rel, !inverse});
  }
  return FromSteps(schema, std::move(steps));
}

Result<MetaPath> MetaPath::FromSteps(const Schema& schema,
                                     std::vector<RelationStep> steps) {
  if (steps.empty()) {
    return Status::InvalidArgument("meta-path needs at least one step");
  }
  for (const RelationStep& step : steps) {
    if (!schema.IsValidRelation(step.relation)) {
      return Status::InvalidArgument("meta-path step references unknown relation");
    }
  }
  for (size_t i = 0; i + 1 < steps.size(); ++i) {
    const TypeId mid_out = schema.StepTarget(steps[i]);
    const TypeId mid_in = schema.StepSource(steps[i + 1]);
    if (mid_out != mid_in) {
      return Status::InvalidArgument(StrFormat(
          "steps %zu and %zu are not concatenable: '%s' ends at '%s' but '%s' "
          "starts at '%s'",
          i, i + 1, schema.StepToString(steps[i]).c_str(),
          schema.TypeName(mid_out).c_str(),
          schema.StepToString(steps[i + 1]).c_str(),
          schema.TypeName(mid_in).c_str()));
    }
  }
  return MetaPath(&schema, std::move(steps));
}

TypeId MetaPath::TypeAt(int i) const {
  HETESIM_CHECK(i >= 0 && i <= length());
  if (i == 0) return schema_->StepSource(steps_[0]);
  return schema_->StepTarget(steps_[static_cast<size_t>(i) - 1]);
}

const RelationStep& MetaPath::StepAt(int i) const {
  HETESIM_CHECK(i >= 0 && i < length());
  return steps_[static_cast<size_t>(i)];
}

MetaPath MetaPath::Reverse() const {
  std::vector<RelationStep> reversed(steps_.rbegin(), steps_.rend());
  for (RelationStep& step : reversed) step = step.Inverse();
  return MetaPath(schema_, std::move(reversed));
}

Result<MetaPath> MetaPath::Concat(const MetaPath& other) const {
  if (schema_ != other.schema_) {
    return Status::InvalidArgument("cannot concatenate paths over different schemas");
  }
  if (TargetType() != other.SourceType()) {
    return Status::InvalidArgument(StrFormat(
        "paths are not concatenable: '%s' ends at '%s', '%s' starts at '%s'",
        ToString().c_str(), schema_->TypeName(TargetType()).c_str(),
        other.ToString().c_str(), schema_->TypeName(other.SourceType()).c_str()));
  }
  std::vector<RelationStep> steps = steps_;
  steps.insert(steps.end(), other.steps_.begin(), other.steps_.end());
  return MetaPath(schema_, std::move(steps));
}

MetaPath MetaPath::Prefix(int count) const {
  HETESIM_CHECK(count >= 1 && count <= length());
  return MetaPath(schema_, std::vector<RelationStep>(
                               steps_.begin(), steps_.begin() + count));
}

MetaPath MetaPath::Suffix(int from) const {
  HETESIM_CHECK(from >= 0 && from < length());
  return MetaPath(schema_,
                  std::vector<RelationStep>(steps_.begin() + from, steps_.end()));
}

bool MetaPath::IsSymmetric() const {
  return *this == Reverse();
}

std::string MetaPath::ToString() const {
  std::string out(1, schema_->TypeCode(TypeAt(0)));
  for (int i = 1; i <= length(); ++i) {
    out += '-';
    out += schema_->TypeCode(TypeAt(i));
  }
  return out;
}

std::string MetaPath::ToRelationString() const {
  std::vector<std::string> parts;
  parts.reserve(steps_.size());
  for (const RelationStep& step : steps_) parts.push_back(schema_->StepToString(step));
  return Join(parts, ",");
}

}  // namespace hetesim
