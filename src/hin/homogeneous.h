#ifndef HETESIM_HIN_HOMOGENEOUS_H_
#define HETESIM_HIN_HOMOGENEOUS_H_

#include <vector>

#include "hin/graph.h"
#include "matrix/sparse.h"

namespace hetesim {

/// \brief A heterogeneous network collapsed to a single homogeneous graph.
///
/// Baselines that ignore type semantics (SimRank over all objects, random
/// walk with restart) operate on the union of all relations with global
/// node ids. Type `t`'s node `i` maps to global id `type_offset[t] + i`.
/// Every relation contributes its edges in both directions (link structure
/// in HINs is semantically bidirectional: `writes` vs `written-by`), so the
/// adjacency is symmetric.
struct HomogeneousView {
  /// Symmetric global adjacency, `total x total`.
  SparseMatrix adjacency;
  /// Global id of the first node of each type; size NumObjectTypes()+1,
  /// the final entry being the total node count.
  std::vector<Index> type_offset;

  /// Global id of node `id` of `type`.
  Index GlobalId(TypeId type, Index id) const {
    return type_offset[static_cast<size_t>(type)] + id;
  }
  /// Total number of nodes.
  Index TotalNodes() const { return type_offset.back(); }
};

/// Collapses `graph` into a homogeneous view.
HomogeneousView BuildHomogeneousView(const HinGraph& graph);

}  // namespace hetesim

#endif  // HETESIM_HIN_HOMOGENEOUS_H_
