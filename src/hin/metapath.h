#ifndef HETESIM_HIN_METAPATH_H_
#define HETESIM_HIN_METAPATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "hin/schema.h"

namespace hetesim {

/// \brief A relevance path `P = A1 -R1-> A2 ... -Rl-> A(l+1)` over a schema
/// (Definition 2): the composite relation `R1 ∘ R2 ∘ ... ∘ Rl`.
///
/// A `MetaPath` keeps a non-owning pointer to its `Schema`, which must
/// outlive it (schemas live inside a `HinGraph`, which outlives all queries
/// against it).
///
/// Construction:
///  * `Parse(schema, "APVC")` — compact type-code form; also accepts
///    `"A-P-V-C"` and full names `"author-paper-venue-conference"`. Each
///    consecutive type pair must be connected by exactly one relation
///    (in either direction); otherwise parsing reports the ambiguity and
///    `FromRelations` must be used.
///  * `FromRelations(schema, {"writes", "~writes"})` — explicit relation
///    names, `~` meaning the inverse relation.
class MetaPath {
 public:
  /// Parses a type-sequence specification (see class comment).
  [[nodiscard]] static Result<MetaPath> Parse(const Schema& schema, std::string_view spec);

  /// Builds from explicit relation names; `~name` walks `name` backwards.
  [[nodiscard]] static Result<MetaPath> FromRelations(const Schema& schema,
                                        const std::vector<std::string>& relations);

  /// Builds from raw steps, validating that consecutive steps are
  /// concatenable (StepTarget(i) == StepSource(i+1)) and non-empty.
  [[nodiscard]] static Result<MetaPath> FromSteps(const Schema& schema,
                                    std::vector<RelationStep> steps);

  /// Number of relations `l` (the path length of Definition 2, >= 1).
  int length() const { return static_cast<int>(steps_.size()); }
  /// Number of types on the path (`length() + 1`).
  int NumTypes() const { return length() + 1; }

  /// The i-th object type on the path, `0 <= i <= length()`.
  TypeId TypeAt(int i) const;
  /// First type `A1`.
  TypeId SourceType() const { return TypeAt(0); }
  /// Last type `A(l+1)`.
  TypeId TargetType() const { return TypeAt(length()); }

  /// The i-th traversal step, `0 <= i < length()`.
  const RelationStep& StepAt(int i) const;
  /// All steps in order.
  const std::vector<RelationStep>& steps() const { return steps_; }

  /// The reverse path `P^-1` (each step inverted, order reversed).
  MetaPath Reverse() const;

  /// Concatenation `(P1 P2)`; requires `TargetType() == other.SourceType()`
  /// and a shared schema.
  [[nodiscard]] Result<MetaPath> Concat(const MetaPath& other) const;

  /// Prefix `[0, count)` of the steps as a path; `1 <= count <= length()`.
  MetaPath Prefix(int count) const;
  /// Suffix `[from, length())` of the steps; `0 <= from <= length()-1`.
  MetaPath Suffix(int from) const;

  /// True iff `P == P^-1` (same relation walked forward then backward, in
  /// mirror order), e.g. APA, APCPA. Symmetric paths necessarily have even
  /// length and same source/target type.
  bool IsSymmetric() const;

  /// Compact type-code rendering, e.g. "A-P-V-C".
  std::string ToString() const;
  /// Relation-name rendering, e.g. "writes,published_in,~has_venue".
  std::string ToRelationString() const;

  /// The schema this path is defined over.
  const Schema& schema() const { return *schema_; }

  /// Paths compare equal when they share a schema object and steps.
  friend bool operator==(const MetaPath& a, const MetaPath& b) {
    return a.schema_ == b.schema_ && a.steps_ == b.steps_;
  }

 private:
  MetaPath(const Schema* schema, std::vector<RelationStep> steps)
      : schema_(schema), steps_(std::move(steps)) {}

  const Schema* schema_ = nullptr;  // non-owning; must outlive the path
  std::vector<RelationStep> steps_;
};

}  // namespace hetesim

#endif  // HETESIM_HIN_METAPATH_H_
