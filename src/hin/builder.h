#ifndef HETESIM_HIN_BUILDER_H_
#define HETESIM_HIN_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "hin/graph.h"
#include "hin/schema.h"

namespace hetesim {

/// \brief Incremental constructor for `HinGraph`.
///
/// Usage:
/// \code
///   HinGraphBuilder b;
///   TypeId author = *b.AddObjectType("author");
///   TypeId paper  = *b.AddObjectType("paper");
///   RelationId writes = *b.AddRelation("writes", author, paper);
///   Index tom = b.AddNode(author, "Tom");
///   Index p1  = b.AddNode(paper, "p1");
///   b.AddEdge(writes, tom, p1);
///   HinGraph g = std::move(b).Build();
/// \endcode
///
/// Edges may be added by node id or by node name (names are auto-created on
/// first use by `AddEdgeByName`). Duplicate edges sum their weights, which
/// matches the weighted-adjacency semantics of Definition 8.
class HinGraphBuilder {
 public:
  HinGraphBuilder() = default;

  /// See Schema::AddObjectType.
  [[nodiscard]] Result<TypeId> AddObjectType(const std::string& name, char code = 0);
  /// See Schema::AddRelation.
  [[nodiscard]] Result<RelationId> AddRelation(const std::string& name, TypeId src, TypeId dst);

  /// Adds one node of `type`; `name` may be empty (anonymous). Returns its
  /// per-type id. Duplicate names within one type return the existing id.
  Index AddNode(TypeId type, const std::string& name = "");

  /// Adds `count` anonymous nodes of `type`, returning the id of the first.
  Index AddNodes(TypeId type, Index count);

  /// Adds a weighted edge instance of `relation` between existing node ids.
  [[nodiscard]] Status AddEdge(RelationId relation, Index src, Index dst, double weight = 1.0);

  /// Adds an edge, creating the named endpoints if needed.
  [[nodiscard]] Status AddEdgeByName(RelationId relation, const std::string& src,
                       const std::string& dst, double weight = 1.0);

  /// Number of nodes of `type` added so far.
  Index NumNodes(TypeId type) const;

  /// Read access to the evolving schema.
  const Schema& schema() const { return schema_; }

  /// Materializes the immutable graph. The builder is consumed.
  HinGraph Build() &&;

 private:
  Schema schema_;
  std::vector<std::vector<std::string>> node_names_;
  std::vector<std::unordered_map<std::string, Index>> node_index_;
  std::vector<std::vector<Triplet>> edges_;  // indexed by RelationId
};

}  // namespace hetesim

#endif  // HETESIM_HIN_BUILDER_H_
