#ifndef HETESIM_HIN_GRAPH_H_
#define HETESIM_HIN_GRAPH_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "hin/schema.h"
#include "matrix/sparse.h"

namespace hetesim {

/// \brief Heterogeneous information network `G = (V, E)` with an object-type
/// mapping and a link-type mapping (Definition 1), stored as one weighted
/// adjacency matrix per relation.
///
/// Node ids are *per-type* and dense: the nodes of type `T` are
/// `0 .. NumNodes(T)-1`, each with an optional human-readable name. The
/// adjacency matrix of relation `R: A -> B` is `|A| x |B|`; its transpose is
/// cached because both orientations are needed constantly (U and V of
/// Definition 8 are its row- and column-normalizations).
///
/// `HinGraph` is immutable after construction — build one with
/// `HinGraphBuilder` (builder.h) or load one with `LoadHinGraph`
/// (datagen/io.h).
class HinGraph {
 public:
  /// Constructed only by HinGraphBuilder / loaders; see builder.h.
  HinGraph(Schema schema, std::vector<std::vector<std::string>> node_names,
           std::vector<SparseMatrix> adjacency);

  HinGraph(const HinGraph&) = default;
  HinGraph& operator=(const HinGraph&) = default;
  HinGraph(HinGraph&&) noexcept = default;
  HinGraph& operator=(HinGraph&&) noexcept = default;

  /// The network schema.
  const Schema& schema() const { return schema_; }

  /// Number of nodes of `type`.
  Index NumNodes(TypeId type) const;
  /// Total number of nodes across all types.
  Index TotalNodes() const;
  /// Total number of stored edges across all relations.
  Index TotalEdges() const;

  /// Name of node `id` of `type` (empty if the node was added anonymously).
  const std::string& NodeName(TypeId type, Index id) const;
  /// Looks up a node by name within a type.
  [[nodiscard]] Result<Index> FindNode(TypeId type, const std::string& name) const;

  /// Weighted adjacency matrix `W` of `relation` (`|src| x |dst|`).
  const SparseMatrix& Adjacency(RelationId relation) const;
  /// Cached transpose of `Adjacency(relation)` (`|dst| x |src|`).
  const SparseMatrix& AdjacencyTranspose(RelationId relation) const;

  /// Adjacency of a traversal step: `Adjacency` when forward, the cached
  /// transpose when backward. Rows always index the step's source type.
  const SparseMatrix& StepAdjacency(const RelationStep& step) const;

  /// Transition probability matrix of a step (Definition 8): the step
  /// adjacency with rows L1-normalized. `U_AB` for forward steps; for a
  /// backward step over `R: B -> A` this equals `V_BA'`, consistent with
  /// Property 2 of the paper.
  SparseMatrix StepTransition(const RelationStep& step) const;

  /// Out-degree of node `id` under `relation` (number of stored targets).
  Index OutDegree(RelationId relation, Index id) const;
  /// In-degree of node `id` under `relation`.
  Index InDegree(RelationId relation, Index id) const;

  /// Multi-line summary (types, counts, relations, edge counts).
  std::string Summary() const;

 private:
  Schema schema_;
  std::vector<std::vector<std::string>> node_names_;  // indexed by TypeId
  std::vector<std::unordered_map<std::string, Index>> node_index_;
  std::vector<SparseMatrix> adjacency_;            // indexed by RelationId
  std::vector<SparseMatrix> adjacency_transpose_;  // indexed by RelationId
};

}  // namespace hetesim

#endif  // HETESIM_HIN_GRAPH_H_
