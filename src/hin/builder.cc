#include "hin/builder.h"

#include <cmath>

#include "common/check.h"

namespace hetesim {

Result<TypeId> HinGraphBuilder::AddObjectType(const std::string& name, char code) {
  Result<TypeId> id = schema_.AddObjectType(name, code);
  if (id.ok()) {
    node_names_.emplace_back();
    node_index_.emplace_back();
  }
  return id;
}

Result<RelationId> HinGraphBuilder::AddRelation(const std::string& name, TypeId src,
                                                TypeId dst) {
  Result<RelationId> id = schema_.AddRelation(name, src, dst);
  if (id.ok()) {
    edges_.emplace_back();
  }
  return id;
}

Index HinGraphBuilder::AddNode(TypeId type, const std::string& name) {
  HETESIM_CHECK(schema_.IsValidType(type));
  auto& names = node_names_[static_cast<size_t>(type)];
  auto& index = node_index_[static_cast<size_t>(type)];
  if (!name.empty()) {
    auto it = index.find(name);
    if (it != index.end()) return it->second;
  }
  const Index id = static_cast<Index>(names.size());
  names.push_back(name);
  if (!name.empty()) index.emplace(name, id);
  return id;
}

Index HinGraphBuilder::AddNodes(TypeId type, Index count) {
  HETESIM_CHECK(schema_.IsValidType(type));
  HETESIM_CHECK_GE(count, 0);
  auto& names = node_names_[static_cast<size_t>(type)];
  const Index first = static_cast<Index>(names.size());
  names.resize(names.size() + static_cast<size_t>(count));
  return first;
}

Status HinGraphBuilder::AddEdge(RelationId relation, Index src, Index dst,
                                double weight) {
  if (!schema_.IsValidRelation(relation)) {
    return Status::InvalidArgument("invalid relation id");
  }
  const TypeId src_type = schema_.RelationSource(relation);
  const TypeId dst_type = schema_.RelationTarget(relation);
  if (src < 0 || src >= NumNodes(src_type)) {
    return Status::OutOfRange("source node id out of range for relation '" +
                              schema_.RelationName(relation) + "'");
  }
  if (dst < 0 || dst >= NumNodes(dst_type)) {
    return Status::OutOfRange("target node id out of range for relation '" +
                              schema_.RelationName(relation) + "'");
  }
  // `!(weight > 0.0)` rather than `weight <= 0.0` so NaN is rejected too
  // (both comparisons are false for NaN); isfinite rules out +Inf, which
  // would otherwise poison every transition row it normalizes.
  if (!(weight > 0.0) || !std::isfinite(weight)) {
    return Status::InvalidArgument("edge weight must be positive and finite");
  }
  edges_[static_cast<size_t>(relation)].push_back({src, dst, weight});
  return Status::OK();
}

Status HinGraphBuilder::AddEdgeByName(RelationId relation, const std::string& src,
                                      const std::string& dst, double weight) {
  if (!schema_.IsValidRelation(relation)) {
    return Status::InvalidArgument("invalid relation id");
  }
  if (src.empty() || dst.empty()) {
    return Status::InvalidArgument("node names must be non-empty");
  }
  const Index src_id = AddNode(schema_.RelationSource(relation), src);
  const Index dst_id = AddNode(schema_.RelationTarget(relation), dst);
  return AddEdge(relation, src_id, dst_id, weight);
}

Index HinGraphBuilder::NumNodes(TypeId type) const {
  HETESIM_CHECK(schema_.IsValidType(type));
  return static_cast<Index>(node_names_[static_cast<size_t>(type)].size());
}

HinGraph HinGraphBuilder::Build() && {
  std::vector<SparseMatrix> adjacency;
  adjacency.reserve(edges_.size());
  for (RelationId r = 0; r < schema_.NumRelations(); ++r) {
    adjacency.push_back(SparseMatrix::FromTriplets(
        NumNodes(schema_.RelationSource(r)), NumNodes(schema_.RelationTarget(r)),
        std::move(edges_[static_cast<size_t>(r)])));
  }
  return HinGraph(std::move(schema_), std::move(node_names_), std::move(adjacency));
}

}  // namespace hetesim
