#include "service/server.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "service/protocol.h"

namespace hetesim::service {
namespace {

/// poll() one fd for `events`, retrying on EINTR, honoring an absolute
/// deadline. Returns the revents (0 on timeout, -1 on poll failure).
int PollFd(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    const int timeout_ms =
        static_cast<int>(std::max<int64_t>(0, remaining.count()));
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;  // timeout
    return pfd.revents;
  }
}

}  // namespace

SocketServer::SocketServer(QueryService* service, const ServerOptions& options)
    : service_(service), options_(options) {}

Result<std::unique_ptr<SocketServer>> SocketServer::Start(
    QueryService* service, const ServerOptions& options) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("socket path must not be empty");
  }
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("socket path too long (%zu bytes, max %zu)",
                  options.socket_path.size(), sizeof(addr.sun_path) - 1));
  }
  memcpy(addr.sun_path, options.socket_path.c_str(), options.socket_path.size());

  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket(): %s", strerror(errno)));
  }
  // A stale socket file from a crashed predecessor would make bind fail;
  // removing it is safe because a live listener would still hold its fd.
  unlink(options.socket_path.c_str());
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::IOError(StrFormat("bind(%s): %s", options.socket_path.c_str(),
                                  strerror(errno)));
    close(fd);
    return status;
  }
  if (listen(fd, 64) < 0) {
    const Status status = Status::IOError(StrFormat("listen(): %s", strerror(errno)));
    close(fd);
    unlink(options.socket_path.c_str());
    return status;
  }

  // make_unique needs a public constructor; assembled in place instead.
  std::unique_ptr<SocketServer> server(
      new SocketServer(service, options));  // hetesim-lint: allow(no-naked-new)
  server->listen_fd_ = fd;
  server->handler_pool_ =
      std::make_unique<ThreadPool>(std::max(1, options.max_connections));
  server->accept_pool_ = std::make_unique<ThreadPool>(1);
  SocketServer* raw = server.get();
  server->accept_pool_->Submit([raw] { raw->AcceptLoop(); });
  return server;
}

SocketServer::~SocketServer() { Stop(); }

void SocketServer::Stop() {
  {
    MutexLock lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  // Wake the accept loop and every blocked handler IO.
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  {
    MutexLock lock(mutex_);
    for (int fd : connection_fds_) shutdown(fd, SHUT_RDWR);
  }
  // Joining the pools guarantees no handler touches a fd after this.
  accept_pool_.reset();
  handler_pool_.reset();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  unlink(options_.socket_path.c_str());
}

void SocketServer::TrackConnection(int fd, bool add) {
  MutexLock lock(mutex_);
  if (add) {
    connection_fds_.push_back(fd);
  } else {
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
}

void SocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int revents = PollFd(listen_fd_, POLLIN,
                               Clock::now() + std::chrono::milliseconds(100));
    if (stopping_.load(std::memory_order_acquire)) break;
    if (revents == 0) continue;       // timeout: re-check the stop flag
    if (revents < 0) break;           // poll failure: shutting down
    if ((revents & POLLIN) == 0) break;
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listen socket gone (Stop) or unrecoverable
    }
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Over capacity: refuse at the door rather than queue a handler the
      // busy pool would not run — the client sees EOF and retries.
      rejected_capacity_.fetch_add(1, std::memory_order_relaxed);
      close(conn);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    TrackConnection(conn, /*add=*/true);
    handler_pool_->Submit([this, conn] { HandleConnection(conn); });
  }
}

void SocketServer::HandleConnection(int fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    if (!ServeOne(fd)) break;
  }
  TrackConnection(fd, /*add=*/false);
  close(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

bool SocketServer::ReadFully(int fd, uint8_t* buffer, size_t bytes) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  size_t done = 0;
  while (done < bytes) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    const int revents = PollFd(fd, POLLIN, deadline);
    if (revents == 0) {
      closed_stall_.fetch_add(1, std::memory_order_relaxed);
      return false;  // slow-client stall
    }
    if (revents < 0 || (revents & (POLLERR | POLLNVAL)) != 0) return false;
    const ssize_t n = recv(fd, buffer + done, bytes - done, 0);
    if (n == 0) return false;  // orderly EOF
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool SocketServer::WriteFully(int fd, const uint8_t* data, size_t bytes) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(options_.io_timeout_ms);
  size_t done = 0;
  while (done < bytes) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    const int revents = PollFd(fd, POLLOUT, deadline);
    if (revents == 0) {
      closed_stall_.fetch_add(1, std::memory_order_relaxed);
      return false;  // client not draining its socket
    }
    if (revents < 0 || (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      return false;
    }
    const ssize_t n = send(fd, data + done, bytes - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool SocketServer::PeerGone(int fd) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN
#ifdef POLLRDHUP
               | POLLRDHUP
#endif
      ;
  pfd.revents = 0;
  const int rc = poll(&pfd, 1, 0);
  if (rc < 0) return errno != EINTR;
  if (rc == 0) return false;
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) return true;
#ifdef POLLRDHUP
  if ((pfd.revents & POLLRDHUP) != 0) return true;
#endif
  if ((pfd.revents & POLLIN) != 0) {
    // Lockstep protocol: the peer owes us nothing right now, so readable
    // means EOF (orderly close) or a protocol violation. Peek to tell.
    char probe;
    const ssize_t n = recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return true;
  }
  return false;
}

bool SocketServer::ServeOne(int fd) {
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!ReadFully(fd, header_bytes, sizeof(header_bytes))) return false;
  Result<FrameHeader> header = DecodeFrameHeader(header_bytes);
  if (!header.ok()) {
    // Bad magic/type/length: the byte stream is unsynchronized, nothing
    // sent after this point can be trusted. Close.
    closed_protocol_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::string payload(header->payload_bytes, '\0');
  if (header->payload_bytes > 0 &&
      !ReadFully(fd, reinterpret_cast<uint8_t*>(payload.data()),
                 payload.size())) {
    return false;
  }

  if (header->type == FrameType::kPing) {
    const std::string pong = EncodeFrame(FrameType::kPong, "");
    return WriteFully(fd, reinterpret_cast<const uint8_t*>(pong.data()),
                      pong.size());
  }
  if (header->type != FrameType::kRequest) {
    closed_protocol_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Chaos hook: corrupt the payload after a clean read, as a flaky peer or
  // truncated write would. The decoder must reject it; the server answers
  // with a well-formed error frame and survives.
  if (!payload.empty() && HETESIM_FAULT_POINT("service.frame.corrupt")) {
    payload[payload.size() / 2] ^= 0x5a;
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  Result<QueryRequest> request = DecodeRequest(payload);
  QueryResponse response;
  if (!request.ok()) {
    // Framing is intact, only the payload is malformed — answer the error
    // and keep the connection.
    response.outcome = ResponseOutcome::kError;
    response.status_code = StatusCode::kInvalidArgument;
    response.message = std::string(request.status().message());
  } else {
    std::shared_ptr<PendingQuery> pending = service_->Submit(*request);
    // Chaos hook: cancel mid-flight, as a client crash would.
    if (HETESIM_FAULT_POINT("service.conn.cancel")) pending->Cancel();
    while (!pending->WaitForMs(options_.poll_interval_ms)) {
      if (stopping_.load(std::memory_order_acquire) || PeerGone(fd)) {
        // The answer has no recipient: stop the work, then drain the
        // handle so the reservation-release path still runs to completion.
        disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
        pending->Cancel();
        pending->Wait();
        return false;
      }
    }
    response = pending->Wait();
  }

  const std::string frame =
      EncodeFrame(FrameType::kResponse, EncodeResponse(response));
  return WriteFully(fd, reinterpret_cast<const uint8_t*>(frame.data()),
                    frame.size());
}

SocketServer::Stats SocketServer::stats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_capacity = rejected_capacity_.load(std::memory_order_relaxed);
  stats.closed_stall = closed_stall_.load(std::memory_order_relaxed);
  stats.closed_protocol = closed_protocol_.load(std::memory_order_relaxed);
  stats.disconnect_cancels = disconnect_cancels_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace hetesim::service
