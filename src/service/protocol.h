#ifndef HETESIM_SERVICE_PROTOCOL_H_
#define HETESIM_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/topk.h"

namespace hetesim::service {

/// \file
/// Wire protocol of the resident query service (DESIGN.md §13).
///
/// Every message is one *frame*:
///
///   offset  size  field
///   0       4     magic "HSQ1" (0x31515348 little-endian)
///   4       1     frame type (FrameType)
///   5       3     reserved, must be zero
///   8       4     payload length, little-endian, <= kMaxFramePayload
///   12      N     payload
///
/// All integers are little-endian; doubles are IEEE-754 bit patterns.
/// Decoding is fully bounds-checked and never trusts a length field beyond
/// `kMaxFramePayload`: a malformed frame yields `InvalidArgument`, never a
/// crash or an over-allocation — the resilience suite fuzzes this with
/// random corruptions under ASan.

/// Frame kinds. A connection is lockstep request/response: the client sends
/// one `kRequest` (or `kPing`) and reads one `kResponse` (or `kPong`)
/// before sending the next.
enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
  kPing = 3,
  kPong = 4,
};

inline constexpr uint32_t kFrameMagic = 0x31515348u;  // "HSQ1"
inline constexpr size_t kFrameHeaderBytes = 12;
/// Upper bound on one payload; a header announcing more is corruption.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;
/// Upper bound on a request's meta-path spec string.
inline constexpr size_t kMaxPathSpecBytes = 4096;
/// Upper bound on an error/diagnostic message on the wire.
inline constexpr size_t kMaxMessageBytes = 4096;

/// Which engine entry point a request exercises (mirrors the paper's three
/// interactive query shapes).
enum class QueryKind : uint8_t {
  kPair = 0,          ///< HeteSim(source, target | path)
  kSingleSource = 1,  ///< one full relevance row
  kTopK = 2,          ///< pruned top-k targets for one source
};

const char* QueryKindName(QueryKind kind);

/// Terminal disposition of a request, as seen by the client.
enum class ResponseOutcome : uint8_t {
  kOk = 0,                ///< full answer
  kDegraded = 1,          ///< served under a degradation level > kFull
  kRejected = 2,          ///< admission refused (queue/deadline/quota)
  kShed = 3,              ///< load/memory shed: fast-reject + Retry-After
  kDeadlineExceeded = 4,  ///< admitted, died on its deadline mid-compute
  kCancelled = 5,         ///< admitted, cancelled mid-compute
  kError = 6,             ///< invalid request or internal failure
  /// Client-side only (never on the wire): the transport failed before a
  /// response arrived (connect refused, write/read timeout, short frame).
  kTransportError = 7,
};

const char* ResponseOutcomeName(ResponseOutcome outcome);

/// The graceful-degradation ladder, selected by measured load at admission
/// (DESIGN.md §13): each level trades answer quality for bounded work.
enum class DegradationLevel : uint8_t {
  kFull = 0,          ///< normal execution, cache on
  kUncached = 1,      ///< bypass the path-matrix cache (no churn/growth)
  kTruncatedTopK = 2, ///< top-k under a tightened slice; partial + marker
  kFastReject = 3,    ///< not served: immediate shed with Retry-After
};

const char* DegradationLevelName(DegradationLevel level);

/// One query, client to server.
struct QueryRequest {
  uint64_t id = 0;       ///< echoed in the response
  QueryKind kind = QueryKind::kPair;
  uint32_t tenant = 0;   ///< quota bucket
  double deadline_ms = 0;  ///< remaining client budget; 0 = none
  std::string path;      ///< MetaPath::Parse syntax, e.g. "A-P-C-P-A"
  int64_t source = 0;
  int64_t target = 0;    ///< pair only
  int32_t k = 0;         ///< top-k only
};

/// One answer, server to client.
struct QueryResponse {
  uint64_t id = 0;
  ResponseOutcome outcome = ResponseOutcome::kError;
  DegradationLevel degradation = DegradationLevel::kFull;
  StatusCode status_code = StatusCode::kOk;
  std::string message;     ///< diagnostic for non-OK outcomes
  double retry_after_ms = 0;  ///< rejection/shed hint; 0 = no hint
  bool truncated = false;  ///< top-k partial answer marker
  std::vector<Scored> items;   ///< top-k answers
  std::vector<double> scores;  ///< pair (1 entry) / single-source row
  double queue_ms = 0;  ///< admission-to-dispatch wait measured server-side
  double exec_ms = 0;   ///< kernel execution time measured server-side

  /// True when the request was actually served (possibly degraded or
  /// truncated) rather than refused or failed.
  bool served() const {
    return outcome == ResponseOutcome::kOk ||
           outcome == ResponseOutcome::kDegraded;
  }
};

/// Encodes `payload` as one frame of `type` (header + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Decoded frame header.
struct FrameHeader {
  FrameType type = FrameType::kRequest;
  uint32_t payload_bytes = 0;
};

/// Validates and decodes the 12-byte header at `data` (which must hold at
/// least `kFrameHeaderBytes`). Bad magic, unknown type, non-zero reserved
/// bytes or an oversized length are `InvalidArgument` — the connection is
/// unsynchronized and must be closed.
[[nodiscard]] Result<FrameHeader> DecodeFrameHeader(const uint8_t* data);

/// Request payload codecs.
std::string EncodeRequest(const QueryRequest& request);
[[nodiscard]] Result<QueryRequest> DecodeRequest(std::string_view payload);

/// Response payload codecs.
std::string EncodeResponse(const QueryResponse& response);
[[nodiscard]] Result<QueryResponse> DecodeResponse(std::string_view payload);

}  // namespace hetesim::service

#endif  // HETESIM_SERVICE_PROTOCOL_H_
