#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "hin/metapath.h"
#include "matrix/cost_model.h"
#include "matrix/sparse.h"

namespace hetesim::service {
namespace {

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

ResponseOutcome OutcomeFromStatus(const Status& status) {
  if (status.ok()) return ResponseOutcome::kOk;
  if (status.IsDeadlineExceeded()) return ResponseOutcome::kDeadlineExceeded;
  if (status.IsCancelled()) return ResponseOutcome::kCancelled;
  return ResponseOutcome::kError;
}

QueryResponse FailureResponse(const QueryRequest& request, const Status& status) {
  QueryResponse response;
  response.id = request.id;
  response.outcome = OutcomeFromStatus(status);
  response.status_code = status.code();
  response.message = std::string(status.message());
  return response;
}

}  // namespace

// ---------------------------------------------------------------------------
// PendingQuery

const QueryResponse& PendingQuery::Wait() const {
  MutexLock lock(mutex_);
  while (!done_) cond_.Wait(mutex_);
  return response_;
}

bool PendingQuery::WaitForMs(int64_t ms) const {
  const auto deadline = Clock::now() + std::chrono::milliseconds(ms);
  MutexLock lock(mutex_);
  while (!done_) {
    if (!cond_.WaitUntil(mutex_, deadline)) return done_;
  }
  return true;
}

bool PendingQuery::done() const {
  MutexLock lock(mutex_);
  return done_;
}

void PendingQuery::Complete(QueryResponse response) {
  MutexLock lock(mutex_);
  if (done_) return;
  response_ = std::move(response);
  done_ = true;
  cond_.NotifyAll();
}

// ---------------------------------------------------------------------------
// QueryService

QueryService::QueryService(const HinGraph& graph, const ServiceOptions& options)
    : graph_(graph), options_(options) {}

std::unique_ptr<QueryService> QueryService::Create(const HinGraph& graph,
                                                   const ServiceOptions& options) {
  // make_unique needs a public constructor; the service is assembled in
  // place instead.
  std::unique_ptr<QueryService> service(
      new QueryService(graph, options));  // hetesim-lint: allow(no-naked-new)
  if (options.memory_mb > 0) {
    service->budget_ =
        std::make_shared<MemoryBudget>(options.memory_mb * 1024 * 1024);
  }
  if (options.cache_enabled) {
    service->cache_ = std::make_shared<PathMatrixCache>();
    if (service->budget_ != nullptr) {
      service->cache_->SetMemoryBudget(service->budget_);
    }
    if (options.store != nullptr) {
      service->cache_->AttachStore(options.store);
    }
  }
  service->engine_ = std::make_unique<HeteSimEngine>(graph, options.engine,
                                                     service->cache_);
  service->engine_uncached_ =
      std::make_unique<HeteSimEngine>(graph, options.engine, nullptr);
  service->admission_ = std::make_unique<AdmissionController>(
      options.admission, service->budget_.get());
  const int workers = std::max(1, options.admission.workers);
  service->pool_ = std::make_unique<ThreadPool>(workers);
  return service;
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  std::vector<std::shared_ptr<PendingQuery>> inflight;
  {
    MutexLock lock(mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    inflight.assign(inflight_.begin(), inflight_.end());
  }
  for (const auto& pending : inflight) pending->Cancel();
  // Destroying the pool drains remaining tasks; each completes its
  // PendingQuery (as cancelled) on the way out, so no client wedges.
  pool_.reset();
}

Result<std::shared_ptr<QueryService::PathState>> QueryService::StateFor(
    const std::string& spec) {
  {
    MutexLock lock(mutex_);
    auto it = paths_.find(spec);
    if (it != paths_.end()) return it->second;
  }
  // Parse and estimate outside the lock: path validation is pure and two
  // racing builders of the same spec converge on identical state.
  HETESIM_ASSIGN_OR_RETURN(MetaPath path, MetaPath::Parse(graph_.schema(), spec));
  auto state = std::make_shared<PathState>(std::move(path));
  state->num_targets = graph_.NumNodes(state->path.TargetType());

  // Fold the cost model over the transition chain the way the planner
  // would materialize it left-to-right: the sum of product flops is the
  // chain cost, and one row of it approximates a single-source walk.
  const std::vector<SparseMatrix> chain = TransitionChain(graph_, state->path);
  if (!chain.empty()) {
    MatrixEstimate acc = EstimateOf(chain[0]);
    double flops = 0;
    for (size_t i = 1; i < chain.size(); ++i) {
      const MatrixEstimate next = EstimateOf(chain[i]);
      flops += EstimateProductFlops(acc, next);
      acc = EstimateProduct(acc, next);
    }
    state->chain_flops = flops;
    const double rows = static_cast<double>(std::max<Index>(1, chain[0].rows()));
    state->row_flops = flops / rows;
  }
  MutexLock lock(mutex_);
  auto [it, inserted] = paths_.emplace(spec, std::move(state));
  (void)inserted;  // loser of a race adopts the winner's state
  return it->second;
}

double QueryService::EstimateFlops(const PathState& state,
                                   const QueryRequest& request) {
  // Floor: even a trivial query costs dispatch + one propagation step.
  constexpr double kMinFlops = 1e3;
  switch (request.kind) {
    case QueryKind::kPair:
      // Left and right single-row propagations plus one dot product.
      return std::max(kMinFlops, 2.0 * state.row_flops);
    case QueryKind::kSingleSource:
      // One left propagation paired against every target row.
      return std::max(kMinFlops,
                      2.0 * state.row_flops +
                          8.0 * static_cast<double>(state.num_targets));
    case QueryKind::kTopK:
      // After preparation a query is one propagation over the candidate
      // set; the one-time Prepare cost is charged via the ladder's
      // calibration, not per query.
      return std::max(kMinFlops, 2.0 * state.row_flops);
  }
  return kMinFlops;
}

size_t QueryService::EstimateBytes(const PathState& state,
                                   const QueryRequest& request) {
  // Transient per-query working set: response buffers plus propagation
  // scratch. Deliberately coarse — the point is that thousands of queued
  // single-source queries visibly pressure the budget.
  constexpr size_t kBaseBytes = 16 << 10;
  switch (request.kind) {
    case QueryKind::kPair:
      return kBaseBytes;
    case QueryKind::kSingleSource:
      return kBaseBytes + static_cast<size_t>(state.num_targets) * sizeof(double);
    case QueryKind::kTopK:
      return kBaseBytes + static_cast<size_t>(state.num_targets) * sizeof(double) +
             static_cast<size_t>(std::max(0, request.k)) * sizeof(Scored);
  }
  return kBaseBytes;
}

std::shared_ptr<PendingQuery> QueryService::CompleteNow(QueryResponse response) {
  auto pending = std::make_shared<PendingQuery>();
  RecordCompletion(response);
  pending->Complete(std::move(response));
  return pending;
}

void QueryService::RecordCompletion(const QueryResponse& response) {
  MutexLock lock(mutex_);
  ++completed_;
  if (response.served()) ++served_;
  if (response.outcome == ResponseOutcome::kDegraded) ++degraded_;
}

std::shared_ptr<PendingQuery> QueryService::Submit(const QueryRequest& request) {
  const Clock::time_point submit_time = Clock::now();

  bool shutting_down = false;
  {
    MutexLock lock(mutex_);
    shutting_down = shutdown_;
  }
  if (shutting_down) {
    QueryResponse response;
    response.id = request.id;
    response.outcome = ResponseOutcome::kShed;
    response.degradation = DegradationLevel::kFastReject;
    response.status_code = StatusCode::kFailedPrecondition;
    response.message = "service shutting down";
    return CompleteNow(std::move(response));
  }

  // Validate the request shape before spending anything.
  Result<std::shared_ptr<PathState>> state_or = StateFor(request.path);
  if (!state_or.ok()) {
    return CompleteNow(FailureResponse(request, state_or.status()));
  }
  std::shared_ptr<PathState> state = std::move(*state_or);
  if (request.kind == QueryKind::kTopK && request.k <= 0) {
    return CompleteNow(FailureResponse(
        request, Status::InvalidArgument("top-k request needs k > 0")));
  }

  // Admission pipeline — synchronous, before any compute is queued.
  const double flops = EstimateFlops(*state, request);
  const AdmissionDecision decision = admission_->Admit(
      request.tenant, flops, request.deadline_ms, submit_time);
  if (!decision.admitted) {
    QueryResponse response;
    response.id = request.id;
    response.outcome = decision.reject_outcome;
    response.degradation = DegradationLevel::kFastReject;
    response.status_code = StatusCode::kResourceExhausted;
    response.message = decision.reason;
    response.retry_after_ms = decision.retry_after_ms;
    return CompleteNow(std::move(response));
  }

  // Reserve the query's transient working set up front. From here on the
  // admission charge and the reservation MUST be released on every exit
  // path — both live in the completion closure below, which the pool is
  // guaranteed to run (Submit never drops tasks; shutdown drains).
  MemoryReservation reservation;
  const size_t bytes = EstimateBytes(*state, request);
  bool reserve_failed = HETESIM_FAULT_POINT("service.admit.alloc");
  if (!reserve_failed && budget_ != nullptr) {
    if (budget_->TryReserve(bytes)) {
      reservation = MemoryReservation(budget_.get(), bytes);
    } else {
      reserve_failed = true;
    }
  }
  if (reserve_failed) {
    admission_->Finish(flops, 0, Clock::now());
    QueryResponse response;
    response.id = request.id;
    response.outcome = ResponseOutcome::kShed;
    response.degradation = DegradationLevel::kFastReject;
    response.status_code = StatusCode::kResourceExhausted;
    response.message = "memory reservation failed";
    response.retry_after_ms = std::max(1.0, decision.estimated_wait_ms);
    return CompleteNow(std::move(response));
  }

  auto pending = std::make_shared<PendingQuery>();
  bool lost_shutdown_race = false;
  {
    MutexLock lock(mutex_);
    if (shutdown_) {
      // Lost the race with Shutdown: the pool may already be draining, so
      // refuse instead of enqueueing into a dying executor.
      lost_shutdown_race = true;
    } else {
      inflight_.insert(pending);
    }
  }
  if (lost_shutdown_race) {
    admission_->Finish(flops, 0, Clock::now());
    QueryResponse response;
    response.id = request.id;
    response.outcome = ResponseOutcome::kShed;
    response.degradation = DegradationLevel::kFastReject;
    response.status_code = StatusCode::kFailedPrecondition;
    response.message = "service shutting down";
    RecordCompletion(response);
    pending->Complete(std::move(response));
    return pending;
  }

  QueryContext ctx = QueryContext::Background().WithCancel(pending->token_);
  if (request.deadline_ms > 0) {
    ctx = ctx.WithDeadline(submit_time +
                           std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   request.deadline_ms)));
  }
  if (budget_ != nullptr) ctx = ctx.WithBudget(budget_.get());

  // ThreadPool::Submit takes a copyable std::function; the move-only
  // reservation rides in a shared_ptr. Either way exactly one closure
  // instance runs and releases it.
  auto shared_reservation =
      std::make_shared<MemoryReservation>(std::move(reservation));
  pool_->Submit([this, request, state = std::move(state), pending,
                 reservation = std::move(shared_reservation), flops, ctx,
                 level = decision.level, submit_time]() mutable {
    const Clock::time_point start = Clock::now();
    QueryResponse response = Run(request, *state, level, ctx);
    const Clock::time_point end = Clock::now();
    response.id = request.id;
    response.queue_ms = MsBetween(submit_time, start);
    response.exec_ms = MsBetween(start, end);
    // Order matters: release the reservation before Finish so the
    // admission controller's next memory-pressure reading sees it gone.
    reservation->reset();
    admission_->Finish(flops, response.served() ? (response.exec_ms / 1e3) : 0,
                       end);
    RecordCompletion(response);
    {
      MutexLock lock(mutex_);
      inflight_.erase(pending);
    }
    pending->Complete(std::move(response));
  });
  return pending;
}

QueryResponse QueryService::Execute(const QueryRequest& request) {
  return Submit(request)->Wait();
}

QueryResponse QueryService::Run(const QueryRequest& request, PathState& state,
                                DegradationLevel level,
                                const QueryContext& ctx) {
  QueryResponse response;
  response.id = request.id;
  response.degradation = level;

  if (Status alive = ctx.CheckAlive(); !alive.ok()) {
    return FailureResponse(request, alive);
  }

  // The kUncached level routes pair/single-source queries around the
  // shared cache so an overloaded service stops churning (and growing) it;
  // top-k queries keep their prepared state, which is read-only.
  const HeteSimEngine& engine =
      (level == DegradationLevel::kUncached && request.kind != QueryKind::kTopK)
          ? *engine_uncached_
          : *engine_;

  switch (request.kind) {
    case QueryKind::kPair: {
      Result<std::vector<double>> scores = engine.ComputePairs(
          state.path, {{request.source, request.target}}, ctx);
      if (!scores.ok()) return FailureResponse(request, scores.status());
      response.scores = std::move(*scores);
      break;
    }
    case QueryKind::kSingleSource: {
      // No context overload exists for the lazy row computation; the
      // deadline verdict is post-hoc (same contract as the workload
      // runner). Cancellation is honored at the boundaries.
      Result<std::vector<double>> scores =
          engine.ComputeSingleSource(state.path, request.source);
      if (!scores.ok()) return FailureResponse(request, scores.status());
      if (Status alive = ctx.CheckAlive(); !alive.ok()) {
        return FailureResponse(request, alive);
      }
      response.scores = std::move(*scores);
      break;
    }
    case QueryKind::kTopK: {
      const TopKSearcher* searcher = nullptr;
      Status prepare_status = Status::OK();
      {
        // Lazy one-time preparation, serialized per path. A failed
        // preparation is remembered so an unpreparable path (e.g. budget
        // too small for its right half) degrades to per-query errors, not
        // a retry storm of huge SpGEMMs.
        MutexLock lock(state.searcher_mutex);
        if (state.searcher == nullptr && !state.searcher_failed) {
          Result<TopKSearcher> prepared = TopKSearcher::Prepare(
              graph_, state.path, options_.engine, ctx, cache_.get());
          if (prepared.ok()) {
            state.searcher = std::make_unique<TopKSearcher>(std::move(*prepared));
          } else {
            // Deadline/cancel failures are this query's, not the path's:
            // leave the slot empty for the next query to prepare.
            if (!prepared.status().IsDeadlineExceeded() &&
                !prepared.status().IsCancelled()) {
              state.searcher_failed = true;
            }
            prepare_status = prepared.status();
          }
        } else if (state.searcher_failed) {
          prepare_status =
              Status::InvalidArgument("top-k preparation failed for path");
        }
        if (prepare_status.ok()) searcher = state.searcher.get();
      }
      if (!prepare_status.ok()) return FailureResponse(request, prepare_status);

      QueryContext query_ctx = ctx;
      if (level == DegradationLevel::kTruncatedTopK &&
          options_.truncate_slice_ms > 0) {
        const auto slice =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   options_.truncate_slice_ms));
        const auto deadline = ctx.deadline();
        query_ctx = ctx.WithDeadline(
            deadline.has_value() ? std::min(*deadline, slice) : slice);
      }
      Result<TopKResult> result = searcher->Query(request.source, request.k, query_ctx);
      if (!result.ok()) return FailureResponse(request, result.status());
      response.truncated = result->truncated;
      response.items = std::move(result->items);
      break;
    }
  }
  response.outcome = level == DegradationLevel::kFull ? ResponseOutcome::kOk
                                                      : ResponseOutcome::kDegraded;
  response.status_code = StatusCode::kOk;
  return response;
}

ServiceStats QueryService::stats() const {
  ServiceStats stats;
  stats.admission = admission_->stats();
  stats.flops_per_second = admission_->flops_per_second();
  if (budget_ != nullptr) {
    stats.memory_used_bytes = budget_->used_bytes();
    stats.memory_peak_bytes = budget_->peak_bytes();
  }
  MutexLock lock(mutex_);
  stats.completed = completed_;
  stats.served = served_;
  stats.degraded = degraded_;
  return stats;
}

size_t QueryService::MemoryUsedBytes() const {
  return budget_ != nullptr ? budget_->used_bytes() : 0;
}

}  // namespace hetesim::service
