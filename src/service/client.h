#ifndef HETESIM_SERVICE_CLIENT_H_
#define HETESIM_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "service/backoff.h"
#include "service/protocol.h"
#include "service/service.h"

namespace hetesim::service {

/// \brief One interface over both ways of reaching a `QueryService`.
///
/// The workload harness drives whichever implementation the scenario asks
/// for; everything above this line (retry, recording, reporting) is
/// transport-agnostic. Implementations are NOT thread-safe — the harness
/// gives each worker its own client, mirroring a real connection-per-worker
/// deployment.
class ServiceClient {
 public:
  virtual ~ServiceClient() = default;

  /// Executes one query to completion (including refusals: a rejection is
  /// a normal response, not an error). Transport problems — connect
  /// failure, IO timeout, short frame — surface as
  /// `ResponseOutcome::kTransportError`, never as a crash or a hang.
  virtual QueryResponse Execute(const QueryRequest& request) = 0;
};

/// Direct in-process calls into a `QueryService` (the harness's default
/// mode: no sockets, same admission pipeline).
class InProcessClient : public ServiceClient {
 public:
  /// `service` must outlive the client.
  explicit InProcessClient(QueryService* service) : service_(service) {}

  QueryResponse Execute(const QueryRequest& request) override {
    return service_->Execute(request);
  }

 private:
  QueryService* const service_;
};

/// \brief Framed-protocol client over a Unix domain socket.
///
/// Connects lazily on the first `Execute` and reconnects on the next call
/// after any transport error, so a server restart heals without client
/// plumbing. Reads wait for the query's own deadline plus `io_timeout_ms`
/// grace before declaring the server stalled.
class SocketClient : public ServiceClient {
 public:
  explicit SocketClient(std::string socket_path, int io_timeout_ms = 5000);
  ~SocketClient() override;

  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  QueryResponse Execute(const QueryRequest& request) override;

  /// Liveness probe: one ping/pong round trip.
  [[nodiscard]] bool Ping();

 private:
  [[nodiscard]] bool EnsureConnected();
  void Disconnect();
  QueryResponse TransportError(const QueryRequest& request, std::string message);

  const std::string socket_path_;
  const int io_timeout_ms_;
  int fd_ = -1;
};

/// Retry policy for `RetryingClient`.
struct RetryOptions {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 4;
  BackoffOptions backoff;
  CircuitBreakerOptions breaker;
  /// Seed for the jitter stream (deterministic per client).
  uint64_t seed = 1;
};

/// \brief Deadline-honoring retry decorator with decorrelated-jitter
/// backoff and a circuit breaker.
///
/// Retries only outcomes that can plausibly succeed on a later attempt —
/// kRejected / kShed (the server said "later", possibly with a
/// Retry-After hint that overrides the backoff draw when larger) and
/// kTransportError. The remaining deadline is a hard wall: a retry whose
/// backoff delay would land past it is not attempted, and each attempt's
/// `deadline_ms` is shrunk to the budget actually left. Only transport
/// errors feed the circuit breaker: an admission rejection is the server
/// protecting itself, not the server being down.
///
/// The clock and sleep are injectable so unit tests run on a fake clock.
class RetryingClient : public ServiceClient {
 public:
  using NowFn = std::function<Clock::time_point()>;
  using SleepFn = std::function<void(double ms)>;

  /// Production form: real clock, real sleep.
  RetryingClient(std::unique_ptr<ServiceClient> base, const RetryOptions& options);
  /// Test form with injected time.
  RetryingClient(std::unique_ptr<ServiceClient> base, const RetryOptions& options,
                 NowFn now, SleepFn sleep);

  QueryResponse Execute(const QueryRequest& request) override;

  const CircuitBreaker& breaker() const { return breaker_; }
  uint64_t retries_attempted() const { return retries_attempted_; }

 private:
  std::unique_ptr<ServiceClient> base_;
  RetryOptions options_;
  DecorrelatedJitterBackoff backoff_;
  CircuitBreaker breaker_;
  NowFn now_;
  SleepFn sleep_;
  uint64_t retries_attempted_ = 0;
};

}  // namespace hetesim::service

#endif  // HETESIM_SERVICE_CLIENT_H_
