#include "service/admission.h"

#include <algorithm>

#include "common/metrics.h"

namespace hetesim::service {
namespace {

// EWMA weight for online flops/second calibration: heavy enough to adapt
// to a workload shift within ~10 queries, light enough that one outlier
// (cold cache, page faults) cannot swing the admission threshold.
constexpr double kCalibrationAlpha = 0.2;
// Calibration samples outside this band are measurement noise (timer
// granularity on tiny queries, a stalled worker) and are clamped.
constexpr double kMinFlopsPerSecond = 1e6;
constexpr double kMaxFlopsPerSecond = 1e12;

void BumpCounter(const char* name) {
  if (!MetricsEnabled()) return;
  MetricsRegistry::Global().GetCounter(name).Increment();
}

}  // namespace

bool TokenBucket::TryTake(double cost, Clock::time_point now) {
  RefillLocked(now);
  if (tokens_ < cost) return false;
  tokens_ -= cost;
  return true;
}

double TokenBucket::SecondsUntil(double cost, Clock::time_point now) const {
  TokenBucket copy = *this;
  copy.RefillLocked(now);
  if (copy.tokens_ >= cost) return 0.0;
  if (rate_ <= 0.0) return 60.0;  // quota disabled-but-empty: long hint
  return (cost - copy.tokens_) / rate_;
}

double TokenBucket::tokens(Clock::time_point now) const {
  TokenBucket copy = *this;
  copy.RefillLocked(now);
  return copy.tokens_;
}

void TokenBucket::RefillLocked(Clock::time_point now) {
  if (!primed_) {
    primed_ = true;
    last_refill_ = now;
    return;
  }
  if (now <= last_refill_) return;
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         const MemoryBudget* budget)
    : options_(options), budget_(budget), flops_per_second_(options.flops_per_second) {
  if (flops_per_second_ <= 0) flops_per_second_ = 2e8;
}

double AdmissionController::LoadLocked() const {
  const double queue_fraction =
      options_.queue_capacity > 0
          ? static_cast<double>(queue_depth_) / options_.queue_capacity
          : 0.0;
  double memory_fraction = 0.0;
  if (budget_ != nullptr) {
    // Below the soft threshold memory contributes nothing; between soft
    // and hard it ramps linearly to 1 so the ladder engages before the
    // hard shed point.
    const double used = budget_->UsedFraction();
    if (used > options_.memory_soft_fraction) {
      const double span =
          std::max(1e-9, options_.memory_hard_fraction - options_.memory_soft_fraction);
      memory_fraction = std::min(1.0, (used - options_.memory_soft_fraction) / span);
    }
  }
  return std::max(queue_fraction, memory_fraction);
}

TokenBucket& AdmissionController::BucketFor(uint32_t tenant) {
  auto it = buckets_.find(tenant);
  if (it == buckets_.end()) {
    double weight = 1.0;
    if (tenant < options_.tenant_weights.size() &&
        options_.tenant_weights[tenant] > 0) {
      weight = options_.tenant_weights[tenant];
    }
    it = buckets_
             .emplace(tenant, TokenBucket(options_.tenant_rate * weight,
                                          options_.tenant_burst * weight))
             .first;
  }
  return it->second;
}

AdmissionDecision AdmissionController::Admit(uint32_t tenant, double flops,
                                             double remaining_deadline_ms,
                                             Clock::time_point now) {
  MutexLock lock(mutex_);
  AdmissionDecision decision;
  const double cost_seconds = std::max(0.0, flops) / flops_per_second_;
  const double wait_seconds =
      options_.workers > 0 ? (queued_flops_ / flops_per_second_) / options_.workers
                           : 0.0;
  decision.estimated_cost_ms = cost_seconds * 1e3;
  decision.estimated_wait_ms = wait_seconds * 1e3;

  // 1. Queue bound: a full admission queue is a structural reject — the
  //    client should back off rather than pile on.
  if (queue_depth_ >= options_.queue_capacity) {
    ++stats_.rejected_queue_full;
    BumpCounter("hetesim_service_rejected_total");
    decision.reject_outcome = ResponseOutcome::kRejected;
    decision.level = DegradationLevel::kFastReject;
    decision.reason = "queue full";
    decision.retry_after_ms = std::max(1.0, decision.estimated_wait_ms);
    return decision;
  }

  // 2. Deadline feasibility: estimated wait + estimated cost (with
  //    headroom) past the remaining budget means the query would burn a
  //    worker only to miss — reject before compute.
  if (remaining_deadline_ms > 0 && options_.deadline_headroom > 0) {
    const double predicted_ms =
        (wait_seconds + cost_seconds) * 1e3 * options_.deadline_headroom;
    if (predicted_ms > remaining_deadline_ms) {
      ++stats_.rejected_deadline;
      BumpCounter("hetesim_service_rejected_total");
      decision.reject_outcome = ResponseOutcome::kRejected;
      decision.level = DegradationLevel::kFastReject;
      decision.reason = "deadline infeasible";
      return decision;
    }
  }

  // 3. Tenant quota, in cost-seconds: heavy queries drain the bucket
  //    proportionally to the work they demand, so fairness is over
  //    compute, not query count.
  if (options_.tenant_rate > 0) {
    TokenBucket& bucket = BucketFor(tenant);
    if (!bucket.TryTake(cost_seconds, now)) {
      ++stats_.rejected_quota;
      BumpCounter("hetesim_service_rejected_total");
      decision.reject_outcome = ResponseOutcome::kRejected;
      decision.level = DegradationLevel::kFastReject;
      decision.reason = "tenant quota";
      decision.retry_after_ms = bucket.SecondsUntil(cost_seconds, now) * 1e3;
      return decision;
    }
  }

  // 4. Memory hard limit: above it, nothing new is admitted regardless of
  //    queue state; reservations must drain first.
  if (budget_ != nullptr &&
      budget_->UsedFraction() >= options_.memory_hard_fraction) {
    ++stats_.shed_memory;
    BumpCounter("hetesim_service_shed_total");
    decision.reject_outcome = ResponseOutcome::kShed;
    decision.level = DegradationLevel::kFastReject;
    decision.reason = "memory pressure";
    decision.retry_after_ms = std::max(1.0, decision.estimated_wait_ms);
    return decision;
  }

  // 5. Degradation ladder on the combined load signal.
  const double load = LoadLocked();
  if (load >= options_.shed_load) {
    ++stats_.shed_load;
    BumpCounter("hetesim_service_shed_total");
    decision.reject_outcome = ResponseOutcome::kShed;
    decision.level = DegradationLevel::kFastReject;
    decision.reason = "overload";
    decision.retry_after_ms = std::max(1.0, decision.estimated_wait_ms);
    return decision;
  }
  decision.admitted = true;
  if (load >= options_.degrade_truncate_load) {
    decision.level = DegradationLevel::kTruncatedTopK;
    decision.reason = "load: truncated";
    ++stats_.admitted_degraded;
  } else if (load >= options_.degrade_uncached_load) {
    decision.level = DegradationLevel::kUncached;
    decision.reason = "load: uncached";
    ++stats_.admitted_degraded;
  } else {
    decision.level = DegradationLevel::kFull;
  }
  ++stats_.admitted;
  BumpCounter("hetesim_service_admitted_total");
  ++queue_depth_;
  queued_flops_ += std::max(0.0, flops);
  return decision;
}

void AdmissionController::Finish(double flops, double exec_seconds,
                                 Clock::time_point now) {
  (void)now;
  MutexLock lock(mutex_);
  if (queue_depth_ > 0) --queue_depth_;
  queued_flops_ = std::max(0.0, queued_flops_ - std::max(0.0, flops));
  if (exec_seconds > 0 && flops > 0) {
    const double sample = std::clamp(flops / exec_seconds, kMinFlopsPerSecond,
                                     kMaxFlopsPerSecond);
    flops_per_second_ =
        (1.0 - kCalibrationAlpha) * flops_per_second_ + kCalibrationAlpha * sample;
  }
}

AdmissionStats AdmissionController::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

int AdmissionController::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_depth_;
}

double AdmissionController::load(Clock::time_point now) const {
  (void)now;
  MutexLock lock(mutex_);
  return LoadLocked();
}

double AdmissionController::flops_per_second() const {
  MutexLock lock(mutex_);
  return flops_per_second_;
}

}  // namespace hetesim::service
