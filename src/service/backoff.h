#ifndef HETESIM_SERVICE_BACKOFF_H_
#define HETESIM_SERVICE_BACKOFF_H_

#include <chrono>
#include <cstdint>

#include "common/random.h"

namespace hetesim::service {

/// \file
/// Client-side retry machinery: decorrelated-jitter backoff and a
/// circuit breaker. Both are pure state machines over caller-supplied
/// time points, so unit tests drive them with a fake clock.

struct BackoffOptions {
  double base_ms = 2.0;  ///< floor of every delay
  double cap_ms = 200.0; ///< ceiling of every delay
  double multiplier = 3.0;  ///< growth factor on the previous delay
};

/// \brief "Decorrelated jitter" backoff: each delay is drawn uniformly from
/// [base, prev * multiplier], capped. Compared to plain exponential
/// backoff-with-jitter this decorrelates retry storms faster — competing
/// clients spread over the whole interval instead of clustering at powers
/// of the base.
class DecorrelatedJitterBackoff {
 public:
  DecorrelatedJitterBackoff(const BackoffOptions& options, uint64_t seed)
      : options_(options), rng_(seed), prev_ms_(options.base_ms) {}

  /// The next delay in milliseconds. Successive calls grow (stochastically)
  /// toward the cap.
  double NextDelayMs();

  /// Resets to the initial (base) state, e.g. after a success.
  void Reset() { prev_ms_ = options_.base_ms; }

 private:
  BackoffOptions options_;
  Rng rng_;
  double prev_ms_;
};

struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// How long the breaker stays open before allowing one probe.
  double open_ms = 1000.0;
};

/// \brief Classic closed → open → half-open circuit breaker.
///
/// Closed: requests flow; consecutive failures count up. Open: requests
/// are refused locally (no network) until `open_ms` elapses. Half-open:
/// exactly one probe is allowed; its success closes the breaker, its
/// failure re-opens it. Not thread-safe; the owning client serializes.
class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(const CircuitBreakerOptions& options)
      : options_(options) {}

  enum class State { kClosed, kOpen, kHalfOpen };

  /// True when a request may be attempted now. In the open state this
  /// flips to half-open (admitting one probe) once the cooldown elapses.
  bool AllowRequest(Clock::time_point now);
  void RecordSuccess();
  void RecordFailure(Clock::time_point now);

  State state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }

 private:
  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  Clock::time_point opened_at_{};
};

}  // namespace hetesim::service

#endif  // HETESIM_SERVICE_BACKOFF_H_
