#include "service/backoff.h"

#include <algorithm>

namespace hetesim::service {

double DecorrelatedJitterBackoff::NextDelayMs() {
  const double lo = options_.base_ms;
  const double hi = std::max(lo, prev_ms_ * options_.multiplier);
  const double delay =
      std::min(options_.cap_ms, lo + (hi - lo) * rng_.UniformDouble());
  prev_ms_ = delay;
  return delay;
}

bool CircuitBreaker::AllowRequest(Clock::time_point now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      const auto cooldown = std::chrono::duration<double, std::milli>(options_.open_ms);
      if (now - opened_at_ >= cooldown) {
        state_ = State::kHalfOpen;
        return true;  // the single probe
      }
      return false;
    }
    case State::kHalfOpen:
      // Probe already in flight this cooldown; refuse further traffic
      // until its verdict arrives.
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  state_ = State::kClosed;
}

void CircuitBreaker::RecordFailure(Clock::time_point now) {
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = now;
  }
}

}  // namespace hetesim::service
