#include "service/client.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>  // hetesim-lint: allow(no-raw-thread) — sleep_for only, no threads spawned
#include <utility>

#include "common/string_util.h"

namespace hetesim::service {
namespace {

/// poll() with absolute deadline, EINTR-safe. revents, 0 on timeout, -1 on
/// failure.
int PollFd(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    const int timeout_ms =
        static_cast<int>(std::max<int64_t>(0, remaining.count()));
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (rc == 0) return 0;
    return pfd.revents;
  }
}

bool ReadFullyDeadline(int fd, uint8_t* buffer, size_t bytes,
                       Clock::time_point deadline) {
  size_t done = 0;
  while (done < bytes) {
    const int revents = PollFd(fd, POLLIN, deadline);
    if (revents <= 0 || (revents & (POLLERR | POLLNVAL)) != 0) return false;
    const ssize_t n = recv(fd, buffer + done, bytes - done, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

bool WriteFullyDeadline(int fd, const uint8_t* data, size_t bytes,
                        Clock::time_point deadline) {
  size_t done = 0;
  while (done < bytes) {
    const int revents = PollFd(fd, POLLOUT, deadline);
    if (revents <= 0 || (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
      return false;
    }
    const ssize_t n = send(fd, data + done, bytes - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketClient

SocketClient::SocketClient(std::string socket_path, int io_timeout_ms)
    : socket_path_(std::move(socket_path)), io_timeout_ms_(io_timeout_ms) {}

SocketClient::~SocketClient() { Disconnect(); }

bool SocketClient::EnsureConnected() {
  if (fd_ >= 0) return true;
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) return false;
  memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size());
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void SocketClient::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

QueryResponse SocketClient::TransportError(const QueryRequest& request,
                                           std::string message) {
  // A failed exchange leaves the stream unsynchronized; reconnect next call.
  Disconnect();
  QueryResponse response;
  response.id = request.id;
  response.outcome = ResponseOutcome::kTransportError;
  response.status_code = StatusCode::kIOError;
  response.message = std::move(message);
  return response;
}

QueryResponse SocketClient::Execute(const QueryRequest& request) {
  if (!EnsureConnected()) {
    return TransportError(request,
                          StrFormat("connect(%s) failed", socket_path_.c_str()));
  }
  const auto io_grace = std::chrono::milliseconds(io_timeout_ms_);
  const std::string frame =
      EncodeFrame(FrameType::kRequest, EncodeRequest(request));
  if (!WriteFullyDeadline(fd_, reinterpret_cast<const uint8_t*>(frame.data()),
                          frame.size(), Clock::now() + io_grace)) {
    return TransportError(request, "request write failed");
  }

  // The server may legitimately hold the response for the query's whole
  // deadline; only beyond deadline + grace is it considered stalled.
  auto read_deadline = Clock::now() + io_grace;
  if (request.deadline_ms > 0) {
    read_deadline += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(request.deadline_ms));
  }
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!ReadFullyDeadline(fd_, header_bytes, sizeof(header_bytes), read_deadline)) {
    return TransportError(request, "response header read failed");
  }
  Result<FrameHeader> header = DecodeFrameHeader(header_bytes);
  if (!header.ok()) {
    return TransportError(request,
                          std::string(header.status().message()));
  }
  if (header->type != FrameType::kResponse) {
    return TransportError(request, "unexpected frame type in response");
  }
  std::string payload(header->payload_bytes, '\0');
  if (header->payload_bytes > 0 &&
      !ReadFullyDeadline(fd_, reinterpret_cast<uint8_t*>(payload.data()),
                         payload.size(), read_deadline)) {
    return TransportError(request, "response payload read failed");
  }
  Result<QueryResponse> response = DecodeResponse(payload);
  if (!response.ok()) {
    return TransportError(request, std::string(response.status().message()));
  }
  return std::move(*response);
}

bool SocketClient::Ping() {
  if (!EnsureConnected()) return false;
  const auto deadline = Clock::now() + std::chrono::milliseconds(io_timeout_ms_);
  const std::string frame = EncodeFrame(FrameType::kPing, "");
  if (!WriteFullyDeadline(fd_, reinterpret_cast<const uint8_t*>(frame.data()),
                          frame.size(), deadline)) {
    Disconnect();
    return false;
  }
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!ReadFullyDeadline(fd_, header_bytes, sizeof(header_bytes), deadline)) {
    Disconnect();
    return false;
  }
  Result<FrameHeader> header = DecodeFrameHeader(header_bytes);
  if (!header.ok() || header->type != FrameType::kPong ||
      header->payload_bytes != 0) {
    Disconnect();
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// RetryingClient

namespace {

bool Retryable(ResponseOutcome outcome) {
  return outcome == ResponseOutcome::kRejected ||
         outcome == ResponseOutcome::kShed ||
         outcome == ResponseOutcome::kTransportError;
}

}  // namespace

RetryingClient::RetryingClient(std::unique_ptr<ServiceClient> base,
                               const RetryOptions& options)
    : RetryingClient(
          std::move(base), options, [] { return Clock::now(); },
          [](double ms) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(ms));
          }) {}

RetryingClient::RetryingClient(std::unique_ptr<ServiceClient> base,
                               const RetryOptions& options, NowFn now,
                               SleepFn sleep)
    : base_(std::move(base)),
      options_(options),
      backoff_(options.backoff, options.seed),
      breaker_(options.breaker),
      now_(std::move(now)),
      sleep_(std::move(sleep)) {}

QueryResponse RetryingClient::Execute(const QueryRequest& request) {
  const Clock::time_point start = now_();
  // The original deadline is a wall across all attempts, not per attempt.
  const bool has_deadline = request.deadline_ms > 0;
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      has_deadline ? request.deadline_ms : 0));

  QueryResponse last;
  last.id = request.id;
  last.outcome = ResponseOutcome::kTransportError;
  last.status_code = StatusCode::kIOError;
  last.message = "no attempt made";

  for (int attempt = 0; attempt < std::max(1, options_.max_attempts); ++attempt) {
    const Clock::time_point attempt_start = now_();
    double remaining_ms = 0;
    if (has_deadline) {
      remaining_ms =
          std::chrono::duration<double, std::milli>(deadline - attempt_start)
              .count();
      if (remaining_ms <= 0) {
        last.outcome = ResponseOutcome::kDeadlineExceeded;
        last.status_code = StatusCode::kDeadlineExceeded;
        last.message = "deadline exhausted before attempt";
        return last;
      }
    }

    if (!breaker_.AllowRequest(attempt_start)) {
      last.outcome = ResponseOutcome::kTransportError;
      last.status_code = StatusCode::kResourceExhausted;
      last.message = "circuit breaker open";
      return last;
    }

    QueryRequest attempt_request = request;
    if (has_deadline) attempt_request.deadline_ms = remaining_ms;
    last = base_->Execute(attempt_request);

    if (last.outcome == ResponseOutcome::kTransportError) {
      breaker_.RecordFailure(now_());
    } else {
      // Any well-formed server answer — including a rejection — proves the
      // transport healthy.
      breaker_.RecordSuccess();
    }
    if (!Retryable(last.outcome)) return last;
    if (attempt + 1 >= std::max(1, options_.max_attempts)) return last;

    // Server hint wins when it asks for more patience than the jitter draw.
    const double delay_ms = std::max(backoff_.NextDelayMs(), last.retry_after_ms);
    if (has_deadline) {
      const double budget_ms =
          std::chrono::duration<double, std::milli>(deadline - now_()).count();
      // Never sleep past the wall: if the delay (plus any margin for the
      // attempt itself) cannot fit, report what we have now.
      if (delay_ms >= budget_ms) return last;
    }
    ++retries_attempted_;
    sleep_(delay_ms);
  }
  return last;
}

}  // namespace hetesim::service
