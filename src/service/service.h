#ifndef HETESIM_SERVICE_SERVICE_H_
#define HETESIM_SERVICE_SERVICE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/annotations.h"
#include "common/context.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/hetesim.h"
#include "core/materialize.h"
#include "core/topk.h"
#include "hin/graph.h"
#include "service/admission.h"
#include "service/protocol.h"

namespace hetesim::service {

/// Service-level tuning, assembled by `hetesim_serve` / the workload
/// harness from flags and scenario directives.
struct ServiceOptions {
  AdmissionOptions admission;
  /// Service-wide memory budget in MB (cache + per-query working set).
  /// 0 = unlimited (no memory-pressure shedding).
  size_t memory_mb = 0;
  /// Share one `PathMatrixCache` across queries (the §4.6 acceleration).
  bool cache_enabled = true;
  /// Optional persistent tier under the shared cache (DESIGN.md §16):
  /// misses are served from it before recomputing and evictions are
  /// demoted into it, so a restarted server warms from disk. Opened by the
  /// caller (`hetesim_serve --store-dir`) so open failures surface there;
  /// ignored when `cache_enabled` is false.
  std::shared_ptr<MatrixStore> store;
  /// Engine options for admitted queries. `num_threads` here is per-query
  /// intra-query parallelism; inter-query parallelism is
  /// `admission.workers`.
  HeteSimOptions engine;
  /// Deadline slice for the kTruncatedTopK degradation level: a degraded
  /// top-k runs under min(its own deadline, now + this), so overloaded
  /// queries surrender their worker quickly and return a marked partial.
  double truncate_slice_ms = 10.0;
};

/// \brief Handle to one admitted (or refused) query.
///
/// Returned by `QueryService::Submit`. Refused queries are born done;
/// admitted ones complete when their pool task finishes. Thread-safe.
class PendingQuery {
 public:
  /// Blocks until the response is ready.
  const QueryResponse& Wait() const EXCLUDES(mutex_);
  /// Blocks up to `ms`; false on timeout.
  bool WaitForMs(int64_t ms) const EXCLUDES(mutex_);
  bool done() const EXCLUDES(mutex_);

  /// Requests cooperative cancellation of the running query (no-op once
  /// done). The connection layer calls this when the client disconnects.
  void Cancel() const { token_.Cancel(); }

 private:
  friend class QueryService;

  void Complete(QueryResponse response) EXCLUDES(mutex_);

  CancelToken token_;
  mutable Mutex mutex_;
  mutable CondVar cond_;
  bool done_ GUARDED_BY(mutex_) = false;
  QueryResponse response_ GUARDED_BY(mutex_);
};

/// Point-in-time service counters for reports and introspection.
struct ServiceStats {
  AdmissionStats admission;
  uint64_t completed = 0;
  uint64_t served = 0;
  uint64_t degraded = 0;
  size_t memory_used_bytes = 0;
  size_t memory_peak_bytes = 0;
  double flops_per_second = 0;
};

/// \brief The resident query engine: admission pipeline in front of a
/// worker pool executing HeteSim queries under per-query contexts.
///
/// One instance serves one graph. `Submit` runs the full admission
/// pipeline synchronously on the caller's thread (shed before compute) and
/// either returns a completed rejection or enqueues the query on the owned
/// worker pool. Used directly (in-process mode of the workload harness)
/// or behind `SocketServer` (hetesim_serve).
class QueryService {
 public:
  /// `graph` must outlive the service.
  static std::unique_ptr<QueryService> Create(const HinGraph& graph,
                                              const ServiceOptions& options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits or refuses `request`. Never blocks on compute: refusals return
  /// an already-done handle, admissions return a handle completed by a
  /// worker. Never returns null.
  std::shared_ptr<PendingQuery> Submit(const QueryRequest& request)
      EXCLUDES(mutex_);

  /// Convenience: `Submit` + `Wait`.
  QueryResponse Execute(const QueryRequest& request);

  /// Cancels every in-flight query and drains the worker pool. Idempotent;
  /// also run by the destructor. After shutdown, `Submit` sheds everything.
  void Shutdown() EXCLUDES(mutex_);

  ServiceStats stats() const EXCLUDES(mutex_);
  /// Bytes currently reserved on the service budget (0 when unbudgeted).
  size_t MemoryUsedBytes() const;
  const HinGraph& graph() const { return graph_; }

 private:
  /// Per-meta-path prepared state, shared by all queries on that path.
  struct PathState {
    explicit PathState(MetaPath p) : path(std::move(p)) {}

    MetaPath path;
    /// Cost-model estimate of materializing the full transition chain.
    double chain_flops = 0;
    /// Estimate of one single-source propagation along the chain.
    double row_flops = 0;
    Index num_targets = 0;
    Mutex searcher_mutex;
    /// Lazily prepared on the first top-k query (charged `chain_flops`).
    std::unique_ptr<TopKSearcher> searcher GUARDED_BY(searcher_mutex);
    bool searcher_failed GUARDED_BY(searcher_mutex) = false;
  };

  QueryService(const HinGraph& graph, const ServiceOptions& options);

  /// Looks up (or builds) the prepared state for `spec`; InvalidArgument
  /// on a malformed or schema-incompatible path.
  [[nodiscard]] Result<std::shared_ptr<PathState>> StateFor(const std::string& spec)
      EXCLUDES(mutex_);

  /// Cost-model estimate for one request (flops) and its transient
  /// working-set (bytes).
  static double EstimateFlops(const PathState& state, const QueryRequest& request);
  static size_t EstimateBytes(const PathState& state, const QueryRequest& request);

  /// Worker-side execution of an admitted request.
  QueryResponse Run(const QueryRequest& request, PathState& state,
                    DegradationLevel level, const QueryContext& ctx);

  std::shared_ptr<PendingQuery> CompleteNow(QueryResponse response);
  void RecordCompletion(const QueryResponse& response) EXCLUDES(mutex_);

  const HinGraph& graph_;
  const ServiceOptions options_;

  std::shared_ptr<MemoryBudget> budget_;  // null when memory_mb == 0
  std::shared_ptr<PathMatrixCache> cache_;
  std::unique_ptr<HeteSimEngine> engine_;           // cache-backed
  std::unique_ptr<HeteSimEngine> engine_uncached_;  // degradation level 1
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<ThreadPool> pool_;

  mutable Mutex mutex_;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  std::unordered_map<std::string, std::shared_ptr<PathState>> paths_
      GUARDED_BY(mutex_);
  std::unordered_set<std::shared_ptr<PendingQuery>> inflight_
      GUARDED_BY(mutex_);
  uint64_t completed_ GUARDED_BY(mutex_) = 0;
  uint64_t served_ GUARDED_BY(mutex_) = 0;
  uint64_t degraded_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hetesim::service

#endif  // HETESIM_SERVICE_SERVICE_H_
