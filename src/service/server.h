#ifndef HETESIM_SERVICE_SERVER_H_
#define HETESIM_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "service/service.h"

namespace hetesim::service {

struct ServerOptions {
  /// Filesystem path of the Unix domain socket. A stale file from a
  /// previous run is unlinked on bind.
  std::string socket_path;
  /// Connections served concurrently; an accept beyond this is closed
  /// immediately (the client sees a transport error and backs off).
  int max_connections = 32;
  /// Slow-client guard: a peer that keeps a frame read or write blocked
  /// longer than this is disconnected — one stalled client must never pin
  /// a connection handler forever.
  int io_timeout_ms = 5000;
  /// Granularity of the pending-query wait loop; bounds how fast a client
  /// disconnect turns into a query cancellation.
  int poll_interval_ms = 20;
};

/// \brief Unix-socket front end for a `QueryService`.
///
/// One handler per connection (bounded by `max_connections`), running on
/// an owned `ThreadPool`; the protocol is lockstep request/response
/// (service/protocol.h). While a query runs, the handler watches the
/// socket: a client that disconnects mid-query cancels it (via
/// `PendingQuery::Cancel`), so abandoned work stops consuming workers.
///
/// Fault points (compiled out unless HETESIM_FAULT_INJECTION):
///   service.frame.corrupt — flips a payload byte after read, exercising
///                           the decode-reject path against a live peer
///   service.conn.cancel   — cancels a pending query mid-flight, as a
///                           vanished client would
class SocketServer {
 public:
  /// Binds, listens, and starts accepting. `service` must outlive the
  /// server.
  [[nodiscard]] static Result<std::unique_ptr<SocketServer>> Start(
      QueryService* service, const ServerOptions& options);

  /// Stops accepting, disconnects all clients (cancelling their in-flight
  /// queries), joins the handler pool, and removes the socket file.
  /// Idempotent; also run by the destructor.
  void Stop();
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  const std::string& socket_path() const { return options_.socket_path; }

  struct Stats {
    uint64_t accepted = 0;
    uint64_t rejected_capacity = 0;
    uint64_t closed_stall = 0;
    uint64_t closed_protocol = 0;
    uint64_t disconnect_cancels = 0;
    uint64_t requests = 0;
  };
  Stats stats() const;

 private:
  SocketServer(QueryService* service, const ServerOptions& options);

  void AcceptLoop();
  void HandleConnection(int fd);
  /// One request/response exchange; false = close the connection.
  bool ServeOne(int fd);

  /// poll()-guarded exact-length IO; false on timeout/EOF/error.
  bool ReadFully(int fd, uint8_t* buffer, size_t bytes);
  bool WriteFully(int fd, const uint8_t* data, size_t bytes);
  /// True when the peer hung up or errored (non-blocking probe).
  static bool PeerGone(int fd);

  void TrackConnection(int fd, bool add) EXCLUDES(mutex_);

  QueryService* const service_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<int> active_connections_{0};

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_capacity_{0};
  std::atomic<uint64_t> closed_stall_{0};
  std::atomic<uint64_t> closed_protocol_{0};
  std::atomic<uint64_t> disconnect_cancels_{0};
  std::atomic<uint64_t> requests_{0};

  mutable Mutex mutex_;
  std::vector<int> connection_fds_ GUARDED_BY(mutex_);
  bool stopped_ GUARDED_BY(mutex_) = false;

  /// Declared last so their destructors join before members vanish.
  std::unique_ptr<ThreadPool> handler_pool_;
  std::unique_ptr<ThreadPool> accept_pool_;
};

}  // namespace hetesim::service

#endif  // HETESIM_SERVICE_SERVER_H_
