#ifndef HETESIM_SERVICE_ADMISSION_H_
#define HETESIM_SERVICE_ADMISSION_H_

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/context.h"
#include "common/mutex.h"
#include "service/protocol.h"

namespace hetesim::service {

/// \file
/// The admission pipeline (DESIGN.md §13): every query passes through one
/// synchronous `Admit` call *before* any compute is queued. The controller
/// decides, in order:
///
///   1. queue bound      — is there room at all?
///   2. deadline check   — can this query plausibly finish in time, given
///                         its cost-model estimate and the queue's current
///                         drain rate? (shed before compute, not during)
///   3. tenant quota     — token bucket in *cost-seconds*, weighted
///   4. memory pressure  — `MemoryBudget::UsedFraction()` thresholds
///   5. degradation      — pick the cheapest level that keeps load bounded
///
/// All time is passed in explicitly (`Clock::time_point now`) so unit tests
/// drive the controller with a fake clock; the controller itself never
/// reads the wall clock.

using Clock = std::chrono::steady_clock;

/// Token bucket in abstract cost units. Not thread-safe on its own: the
/// `AdmissionController` serializes access under its mutex.
class TokenBucket {
 public:
  /// `rate` units refill per second up to `burst`; starts full.
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  /// Refills for elapsed time then spends `cost` if available.
  bool TryTake(double cost, Clock::time_point now);
  /// Seconds until `cost` tokens will be available (0 if already).
  double SecondsUntil(double cost, Clock::time_point now) const;

  double tokens(Clock::time_point now) const;

 private:
  void RefillLocked(Clock::time_point now);

  double rate_;
  double burst_;
  double tokens_;
  bool primed_ = false;
  Clock::time_point last_refill_{};
};

/// Tuning knobs. Defaults target an interactive service on a few cores;
/// docs/performance.md §10 covers how to size them.
struct AdmissionOptions {
  /// Executor threads draining the admitted queue (used to convert queued
  /// cost into an estimated wait).
  int workers = 2;
  /// Admitted-but-not-finished query cap. Beyond it, reject outright.
  int queue_capacity = 64;
  /// Initial cost-model calibration: estimated flops per second of one
  /// worker. Recalibrated online (EWMA) from measured executions.
  double flops_per_second = 2e8;
  /// Per-tenant sustained budget in cost-seconds per second. <= 0 disables
  /// quota enforcement.
  double tenant_rate = 0.0;
  /// Per-tenant burst allowance in cost-seconds.
  double tenant_burst = 1.0;
  /// Optional per-tenant weight multipliers on `tenant_rate` (weighted
  /// fairness). Tenants beyond the vector (or with no entry) get weight 1.
  std::vector<double> tenant_weights;
  /// Load thresholds of the degradation ladder, as a fraction of
  /// queue/memory capacity in use. Must be increasing.
  double degrade_uncached_load = 0.50;
  double degrade_truncate_load = 0.75;
  double shed_load = 0.95;
  /// Memory-pressure thresholds on `MemoryBudget::UsedFraction()`: above
  /// `memory_soft_fraction` counts toward the load signal; above
  /// `memory_hard_fraction` queries are shed outright.
  double memory_soft_fraction = 0.80;
  double memory_hard_fraction = 0.95;
  /// Safety factor applied to the estimated wait+cost when checking a
  /// deadline (>1 rejects earlier; 0 disables deadline-aware rejection).
  double deadline_headroom = 1.2;
};

/// Outcome of one `Admit` call.
struct AdmissionDecision {
  bool admitted = false;
  /// When admitted: serving level. When not: always kFastReject.
  DegradationLevel level = DegradationLevel::kFull;
  /// When rejected: kRejected (structural: queue full, hopeless deadline,
  /// quota) or kShed (transient load/memory pressure).
  ResponseOutcome reject_outcome = ResponseOutcome::kRejected;
  /// Client hint: suggested wait before retrying, ms. 0 = no hint.
  double retry_after_ms = 0;
  /// Human-readable reason for non-admission (stable prefixes, used by
  /// tests and surfaced in responses).
  const char* reason = "";
  /// Estimated queue wait and execution cost at decision time, ms.
  double estimated_wait_ms = 0;
  double estimated_cost_ms = 0;
};

/// Monotonic counters for reporting (`ServiceStats()` / metrics).
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t admitted_degraded = 0;
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_deadline = 0;
  uint64_t rejected_quota = 0;
  uint64_t shed_load = 0;
  uint64_t shed_memory = 0;

  uint64_t rejected() const {
    return rejected_queue_full + rejected_deadline + rejected_quota;
  }
  uint64_t shed() const { return shed_load + shed_memory; }
};

/// \brief The admission decision point. Thread-safe; every public method
/// may be called concurrently from connection handlers.
class AdmissionController {
 public:
  /// `budget` is the service-wide memory budget observed for pressure
  /// shedding; may be null (no memory signal). Non-owning.
  AdmissionController(const AdmissionOptions& options, const MemoryBudget* budget);

  /// Decides whether a query with estimated `flops` and `remaining_deadline`
  /// (<= 0 means no deadline) from `tenant` may enter the queue. On
  /// admission the controller has charged the queue and quota; the caller
  /// MUST later call `Finish` exactly once.
  AdmissionDecision Admit(uint32_t tenant, double flops, double remaining_deadline_ms,
                          Clock::time_point now) EXCLUDES(mutex_);

  /// Releases the queue charge taken by an admitted query and feeds the
  /// measured execution time back into the cost calibration.
  /// `exec_seconds` <= 0 skips calibration (e.g. the query never ran).
  void Finish(double flops, double exec_seconds, Clock::time_point now)
      EXCLUDES(mutex_);

  AdmissionStats stats() const EXCLUDES(mutex_);
  /// Queries admitted and not yet finished.
  int queue_depth() const EXCLUDES(mutex_);
  /// Current combined load signal in [0, 1] (max of queue and memory
  /// fractions) — what the degradation ladder keys on.
  double load(Clock::time_point now) const EXCLUDES(mutex_);
  /// Current calibrated throughput estimate.
  double flops_per_second() const EXCLUDES(mutex_);

 private:
  double LoadLocked() const REQUIRES(mutex_);
  TokenBucket& BucketFor(uint32_t tenant) REQUIRES(mutex_);

  const AdmissionOptions options_;
  const MemoryBudget* const budget_;  // non-owning, may be null

  mutable Mutex mutex_;
  int queue_depth_ GUARDED_BY(mutex_) = 0;
  double queued_flops_ GUARDED_BY(mutex_) = 0;
  double flops_per_second_ GUARDED_BY(mutex_);
  AdmissionStats stats_ GUARDED_BY(mutex_);
  std::unordered_map<uint32_t, TokenBucket> buckets_ GUARDED_BY(mutex_);
};

}  // namespace hetesim::service

#endif  // HETESIM_SERVICE_ADMISSION_H_
