#include "service/protocol.h"

#include <cstring>
#include <limits>

#include "common/string_util.h"

namespace hetesim::service {
namespace {

// Payload field layout versions. Bumped when a struct gains fields; the
// decoder rejects versions it does not know rather than misparsing.
constexpr uint8_t kRequestVersion = 1;
constexpr uint8_t kResponseVersion = 1;

/// Little-endian append-only serializer over a std::string.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }

  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reader. Every accessor either succeeds or
/// returns InvalidArgument; nothing ever reads past `size_`.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data)
      : data_(reinterpret_cast<const uint8_t*>(data.data())), size_(data.size()) {}

  [[nodiscard]] Status U8(uint8_t* out) {
    HETESIM_RETURN_NOT_OK(Need(1));
    *out = data_[pos_++];
    return Status::OK();
  }
  [[nodiscard]] Status U32(uint32_t* out) {
    HETESIM_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *out = v;
    return Status::OK();
  }
  [[nodiscard]] Status U64(uint64_t* out) {
    HETESIM_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *out = v;
    return Status::OK();
  }
  [[nodiscard]] Status I64(int64_t* out) {
    uint64_t bits = 0;
    HETESIM_RETURN_NOT_OK(U64(&bits));
    *out = static_cast<int64_t>(bits);
    return Status::OK();
  }
  [[nodiscard]] Status F64(double* out) {
    uint64_t bits = 0;
    HETESIM_RETURN_NOT_OK(U64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }
  [[nodiscard]] Status Str(std::string* out, size_t max_bytes) {
    uint32_t len = 0;
    HETESIM_RETURN_NOT_OK(U32(&len));
    if (len > max_bytes) {
      return Status::InvalidArgument(
          StrFormat("string field of %u bytes exceeds limit %zu", len, max_bytes));
    }
    HETESIM_RETURN_NOT_OK(Need(len));
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  [[nodiscard]] Status CheckDone() const {
    if (pos_ != size_) {
      return Status::InvalidArgument(
          StrFormat("%zu trailing bytes after payload", size_ - pos_));
    }
    return Status::OK();
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  [[nodiscard]] Status Need(size_t n) const {
    if (size_ - pos_ < n) {
      return Status::InvalidArgument(
          StrFormat("truncated payload: need %zu bytes at offset %zu of %zu", n,
                    pos_, size_));
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// An element-count field in a payload can promise at most what the frame
// cap could carry; anything larger is corruption, rejected before the
// vector reserve so a hostile length can never force an over-allocation.
constexpr uint32_t kMaxWireElements = kMaxFramePayload / 8;

}  // namespace

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPair: return "pair";
    case QueryKind::kSingleSource: return "single_source";
    case QueryKind::kTopK: return "topk";
  }
  return "unknown";
}

const char* ResponseOutcomeName(ResponseOutcome outcome) {
  switch (outcome) {
    case ResponseOutcome::kOk: return "ok";
    case ResponseOutcome::kDegraded: return "degraded";
    case ResponseOutcome::kRejected: return "rejected";
    case ResponseOutcome::kShed: return "shed";
    case ResponseOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case ResponseOutcome::kCancelled: return "cancelled";
    case ResponseOutcome::kError: return "error";
    case ResponseOutcome::kTransportError: return "transport_error";
  }
  return "unknown";
}

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFull: return "full";
    case DegradationLevel::kUncached: return "uncached";
    case DegradationLevel::kTruncatedTopK: return "truncated_topk";
    case DegradationLevel::kFastReject: return "fast_reject";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  ByteWriter w;
  w.U32(kFrameMagic);
  w.U8(static_cast<uint8_t>(type));
  w.U8(0);
  w.U8(0);
  w.U8(0);
  w.U32(static_cast<uint32_t>(payload.size()));
  std::string frame = w.Take();
  frame.append(payload.data(), payload.size());
  return frame;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data) {
  ByteReader r(std::string_view(reinterpret_cast<const char*>(data), kFrameHeaderBytes));
  uint32_t magic = 0;
  HETESIM_RETURN_NOT_OK(r.U32(&magic));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument(StrFormat("bad frame magic 0x%08x", magic));
  }
  uint8_t type = 0;
  HETESIM_RETURN_NOT_OK(r.U8(&type));
  if (type < static_cast<uint8_t>(FrameType::kRequest) ||
      type > static_cast<uint8_t>(FrameType::kPong)) {
    return Status::InvalidArgument(StrFormat("unknown frame type %u", type));
  }
  for (int i = 0; i < 3; ++i) {
    uint8_t reserved = 0;
    HETESIM_RETURN_NOT_OK(r.U8(&reserved));
    if (reserved != 0) {
      return Status::InvalidArgument("non-zero reserved byte in frame header");
    }
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(type);
  HETESIM_RETURN_NOT_OK(r.U32(&header.payload_bytes));
  if (header.payload_bytes > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("frame payload %u exceeds cap %u", header.payload_bytes,
                  kMaxFramePayload));
  }
  return header;
}

std::string EncodeRequest(const QueryRequest& request) {
  ByteWriter w;
  w.U8(kRequestVersion);
  w.U64(request.id);
  w.U8(static_cast<uint8_t>(request.kind));
  w.U32(request.tenant);
  w.F64(request.deadline_ms);
  w.Str(request.path);
  w.I64(request.source);
  w.I64(request.target);
  w.U32(static_cast<uint32_t>(request.k));
  return w.Take();
}

Result<QueryRequest> DecodeRequest(std::string_view payload) {
  ByteReader r(payload);
  uint8_t version = 0;
  HETESIM_RETURN_NOT_OK(r.U8(&version));
  if (version != kRequestVersion) {
    return Status::InvalidArgument(StrFormat("unknown request version %u", version));
  }
  QueryRequest req;
  HETESIM_RETURN_NOT_OK(r.U64(&req.id));
  uint8_t kind = 0;
  HETESIM_RETURN_NOT_OK(r.U8(&kind));
  if (kind > static_cast<uint8_t>(QueryKind::kTopK)) {
    return Status::InvalidArgument(StrFormat("unknown query kind %u", kind));
  }
  req.kind = static_cast<QueryKind>(kind);
  HETESIM_RETURN_NOT_OK(r.U32(&req.tenant));
  HETESIM_RETURN_NOT_OK(r.F64(&req.deadline_ms));
  HETESIM_RETURN_NOT_OK(r.Str(&req.path, kMaxPathSpecBytes));
  HETESIM_RETURN_NOT_OK(r.I64(&req.source));
  HETESIM_RETURN_NOT_OK(r.I64(&req.target));
  uint32_t k = 0;
  HETESIM_RETURN_NOT_OK(r.U32(&k));
  if (k > static_cast<uint32_t>(std::numeric_limits<int32_t>::max())) {
    return Status::InvalidArgument(StrFormat("k %u out of range", k));
  }
  req.k = static_cast<int32_t>(k);
  HETESIM_RETURN_NOT_OK(r.CheckDone());
  return req;
}

std::string EncodeResponse(const QueryResponse& response) {
  ByteWriter w;
  w.U8(kResponseVersion);
  w.U64(response.id);
  w.U8(static_cast<uint8_t>(response.outcome));
  w.U8(static_cast<uint8_t>(response.degradation));
  w.U32(static_cast<uint32_t>(response.status_code));
  w.Str(std::string_view(response.message).substr(0, kMaxMessageBytes));
  w.F64(response.retry_after_ms);
  w.U8(response.truncated ? 1 : 0);
  w.U32(static_cast<uint32_t>(response.items.size()));
  for (const Scored& item : response.items) {
    w.I64(item.id);
    w.F64(item.score);
  }
  w.U32(static_cast<uint32_t>(response.scores.size()));
  for (double score : response.scores) w.F64(score);
  w.F64(response.queue_ms);
  w.F64(response.exec_ms);
  return w.Take();
}

Result<QueryResponse> DecodeResponse(std::string_view payload) {
  ByteReader r(payload);
  uint8_t version = 0;
  HETESIM_RETURN_NOT_OK(r.U8(&version));
  if (version != kResponseVersion) {
    return Status::InvalidArgument(StrFormat("unknown response version %u", version));
  }
  QueryResponse resp;
  HETESIM_RETURN_NOT_OK(r.U64(&resp.id));
  uint8_t outcome = 0;
  HETESIM_RETURN_NOT_OK(r.U8(&outcome));
  // kTransportError is client-local; a peer claiming it is corrupt.
  if (outcome >= static_cast<uint8_t>(ResponseOutcome::kTransportError)) {
    return Status::InvalidArgument(StrFormat("unknown outcome %u", outcome));
  }
  resp.outcome = static_cast<ResponseOutcome>(outcome);
  uint8_t degradation = 0;
  HETESIM_RETURN_NOT_OK(r.U8(&degradation));
  if (degradation > static_cast<uint8_t>(DegradationLevel::kFastReject)) {
    return Status::InvalidArgument(StrFormat("unknown degradation %u", degradation));
  }
  resp.degradation = static_cast<DegradationLevel>(degradation);
  uint32_t code = 0;
  HETESIM_RETURN_NOT_OK(r.U32(&code));
  if (code > static_cast<uint32_t>(StatusCode::kCancelled)) {
    return Status::InvalidArgument(StrFormat("unknown status code %u", code));
  }
  resp.status_code = static_cast<StatusCode>(code);
  HETESIM_RETURN_NOT_OK(r.Str(&resp.message, kMaxMessageBytes));
  HETESIM_RETURN_NOT_OK(r.F64(&resp.retry_after_ms));
  uint8_t truncated = 0;
  HETESIM_RETURN_NOT_OK(r.U8(&truncated));
  if (truncated > 1) {
    return Status::InvalidArgument("non-boolean truncation marker");
  }
  resp.truncated = truncated != 0;
  uint32_t num_items = 0;
  HETESIM_RETURN_NOT_OK(r.U32(&num_items));
  if (num_items > kMaxWireElements || r.remaining() / 16 < num_items) {
    return Status::InvalidArgument(StrFormat("item count %u exceeds payload", num_items));
  }
  resp.items.reserve(num_items);
  for (uint32_t i = 0; i < num_items; ++i) {
    Scored item;
    HETESIM_RETURN_NOT_OK(r.I64(&item.id));
    HETESIM_RETURN_NOT_OK(r.F64(&item.score));
    resp.items.push_back(item);
  }
  uint32_t num_scores = 0;
  HETESIM_RETURN_NOT_OK(r.U32(&num_scores));
  if (num_scores > kMaxWireElements || r.remaining() / 8 < num_scores) {
    return Status::InvalidArgument(
        StrFormat("score count %u exceeds payload", num_scores));
  }
  resp.scores.reserve(num_scores);
  for (uint32_t i = 0; i < num_scores; ++i) {
    double score = 0;
    HETESIM_RETURN_NOT_OK(r.F64(&score));
    resp.scores.push_back(score);
  }
  HETESIM_RETURN_NOT_OK(r.F64(&resp.queue_ms));
  HETESIM_RETURN_NOT_OK(r.F64(&resp.exec_ms));
  HETESIM_RETURN_NOT_OK(r.CheckDone());
  return resp;
}

}  // namespace hetesim::service
