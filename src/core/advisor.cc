#include "core/advisor.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/path_matrix.h"
#include "matrix/ops.h"

namespace hetesim {

namespace {

/// Approximate CSR footprint: one Index + one double per entry plus the
/// row-pointer array.
size_t MatrixBytes(const SparseMatrix& m) {
  return static_cast<size_t>(m.NumNonZeros()) * (sizeof(Index) + sizeof(double)) +
         (static_cast<size_t>(m.rows()) + 1) * sizeof(Index);
}

struct Candidate {
  size_t bytes = 0;
  double flops = 0.0;
  double frequency = 0.0;
};

}  // namespace

Result<MaterializationPlan> AdviseMaterialization(
    const HinGraph& graph, const std::vector<WorkloadEntry>& workload,
    const AdvisorOptions& options) {
  if (workload.empty()) {
    return Status::InvalidArgument("workload must be non-empty");
  }
  for (const WorkloadEntry& entry : workload) {
    if (entry.frequency <= 0.0) {
      return Status::InvalidArgument("workload frequencies must be positive");
    }
  }

  // Gather candidates: both halves of every workload path, pooled by
  // canonical key. std::map keeps the plan deterministic.
  std::map<std::string, Candidate> candidates;
  for (const WorkloadEntry& entry : workload) {
    PathDecomposition decomposition = DecomposePath(graph, entry.path);
    struct Half {
      std::string key;
      const std::vector<SparseMatrix>* chain;
    };
    const Half halves[] = {
        {PathMatrixCache::LeftKey(entry.path), &decomposition.left_transitions},
        {PathMatrixCache::RightKey(entry.path), &decomposition.right_transitions},
    };
    for (const Half& half : halves) {
      Candidate& candidate = candidates[half.key];
      candidate.frequency += entry.frequency;
      if (candidate.bytes == 0) {  // first sighting: measure cost and size
        candidate.flops = ChainProductFlops(*half.chain);
        candidate.bytes = MatrixBytes(MultiplyChain(*half.chain));
      }
    }
  }

  // Greedy knapsack by benefit per byte.
  MaterializationPlan plan;
  plan.candidates = candidates.size();
  std::vector<MaterializationChoice> ranked;
  ranked.reserve(candidates.size());
  for (const auto& [key, candidate] : candidates) {
    ranked.push_back({key, candidate.bytes, candidate.frequency * candidate.flops});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const MaterializationChoice& a, const MaterializationChoice& b) {
              const double density_a =
                  a.benefit / static_cast<double>(std::max<size_t>(a.bytes, 1));
              const double density_b =
                  b.benefit / static_cast<double>(std::max<size_t>(b.bytes, 1));
              if (density_a != density_b) return density_a > density_b;
              return a.key < b.key;
            });
  for (const MaterializationChoice& choice : ranked) {
    if (options.memory_budget_bytes != 0 &&
        plan.total_bytes + choice.bytes > options.memory_budget_bytes) {
      continue;  // try smaller candidates further down the ranking
    }
    plan.choices.push_back(choice);
    plan.total_bytes += choice.bytes;
    plan.total_benefit += choice.benefit;
  }
  return plan;
}

Status ApplyMaterializationPlan(const HinGraph& graph,
                                const std::vector<WorkloadEntry>& workload,
                                const MaterializationPlan& plan,
                                PathMatrixCache* cache) {
  if (cache == nullptr) {
    return Status::InvalidArgument("cache must be non-null");
  }
  std::set<std::string> chosen;
  for (const MaterializationChoice& choice : plan.choices) chosen.insert(choice.key);
  std::set<std::string> touched;
  for (const WorkloadEntry& entry : workload) {
    const std::string left_key = PathMatrixCache::LeftKey(entry.path);
    if (chosen.count(left_key) != 0) {
      cache->GetLeft(graph, entry.path);
      touched.insert(left_key);
    }
    const std::string right_key = PathMatrixCache::RightKey(entry.path);
    if (chosen.count(right_key) != 0) {
      cache->GetRight(graph, entry.path);
      touched.insert(right_key);
    }
  }
  if (touched.size() < chosen.size()) {
    return Status::InvalidArgument(
        "plan references halves not derivable from this workload");
  }
  return Status::OK();
}

}  // namespace hetesim
