#ifndef HETESIM_CORE_MATERIALIZE_H_
#define HETESIM_CORE_MATERIALIZE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/annotations.h"
#include "common/context.h"
#include "common/mutex.h"
#include "core/path_matrix.h"
#include "hin/graph.h"
#include "hin/metapath.h"
#include "matrix/sparse.h"

namespace hetesim {

class MatrixStore;  // store/store.h; optional second tier

/// \brief Cache of materialized reachable-probability products, the
/// Section 4.6 acceleration: "for frequently-used relevance paths, the
/// relatedness matrix can be calculated off-line" and "the concatenation of
/// partially materialized reachable probability matrices also helps to
/// fasten the computation".
///
/// Entries are keyed by the *half's* canonical step string (see `LeftKey`
/// / `RightKey` / `ReachKey`), so partial products are shared across every
/// full path whose decomposition produces them: the left half of A-P-C-P-A
/// serves A-P-C-P-C, the reachable matrix of A-P serves as the left half
/// of A-P-P'-style paths, and the right half of P equals the left half of
/// P reversed. Thread-safe; share one cache across engines via
/// `std::shared_ptr`.
///
/// Concurrency guarantees:
///  * Each key is computed **at most once per residency**, even under a
///    miss-storm where many threads request the same not-yet-materialized
///    half at the same instant: the first requester claims the key and
///    computes; later requesters block on the in-flight result instead of
///    duplicating the (potentially huge) SpGEMM chain. `ComputeCount(key)`
///    exposes the per-key computation count so tests can assert this (it
///    stays exactly 1 unless the entry is evicted or its computation fails
///    and is legitimately redone).
///  * Different keys never serialize against each other — the map lock is
///    only held for lookup/insert/eviction bookkeeping, never during a
///    computation or while waiting on one.
///  * `Clear()` during an in-flight computation is safe: the computation
///    finishes against its detached slot and its waiters still receive the
///    matrix; the cache simply no longer retains it.
///
/// Failure semantics (see DESIGN.md §9):
///  * A *waiter* whose deadline expires or that is cancelled abandons the
///    shared future without poisoning the slot — the computing thread still
///    publishes, and later callers get the cached matrix.
///  * A *computation* that fails (its claimant's deadline/cancellation, an
///    injected allocation fault) publishes the error to current waiters and
///    removes the slot, so the key is recomputed by the next caller whose
///    own context is still alive — per-key recompute-or-propagate, never a
///    permanently wedged entry.
///
/// Memory budgeting: attach a `MemoryBudget` via `SetMemoryBudget` and
/// every materialized matrix is charged (`SparseMatrix::ApproxBytes`)
/// before admission. Admission that would exceed the limit first evicts
/// ready entries in cost-aware-LRU order (GreedyDual-Size: lowest
/// `clock + compute_seconds / bytes` first, so cheap-to-recompute bulky
/// halves go before expensive compact ones); if the matrix still cannot
/// fit it is returned to callers *uncached*. Accounted bytes therefore
/// never exceed the budget limit, which is the `--max-cache-mb` guarantee.
/// In-flight entries are never evicted.
///
/// Two-tier operation: with a `MatrixStore` attached (`AttachStore`), the
/// cache becomes the RAM tier over a persistent compressed tier. A miss
/// probes the store before recomputing (the promoted matrix is checksum-
/// validated by the store and budget-charged through the normal admission
/// path, with `ComputeCount` untouched — serving from disk is not a
/// computation), and eviction *demotes* entries to the store instead of
/// dropping them, so the working set survives restarts and budgets smaller
/// than the working set stop costing recomputes. Store IO never happens
/// under the cache mutex: demotion victims are queued under the lock and
/// written after it is released, on the thread that triggered the
/// admission (see DESIGN.md §16).
class PathMatrixCache {
 public:
  PathMatrixCache() = default;
  PathMatrixCache(const PathMatrixCache&) = delete;
  PathMatrixCache& operator=(const PathMatrixCache&) = delete;

  /// Canonical cache key of `path`'s left reachable matrix (the `PM_PL` of
  /// Definition 5's decomposition). Equal keys <=> equal matrices.
  static std::string LeftKey(const MetaPath& path);
  /// Canonical key of the right reachable matrix `PM_(PR^-1)`.
  static std::string RightKey(const MetaPath& path);
  /// Canonical key of the full reachable probability matrix `PM_P`.
  static std::string ReachKey(const MetaPath& path);

  /// Left reachable matrix `PM_PL` of the decomposition of `path`
  /// (|source type| x |middle|), computed on first use.
  std::shared_ptr<const SparseMatrix> GetLeft(const HinGraph& graph,
                                              const MetaPath& path);

  /// Right reachable matrix `PM_(PR^-1)` of the decomposition of `path`
  /// (|target type| x |middle|), computed on first use.
  std::shared_ptr<const SparseMatrix> GetRight(const HinGraph& graph,
                                               const MetaPath& path);

  /// Full reachable probability matrix `PM_P` (Definition 9), used by PCRW
  /// and the Fig-7 style distribution queries.
  std::shared_ptr<const SparseMatrix> GetReach(const HinGraph& graph,
                                               const MetaPath& path);

  /// Context-aware variants: the computation polls `ctx` at chunk
  /// granularity and waiters wait no longer than `ctx`'s deadline.
  /// `num_threads` parallelizes a cache-miss computation (library
  /// convention: 1 sequential, 0 = all hardware threads).
  [[nodiscard]] Result<std::shared_ptr<const SparseMatrix>> GetLeft(const HinGraph& graph,
                                                      const MetaPath& path,
                                                      const QueryContext& ctx,
                                                      int num_threads = 1);
  [[nodiscard]] Result<std::shared_ptr<const SparseMatrix>> GetRight(const HinGraph& graph,
                                                       const MetaPath& path,
                                                       const QueryContext& ctx,
                                                       int num_threads = 1);
  [[nodiscard]] Result<std::shared_ptr<const SparseMatrix>> GetReach(const HinGraph& graph,
                                                       const MetaPath& path,
                                                       const QueryContext& ctx,
                                                       int num_threads = 1);

  /// An already-materialized partial product usable as the head of one
  /// half's transition chain: `matrix` equals the product of that half's
  /// first `steps_covered` chain matrices (for an odd path's full half this
  /// includes the decomposed edge-object factor, so `steps_covered` counts
  /// *chain matrices*, not meta-path steps).
  struct PartialHit {
    std::shared_ptr<const SparseMatrix> matrix;
    int steps_covered = 0;
  };

  /// Ad-hoc meta-path probe: returns every READY cached partial covering a
  /// prefix of the requested half of `path` (`left_side` = the source half,
  /// else the target half), longest first, skipping covers beyond
  /// `max_steps` (the half's chain length). Probes never compute anything —
  /// they only look — so they are cheap enough to run on query planning.
  /// Each call counts one prefix/suffix probe; a call that finds at least
  /// one partial counts one probe hit (see `Stats`).
  std::vector<PartialHit> ProbePartials(const MetaPath& path, bool left_side,
                                        int max_steps) EXCLUDES(mutex_);

  /// Records that a probed partial was actually folded into an execution
  /// plan, saving roughly `bytes_saved` of recomputed intermediates
  /// (accumulated into `Stats::partial_bytes_saved`).
  void RecordPartialReuse(bool left_side, size_t bytes_saved) EXCLUDES(mutex_);

  /// `GetRight` for ad-hoc paths: on a miss, instead of recomputing the
  /// whole right chain, probes for cached partial products covering a
  /// prefix of it, scores each candidate plan with the cost model's
  /// product-flops estimate, and folds the cheapest partial in — computing
  /// only the uncovered tail hops. The result is cached under
  /// `RightKey(path)` either way, so later callers take the plain hit path.
  [[nodiscard]] Result<std::shared_ptr<const SparseMatrix>> GetRightWithReuse(
      const HinGraph& graph, const MetaPath& path, const QueryContext& ctx,
      int num_threads = 1);

  /// Attaches the byte budget charged by every subsequent admission
  /// (nullptr = unlimited, the default). Existing entries are *not*
  /// retroactively charged; attach before populating. The budget may be
  /// shared with other consumers — the cache releases exactly what it
  /// reserved.
  void SetMemoryBudget(std::shared_ptr<MemoryBudget> budget) EXCLUDES(mutex_);

  /// Attaches the persistent demotion/promotion tier (nullptr detaches).
  /// Attach before populating: existing entries are not retroactively
  /// demotable until they are next touched by eviction.
  void AttachStore(std::shared_ptr<MatrixStore> store) EXCLUDES(mutex_);
  /// The attached store, or nullptr.
  std::shared_ptr<MatrixStore> store() const EXCLUDES(mutex_);

  /// Writes every READY cached entry not already on disk to the attached
  /// store (the offline `materialize` workflow: compute the partials for a
  /// path list, then flush). In-flight entries are skipped. Fails if no
  /// store is attached or a write fails; already-persisted keys are not
  /// rewritten.
  [[nodiscard]] Status FlushToStore() EXCLUDES(mutex_);

  /// Cache effectiveness counters. A request that finds the key present —
  /// ready or still being computed by another thread — counts as a hit; a
  /// request that claims a fresh key counts as a miss. A miss is served
  /// from the store when possible (`store_hits`), so the number of
  /// computations started is `misses - store_hits`.
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
    size_t evictions = 0;         ///< entries removed by the budget
    size_t failed_computes = 0;   ///< computations that published an error
    size_t rejected_inserts = 0;  ///< matrices served uncached (didn't fit)
    size_t accounted_bytes = 0;   ///< bytes currently admitted
    size_t peak_accounted_bytes = 0;  ///< high-water mark of the above
    size_t prefix_probes = 0;       ///< `ProbePartials` calls, left halves
    size_t prefix_probe_hits = 0;   ///< ...that found >= 1 ready partial
    size_t suffix_probes = 0;       ///< `ProbePartials` calls, right halves
    size_t suffix_probe_hits = 0;   ///< ...that found >= 1 ready partial
    size_t partial_bytes_saved = 0;  ///< recompute bytes avoided via reuse
    size_t store_hits = 0;       ///< misses served from the attached store
    size_t store_misses = 0;     ///< misses the store could not serve
    size_t store_demotions = 0;  ///< evicted entries written to the store
  };
  Stats stats() const EXCLUDES(mutex_);

  /// How many times the value for `key` has been computed since the last
  /// `Clear()`/`LoadFromDirectory()`. Exactly 1 after a miss-storm on a
  /// resident key (the at-most-once-per-residency guarantee); higher only
  /// when the entry was evicted or a failed computation was redone. A miss
  /// served by promoting the key from the attached store does NOT count —
  /// reading back is not a computation — so with a store underneath, a
  /// demote/promote cycle leaves the count at 1. Keys come from
  /// `LeftKey`/`RightKey`/`ReachKey`.
  size_t ComputeCount(const std::string& key) const EXCLUDES(mutex_);

  /// Drops all entries and resets counters (releasing any budget bytes).
  void Clear() EXCLUDES(mutex_);

  /// Persists every cached matrix under `directory` (created if missing):
  /// one `entry_NNNN.hsm` file per matrix plus a `manifest.txt` mapping
  /// files back to path keys. This is the paper's offline materialization:
  /// compute the reachable-probability products for the frequently-used
  /// relevance paths once, then serve queries from the reloaded cache.
  [[nodiscard]] Status SaveToDirectory(const std::string& directory) const EXCLUDES(mutex_);

  /// Loads a previously saved cache, replacing the current contents.
  /// Counters are reset; loaded entries count as neither hits nor misses
  /// until queried. With a budget attached, entries are admitted in
  /// manifest order until the budget is full; the rest are skipped.
  [[nodiscard]] Status LoadFromDirectory(const std::string& directory) EXCLUDES(mutex_);

 private:
  /// One cache entry. The future becomes ready exactly when the claiming
  /// thread publishes (a matrix or an error); waiters block on it without
  /// holding the map lock. Admission metadata is guarded by `mutex_`.
  struct Slot {
    std::shared_future<Result<std::shared_ptr<const SparseMatrix>>> future;
    bool ready = false;        ///< future resolved OK; admission decided
    bool from_store = false;   ///< already on disk; eviction skips demotion
    size_t bytes = 0;          ///< ApproxBytes of the matrix once ready
    double compute_seconds = 0;  ///< measured cost of the materialization
    double priority = 0;       ///< GreedyDual-Size eviction priority
    MemoryReservation reservation;  ///< budget charge (empty if unbudgeted)
  };

  /// Wraps an already-materialized matrix in a ready slot (disk loads).
  static std::shared_ptr<Slot> ReadySlot(std::shared_ptr<const SparseMatrix> matrix);

  [[nodiscard]] Result<std::shared_ptr<const SparseMatrix>> GetOrCompute(
      const std::string& key, const QueryContext& ctx,
      const std::function<Result<SparseMatrix>()>& compute) EXCLUDES(mutex_);

  /// Admission bookkeeping for a freshly computed `slot` (locked): charges
  /// the budget, evicting in priority order as needed. Returns false when
  /// the matrix cannot fit even after eviction — the caller then removes
  /// the entry and the matrix is served uncached.
  bool AdmitLocked(Slot& slot) REQUIRES(mutex_);
  /// Evicts the lowest-priority ready entry; false when none is evictable.
  /// With a store attached, a not-yet-persisted victim is queued on
  /// `pending_demotions_` (written later, outside the lock — never IO
  /// here) instead of being lost.
  bool EvictOneLocked() REQUIRES(mutex_);
  /// Refreshes `slot`'s GreedyDual-Size priority on access (locked).
  void TouchLocked(Slot& slot) REQUIRES(mutex_);
  /// Drains `pending_demotions_` to the store. Called after every section
  /// that may have evicted; takes and releases `mutex_` itself, doing the
  /// actual writes unlocked on the calling (query) thread.
  void FlushPendingDemotions() EXCLUDES(mutex_);

  mutable Mutex mutex_;
  // budget_ must be declared before entries_: slot destructors release
  // their MemoryReservation against the raw budget pointer, so the budget
  // has to outlive the slot map when the cache holds the last reference.
  // Slot fields themselves cannot carry GUARDED_BY (the guarding mutex is
  // per-cache, not per-slot): `future` is deliberately read lock-free by
  // waiters; every other Slot field is only touched under mutex_ (see the
  // DESIGN.md §11 lock table).
  std::shared_ptr<MemoryBudget> budget_ GUARDED_BY(mutex_);
  /// The persistent tier; copied out under the lock, IO'd without it.
  std::shared_ptr<MatrixStore> store_ GUARDED_BY(mutex_);
  /// Eviction victims awaiting their demotion write (key, matrix).
  std::vector<std::pair<std::string, std::shared_ptr<const SparseMatrix>>>
      pending_demotions_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::shared_ptr<Slot>> entries_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, size_t> compute_counts_ GUARDED_BY(mutex_);
  /// GreedyDual-Size aging clock (max evicted priority).
  double clock_ GUARDED_BY(mutex_) = 0;
  size_t hits_ GUARDED_BY(mutex_) = 0;
  size_t misses_ GUARDED_BY(mutex_) = 0;
  size_t evictions_ GUARDED_BY(mutex_) = 0;
  size_t failed_computes_ GUARDED_BY(mutex_) = 0;
  size_t rejected_inserts_ GUARDED_BY(mutex_) = 0;
  size_t accounted_bytes_ GUARDED_BY(mutex_) = 0;
  size_t peak_accounted_bytes_ GUARDED_BY(mutex_) = 0;
  size_t prefix_probes_ GUARDED_BY(mutex_) = 0;
  size_t prefix_probe_hits_ GUARDED_BY(mutex_) = 0;
  size_t suffix_probes_ GUARDED_BY(mutex_) = 0;
  size_t suffix_probe_hits_ GUARDED_BY(mutex_) = 0;
  size_t partial_bytes_saved_ GUARDED_BY(mutex_) = 0;
  size_t store_hits_ GUARDED_BY(mutex_) = 0;
  size_t store_misses_ GUARDED_BY(mutex_) = 0;
  size_t store_demotions_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hetesim

#endif  // HETESIM_CORE_MATERIALIZE_H_
