#ifndef HETESIM_CORE_MATERIALIZE_H_
#define HETESIM_CORE_MATERIALIZE_H_

#include <atomic>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/path_matrix.h"
#include "hin/graph.h"
#include "hin/metapath.h"
#include "matrix/sparse.h"

namespace hetesim {

/// \brief Cache of materialized reachable-probability products, the
/// Section 4.6 acceleration: "for frequently-used relevance paths, the
/// relatedness matrix can be calculated off-line" and "the concatenation of
/// partially materialized reachable probability matrices also helps to
/// fasten the computation".
///
/// Entries are keyed by the *half's* canonical step string (see `LeftKey`
/// / `RightKey` / `ReachKey`), so partial products are shared across every
/// full path whose decomposition produces them: the left half of A-P-C-P-A
/// serves A-P-C-P-C, the reachable matrix of A-P serves as the left half
/// of A-P-P'-style paths, and the right half of P equals the left half of
/// P reversed. Thread-safe; share one cache across engines via
/// `std::shared_ptr`.
///
/// Concurrency guarantees:
///  * Each key is computed **exactly once**, even under a miss-storm where
///    many threads request the same not-yet-materialized half at the same
///    instant: the first requester claims the key and computes; later
///    requesters block on the in-flight result instead of duplicating the
///    (potentially huge) SpGEMM chain. `ComputeCount(key)` exposes the
///    per-key computation count so tests can assert this.
///  * Different keys never serialize against each other — the map lock is
///    only held for lookup/insert, never during a computation.
///  * `Clear()` during an in-flight computation is safe: the computation
///    finishes against its detached slot and its waiters still receive the
///    matrix; the cache simply no longer retains it.
class PathMatrixCache {
 public:
  PathMatrixCache() = default;
  PathMatrixCache(const PathMatrixCache&) = delete;
  PathMatrixCache& operator=(const PathMatrixCache&) = delete;

  /// Canonical cache key of `path`'s left reachable matrix (the `PM_PL` of
  /// Definition 5's decomposition). Equal keys <=> equal matrices.
  static std::string LeftKey(const MetaPath& path);
  /// Canonical key of the right reachable matrix `PM_(PR^-1)`.
  static std::string RightKey(const MetaPath& path);
  /// Canonical key of the full reachable probability matrix `PM_P`.
  static std::string ReachKey(const MetaPath& path);

  /// Left reachable matrix `PM_PL` of the decomposition of `path`
  /// (|source type| x |middle|), computed on first use.
  std::shared_ptr<const SparseMatrix> GetLeft(const HinGraph& graph,
                                              const MetaPath& path);

  /// Right reachable matrix `PM_(PR^-1)` of the decomposition of `path`
  /// (|target type| x |middle|), computed on first use.
  std::shared_ptr<const SparseMatrix> GetRight(const HinGraph& graph,
                                               const MetaPath& path);

  /// Full reachable probability matrix `PM_P` (Definition 9), used by PCRW
  /// and the Fig-7 style distribution queries.
  std::shared_ptr<const SparseMatrix> GetReach(const HinGraph& graph,
                                               const MetaPath& path);

  /// Cache effectiveness counters. A request that finds the key present —
  /// ready or still being computed by another thread — counts as a hit; a
  /// request that claims a fresh key (and therefore computes it) counts as
  /// a miss, so `misses` is also the total number of computations started.
  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t entries = 0;
  };
  Stats stats() const;

  /// How many times the value for `key` has been computed since the last
  /// `Clear()`/`LoadFromDirectory()`: 0 (never requested or loaded from
  /// disk) or 1 — the per-key once-computation guarantee. Keys come from
  /// `LeftKey`/`RightKey`/`ReachKey`.
  size_t ComputeCount(const std::string& key) const;

  /// Drops all entries and resets counters.
  void Clear();

  /// Persists every cached matrix under `directory` (created if missing):
  /// one `entry_NNNN.hsm` file per matrix plus a `manifest.txt` mapping
  /// files back to path keys. This is the paper's offline materialization:
  /// compute the reachable-probability products for the frequently-used
  /// relevance paths once, then serve queries from the reloaded cache.
  Status SaveToDirectory(const std::string& directory) const;

  /// Loads a previously saved cache, replacing the current contents.
  /// Counters are reset; loaded entries count as neither hits nor misses
  /// until queried.
  Status LoadFromDirectory(const std::string& directory);

 private:
  /// One cache entry. The future becomes ready exactly when the claiming
  /// thread finishes computing; waiters block on it without holding the
  /// map lock.
  struct Slot {
    std::shared_future<std::shared_ptr<const SparseMatrix>> future;
    std::atomic<size_t> compute_count{0};
  };

  /// Wraps an already-materialized matrix in a ready slot (disk loads).
  static std::shared_ptr<Slot> ReadySlot(std::shared_ptr<const SparseMatrix> matrix);

  std::shared_ptr<const SparseMatrix> GetOrCompute(
      const std::string& key, const std::function<SparseMatrix()>& compute);

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace hetesim

#endif  // HETESIM_CORE_MATERIALIZE_H_
