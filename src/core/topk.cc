#include "core/topk.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "core/frontier.h"
#include "core/materialize.h"
#include "matrix/ops.h"

namespace hetesim {

namespace {

/// Top-k query instruments (DESIGN.md §12). `truncated` counts best-effort
/// answers cut short by a deadline/cancellation — the searcher's documented
/// partial-result contract, surfaced so dashboards can tell truncation
/// pressure from plain load.
struct TopKMetrics {
  Counter& queries;
  Counter& truncated;
  Counter& bound_exits;
  Histogram& latency;
};

TopKMetrics& GlobalTopKMetrics() {
  static TopKMetrics metrics{
      MetricsRegistry::Global().GetCounter("hetesim_topk_queries_total"),
      MetricsRegistry::Global().GetCounter("hetesim_topk_truncated_total"),
      MetricsRegistry::Global().GetCounter("hetesim_topk_bound_exits_total"),
      MetricsRegistry::Global().GetHistogram(
          "hetesim_topk_query_latency_seconds",
          DefaultLatencyBoundariesSeconds()),
  };
  return metrics;
}

}  // namespace

std::vector<Scored> TopK(const std::vector<double>& scores, int k) {
  HETESIM_CHECK_GE(k, 0);
  std::vector<Scored> all;
  all.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    all.push_back({static_cast<Index>(i), scores[i]});
  }
  const size_t keep = std::min(static_cast<size_t>(k), all.size());
  auto by_score_desc = [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score > b.score : a.id < b.id;
  };
  std::partial_sort(all.begin(), all.begin() + static_cast<ptrdiff_t>(keep),
                    all.end(), by_score_desc);
  all.resize(keep);
  return all;
}

Result<std::vector<ScoredPair>> TopKPairs(const HinGraph& graph,
                                          const MetaPath& path, int k,
                                          bool exclude_diagonal,
                                          HeteSimOptions options) {
  if (k < 0) {
    return Status::InvalidArgument("k must be non-negative");
  }
  const bool same_type = path.SourceType() == path.TargetType();
  TopKSearcher searcher(graph, path, options);
  auto by_score_desc = [](const ScoredPair& a, const ScoredPair& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.source != b.source) return a.source < b.source;
    return a.target < b.target;
  };
  // Collect each source's top-k (more than enough to fill the global k)
  // and keep the best k overall.
  std::vector<ScoredPair> best;
  const Index num_sources = graph.NumNodes(path.SourceType());
  for (Index s = 0; s < num_sources; ++s) {
    // Request one extra so a skipped diagonal hit cannot starve the pool.
    HETESIM_ASSIGN_OR_RETURN(TopKResult result, searcher.Query(s, k + 1));
    for (const Scored& item : result.items) {
      if (exclude_diagonal && same_type && item.id == s) continue;
      best.push_back({s, item.id, item.score});
    }
    if (best.size() > 4 * static_cast<size_t>(k) + 16) {
      std::sort(best.begin(), best.end(), by_score_desc);
      best.resize(static_cast<size_t>(k));
    }
  }
  std::sort(best.begin(), best.end(), by_score_desc);
  if (best.size() > static_cast<size_t>(k)) best.resize(static_cast<size_t>(k));
  return best;
}

TopKSearcher::TopKSearcher(const HinGraph& graph, const MetaPath& path,
                           HeteSimOptions options)
    : graph_(graph), options_(options),
      num_sources_(graph.NumNodes(path.SourceType())) {
  PathDecomposition decomposition = DecomposePath(graph, path);
  left_transitions_ = std::move(decomposition.left_transitions);
  right_ = std::make_shared<const SparseMatrix>(
      MultiplyChain(decomposition.right_transitions));
  FinishPreparation();
}

void TopKSearcher::FinishPreparation() {
  right_transpose_ = right_->Transpose();
  right_norms_.resize(static_cast<size_t>(right_->rows()));
  max_right_norm_ = 0.0;
  for (Index t = 0; t < right_->rows(); ++t) {
    right_norms_[static_cast<size_t>(t)] = right_->RowNorm(t);
    max_right_norm_ = std::max(max_right_norm_, right_norms_[static_cast<size_t>(t)]);
  }
}

Result<TopKSearcher> TopKSearcher::Prepare(const HinGraph& graph,
                                           const MetaPath& path,
                                           HeteSimOptions options,
                                           const QueryContext& ctx,
                                           PathMatrixCache* cache) {
  TraceSpan span(ctx.trace(), "topk.prepare");
  TopKSearcher searcher(graph, options, graph.NumNodes(path.SourceType()));
  PathDecomposition decomposition = DecomposePath(graph, path);
  searcher.left_transitions_ = std::move(decomposition.left_transitions);
  if (cache != nullptr) {
    // Ad-hoc path: serve (and retain) the right half through the cache,
    // folding the cheapest cached partial products on a miss.
    HETESIM_ASSIGN_OR_RETURN(
        searcher.right_,
        cache->GetRightWithReuse(graph, path, ctx, options.num_threads));
    if (options.algo == RelevanceAlgo::kFrontier) {
      FrontierChain plan = PlanFrontierChain(searcher.left_transitions_, path,
                                             /*left_side=*/true, cache);
      searcher.left_head_ = plan.head;
      searcher.left_head_steps_ = plan.head_steps;
    }
  } else {
    HETESIM_ASSIGN_OR_RETURN(
        SparseMatrix right,
        MultiplyChainWithContext(decomposition.right_transitions,
                                 options.num_threads, ctx));
    searcher.right_ = std::make_shared<const SparseMatrix>(std::move(right));
  }
  searcher.FinishPreparation();
  HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
  return searcher;
}

Result<std::vector<double>> TopKSearcher::SourceDistribution(Index source) const {
  if (source < 0 || source >= num_sources_) {
    return Status::OutOfRange("source id out of range");
  }
  std::vector<double> u(static_cast<size_t>(num_sources_), 0.0);
  u[static_cast<size_t>(source)] = 1.0;
  return VectorThroughChain(std::move(u), left_transitions_);
}

Result<TopKResult> TopKSearcher::Query(Index source, int k) const {
  return Query(source, k, QueryContext::Background());
}

Result<TopKResult> TopKSearcher::Query(Index source, int k,
                                       const QueryContext& ctx) const {
  TraceSpan span(ctx.trace(), "topk.query");
  if (span.active()) {
    span.Annotate("source", std::to_string(source));
    span.Annotate("k", std::to_string(k));
  }
  if (span.active()) span.Annotate("algo", AlgoName(options_.algo));
  Stopwatch stopwatch;
  Result<TopKResult> result = QueryTraced(source, k, ctx);
  if (MetricsEnabled()) {
    TopKMetrics& metrics = GlobalTopKMetrics();
    metrics.queries.Increment();
    metrics.latency.Observe(stopwatch.ElapsedSeconds());
    if (result.ok() && result->truncated) metrics.truncated.Increment();
    if (result.ok() && result->bound_exit) metrics.bound_exits.Increment();
  }
  if (span.active()) {
    if (!result.ok()) {
      span.Annotate("status",
                    std::string(StatusCodeToString(result.status().code())));
    } else if (result->truncated) {
      span.Annotate("truncated", "true");
    } else if (result->bound_exit) {
      span.Annotate("bound_exit", "true");
    }
  }
  return result;
}

Result<TopKResult> TopKSearcher::QueryTraced(Index source, int k,
                                             const QueryContext& ctx) const {
  // The `--algo` ablation switch. Exhaustive is the dense reference;
  // frontier hands off to the sparse executor (core/frontier.h); the
  // pruned accumulation below remains the default.
  if (options_.algo == RelevanceAlgo::kExhaustive) {
    return QueryExhaustive(source, k);
  }
  if (options_.algo == RelevanceAlgo::kFrontier) {
    if (source < 0 || source >= num_sources_) {
      return Status::OutOfRange("source id out of range");
    }
    FrontierChain left;
    left.steps = &left_transitions_;
    left.head = left_head_;
    left.head_steps = left_head_steps_;
    left.used_cached_partial = left_head_ != nullptr;
    FrontierExecutor executor(std::move(left), right_.get(),
                              &right_transpose_, &right_norms_,
                              max_right_norm_, options_);
    return executor.TopK(source, k, ctx);
  }
  // Deliberately no up-front CheckAlive: a query whose deadline has already
  // passed still produces a well-formed *partial* result (one poll stride of
  // accumulation, truncation marker set) rather than an error — the
  // documented best-effort contract. Invalid arguments still fail below.
  HETESIM_ASSIGN_OR_RETURN(std::vector<double> u, SourceDistribution(source));
  const double nu = Norm2(u);
  TopKResult result;
  result.middle_total = static_cast<Index>(u.size());
  if (nu == 0.0) {
    // Source reaches nothing: the empty answer is complete, not truncated.
    result.middle_processed = result.middle_total;
    return result;
  }
  // Accumulate scores only for targets that share a middle object with u.
  // `right_transpose_` maps each middle object to the targets reaching it.
  // The context is polled once per stride (adaptive by default, pinned via
  // `topk_poll_stride`): an expired deadline (or a cancellation) stops the
  // accumulation and the partial scores are ranked and returned with the
  // truncation marker set, so the caller always gets a best-effort answer
  // within one stride of the deadline.
  PollStrideController poller(options_.topk_poll_stride);
  std::vector<double> scores(static_cast<size_t>(right_->rows()), 0.0);
  std::vector<Index> touched;
  size_t processed = u.size();
  for (size_t m = 0; m < u.size(); ++m) {
    if (m > 0 && poller.ShouldPoll(m) && ctx.Expired()) {
      result.truncated = true;
      processed = m;
      break;
    }
    const double um = u[m];
    if (um == 0.0) continue;
    auto targets = right_transpose_.RowIndices(static_cast<Index>(m));
    auto weights = right_transpose_.RowValues(static_cast<Index>(m));
    for (size_t j = 0; j < targets.size(); ++j) {
      if (scores[static_cast<size_t>(targets[j])] == 0.0) touched.push_back(targets[j]);
      scores[static_cast<size_t>(targets[j])] += um * weights[j];
    }
  }
  result.middle_processed = static_cast<Index>(processed);
  result.candidates_examined = static_cast<Index>(touched.size());
  std::vector<Scored> candidates;
  candidates.reserve(touched.size());
  // Bounded normalize-and-collect pass; the middle sweep above polls.
  for (Index t : touched) {  // hetesim-lint: allow(cancel-poll)
    double s = scores[static_cast<size_t>(t)];
    if (options_.normalized) {
      const double nt = right_norms_[static_cast<size_t>(t)];
      if (nt != 0.0) s /= nu * nt;
    }
    if (s != 0.0) candidates.push_back({t, s});
  }
  auto by_score_desc = [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score > b.score : a.id < b.id;
  };
  const size_t keep = std::min(static_cast<size_t>(std::max(k, 0)), candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<ptrdiff_t>(keep),
                    candidates.end(), by_score_desc);
  candidates.resize(keep);
  result.items = std::move(candidates);
  return result;
}

Result<TopKResult> TopKSearcher::QueryExhaustive(Index source, int k) const {
  HETESIM_ASSIGN_OR_RETURN(std::vector<double> u, SourceDistribution(source));
  const double nu = Norm2(u);
  std::vector<double> scores = right_->MultiplyVector(u);
  if (options_.normalized && nu != 0.0) {
    for (size_t t = 0; t < scores.size(); ++t) {
      const double nt = right_norms_[t];
      if (nt != 0.0) scores[t] /= nu * nt;
    }
  }
  TopKResult result;
  result.candidates_examined = right_->rows();
  result.items = TopK(scores, k);
  return result;
}

}  // namespace hetesim
