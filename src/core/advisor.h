#ifndef HETESIM_CORE_ADVISOR_H_
#define HETESIM_CORE_ADVISOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/materialize.h"
#include "hin/graph.h"
#include "hin/metapath.h"
#include "matrix/cost_model.h"

namespace hetesim {

/// One entry of an expected query workload.
struct WorkloadEntry {
  MetaPath path;
  /// Expected relative query frequency (any positive scale).
  double frequency = 1.0;
};

/// Options for the materialization advisor.
struct AdvisorOptions {
  /// Upper bound on the total bytes of materialized matrices. 0 means
  /// unlimited (materialize every half).
  size_t memory_budget_bytes = 0;
};

/// One half the advisor chose to materialize.
struct MaterializationChoice {
  /// Canonical cache key (see PathMatrixCache::LeftKey/RightKey).
  std::string key;
  /// Approximate resident size of the matrix.
  size_t bytes = 0;
  /// Workload benefit: total frequency of queries served by this half
  /// times its (deterministic) recomputation cost in multiply-add flops.
  double benefit = 0.0;
};

/// The advisor's output: which halves to precompute, within budget.
struct MaterializationPlan {
  std::vector<MaterializationChoice> choices;
  size_t total_bytes = 0;
  double total_benefit = 0.0;
  /// Number of distinct candidate halves considered (chosen or not).
  size_t candidates = 0;
};

/// \brief Decides which reachable-probability halves to materialize for a
/// query workload under a memory budget — the operational form of
/// Section 4.6's "for frequently-used relevance paths, the relatedness
/// matrix can be calculated off-line" plus "the concatenation of partially
/// materialized reachable probability matrices".
///
/// Every workload path contributes its two decomposition halves; halves
/// shared between paths (canonical keys, see `PathMatrixCache`) pool their
/// frequencies. Each candidate is costed by its exact Gustavson
/// multiply-add count (deterministic — no wall-clock noise) and sized by
/// its CSR footprint; candidates are then chosen greedily by
/// benefit-per-byte until the budget is exhausted. Greedy is within a
/// factor 2 of the optimal knapsack here and exact when the budget fits
/// everything.
[[nodiscard]] Result<MaterializationPlan> AdviseMaterialization(const HinGraph& graph,
                                                  const std::vector<WorkloadEntry>& workload,
                                                  const AdvisorOptions& options = {});

/// Materializes the plan's choices into `cache` by running the matching
/// half computations (subsequent engine queries on those paths are then
/// pure cache hits).
[[nodiscard]] Status ApplyMaterializationPlan(const HinGraph& graph,
                                const std::vector<WorkloadEntry>& workload,
                                const MaterializationPlan& plan,
                                PathMatrixCache* cache);

// The advisor's exact flop counters (`ProductFlops`, `ChainProductFlops`)
// live in the shared cost-model module, `matrix/cost_model.h`, which also
// prices the chain-association planner — one source of truth for multiply
// costs. They remain visible here through the include above.

}  // namespace hetesim

#endif  // HETESIM_CORE_ADVISOR_H_
