#include "core/frontier.h"

#include <cmath>
#include <functional>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "common/fault_injection.h"
#include "core/materialize.h"
#include "matrix/cost_model.h"

namespace hetesim {

namespace {

/// One hop of frontier propagation: `y = x^T * m`, touching only the rows
/// `x` reaches. Contributions to each output coordinate accumulate in
/// ascending input-index order (the outer loop), so the per-coordinate sums
/// are deterministic regardless of hash-map layout; sorting afterwards
/// restores the ascending-index invariant. Entries below
/// `relative_threshold * max_entry` are dropped, their L1 mass added to the
/// frontier's running error bound.
Result<SparseVector> ApplyHop(const SparseVector& x, const SparseMatrix& m,
                              double relative_threshold,
                              const QueryContext& ctx) {
  HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
  // Upper-bound the hop's output support to charge the transient
  // accumulator (hash map entry ~= 2x payload with bucket overhead)
  // against the query's memory budget before allocating.
  size_t out_bound = 0;
  for (Index row : x.indices) {
    out_bound += static_cast<size_t>(m.RowNnz(row));
  }
  out_bound = std::min(out_bound, static_cast<size_t>(m.cols()));
  HETESIM_ASSIGN_OR_RETURN(
      MemoryReservation reservation,
      ctx.Reserve(out_bound * (sizeof(Index) + sizeof(double)) * 2));
  std::unordered_map<Index, double> acc;
  acc.reserve(out_bound);
  // Hops are unbounded work (a hub row can touch the whole target type), so
  // the gather polls at an adaptive stride rather than only at hop entry.
  PollStrideController poller(/*fixed_stride=*/0);
  for (size_t i = 0; i < x.indices.size(); ++i) {
    if (i > 0 && poller.ShouldPoll(i)) {
      HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
    }
    const Index row = x.indices[i];
    const double xv = x.values[i];
    const auto cols = m.RowIndices(row);
    const auto vals = m.RowValues(row);
    for (size_t j = 0; j < cols.size(); ++j) {
      acc[cols[j]] += xv * vals[j];
    }
  }
  std::vector<std::pair<Index, double>> entries;
  entries.reserve(acc.size());
  for (const auto& entry : acc) {
    if (entry.second != 0.0) entries.push_back(entry);
  }
  std::sort(entries.begin(), entries.end());
  double max_abs = 0.0;
  for (const auto& [col, value] : entries) {
    max_abs = std::max(max_abs, std::abs(value));
  }
  const double cutoff =
      relative_threshold > 0.0 ? relative_threshold * max_abs : 0.0;
  SparseVector y;
  y.dropped_mass = x.dropped_mass;
  y.indices.reserve(entries.size());
  y.values.reserve(entries.size());
  // Bounded pass over the already-reserved accumulator; the gather loop
  // above is where the hop's unbounded work (and polling) lives.
  for (const auto& [col, value] : entries) {  // hetesim-lint: allow(cancel-poll)
    if (cutoff > 0.0 && std::abs(value) < cutoff) {
      y.dropped_mass += std::abs(value);
      continue;
    }
    y.indices.push_back(col);
    y.values.push_back(value);
  }
  return y;
}

/// Row-level cost of propagating one frontier through `chain`: expected
/// multiply-adds, tracking the expected frontier support hop by hop (one
/// source row in, `avg row fill` fan-out per reached row, capped by the hop's
/// column count). Deterministic — shapes and fills only, no timing.
double RowPropagationFlops(const std::vector<MatrixEstimate>& chain) {
  double support = 1.0;
  double flops = 0.0;
  for (const MatrixEstimate& est : chain) {
    if (est.rows <= 0) break;
    const double avg_row = est.nnz / static_cast<double>(est.rows);
    flops += support * avg_row;
    support = std::min(static_cast<double>(est.cols), support * avg_row);
  }
  return flops;
}

/// The k-th largest valid lower bound among the touched candidates.
/// Requires `touched.size() >= k >= 1`. Partial dots only ever grow (all
/// entries are non-negative), so partial/(nu*nt) is a monotone lower bound
/// on the final normalized score.
double KthLowerBound(const std::vector<Index>& touched,
                     const std::vector<double>& partial,
                     const std::vector<double>& right_norms, bool normalized,
                     double nu, size_t k, std::vector<double>& scratch) {
  scratch.clear();
  scratch.reserve(touched.size());
  for (Index t : touched) {
    double lb = partial[static_cast<size_t>(t)];
    if (normalized) {
      const double nt = right_norms[static_cast<size_t>(t)];
      lb = nt != 0.0 ? lb / (nu * nt) : 0.0;
    }
    scratch.push_back(lb);
  }
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<ptrdiff_t>(k - 1),
                   scratch.end(), std::greater<double>());
  return scratch[k - 1];
}

/// Exact dot of sparse right row (`cols`, `vals`) against frontier `u`, both
/// ascending — the same term order as the pruned path's ascending-middle
/// accumulation, so finished frontier scores match it bitwise.
double ExactRowDot(std::span<const Index> cols, std::span<const double> vals,
                   const SparseVector& u) {
  double sum = 0.0;
  size_t a = 0;
  size_t b = 0;
  while (a < cols.size() && b < u.indices.size()) {
    if (cols[a] < u.indices[b]) {
      ++a;
    } else if (cols[a] > u.indices[b]) {
      ++b;
    } else {
      sum += u.values[b] * vals[a];
      ++a;
      ++b;
    }
  }
  return sum;
}

}  // namespace

Result<SparseVector> PropagateFrontier(Index source, const FrontierChain& chain,
                                       double relative_threshold,
                                       const QueryContext& ctx) {
  const SparseMatrix* first = chain.head != nullptr ? chain.head.get()
                              : (chain.steps != nullptr && !chain.steps->empty())
                                  ? &(*chain.steps)[0]
                                  : nullptr;
  if (first != nullptr && (source < 0 || source >= first->rows())) {
    return Status::OutOfRange("source id out of range");
  }
  if (HETESIM_FAULT_POINT("frontier.alloc")) {
    return Status::ResourceExhausted(
        "injected allocation failure at frontier.alloc");
  }
  SparseVector x;
  x.indices.push_back(source);
  x.values.push_back(1.0);
  size_t next_step = 0;
  if (chain.head != nullptr) {
    HETESIM_ASSIGN_OR_RETURN(
        x, ApplyHop(x, *chain.head, relative_threshold, ctx));
    next_step = chain.head_steps;
  }
  if (chain.steps != nullptr) {
    for (size_t s = next_step; s < chain.steps->size(); ++s) {
      HETESIM_ASSIGN_OR_RETURN(
          x, ApplyHop(x, (*chain.steps)[s], relative_threshold, ctx));
    }
  }
  return x;
}

double SparseDot(const SparseVector& a, const SparseVector& b) {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.indices.size() && j < b.indices.size()) {
    if (a.indices[i] < b.indices[j]) {
      ++i;
    } else if (a.indices[i] > b.indices[j]) {
      ++j;
    } else {
      sum += a.values[i] * b.values[j];
      ++i;
      ++j;
    }
  }
  return sum;
}

double SparseNorm2(const SparseVector& a) {
  double sum = 0.0;
  for (double v : a.values) sum += v * v;
  return std::sqrt(sum);
}

Result<double> FrontierPairScore(Index source, const FrontierChain& left,
                                 Index target, const FrontierChain& right,
                                 bool normalized, double relative_threshold,
                                 const QueryContext& ctx) {
  HETESIM_ASSIGN_OR_RETURN(
      SparseVector u, PropagateFrontier(source, left, relative_threshold, ctx));
  HETESIM_ASSIGN_OR_RETURN(
      SparseVector v,
      PropagateFrontier(target, right, relative_threshold, ctx));
  const double dot = SparseDot(u, v);
  if (!normalized) return dot;
  const double nu = SparseNorm2(u);
  const double nv = SparseNorm2(v);
  if (nu == 0.0 || nv == 0.0) return 0.0;
  return dot / (nu * nv);
}

FrontierChain PlanFrontierChain(const std::vector<SparseMatrix>& steps,
                                const MetaPath& path, bool left_side,
                                PathMatrixCache* cache) {
  FrontierChain plan;
  plan.steps = &steps;
  if (cache == nullptr || steps.empty()) return plan;
  std::vector<PathMatrixCache::PartialHit> hits =
      cache->ProbePartials(path, left_side, static_cast<int>(steps.size()));
  if (hits.empty()) return plan;
  std::vector<MatrixEstimate> estimates;
  estimates.reserve(steps.size());
  for (const SparseMatrix& m : steps) estimates.push_back(EstimateOf(m));
  double best_flops = RowPropagationFlops(estimates);
  const PathMatrixCache::PartialHit* winner = nullptr;
  for (const PathMatrixCache::PartialHit& hit : hits) {
    if (hit.matrix == nullptr || hit.steps_covered < 1 ||
        static_cast<size_t>(hit.steps_covered) > steps.size()) {
      continue;
    }
    std::vector<MatrixEstimate> candidate;
    candidate.reserve(steps.size() - static_cast<size_t>(hit.steps_covered) +
                      1);
    candidate.push_back(EstimateOf(*hit.matrix));
    for (size_t s = static_cast<size_t>(hit.steps_covered); s < steps.size();
         ++s) {
      candidate.push_back(estimates[s]);
    }
    const double flops = RowPropagationFlops(candidate);
    if (flops < best_flops) {
      best_flops = flops;
      winner = &hit;
    }
  }
  if (winner != nullptr) {
    plan.head = winner->matrix;
    plan.head_steps = static_cast<size_t>(winner->steps_covered);
    plan.used_cached_partial = true;
    cache->RecordPartialReuse(left_side, winner->matrix->ApproxBytes());
  }
  return plan;
}

Result<TopKResult> FrontierExecutor::TopK(Index source, int k,
                                          const QueryContext& ctx) const {
  TopKResult result;
  // Propagation polls the context per hop; deadline/cancellation there maps
  // to the searcher's best-effort contract (an empty truncated ranking, not
  // an error). Real failures — budget exhaustion, injected faults, range
  // errors — still propagate.
  Result<SparseVector> propagated =
      PropagateFrontier(source, left_, options_.truncation, ctx);
  if (!propagated.ok()) {
    const Status status = propagated.status();
    if (status.IsDeadlineExceeded() || status.IsCancelled()) {
      result.truncated = true;
      return result;
    }
    return status;
  }
  SparseVector u = *std::move(propagated);
  result.error_bound = u.dropped_mass;
  const size_t support = u.nnz();
  // For the frontier algo the "middle" counters describe frontier entries,
  // the unit of sweep work, not the dense middle-type size.
  result.middle_total = static_cast<Index>(support);
  const double nu = SparseNorm2(u);
  if (support == 0 || nu == 0.0) {
    result.middle_processed = result.middle_total;
    return result;
  }

  // Phase 1: fold middle entries in descending-mass order, tracking per-
  // candidate partial dots. tail_sumsq[j] is the squared L2 mass of the
  // entries not yet folded after position j-1; it drives the unseen-
  // candidate upper bound (see the class comment for the derivation).
  std::vector<size_t> order(support);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&u](size_t a, size_t b) {
    return u.values[a] != u.values[b] ? u.values[a] > u.values[b]
                                      : u.indices[a] < u.indices[b];
  });
  std::vector<double> tail_sumsq(support + 1, 0.0);
  for (size_t j = support; j-- > 0;) {
    const double v = u.values[order[j]];
    tail_sumsq[j] = tail_sumsq[j + 1] + v * v;
  }

  const size_t num_targets = static_cast<size_t>(right_->rows());
  HETESIM_ASSIGN_OR_RETURN(
      MemoryReservation sweep_reservation,
      ctx.Reserve(num_targets * (sizeof(double) + sizeof(Index) / 4)));
  std::vector<double> partial(num_targets, 0.0);
  std::vector<Index> touched;
  std::vector<double> lower_scratch;
  PollStrideController poller(options_.topk_poll_stride);
  const size_t keep_k = static_cast<size_t>(std::max(k, 0));
  const double bound_scale =
      options_.normalized ? 1.0 / nu : max_right_norm_;
  // Re-deriving the k-th lower bound costs O(touched); do it at a stride.
  // Between recomputations the last value stays a valid (stale) lower
  // bound, because partial dots only grow. The stride shrinks with the
  // frontier so small middles (a handful of conferences) still get enough
  // checks to ever exit early; 64 caps the cost on wide frontiers.
  constexpr size_t kBoundCheckStride = 64;
  const size_t bound_stride =
      std::min(kBoundCheckStride, std::max<size_t>(1, support / 8));
  double last_kth_lower = -1.0;
  size_t processed = support;
  for (size_t j = 0; j < support; ++j) {
    if (j > 0 && poller.ShouldPoll(j) && ctx.Expired()) {
      result.truncated = true;
      processed = j;
      break;
    }
    const size_t e = order[j];
    const auto targets = right_transpose_->RowIndices(u.indices[e]);
    const auto weights = right_transpose_->RowValues(u.indices[e]);
    const double um = u.values[e];
    for (size_t i = 0; i < targets.size(); ++i) {
      double& slot = partial[static_cast<size_t>(targets[i])];
      if (slot == 0.0) touched.push_back(targets[i]);
      slot += um * weights[i];
    }
    // A bound exit on the final entry would be a no-op that still pays the
    // rescore pass, so the last fold always completes the sweep naturally.
    if (keep_k > 0 && touched.size() >= keep_k && j + 1 < support) {
      const double unseen = std::sqrt(tail_sumsq[j + 1]) * bound_scale;
      if (last_kth_lower <= unseen && j % bound_stride == bound_stride - 1) {
        last_kth_lower =
            KthLowerBound(touched, partial, *right_norms_,
                          options_.normalized, nu, keep_k, lower_scratch);
      }
      // Strict: ties (which the ranking breaks by id) must keep sweeping.
      if (last_kth_lower > unseen) {
        result.bound_exit = true;
        processed = j + 1;
        break;
      }
    }
  }
  result.middle_processed = static_cast<Index>(processed);
  result.candidates_examined = static_cast<Index>(touched.size());

  // Phase 2: exact scores. After a full sweep the partials already are the
  // exact dots, but a bound exit froze them mid-accumulation — rescore every
  // touched candidate against the full frontier. A deadline truncation
  // instead reports the partial dots as-is: valid lower bounds, the same
  // contract as the pruned path.
  std::vector<Scored> candidates;
  candidates.reserve(touched.size());
  bool rescore = result.bound_exit;
  // Rescoring is itself O(touched * nnz), so it keeps polling on the phase-1
  // controller (the item counter continues past `processed` to keep the
  // stride monotonic). On expiry the remaining candidates fall back to
  // their partial dots — the same valid-lower-bound contract as a phase-1
  // deadline truncation.
  size_t rescore_item = processed;
  for (Index t : touched) {
    if (rescore && poller.ShouldPoll(rescore_item++) && ctx.Expired()) {
      result.truncated = true;
      rescore = false;
    }
    double score =
        rescore ? ExactRowDot(right_->RowIndices(t), right_->RowValues(t), u)
                : partial[static_cast<size_t>(t)];
    if (options_.normalized) {
      const double nt = (*right_norms_)[static_cast<size_t>(t)];
      if (nt != 0.0) score /= nu * nt;
    }
    if (score != 0.0) candidates.push_back({t, score});
  }
  auto by_score_desc = [](const Scored& a, const Scored& b) {
    return a.score != b.score ? a.score > b.score : a.id < b.id;
  };
  const size_t keep = std::min(keep_k, candidates.size());
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<ptrdiff_t>(keep),
                    candidates.end(), by_score_desc);
  candidates.resize(keep);
  result.items = std::move(candidates);
  return result;
}

}  // namespace hetesim
