#include "core/path_matrix.h"

#include <cmath>

#include "common/check.h"
#include "matrix/ops.h"

namespace hetesim {

SparseMatrix SanitizeTransition(SparseMatrix m) {
  bool all_finite = true;
  for (double v : m.values()) {
    if (!std::isfinite(v)) {
      all_finite = false;
      break;
    }
  }
  if (all_finite) return m;
  // Rebuild without the poisoned rows: one NaN/Inf weight invalidates the
  // whole row's probability mass, so the row becomes all-zero (its object
  // contributes 0 relevance downstream, matching the unreachable case).
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(m.NumNonZeros()));
  for (Index r = 0; r < m.rows(); ++r) {
    auto values = m.RowValues(r);
    bool row_finite = true;
    for (double v : values) {
      if (!std::isfinite(v)) {
        row_finite = false;
        break;
      }
    }
    if (!row_finite) continue;
    auto indices = m.RowIndices(r);
    for (size_t k = 0; k < indices.size(); ++k) {
      triplets.push_back({r, indices[k], values[k]});
    }
  }
  return SparseMatrix::FromTriplets(m.rows(), m.cols(), std::move(triplets));
}

std::vector<SparseMatrix> TransitionChain(const HinGraph& graph, const MetaPath& path) {
  std::vector<SparseMatrix> chain;
  chain.reserve(static_cast<size_t>(path.length()));
  for (int i = 0; i < path.length(); ++i) {
    chain.push_back(SanitizeTransition(graph.StepTransition(path.StepAt(i))));
  }
  return chain;
}

SparseMatrix ReachProbability(const HinGraph& graph, const MetaPath& path) {
  return MultiplyChain(TransitionChain(graph, path));
}

Result<SparseMatrix> ReachProbabilityWithContext(const HinGraph& graph,
                                                 const MetaPath& path,
                                                 int num_threads,
                                                 const QueryContext& ctx) {
  return MultiplyChainWithContext(TransitionChain(graph, path), num_threads, ctx);
}

std::vector<double> ReachDistribution(const HinGraph& graph, const MetaPath& path,
                                      Index source) {
  HETESIM_CHECK(source >= 0 && source < graph.NumNodes(path.SourceType()));
  std::vector<double> x(static_cast<size_t>(graph.NumNodes(path.SourceType())), 0.0);
  x[static_cast<size_t>(source)] = 1.0;
  return VectorThroughChain(std::move(x), TransitionChain(graph, path));
}

AtomicDecomposition DecomposeAtomicRelation(const HinGraph& graph,
                                            const RelationStep& step) {
  const SparseMatrix& w = graph.StepAdjacency(step);
  const Index num_instances = w.NumNonZeros();
  std::vector<Triplet> out_triplets;
  std::vector<Triplet> in_triplets;
  out_triplets.reserve(static_cast<size_t>(num_instances));
  in_triplets.reserve(static_cast<size_t>(num_instances));
  Index edge_id = 0;
  for (Index a = 0; a < w.rows(); ++a) {
    auto indices = w.RowIndices(a);
    auto values = w.RowValues(a);
    for (size_t k = 0; k < indices.size(); ++k) {
      // Skip weights whose square root is not a finite probability mass
      // (NaN/Inf, or negative — sqrt would be NaN): the relation instance
      // simply does not exist, so the pair contributes 0 relevance instead
      // of poisoning whole rows of the half matrices.
      if (!std::isfinite(values[k]) || values[k] < 0.0) {
        ++edge_id;
        continue;
      }
      // w(a,e) = w(e,b) = sqrt(w(a,b)) so that W_out * W_in == W exactly.
      const double half_weight = std::sqrt(values[k]);
      out_triplets.push_back({a, edge_id, half_weight});
      in_triplets.push_back({edge_id, indices[k], half_weight});
      ++edge_id;
    }
  }
  AtomicDecomposition result;
  result.num_instances = num_instances;
  result.out = SparseMatrix::FromTriplets(w.rows(), num_instances,
                                          std::move(out_triplets));
  result.in = SparseMatrix::FromTriplets(num_instances, w.cols(),
                                         std::move(in_triplets));
  return result;
}

PathDecomposition DecomposePath(const HinGraph& graph, const MetaPath& path) {
  PathDecomposition result;
  const int l = path.length();
  if (l % 2 == 0) {
    // Even length: split at the middle type M = TypeAt(l/2).
    const int mid = l / 2;
    for (int i = 0; i < mid; ++i) {
      result.left_transitions.push_back(
          SanitizeTransition(graph.StepTransition(path.StepAt(i))));
    }
    // PR^-1 walks the second half backwards: steps l-1 .. mid, inverted.
    for (int i = l - 1; i >= mid; --i) {
      result.right_transitions.push_back(
          SanitizeTransition(graph.StepTransition(path.StepAt(i).Inverse())));
    }
    result.middle_dimension = graph.NumNodes(path.TypeAt(mid));
    result.edge_object_inserted = false;
    return result;
  }

  // Odd length: decompose the middle atomic relation (step index l/2)
  // through an edge-object type E, then split as in the even case with
  // M = E (Definitions 5 and 6).
  const int mid_step = l / 2;
  AtomicDecomposition atomic =
      DecomposeAtomicRelation(graph, path.StepAt(mid_step));
  for (int i = 0; i < mid_step; ++i) {
    result.left_transitions.push_back(
        SanitizeTransition(graph.StepTransition(path.StepAt(i))));
  }
  result.left_transitions.push_back(atomic.out.RowNormalized());
  for (int i = l - 1; i > mid_step; --i) {
    result.right_transitions.push_back(
        SanitizeTransition(graph.StepTransition(path.StepAt(i).Inverse())));
  }
  // Final right-hand step enters E against R_I: row-normalize W_EB'.
  result.right_transitions.push_back(atomic.in.Transpose().RowNormalized());
  result.middle_dimension = atomic.num_instances;
  result.edge_object_inserted = true;
  return result;
}

SparseMatrix LeftReachMatrix(const PathDecomposition& decomposition) {
  HETESIM_CHECK(!decomposition.left_transitions.empty());
  return MultiplyChain(decomposition.left_transitions);
}

SparseMatrix RightReachMatrix(const PathDecomposition& decomposition) {
  HETESIM_CHECK(!decomposition.right_transitions.empty());
  return MultiplyChain(decomposition.right_transitions);
}

Result<SparseMatrix> LeftReachMatrixWithContext(const PathDecomposition& decomposition,
                                                int num_threads,
                                                const QueryContext& ctx) {
  return MultiplyChainWithContext(decomposition.left_transitions, num_threads, ctx);
}

Result<SparseMatrix> RightReachMatrixWithContext(const PathDecomposition& decomposition,
                                                 int num_threads,
                                                 const QueryContext& ctx) {
  return MultiplyChainWithContext(decomposition.right_transitions, num_threads, ctx);
}

}  // namespace hetesim
