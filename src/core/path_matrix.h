#ifndef HETESIM_CORE_PATH_MATRIX_H_
#define HETESIM_CORE_PATH_MATRIX_H_

#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "hin/graph.h"
#include "hin/metapath.h"
#include "matrix/sparse.h"

namespace hetesim {

/// Zeroes every row of `m` that contains a non-finite entry (NaN or Inf),
/// returning the sanitized copy. Transition rows poisoned by a bad input
/// weight thus become all-zero, which downstream HeteSim semantics already
/// handle: a walker at such an object reaches nothing, and the cosine
/// combination of an all-zero distribution is 0 relevance (the paper's
/// convention for unreachable pairs). When every entry is finite — the
/// overwhelmingly common case — the matrix is returned unchanged without
/// copying row data.
SparseMatrix SanitizeTransition(SparseMatrix m);

/// Transition probability matrices `U` (Definition 8) for every step of
/// `path`, in order. `chain[i]` is `|TypeAt(i)| x |TypeAt(i+1)|` and
/// row-stochastic (up to all-zero rows for nodes with no out-neighbors).
std::vector<SparseMatrix> TransitionChain(const HinGraph& graph, const MetaPath& path);

/// Reachable probability matrix `PM_P = U_1 U_2 ... U_l` (Definition 9).
/// `PM(i, j)` is the probability that a random walker starting at object `i`
/// of the source type reaches object `j` of the target type walking along
/// `path`. This is also exactly the PCRW proximity matrix.
SparseMatrix ReachProbability(const HinGraph& graph, const MetaPath& path);

/// Deadline/cancellation/budget-aware `ReachProbability`: the chain product
/// runs through the context-checked SpGEMM. `num_threads` follows the
/// library convention (1 sequential, 0 = all hardware threads).
[[nodiscard]] Result<SparseMatrix> ReachProbabilityWithContext(const HinGraph& graph,
                                                 const MetaPath& path,
                                                 int num_threads,
                                                 const QueryContext& ctx);

/// Single-source row of `ReachProbability`: the distribution over the target
/// type reached from `source`. O(edges touched), no matrix products.
std::vector<double> ReachDistribution(const HinGraph& graph, const MetaPath& path,
                                      Index source);

/// \brief Decomposition of an atomic relation `R = R_O ∘ R_I` through an
/// inserted edge-object type `E` (Definition 6).
///
/// `E` has one object per *relation instance* (per stored adjacency entry,
/// enumerated in CSR order of the step adjacency). Weights satisfy
/// `w(a,e) = w(e,b) = sqrt(w(a,b))`, so `W_out * W_in` reconstructs the
/// original adjacency exactly (Property 1: the decomposition is unique).
struct AtomicDecomposition {
  SparseMatrix out;       ///< `W_AE`, |src| x |instances|
  SparseMatrix in;        ///< `W_EB`, |instances| x |dst|
  Index num_instances{};  ///< |E|
};

/// Decomposes the adjacency of `step` per Definition 6.
AtomicDecomposition DecomposeAtomicRelation(const HinGraph& graph,
                                            const RelationStep& step);

/// \brief Decomposition of a relevance path into two equal-length halves
/// meeting at a middle type `M` (Definition 5).
///
/// For an even-length path `P = PL PR`, `M = A(l/2 + 1)` and both chains are
/// ordinary transition chains. For an odd-length path the middle atomic
/// relation is split through an edge-object type `E` (Definition 6), making
/// the effective length even; `M = E`.
///
/// `left_transitions` maps the source type `A1` to `M` along `PL`;
/// `right_transitions` maps the target type `A(l+1)` to `M` along `PR^-1`.
/// HeteSim(a, b | P) is then the (normalized) dot product of row `a` of the
/// left chain product and row `b` of the right chain product (Equation 6/8).
struct PathDecomposition {
  std::vector<SparseMatrix> left_transitions;
  std::vector<SparseMatrix> right_transitions;
  Index middle_dimension = 0;       ///< |M|
  bool edge_object_inserted = false;  ///< true iff the path length was odd
};

/// Builds the decomposition of `path` over `graph`.
PathDecomposition DecomposePath(const HinGraph& graph, const MetaPath& path);

/// Product of the left chain: `PM_PL`, |A1| x |M|.
SparseMatrix LeftReachMatrix(const PathDecomposition& decomposition);
/// Product of the right chain: `PM_(PR^-1)`, |A(l+1)| x |M|.
SparseMatrix RightReachMatrix(const PathDecomposition& decomposition);

/// Context-aware half products, polled at SpGEMM chunk granularity.
[[nodiscard]] Result<SparseMatrix> LeftReachMatrixWithContext(const PathDecomposition& decomposition,
                                                int num_threads,
                                                const QueryContext& ctx);
[[nodiscard]] Result<SparseMatrix> RightReachMatrixWithContext(const PathDecomposition& decomposition,
                                                 int num_threads,
                                                 const QueryContext& ctx);

}  // namespace hetesim

#endif  // HETESIM_CORE_PATH_MATRIX_H_
