#ifndef HETESIM_CORE_HETESIM_H_
#define HETESIM_CORE_HETESIM_H_

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "core/path_matrix.h"
#include "hin/graph.h"
#include "hin/metapath.h"
#include "matrix/dense.h"

namespace hetesim {

class PathMatrixCache;  // materialize.h
class TraceSpan;        // common/trace.h

/// Which execution strategy the single-source/pair fast paths use. The
/// three values form the `--algo` ablation ladder (DESIGN.md §14):
///  * kExhaustive — reference: score every object of the target type.
///  * kPruned     — score only candidates sharing a middle object with the
///                  source (the historical default since the pruning PR).
///  * kFrontier   — sparse frontier propagation with per-hop truncation,
///                  lazy normalization, and monotone-bound early exit
///                  (Section 4.6 taken seriously; see core/frontier.h).
enum class RelevanceAlgo {
  kExhaustive,
  kPruned,
  kFrontier,
};

/// Parses an `--algo` word ("exhaustive" | "pruned" | "frontier").
/// Unknown values are `InvalidArgument` naming the choices — a usage
/// error (exit 2) at the CLI layer.
[[nodiscard]] Result<RelevanceAlgo> ParseRelevanceAlgo(std::string_view word);

/// The canonical spelling of `algo` (inverse of `ParseRelevanceAlgo`).
const char* AlgoName(RelevanceAlgo algo);

/// Options controlling HeteSim evaluation.
struct HeteSimOptions {
  /// When true (the default, and what the paper calls "HeteSim" from
  /// Section 4.4 on), scores are cosine-normalized per Definition 10 and lie
  /// in [0, 1] with self-maximum on symmetric paths (Property 4). When
  /// false, the raw pairwise meeting probability of Equation 5 is returned —
  /// needed for the SimRank connection (Property 5).
  bool normalized = true;

  /// Approximate truncation threshold for the cache-less pair and
  /// single-source queries (Section 4.6: "approximate algorithms ... with
  /// a small loss of accuracy"): reachable-probability entries below this
  /// are dropped after each propagation step, keeping the frontier sparse
  /// on hub-heavy networks. 0 (the default) is exact. The absolute score
  /// error is bounded by `path length * truncation * middle-type size`.
  double truncation = 0.0;

  /// Threads used by the full-matrix `Compute` (the SpGEMM of the two
  /// reachable matrices and the normalization sweep are row-parallel) and
  /// by the cached `ComputePairs` scoring loop. Parallel regions run on
  /// the shared, lazily-created process-wide thread pool — no threads are
  /// spawned per call. 1 (the default) runs fully sequentially on the
  /// calling thread; 0 means "use all hardware threads via the pool".
  ///
  /// Determinism is *per plan*: chain products execute the association
  /// plan chosen by the cost model (`matrix/chain_plan.h`), and a fixed
  /// plan is bitwise identical at any thread count. The plan itself is a
  /// pure function of the chain's shapes and fills, so the same graph and
  /// path always reproduce the same scores; but association order changes
  /// floating-point rounding, so results are only ~1e-12-close to the
  /// seed's strict left-to-right evaluation, not bitwise equal to it.
  int num_threads = 1;

  /// Strategy for the latency-critical single-source/pair queries
  /// (`TopKSearcher::Query`, `HeteSimEngine::ComputePairs`). The default
  /// keeps the historical pruned path; `kFrontier` switches to the sparse
  /// frontier executor with bound-based early exit (core/frontier.h).
  /// Full-matrix `Compute` ignores this — there is nothing to prune when
  /// every row is wanted. Under `kFrontier`, `truncation` is interpreted
  /// as a *relative* per-hop threshold (fraction of the hop's largest
  /// entry) rather than an absolute one; 0 stays exact either way.
  RelevanceAlgo algo = RelevanceAlgo::kPruned;

  /// Deadline/cancellation poll stride for the top-k accumulation loops.
  /// 0 (the default) adapts the stride to the observed per-item cost,
  /// targeting ~25us between polls, so cheap items poll rarely and
  /// expensive items poll often enough to honor tight deadlines. A
  /// positive value pins a fixed stride — 1024 reproduces the historical
  /// constant the deadline-storm scenario was originally tuned around.
  int topk_poll_stride = 0;
};

/// \brief The HeteSim relevance measure (Section 4 of the paper).
///
/// `HeteSimEngine` evaluates the relatedness of heterogeneous objects —
/// same-typed or different-typed — along a user-chosen relevance path.
/// It implements:
///  * full relevance matrices `HeteSim(A1, A(l+1) | P)` (Equation 6),
///  * single-source queries (one row of the matrix, computed lazily),
///  * single-pair queries (one dot product given materialized halves),
/// with an optional `PathMatrixCache` for cross-query reuse of partial
/// reachable-probability products (the Section 4.6 acceleration).
///
/// The engine holds a non-owning reference to the graph, which must outlive
/// it. Engines are cheap to construct; all heavy state lives in the cache.
class HeteSimEngine {
 public:
  /// Creates an engine over `graph`. If `cache` is non-null, left/right
  /// reachable-probability products are stored there and reused across
  /// queries (including by other engines sharing the cache).
  explicit HeteSimEngine(const HinGraph& graph, HeteSimOptions options = {},
                         std::shared_ptr<PathMatrixCache> cache = nullptr);

  /// Full relevance matrix between all sources and all targets of `path`:
  /// entry (a, b) is HeteSim(a, b | P). Shape |A1| x |A(l+1)|.
  DenseMatrix Compute(const MetaPath& path) const;

  /// Deadline/cancellation/budget-aware `Compute`: the reachable-matrix
  /// products and the normalization sweep poll `ctx` at chunk granularity,
  /// so an expired or cancelled query stops within one chunk's worth of
  /// work. Fails with `DeadlineExceeded` / `Cancelled` /
  /// `ResourceExhausted`; with `QueryContext::Background()` this is exactly
  /// the plain `Compute`.
  [[nodiscard]] Result<DenseMatrix> Compute(const MetaPath& path, const QueryContext& ctx) const;

  /// Relevance of `source` to every target object: one row of `Compute`.
  /// Errors when `source` is out of range for the path's source type.
  [[nodiscard]] Result<std::vector<double>> ComputeSingleSource(const MetaPath& path,
                                                  Index source) const;

  /// Relevance of the single pair (`source`, `target`).
  [[nodiscard]] Result<double> ComputePair(const MetaPath& path, Index source, Index target) const;

  /// Relevance of many pairs along one path, sharing one path
  /// decomposition and reusing the propagated distribution of every
  /// repeated source/target — the right call shape for scoring candidate
  /// lists (e.g. recommendation rerankers). Returns scores aligned with
  /// `pairs`. Errors if any id is out of range (nothing partial is
  /// returned).
  [[nodiscard]] Result<std::vector<double>> ComputePairs(
      const MetaPath& path, const std::vector<std::pair<Index, Index>>& pairs) const;

  /// Context-aware `ComputePairs`: materialization and the scoring loop
  /// poll `ctx`; nothing partial is returned on expiry.
  [[nodiscard]] Result<std::vector<double>> ComputePairs(
      const MetaPath& path, const std::vector<std::pair<Index, Index>>& pairs,
      const QueryContext& ctx) const;

  /// Sum of unnormalized HeteSim over the paths `(R R^-1)^k`, k = 1..depth,
  /// for two objects of the relation's source type. By Property 5 this
  /// converges to SimRank(a1, a2) with damping C = 1 on the bipartite graph
  /// of `relation`. Exposed mainly for tests and the SimRank benches.
  [[nodiscard]] Result<double> SimRankSeries(RelationId relation, Index a1, Index a2,
                               int depth) const;

  /// The graph this engine evaluates against.
  const HinGraph& graph() const { return graph_; }
  /// The options this engine was created with.
  const HeteSimOptions& options() const { return options_; }

 private:
  /// `Compute(path, ctx)` body, separated so the public entry point can
  /// bracket it with the query span, the latency observation, and the
  /// terminal-status counters (DESIGN.md §12) while the body keeps using
  /// the early-return Status macros.
  [[nodiscard]] Result<DenseMatrix> ComputeTraced(const MetaPath& path,
                                                  const QueryContext& ctx,
                                                  TraceSpan& span) const;
  /// Same split for `ComputePairs(path, pairs, ctx)`.
  [[nodiscard]] Result<std::vector<double>> ComputePairsTraced(
      const MetaPath& path, const std::vector<std::pair<Index, Index>>& pairs,
      const QueryContext& ctx, TraceSpan& span) const;
  /// Left/right reachable matrices for `path`, via the cache when present.
  void GetReachMatrices(const MetaPath& path, SparseMatrix* left,
                        SparseMatrix* right) const;
  /// Context-aware variant; cache misses compute under `ctx`.
  [[nodiscard]] Status GetReachMatrices(const MetaPath& path, const QueryContext& ctx,
                          SparseMatrix* left, SparseMatrix* right) const;

  const HinGraph& graph_;
  HeteSimOptions options_;
  std::shared_ptr<PathMatrixCache> cache_;
};

}  // namespace hetesim

#endif  // HETESIM_CORE_HETESIM_H_
