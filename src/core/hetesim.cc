#include "core/hetesim.h"

#include <cmath>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "core/frontier.h"
#include "core/materialize.h"
#include "matrix/chain_plan.h"
#include "matrix/cost_model.h"
#include "matrix/ops.h"
#include "matrix/spgemm.h"

namespace hetesim {

namespace {

/// End-to-end query instruments (DESIGN.md §12). One `queries` increment
/// and one latency observation per ctx-aware entry point; terminal statuses
/// split into cancelled / deadline-exceeded / other-failed so dashboards
/// separate caller-initiated stops from real errors.
struct EngineMetrics {
  Counter& queries;
  Counter& cancelled;
  Counter& deadline_exceeded;
  Counter& failed;
  Histogram& latency;
};

EngineMetrics& GlobalEngineMetrics() {
  static EngineMetrics metrics{
      MetricsRegistry::Global().GetCounter("hetesim_engine_queries_total"),
      MetricsRegistry::Global().GetCounter("hetesim_engine_cancelled_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_engine_deadline_exceeded_total"),
      MetricsRegistry::Global().GetCounter("hetesim_engine_failed_total"),
      MetricsRegistry::Global().GetHistogram(
          "hetesim_engine_query_latency_seconds",
          DefaultLatencyBoundariesSeconds()),
  };
  return metrics;
}

/// Shared epilogue for the instrumented entry points: one query counted,
/// latency observed, terminal status classified, and the span annotated
/// with the outcome (cancellation/truncation markers ride on the span).
void RecordQueryOutcome(TraceSpan& span, const Status& status,
                        double elapsed_seconds) {
  if (MetricsEnabled()) {
    EngineMetrics& metrics = GlobalEngineMetrics();
    metrics.queries.Increment();
    metrics.latency.Observe(elapsed_seconds);
    if (status.IsCancelled()) {
      metrics.cancelled.Increment();
    } else if (status.IsDeadlineExceeded()) {
      metrics.deadline_exceeded.Increment();
    } else if (!status.ok()) {
      metrics.failed.Increment();
    }
  }
  if (span.active() && !status.ok()) {
    span.Annotate("status", std::string(StatusCodeToString(status.code())));
    if (status.IsCancelled()) span.Annotate("cancelled", "true");
    if (status.IsDeadlineExceeded()) span.Annotate("deadline_exceeded", "true");
  }
}

}  // namespace

Result<RelevanceAlgo> ParseRelevanceAlgo(std::string_view word) {
  if (word == "exhaustive") return RelevanceAlgo::kExhaustive;
  if (word == "pruned") return RelevanceAlgo::kPruned;
  if (word == "frontier") return RelevanceAlgo::kFrontier;
  return Status::InvalidArgument("unknown algo '" + std::string(word) +
                                 "' (want exhaustive | pruned | frontier)");
}

const char* AlgoName(RelevanceAlgo algo) {
  switch (algo) {
    case RelevanceAlgo::kExhaustive: return "exhaustive";
    case RelevanceAlgo::kPruned: return "pruned";
    case RelevanceAlgo::kFrontier: return "frontier";
  }
  return "unknown";
}

HeteSimEngine::HeteSimEngine(const HinGraph& graph, HeteSimOptions options,
                             std::shared_ptr<PathMatrixCache> cache)
    : graph_(graph), options_(options), cache_(std::move(cache)) {}

void HeteSimEngine::GetReachMatrices(const MetaPath& path, SparseMatrix* left,
                                     SparseMatrix* right) const {
  if (cache_ != nullptr) {
    *left = *cache_->GetLeft(graph_, path);
    *right = *cache_->GetRight(graph_, path);
    return;
  }
  PathDecomposition decomposition = DecomposePath(graph_, path);
  *left = LeftReachMatrix(decomposition);
  *right = RightReachMatrix(decomposition);
}

Status HeteSimEngine::GetReachMatrices(const MetaPath& path, const QueryContext& ctx,
                                       SparseMatrix* left, SparseMatrix* right) const {
  if (cache_ != nullptr) {
    HETESIM_ASSIGN_OR_RETURN(
        std::shared_ptr<const SparseMatrix> cached_left,
        cache_->GetLeft(graph_, path, ctx, options_.num_threads));
    HETESIM_ASSIGN_OR_RETURN(
        std::shared_ptr<const SparseMatrix> cached_right,
        cache_->GetRight(graph_, path, ctx, options_.num_threads));
    *left = *cached_left;
    *right = *cached_right;
    return Status::OK();
  }
  PathDecomposition decomposition = DecomposePath(graph_, path);
  HETESIM_ASSIGN_OR_RETURN(
      *left, LeftReachMatrixWithContext(decomposition, options_.num_threads, ctx));
  HETESIM_ASSIGN_OR_RETURN(
      *right, RightReachMatrixWithContext(decomposition, options_.num_threads, ctx));
  return Status::OK();
}

DenseMatrix HeteSimEngine::Compute(const MetaPath& path) const {
  HETESIM_CHECK(&path.schema() == &graph_.schema())
      << "meta-path was parsed against a different schema object";
  // The background context never expires, is never cancelled, and carries
  // no budget, so the ctx-aware path cannot fail here.
  return Compute(path, QueryContext::Background()).value();
}

Result<DenseMatrix> HeteSimEngine::Compute(const MetaPath& path,
                                           const QueryContext& ctx) const {
  TraceSpan span(ctx.trace(), "engine.compute");
  if (span.active()) span.Annotate("path", path.ToString());
  Stopwatch stopwatch;
  Result<DenseMatrix> result = ComputeTraced(path, ctx, span);
  RecordQueryOutcome(span, result.ok() ? Status::OK() : result.status(),
                     stopwatch.ElapsedSeconds());
  return result;
}

Result<DenseMatrix> HeteSimEngine::ComputeTraced(const MetaPath& path,
                                                 const QueryContext& ctx,
                                                 TraceSpan& span) const {
  if (&path.schema() != &graph_.schema()) {
    return Status::InvalidArgument(
        "meta-path was parsed against a different schema object");
  }
  SparseMatrix left;
  SparseMatrix right;
  {
    TraceSpan reach_span(ctx.trace(), "engine.reach_matrices");
    HETESIM_RETURN_NOT_OK(GetReachMatrices(path, ctx, &left, &right));
  }
  // Equation 6: HeteSim(A1, A(l+1) | P) = PM_PL * PM_(PR^-1)'. Relevance
  // matrices of connected networks are dense, so when the cost model
  // predicts densification the product is accumulated directly into the
  // dense score matrix (skipping CSR assembly of a near-full matrix);
  // otherwise the adaptive sparse kernel runs and the result is densified.
  // Both kernels accumulate in the seed Gustavson order, so scores are
  // bitwise identical either way and at any thread count.
  const SparseMatrix right_t = right.Transpose();
  DenseMatrix scores;
  const MatrixEstimate product_estimate =
      EstimateProduct(EstimateOf(left), EstimateOf(right_t));
  const bool dense_product =
      product_estimate.Density() >= ChainPlanOptions().dense_switch_density;
  if (span.active()) {
    span.Annotate("product_kernel", dense_product ? "dense" : "spgemm");
  }
  {
    TraceSpan product_span(ctx.trace(), "engine.product");
    if (dense_product) {
      HETESIM_ASSIGN_OR_RETURN(
          scores,
          MultiplySparseSparseDense(left, right_t, options_.num_threads, ctx));
    } else {
      HETESIM_ASSIGN_OR_RETURN(
          SparseMatrix product,
          MultiplySparseAdaptive(left, right_t, options_.num_threads, ctx));
      scores = product.ToDense();
    }
  }
  if (!options_.normalized) return scores;
  TraceSpan normalize_span(ctx.trace(), "engine.normalize");
  // Definition 10: divide entry (a, b) by |PM_PL(a,:)| * |PM_(PR^-1)(b,:)|.
  std::vector<double> left_norms(static_cast<size_t>(left.rows()));
  for (Index a = 0; a < left.rows(); ++a) left_norms[static_cast<size_t>(a)] = left.RowNorm(a);
  std::vector<double> right_norms(static_cast<size_t>(right.rows()));
  for (Index b = 0; b < right.rows(); ++b) right_norms[static_cast<size_t>(b)] = right.RowNorm(b);
  SharedStatus region_status;
  ParallelFor(
      0, scores.rows(), options_.num_threads,
      [&](int64_t row_begin, int64_t row_end) {
        // Chunk-granular liveness check: once the context dies (or another
        // chunk failed), the remaining chunks are no-ops and the region
        // drains without leaking pool tasks.
        if (!region_status.ok()) return;
        if (Status alive = ctx.CheckAlive(); !alive.ok()) {
          region_status.Update(std::move(alive));
          return;
        }
        // Chunks are cost-model sized, so the entry check above bounds the
        // time between polls.
        for (Index a = row_begin; a < row_end; ++a) {  // hetesim-lint: allow(cancel-poll)
          double* row = scores.RowData(a);
          const double na = left_norms[static_cast<size_t>(a)];
          // Skip unreachable source rows; non-finite norms (poisoned input
          // weights that escaped sanitization) degrade to 0 relevance
          // instead of propagating NaN through the whole row.
          if (na == 0.0 || !std::isfinite(na)) {
            if (!std::isfinite(na)) {
              for (Index b = 0; b < scores.cols(); ++b) row[b] = 0.0;
            }
            continue;
          }
          for (Index b = 0; b < scores.cols(); ++b) {
            const double nb = right_norms[static_cast<size_t>(b)];
            if (!std::isfinite(nb)) {
              row[b] = 0.0;
            } else if (nb != 0.0) {
              row[b] /= na * nb;
            }
          }
        }
      },
      {.cost_per_element = static_cast<double>(scores.cols())});
  HETESIM_RETURN_NOT_OK(region_status.status());
  return scores;
}

Result<std::vector<double>> HeteSimEngine::ComputeSingleSource(const MetaPath& path,
                                                               Index source) const {
  if (&path.schema() != &graph_.schema()) {
    return Status::InvalidArgument(
        "meta-path was parsed against a different schema object");
  }
  const Index num_sources = graph_.NumNodes(path.SourceType());
  if (source < 0 || source >= num_sources) {
    return Status::OutOfRange(StrFormat(
        "source id %lld out of range [0, %lld) for type '%s'",
        static_cast<long long>(source), static_cast<long long>(num_sources),
        graph_.schema().TypeName(path.SourceType()).c_str()));
  }
  PathDecomposition decomposition;
  SparseMatrix right;
  std::vector<double> u;
  if (cache_ != nullptr) {
    std::shared_ptr<const SparseMatrix> left = cache_->GetLeft(graph_, path);
    u = left->RowDense(source);
    right = *cache_->GetRight(graph_, path);
  } else {
    decomposition = DecomposePath(graph_, path);
    u.assign(static_cast<size_t>(num_sources), 0.0);
    u[static_cast<size_t>(source)] = 1.0;
    u = VectorThroughChainTruncated(std::move(u), decomposition.left_transitions,
                                    options_.truncation);
    right = RightReachMatrix(decomposition);
  }
  // scores[t] = u . PM_R(t,:), then cosine-normalize per Definition 10.
  std::vector<double> scores = right.MultiplyVector(u);
  if (options_.normalized) {
    const double nu = Norm2(u);
    if (nu == 0.0) {
      // Source cannot reach the middle type at all: relevance is 0 to
      // everything (the paper's O(s|R1) = empty convention).
      return std::vector<double>(scores.size(), 0.0);
    }
    for (Index t = 0; t < right.rows(); ++t) {
      const double nt = right.RowNorm(t);
      if (nt != 0.0) scores[static_cast<size_t>(t)] /= nu * nt;
    }
  }
  return scores;
}

Result<double> HeteSimEngine::ComputePair(const MetaPath& path, Index source,
                                          Index target) const {
  if (&path.schema() != &graph_.schema()) {
    return Status::InvalidArgument(
        "meta-path was parsed against a different schema object");
  }
  const Index num_sources = graph_.NumNodes(path.SourceType());
  const Index num_targets = graph_.NumNodes(path.TargetType());
  if (source < 0 || source >= num_sources) {
    return Status::OutOfRange("source id out of range");
  }
  if (target < 0 || target >= num_targets) {
    return Status::OutOfRange("target id out of range");
  }
  if (cache_ != nullptr) {
    std::shared_ptr<const SparseMatrix> left = cache_->GetLeft(graph_, path);
    std::shared_ptr<const SparseMatrix> right = cache_->GetRight(graph_, path);
    return options_.normalized ? left->RowCosine(source, *right, target)
                               : left->RowDot(source, *right, target);
  }
  // Cache-less path: propagate both indicator vectors to the middle type;
  // no matrix products at all (Equation 7 evaluated directly).
  PathDecomposition decomposition = DecomposePath(graph_, path);
  std::vector<double> u(static_cast<size_t>(num_sources), 0.0);
  u[static_cast<size_t>(source)] = 1.0;
  u = VectorThroughChainTruncated(std::move(u), decomposition.left_transitions,
                                  options_.truncation);
  std::vector<double> v(static_cast<size_t>(num_targets), 0.0);
  v[static_cast<size_t>(target)] = 1.0;
  v = VectorThroughChainTruncated(std::move(v), decomposition.right_transitions,
                                  options_.truncation);
  return options_.normalized ? CosineSimilarity(u, v) : Dot(u, v);
}

Result<std::vector<double>> HeteSimEngine::ComputePairs(
    const MetaPath& path, const std::vector<std::pair<Index, Index>>& pairs) const {
  return ComputePairs(path, pairs, QueryContext::Background());
}

Result<std::vector<double>> HeteSimEngine::ComputePairs(
    const MetaPath& path, const std::vector<std::pair<Index, Index>>& pairs,
    const QueryContext& ctx) const {
  TraceSpan span(ctx.trace(), "engine.compute_pairs");
  if (span.active()) {
    span.Annotate("path", path.ToString());
    span.Annotate("pairs", std::to_string(pairs.size()));
  }
  Stopwatch stopwatch;
  Result<std::vector<double>> result = ComputePairsTraced(path, pairs, ctx, span);
  RecordQueryOutcome(span, result.ok() ? Status::OK() : result.status(),
                     stopwatch.ElapsedSeconds());
  return result;
}

Result<std::vector<double>> HeteSimEngine::ComputePairsTraced(
    const MetaPath& path, const std::vector<std::pair<Index, Index>>& pairs,
    const QueryContext& ctx, TraceSpan& span) const {
  if (&path.schema() != &graph_.schema()) {
    return Status::InvalidArgument(
        "meta-path was parsed against a different schema object");
  }
  const Index num_sources = graph_.NumNodes(path.SourceType());
  const Index num_targets = graph_.NumNodes(path.TargetType());
  // O(1) range check per pair, before any compute starts.
  for (const auto& [source, target] : pairs) {  // hetesim-lint: allow(cancel-poll)
    if (source < 0 || source >= num_sources) {
      return Status::OutOfRange("source id out of range");
    }
    if (target < 0 || target >= num_targets) {
      return Status::OutOfRange("target id out of range");
    }
  }
  if (options_.algo == RelevanceAlgo::kFrontier) {
    // Frontier pair scoring (core/frontier.h): both indicators propagate
    // sparsely to the middle type and combine per Equation 7 — no reachable
    // matrix is materialized. A cache, when present, is probed for partial
    // products to fold into the chains (ad-hoc meta-path reuse), and each
    // distinct id's frontier is propagated once.
    if (span.active()) span.Annotate("mode", "frontier");
    PathDecomposition decomposition = DecomposePath(graph_, path);
    const FrontierChain left_chain = PlanFrontierChain(
        decomposition.left_transitions, path, /*left_side=*/true, cache_.get());
    const FrontierChain right_chain =
        PlanFrontierChain(decomposition.right_transitions, path,
                          /*left_side=*/false, cache_.get());
    std::unordered_map<Index, SparseVector> source_frontiers;
    std::unordered_map<Index, SparseVector> target_frontiers;
    auto frontier_of =
        [&](Index id, const FrontierChain& chain,
            std::unordered_map<Index, SparseVector>& memo)
        -> Result<const SparseVector*> {
      auto it = memo.find(id);
      if (it != memo.end()) return &it->second;
      HETESIM_ASSIGN_OR_RETURN(
          SparseVector propagated,
          PropagateFrontier(id, chain, options_.truncation, ctx));
      return &memo.emplace(id, std::move(propagated)).first->second;
    };
    std::vector<double> scores;
    scores.reserve(pairs.size());
    for (const auto& [source, target] : pairs) {
      HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
      HETESIM_ASSIGN_OR_RETURN(
          const SparseVector* u,
          frontier_of(source, left_chain, source_frontiers));
      HETESIM_ASSIGN_OR_RETURN(
          const SparseVector* v,
          frontier_of(target, right_chain, target_frontiers));
      double score = SparseDot(*u, *v);
      if (options_.normalized) {
        const double nu = SparseNorm2(*u);
        const double nv = SparseNorm2(*v);
        score = (nu == 0.0 || nv == 0.0) ? 0.0 : score / (nu * nv);
      }
      scores.push_back(score);
    }
    return scores;
  }
  if (cache_ != nullptr) {
    if (span.active()) span.Annotate("mode", "cached");
    HETESIM_ASSIGN_OR_RETURN(
        std::shared_ptr<const SparseMatrix> left,
        cache_->GetLeft(graph_, path, ctx, options_.num_threads));
    HETESIM_ASSIGN_OR_RETURN(
        std::shared_ptr<const SparseMatrix> right,
        cache_->GetRight(graph_, path, ctx, options_.num_threads));
    // Each pair's score is independent, so candidate-list scoring is
    // pair-parallel on the shared pool (cost hint: one sparse row merge).
    std::vector<double> scores(pairs.size(), 0.0);
    SharedStatus region_status;
    ParallelFor(
        0, static_cast<int64_t>(pairs.size()), options_.num_threads,
        [&](int64_t pair_begin, int64_t pair_end) {
          if (!region_status.ok()) return;
          if (Status alive = ctx.CheckAlive(); !alive.ok()) {
            region_status.Update(std::move(alive));
            return;
          }
          // Chunk-granular poll at lambda entry; chunks are cost-model
          // sized.
          for (int64_t p = pair_begin; p < pair_end; ++p) {  // hetesim-lint: allow(cancel-poll)
            const auto& [source, target] = pairs[static_cast<size_t>(p)];
            scores[static_cast<size_t>(p)] =
                options_.normalized ? left->RowCosine(source, *right, target)
                                    : left->RowDot(source, *right, target);
          }
        },
        {.cost_per_element = 64.0});
    HETESIM_RETURN_NOT_OK(region_status.status());
    return scores;
  }
  // One decomposition; distributions propagated once per distinct id.
  if (span.active()) span.Annotate("mode", "decomposed");
  PathDecomposition decomposition = DecomposePath(graph_, path);
  std::unordered_map<Index, std::vector<double>> source_distributions;
  std::unordered_map<Index, std::vector<double>> target_distributions;
  auto distribution_of = [&](Index id, Index dimension,
                             const std::vector<SparseMatrix>& chain,
                             std::unordered_map<Index, std::vector<double>>& memo)
      -> const std::vector<double>& {
    auto it = memo.find(id);
    if (it != memo.end()) return it->second;
    std::vector<double> indicator(static_cast<size_t>(dimension), 0.0);
    indicator[static_cast<size_t>(id)] = 1.0;
    return memo
        .emplace(id, VectorThroughChainTruncated(std::move(indicator), chain,
                                                 options_.truncation))
        .first->second;
  };
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const auto& [source, target] : pairs) {
    // Each iteration propagates at most two indicator vectors — chunk-ish
    // units of work, so per-pair polling keeps cancellation prompt without
    // measurable cost.
    HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
    const std::vector<double>& u = distribution_of(
        source, num_sources, decomposition.left_transitions, source_distributions);
    const std::vector<double>& v = distribution_of(
        target, num_targets, decomposition.right_transitions, target_distributions);
    scores.push_back(options_.normalized ? CosineSimilarity(u, v) : Dot(u, v));
  }
  return scores;
}

Result<double> HeteSimEngine::SimRankSeries(RelationId relation, Index a1, Index a2,
                                            int depth) const {
  const Schema& schema = graph_.schema();
  if (!schema.IsValidRelation(relation)) {
    return Status::InvalidArgument("invalid relation id");
  }
  if (depth < 1) {
    return Status::InvalidArgument("depth must be >= 1");
  }
  HeteSimOptions raw_options = options_;
  raw_options.normalized = false;
  HeteSimEngine raw(graph_, raw_options, cache_);
  double total = 0.0;
  std::vector<RelationStep> steps;
  for (int k = 1; k <= depth; ++k) {
    steps.push_back({relation, /*forward=*/true});
    steps.push_back({relation, /*forward=*/false});
    HETESIM_ASSIGN_OR_RETURN(MetaPath path, MetaPath::FromSteps(schema, steps));
    HETESIM_ASSIGN_OR_RETURN(double term, raw.ComputePair(path, a1, a2));
    total += term;
  }
  return total;
}

}  // namespace hetesim
