#ifndef HETESIM_CORE_FRONTIER_H_
#define HETESIM_CORE_FRONTIER_H_

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "core/topk.h"
#include "hin/metapath.h"
#include "matrix/sparse.h"

namespace hetesim {

class PathMatrixCache;  // materialize.h

/// \file
/// Frontier execution: the single-source fast path (DESIGN.md §14).
///
/// Instead of materializing whole reachable-probability matrices, a query
/// propagates one *sparse* row vector from the source end of the decomposed
/// path (and, for pair queries, one from the target end): each hop is a
/// vector×CSR product over only the reached rows, optionally dropping mass
/// below a relative threshold with a tracked error bound (the paper's §4.6
/// pruning discussion made concrete). Top-k queries then sweep the middle
/// objects in descending-mass order, maintaining a monotone upper bound on
/// every not-yet-touched candidate, and stop as soon as the k-th best lower
/// bound provably beats that bound — the TA/NRA-style early exit.

/// Adaptive deadline/cancellation poll pacing for item-granular loops.
///
/// The historical top-k loop polled its context every fixed 1024 items,
/// which is too rare for expensive items (deadline overshoot) and
/// needlessly frequent for cheap ones. This controller measures the elapsed
/// time between polls and re-derives the stride from the observed per-item
/// cost, targeting ~25us between polls, clamped to [32, 16384]. Construct
/// with `fixed_stride > 0` (e.g. `HeteSimOptions::topk_poll_stride`) to pin
/// the stride instead — 1024 reproduces the historical behavior.
class PollStrideController {
 public:
  static constexpr size_t kInitialStride = 64;
  static constexpr size_t kMinStride = 32;
  static constexpr size_t kMaxStride = 16384;
  /// The historical fixed stride, kept as the fallback-flag value.
  static constexpr int kLegacyFixedStride = 1024;

  explicit PollStrideController(int fixed_stride)
      : fixed_(fixed_stride > 0),
        stride_(fixed_ ? static_cast<size_t>(fixed_stride) : kInitialStride),
        next_(stride_),
        last_poll_(std::chrono::steady_clock::now()) {}

  /// True when `item` crosses the next poll point. The caller then checks
  /// its context; this call re-paces the stride from the measured cost.
  bool ShouldPoll(size_t item) {
    if (item < next_) return false;
    const auto now = std::chrono::steady_clock::now();
    if (!fixed_) {
      const double elapsed =
          std::chrono::duration<double>(now - last_poll_).count();
      const double per_item =
          elapsed / static_cast<double>(std::max<size_t>(stride_, 1));
      if (per_item > 0.0) {
        const double want = kTargetPollSeconds / per_item;
        stride_ = static_cast<size_t>(
            std::clamp(want, static_cast<double>(kMinStride),
                       static_cast<double>(kMaxStride)));
      } else {
        // Clock too coarse to see the stride: widen geometrically.
        stride_ = std::min(stride_ * 2, kMaxStride);
      }
    }
    last_poll_ = now;
    next_ = item + stride_;
    return true;
  }

  size_t stride() const { return stride_; }

 private:
  static constexpr double kTargetPollSeconds = 25e-6;

  bool fixed_;
  size_t stride_;
  size_t next_;
  std::chrono::steady_clock::time_point last_poll_;
};

/// A sparse non-negative row vector: parallel (indices, values) with
/// strictly ascending indices, plus the L1 mass discarded by per-hop
/// truncation (0 when the propagation ran exact).
struct SparseVector {
  std::vector<Index> indices;
  std::vector<double> values;
  double dropped_mass = 0.0;

  size_t nnz() const { return indices.size(); }
};

/// One half of a frontier execution plan: the per-step transition chain,
/// optionally with the first `head_steps` transitions replaced by an
/// already-materialized cached partial product (ad-hoc meta-path reuse).
struct FrontierChain {
  /// The half's per-step transitions (non-owning; must outlive the chain).
  const std::vector<SparseMatrix>* steps = nullptr;
  /// Cached product of `(*steps)[0..head_steps)`, or null for no reuse.
  std::shared_ptr<const SparseMatrix> head;
  size_t head_steps = 0;
  /// True when `head` came from a `PathMatrixCache` partial probe.
  bool used_cached_partial = false;
};

/// Plans the cheapest frontier chain for one half of `path`: probes `cache`
/// (when non-null) for materialized prefix partials of the half, scores
/// each candidate plan with the cost model's single-row propagation flops
/// estimate, and folds the winning partial in as the chain head. Records
/// partial-hit stats on the cache. With no cache (or no profitable hit)
/// the plain per-step chain is returned.
FrontierChain PlanFrontierChain(const std::vector<SparseMatrix>& steps,
                                const MetaPath& path, bool left_side,
                                PathMatrixCache* cache);

/// Propagates the indicator vector of `source` through `chain`, keeping the
/// frontier sparse. `relative_threshold` in [0, 1) drops entries below
/// `threshold * max_entry` after each hop, accumulating the dropped L1 mass
/// into the result's `dropped_mass` (0 = exact). Polls `ctx` once per hop
/// and charges the per-hop accumulator against its memory budget. Fails
/// with `ResourceExhausted` at the `frontier.alloc` fault point.
[[nodiscard]] Result<SparseVector> PropagateFrontier(
    Index source, const FrontierChain& chain, double relative_threshold,
    const QueryContext& ctx);

/// Dot product of two sorted sparse vectors (two-pointer merge, ascending
/// index order — the same term order as the dense accumulation).
double SparseDot(const SparseVector& a, const SparseVector& b);

/// Euclidean norm of a sparse vector.
double SparseNorm2(const SparseVector& a);

/// Single-pair HeteSim via bidirectional frontiers: both indicators are
/// propagated to the middle type and combined per Equation 7 (cosine when
/// `normalized`). No matrix is ever materialized.
[[nodiscard]] Result<double> FrontierPairScore(Index source,
                                               const FrontierChain& left,
                                               Index target,
                                               const FrontierChain& right,
                                               bool normalized,
                                               double relative_threshold,
                                               const QueryContext& ctx);

/// \brief Single-source top-k executor over a prepared right half.
///
/// A lightweight non-owning view assembled per query (all referenced state
/// must outlive it — `TopKSearcher` builds one on the stack from its own
/// members). The query runs in two phases:
///
///  1. *Sweep.* Propagate the source frontier `u`, order its middle entries
///     by descending mass, and fold them into per-candidate partial dots
///     through the inverted index. After entry `j`, any candidate touched
///     only by the remaining tail satisfies (Cauchy–Schwarz)
///     `score <= ||u_tail||/||u||` (normalized; the per-candidate norm
///     cancels) or `score <= ||u_tail|| * max_t ||r_t||` (unnormalized) —
///     a monotone non-increasing upper bound. Every touched candidate's
///     partial (normalized) dot is a valid lower bound because all entries
///     are non-negative. When the k-th best lower bound strictly exceeds
///     the unseen bound, no unseen candidate can enter the top-k: the
///     candidate set is frozen and the sweep stops (`bound_exit`).
///  2. *Rescore.* Each frozen candidate gets its exact score by merging its
///     right row against `u` in ascending middle order — the same term
///     order as the pruned path, so finished queries match it bitwise.
///
/// Deadline/cancellation mid-sweep returns the partial ranking with
/// `truncated = true` (the searcher's documented best-effort contract).
class FrontierExecutor {
 public:
  FrontierExecutor(FrontierChain left, const SparseMatrix* right,
                   const SparseMatrix* right_transpose,
                   const std::vector<double>* right_norms,
                   double max_right_norm, const HeteSimOptions& options)
      : left_(std::move(left)),
        right_(right),
        right_transpose_(right_transpose),
        right_norms_(right_norms),
        max_right_norm_(max_right_norm),
        options_(options) {}

  [[nodiscard]] Result<TopKResult> TopK(Index source, int k,
                                        const QueryContext& ctx) const;

 private:
  FrontierChain left_;
  const SparseMatrix* right_;            // |targets| x |middle|
  const SparseMatrix* right_transpose_;  // |middle| x |targets|
  const std::vector<double>* right_norms_;
  double max_right_norm_;
  const HeteSimOptions& options_;
};

}  // namespace hetesim

#endif  // HETESIM_CORE_FRONTIER_H_
