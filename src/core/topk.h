#ifndef HETESIM_CORE_TOPK_H_
#define HETESIM_CORE_TOPK_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/hetesim.h"
#include "hin/graph.h"
#include "hin/metapath.h"
#include "matrix/sparse.h"

namespace hetesim {

class PathMatrixCache;  // materialize.h

/// A ranked object: per-type node id plus its relevance score.
struct Scored {
  Index id = -1;
  double score = 0.0;

  friend bool operator==(const Scored& a, const Scored& b) {
    return a.id == b.id && a.score == b.score;
  }
};

/// The `k` highest-scoring entries of `scores`, descending, ties broken by
/// ascending id (stable across platforms). `k` larger than the input size
/// returns everything ranked.
std::vector<Scored> TopK(const std::vector<double>& scores, int k);

/// Result of a pruned top-k query, with the work counter used by the
/// pruning ablation bench.
struct TopKResult {
  std::vector<Scored> items;
  /// Number of candidate targets actually scored. Exhaustive search scores
  /// every object of the target type; pruned search only those reachable
  /// from the source's middle-type distribution (Section 4.6: "the related
  /// objects to a searched object are a very small percentage ... pruning
  /// techniques can be used").
  Index candidates_examined = 0;
  /// True when a deadline (or cancellation) cut the accumulation short:
  /// `items` then ranks only the candidates reached through the first
  /// `middle_processed` of `middle_total` middle objects — every reported
  /// score is a valid partial lower bound, but objects may be missing or
  /// under-scored. Always false for queries run without a context.
  bool truncated = false;
  /// Middle objects folded into the scores before stopping. Under
  /// `RelevanceAlgo::kFrontier` the unit is *frontier entries* (the middle
  /// objects the source actually reaches) rather than the dense middle
  /// dimension — the sweep never visits unreached middles at all.
  Index middle_processed = 0;
  /// Size of the middle type (the full accumulation loop); for the frontier
  /// algo, the source frontier's support.
  Index middle_total = 0;
  /// True when the frontier sweep stopped early because the k-th best lower
  /// bound provably exceeded every unseen candidate's upper bound. Unlike
  /// `truncated`, the ranking is still EXACT — the frozen candidates are
  /// rescored in full; the bound only proves no one outside them belongs in
  /// the top-k. Always false for the exhaustive/pruned algos.
  bool bound_exit = false;
  /// Upper bound on the L1 probability mass dropped by per-hop truncation
  /// (`HeteSimOptions::truncation` under the frontier algo); 0 for exact
  /// runs. Scores may drift by up to roughly this mass (normalization makes
  /// the bound heuristic rather than strict).
  double error_bound = 0.0;
};

/// A scored (source, target) pair for global top-k joins.
struct ScoredPair {
  Index source = -1;
  Index target = -1;
  double score = 0.0;

  friend bool operator==(const ScoredPair& a, const ScoredPair& b) {
    return a.source == b.source && a.target == b.target && a.score == b.score;
  }
};

/// \brief Global top-k relevance join: the `k` most related
/// (source, target) pairs along `path` across ALL sources, descending by
/// score (ties by ascending source then target). The per-source pruned
/// search keeps this at "touched candidates" cost rather than |A| x |B|.
/// `k < 0` is an error; self-pairs are included (on symmetric paths they
/// dominate, so callers ranking cross-object affinity may want
/// `exclude_diagonal`).
[[nodiscard]] Result<std::vector<ScoredPair>> TopKPairs(const HinGraph& graph,
                                          const MetaPath& path, int k,
                                          bool exclude_diagonal = false,
                                          HeteSimOptions options = {});

/// \brief Prepared single-source top-k HeteSim search along a fixed path.
///
/// Preparation materializes the path decomposition, the right reachable
/// matrix, its transpose (an inverted index from middle objects to targets)
/// and per-target norms, so each query costs one sparse vector propagation
/// plus work proportional to the candidate set.
class TopKSearcher {
 public:
  /// Prepares the searcher; O(path matrix products) once.
  TopKSearcher(const HinGraph& graph, const MetaPath& path,
               HeteSimOptions options = {});

  /// Context-aware preparation: the right-chain product runs under `ctx`
  /// (deadline / cancellation / budget), so even the one-time
  /// materialization of a huge path respects `--deadline-ms`. A non-null
  /// `cache` makes preparation ad-hoc-path aware: the right half is fetched
  /// through `PathMatrixCache::GetRightWithReuse` (folding the cheapest
  /// cached partial products instead of recomputing from scratch) and,
  /// under `RelevanceAlgo::kFrontier`, the left chain is planned against
  /// cached prefix partials too. The cache must outlive the searcher.
  [[nodiscard]] static Result<TopKSearcher> Prepare(const HinGraph& graph, const MetaPath& path,
                                      HeteSimOptions options,
                                      const QueryContext& ctx,
                                      PathMatrixCache* cache = nullptr);

  /// Single-source query via the strategy selected by
  /// `HeteSimOptions::algo`: exhaustive reference, pruned accumulation
  /// (exact — objects outside the candidate set provably score 0), or the
  /// frontier executor with bound-based early exit (`core/frontier.h`).
  [[nodiscard]] Result<TopKResult> Query(Index source, int k) const;

  /// Deadline-aware `Query`: the context is polled at the (adaptive) poll
  /// stride; on expiry the scores accumulated so far are ranked and
  /// returned with `truncated = true` instead of an error, so callers get
  /// a best-effort partial answer within one poll stride of the deadline.
  [[nodiscard]] Result<TopKResult> Query(Index source, int k, const QueryContext& ctx) const;

  /// Exhaustive reference query scoring every target.
  [[nodiscard]] Result<TopKResult> QueryExhaustive(Index source, int k) const;

  /// Number of target-type objects.
  Index num_targets() const { return right_->rows(); }

 private:
  /// Partially-initialized searcher for `Prepare` to fill in.
  TopKSearcher(const HinGraph& graph, HeteSimOptions options, Index num_sources)
      : graph_(graph), options_(options), num_sources_(num_sources) {}

  /// Builds the inverted index and per-target norms from `right_`.
  void FinishPreparation();

  /// Propagates the indicator of `source` through the left chain.
  [[nodiscard]] Result<std::vector<double>> SourceDistribution(Index source) const;

  /// `Query(source, k, ctx)` body, separated so the public entry point can
  /// bracket it with the query span, the latency observation, and the
  /// truncation counter (DESIGN.md §12).
  [[nodiscard]] Result<TopKResult> QueryTraced(Index source, int k,
                                               const QueryContext& ctx) const;

  const HinGraph& graph_;
  HeteSimOptions options_;
  Index num_sources_;
  std::vector<SparseMatrix> left_transitions_;
  /// Right reachable matrix, |targets| x |middle|. Shared so a cache-served
  /// half is referenced, not copied, and so the searcher stays cheap to
  /// move (the frontier executor views these members per query).
  std::shared_ptr<const SparseMatrix> right_;
  SparseMatrix right_transpose_;  // |middle| x |targets| (inverted index)
  std::vector<double> right_norms_;
  double max_right_norm_ = 0.0;   // max over right_norms_
  /// Cached partial product covering the first `left_head_steps_` left-chain
  /// matrices (ad-hoc meta-path reuse under the frontier algo), or null.
  std::shared_ptr<const SparseMatrix> left_head_;
  size_t left_head_steps_ = 0;
};

}  // namespace hetesim

#endif  // HETESIM_CORE_TOPK_H_
