#include "core/materialize.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "matrix/cost_model.h"
#include "matrix/serialize.h"
#include "store/store.h"

namespace hetesim {

namespace {

/// Process-wide cache instruments (DESIGN.md §12), resolved once. All
/// PathMatrixCache instances share them: counters aggregate across caches
/// and the bytes gauge tracks the net accounted total, so per-instance
/// figures stay available through `stats()`.
struct CacheMetrics {
  Counter& hits;
  Counter& misses;
  Counter& evictions;
  Counter& failed_computes;
  Counter& rejected_inserts;
  Gauge& accounted_bytes;
  Counter& prefix_probes;
  Counter& prefix_probe_hits;
  Counter& suffix_probes;
  Counter& suffix_probe_hits;
  Counter& partial_reuse_bytes;
  Counter& store_demotions;
};

CacheMetrics& GlobalCacheMetrics() {
  static CacheMetrics metrics{
      MetricsRegistry::Global().GetCounter("hetesim_cache_hits_total"),
      MetricsRegistry::Global().GetCounter("hetesim_cache_misses_total"),
      MetricsRegistry::Global().GetCounter("hetesim_cache_evictions_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_cache_failed_computes_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_cache_rejected_inserts_total"),
      MetricsRegistry::Global().GetGauge("hetesim_cache_accounted_bytes"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_cache_prefix_probes_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_cache_prefix_probe_hits_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_cache_suffix_probes_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_cache_suffix_probe_hits_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_cache_partial_reuse_bytes_total"),
      MetricsRegistry::Global().GetCounter("hetesim_store_demotions_total"),
  };
  return metrics;
}

/// Joins the rendered steps in `[begin, end)` of `path` with commas.
std::string StepRangeString(const MetaPath& path, int begin, int end) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<size_t>(end - begin));
  for (int i = begin; i < end; ++i) {
    parts.push_back(path.schema().StepToString(path.StepAt(i)));
  }
  return Join(parts, ",");
}

/// Joins the *inverted, reversed* steps in `[begin, end)` — the canonical
/// rendering of walking that segment backwards.
std::string InverseStepRangeString(const MetaPath& path, int begin, int end) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<size_t>(end - begin));
  for (int i = end - 1; i >= begin; --i) {
    parts.push_back(path.schema().StepToString(path.StepAt(i).Inverse()));
  }
  return Join(parts, ",");
}

/// How long a waiter sleeps between cancellation checks while blocked on an
/// in-flight computation. Bounds cancellation latency for waiters; the
/// computing thread itself polls at chunk granularity.
constexpr std::chrono::milliseconds kWaiterPollInterval{5};

}  // namespace

std::string PathMatrixCache::ReachKey(const MetaPath& path) {
  return "PM:" + path.ToRelationString();
}

std::string PathMatrixCache::LeftKey(const MetaPath& path) {
  const int l = path.length();
  if (l % 2 == 0) {
    // Even: the left half is the plain reachable matrix of the prefix, so
    // it shares its entry with GetReach of that prefix and with the left
    // half of ANY path starting with the same steps.
    return "PM:" + StepRangeString(path, 0, l / 2);
  }
  // Odd: prefix transitions followed by the source half of the decomposed
  // middle atomic relation (Definition 6).
  return "PM:" + StepRangeString(path, 0, l / 2) + "|EO+:" +
         path.schema().StepToString(path.StepAt(l / 2));
}

std::string PathMatrixCache::RightKey(const MetaPath& path) {
  const int l = path.length();
  if (l % 2 == 0) {
    return "PM:" + InverseStepRangeString(path, l / 2, l);
  }
  return "PM:" + InverseStepRangeString(path, l / 2 + 1, l) + "|EO-:" +
         path.schema().StepToString(path.StepAt(l / 2));
}

std::shared_ptr<const SparseMatrix> PathMatrixCache::GetLeft(const HinGraph& graph,
                                                             const MetaPath& path) {
  // With the background context the computation cannot be cancelled or
  // budget-starved, so the Result is always OK (fault injection targets the
  // ctx-aware entry points through their own contexts).
  return GetLeft(graph, path, QueryContext::Background()).value();
}

std::shared_ptr<const SparseMatrix> PathMatrixCache::GetRight(const HinGraph& graph,
                                                              const MetaPath& path) {
  return GetRight(graph, path, QueryContext::Background()).value();
}

std::shared_ptr<const SparseMatrix> PathMatrixCache::GetReach(const HinGraph& graph,
                                                              const MetaPath& path) {
  return GetReach(graph, path, QueryContext::Background()).value();
}

Result<std::shared_ptr<const SparseMatrix>> PathMatrixCache::GetLeft(
    const HinGraph& graph, const MetaPath& path, const QueryContext& ctx,
    int num_threads) {
  return GetOrCompute(LeftKey(path), ctx,
                      [&graph, &path, &ctx, num_threads]() -> Result<SparseMatrix> {
                        return LeftReachMatrixWithContext(DecomposePath(graph, path),
                                                          num_threads, ctx);
                      });
}

Result<std::shared_ptr<const SparseMatrix>> PathMatrixCache::GetRight(
    const HinGraph& graph, const MetaPath& path, const QueryContext& ctx,
    int num_threads) {
  return GetOrCompute(RightKey(path), ctx,
                      [&graph, &path, &ctx, num_threads]() -> Result<SparseMatrix> {
                        return RightReachMatrixWithContext(DecomposePath(graph, path),
                                                           num_threads, ctx);
                      });
}

Result<std::shared_ptr<const SparseMatrix>> PathMatrixCache::GetRightWithReuse(
    const HinGraph& graph, const MetaPath& path, const QueryContext& ctx,
    int num_threads) {
  // The ad-hoc planning happens inside the compute callback, so a resident
  // key stays a plain O(1) hit and probes are only counted when a
  // never-seen path actually has to be materialized. The callback runs
  // outside the cache lock (GetOrCompute's contract), so the re-entrant
  // `ProbePartials` call is safe.
  return GetOrCompute(
      RightKey(path), ctx,
      [this, &graph, &path, &ctx, num_threads]() -> Result<SparseMatrix> {
        PathDecomposition decomposition = DecomposePath(graph, path);
        const std::vector<SparseMatrix>& chain =
            decomposition.right_transitions;
        std::vector<PartialHit> hits = ProbePartials(
            path, /*left_side=*/false, static_cast<int>(chain.size()));
        // Score each candidate plan: estimated Gustavson flops of folding
        // the hops it leaves uncovered, left-to-right.
        auto plan_flops = [&chain](MatrixEstimate acc, size_t next) {
          double flops = 0.0;
          // Planning loop over the meta-path length (a handful of hops).
          for (size_t s = next; s < chain.size(); ++s) {  // hetesim-lint: allow(cancel-poll)
            const MatrixEstimate step = EstimateOf(chain[s]);
            flops += EstimateProductFlops(acc, step);
            acc = EstimateProduct(acc, step);
          }
          return flops;
        };
        PartialHit best;
        if (!chain.empty()) {
          double best_flops = plan_flops(EstimateOf(chain[0]), 1);
          // One candidate plan per cached partial — at most chain-length
          // entries.
          for (const PartialHit& hit : hits) {  // hetesim-lint: allow(cancel-poll)
            if (hit.matrix == nullptr || hit.steps_covered < 1 ||
                static_cast<size_t>(hit.steps_covered) > chain.size()) {
              continue;
            }
            const double flops =
                plan_flops(EstimateOf(*hit.matrix),
                           static_cast<size_t>(hit.steps_covered));
            if (flops < best_flops) {
              best_flops = flops;
              best = hit;
            }
          }
        }
        if (best.matrix == nullptr) {
          return RightReachMatrixWithContext(decomposition, num_threads, ctx);
        }
        SparseMatrix folded = *best.matrix;
        for (size_t s = static_cast<size_t>(best.steps_covered);
             s < chain.size(); ++s) {
          HETESIM_ASSIGN_OR_RETURN(
              folded, folded.MultiplyParallel(chain[s], num_threads, ctx));
        }
        RecordPartialReuse(/*left_side=*/false, best.matrix->ApproxBytes());
        return folded;
      });
}

Result<std::shared_ptr<const SparseMatrix>> PathMatrixCache::GetReach(
    const HinGraph& graph, const MetaPath& path, const QueryContext& ctx,
    int num_threads) {
  return GetOrCompute(ReachKey(path), ctx,
                      [&graph, &path, &ctx, num_threads]() -> Result<SparseMatrix> {
                        return ReachProbabilityWithContext(graph, path, num_threads,
                                                           ctx);
                      });
}

void PathMatrixCache::SetMemoryBudget(std::shared_ptr<MemoryBudget> budget) {
  MutexLock lock(mutex_);
  budget_ = std::move(budget);
}

void PathMatrixCache::AttachStore(std::shared_ptr<MatrixStore> store) {
  MutexLock lock(mutex_);
  store_ = std::move(store);
}

std::shared_ptr<MatrixStore> PathMatrixCache::store() const {
  MutexLock lock(mutex_);
  return store_;
}

Status PathMatrixCache::FlushToStore() {
  std::shared_ptr<MatrixStore> store;
  // (key, matrix, slot) — the slot pointer lets us mark the entry as
  // persisted afterwards so a later eviction skips the redundant rewrite.
  std::vector<std::tuple<std::string, std::shared_ptr<const SparseMatrix>,
                         std::shared_ptr<Slot>>>
      to_write;
  {
    MutexLock lock(mutex_);
    store = store_;
    if (store == nullptr) {
      return Status::FailedPrecondition("no store attached to the cache");
    }
    for (const auto& [key, slot] : entries_) {
      if (!slot->ready || slot->from_store) continue;
      // Ready slots resolve immediately.
      Result<std::shared_ptr<const SparseMatrix>> entry = slot->future.get();
      if (!entry.ok()) continue;
      to_write.emplace_back(key, *std::move(entry), slot);
    }
  }
  for (auto& [key, matrix, slot] : to_write) {
    if (!store->Contains(key)) {
      HETESIM_RETURN_NOT_OK(store->Put(key, *matrix));
    }
    MutexLock lock(mutex_);
    slot->from_store = true;
  }
  return Status::OK();
}

PathMatrixCache::Stats PathMatrixCache::stats() const {
  MutexLock lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.entries = entries_.size();
  s.evictions = evictions_;
  s.failed_computes = failed_computes_;
  s.rejected_inserts = rejected_inserts_;
  s.accounted_bytes = accounted_bytes_;
  s.peak_accounted_bytes = peak_accounted_bytes_;
  s.prefix_probes = prefix_probes_;
  s.prefix_probe_hits = prefix_probe_hits_;
  s.suffix_probes = suffix_probes_;
  s.suffix_probe_hits = suffix_probe_hits_;
  s.partial_bytes_saved = partial_bytes_saved_;
  s.store_hits = store_hits_;
  s.store_misses = store_misses_;
  s.store_demotions = store_demotions_;
  return s;
}

std::vector<PathMatrixCache::PartialHit> PathMatrixCache::ProbePartials(
    const MetaPath& path, bool left_side, int max_steps) {
  // Candidate (key, chain matrices covered) pairs, longest cover first. The
  // full half key is listed explicitly only for odd paths — for even ones it
  // coincides with the longest step-prefix key below. Step-prefix keys equal
  // `ReachKey` of the corresponding sub-path, so offline `GetReach`
  // materializations of popular short paths are found here automatically.
  const int l = path.length();
  const int half = l / 2;
  std::vector<std::pair<std::string, int>> candidates;
  if (l % 2 == 1) {
    candidates.emplace_back(left_side ? LeftKey(path) : RightKey(path),
                            half + 1);
  }
  for (int j = half; j >= 1; --j) {
    candidates.emplace_back(
        left_side ? "PM:" + StepRangeString(path, 0, j)
                  : "PM:" + InverseStepRangeString(path, l - j, l),
        j);
  }

  std::vector<PartialHit> hits;
  {
    MutexLock lock(mutex_);
    for (const auto& [key, covered] : candidates) {
      if (covered > max_steps) continue;
      auto it = entries_.find(key);
      if (it == entries_.end() || !it->second->ready) continue;
      Result<std::shared_ptr<const SparseMatrix>> entry =
          it->second->future.get();  // ready slots resolve immediately
      if (!entry.ok()) continue;
      TouchLocked(*it->second);  // probed partials are about to be reused
      hits.push_back({*std::move(entry), covered});
    }
    if (left_side) {
      ++prefix_probes_;
      if (!hits.empty()) ++prefix_probe_hits_;
    } else {
      ++suffix_probes_;
      if (!hits.empty()) ++suffix_probe_hits_;
    }
  }
  if (MetricsEnabled()) {
    CacheMetrics& metrics = GlobalCacheMetrics();
    (left_side ? metrics.prefix_probes : metrics.suffix_probes).Increment();
    if (!hits.empty()) {
      (left_side ? metrics.prefix_probe_hits : metrics.suffix_probe_hits)
          .Increment();
    }
  }
  return hits;
}

void PathMatrixCache::RecordPartialReuse(bool left_side, size_t bytes_saved) {
  (void)left_side;
  {
    MutexLock lock(mutex_);
    partial_bytes_saved_ += bytes_saved;
  }
  if (MetricsEnabled()) {
    GlobalCacheMetrics().partial_reuse_bytes.Increment(
        static_cast<uint64_t>(bytes_saved));
  }
}

void PathMatrixCache::Clear() {
  MutexLock lock(mutex_);
  // Release budget charges deterministically here: a slot kept alive by a
  // concurrent waiter's shared_ptr must not keep its bytes reserved after
  // the cache has dropped it.
  for (auto& [key, slot] : entries_) {
    slot->reservation.reset();
  }
  entries_.clear();
  compute_counts_.clear();
  // Queued demotion victims die with the entries: Clear is a full reset,
  // and writing them after the fact would resurrect state the caller asked
  // to drop.
  pending_demotions_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  failed_computes_ = 0;
  rejected_inserts_ = 0;
  store_hits_ = 0;
  store_misses_ = 0;
  store_demotions_ = 0;
  if (MetricsEnabled()) {
    GlobalCacheMetrics().accounted_bytes.Add(
        -static_cast<int64_t>(accounted_bytes_));
  }
  accounted_bytes_ = 0;
  peak_accounted_bytes_ = 0;
}

Status PathMatrixCache::SaveToDirectory(const std::string& directory) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create cache directory '" + directory +
                           "': " + ec.message());
  }
  MutexLock lock(mutex_);
  std::ofstream manifest(fs::path(directory) / "manifest.txt");
  if (!manifest.is_open()) {
    return Status::IOError("cannot write cache manifest in '" + directory + "'");
  }
  int sequence = 0;
  for (const auto& [key, slot] : entries_) {
    // Keys contain no newlines (relation names reject none, but be safe).
    if (key.find('\n') != std::string::npos) {
      return Status::InvalidArgument("cache key contains a newline");
    }
    // Waits for any in-flight computation of this key: publishing needs no
    // cache lock, so holding mutex_ here cannot deadlock the computer. A
    // computation that failed (and whose slot is about to be removed by its
    // claimant) is simply not persisted.
    Result<std::shared_ptr<const SparseMatrix>> entry = slot->future.get();
    if (!entry.ok()) continue;
    const std::string file_name = StrFormat("entry_%04d.hsm", sequence++);
    manifest << file_name << "\t" << key << "\n";
    HETESIM_RETURN_NOT_OK(WriteSparseMatrixToFile(
        **entry, (fs::path(directory) / file_name).string()));
  }
  if (!manifest.good()) {
    return Status::IOError("cache manifest write failed");
  }
  return Status::OK();
}

Status PathMatrixCache::LoadFromDirectory(const std::string& directory) {
  namespace fs = std::filesystem;
  std::ifstream manifest(fs::path(directory) / "manifest.txt");
  if (!manifest.is_open()) {
    return Status::IOError("cannot read cache manifest in '" + directory + "'");
  }
  std::vector<std::pair<std::string, std::shared_ptr<Slot>>> loaded;
  std::string line;
  int line_number = 0;
  while (std::getline(manifest, line)) {
    ++line_number;
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("manifest line %d: missing tab separator", line_number));
    }
    const std::string file_name = line.substr(0, tab);
    const std::string key = line.substr(tab + 1);
    Result<SparseMatrix> matrix =
        ReadSparseMatrixFromFile((fs::path(directory) / file_name).string());
    if (!matrix.ok()) return matrix.status();
    loaded.emplace_back(key, ReadySlot(std::make_shared<const SparseMatrix>(
                                 *std::move(matrix))));
  }
  {
    MutexLock lock(mutex_);
    for (auto& [key, slot] : entries_) {
      slot->reservation.reset();
    }
    entries_.clear();
    compute_counts_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    failed_computes_ = 0;
    rejected_inserts_ = 0;
    store_hits_ = 0;
    store_misses_ = 0;
    store_demotions_ = 0;
    if (MetricsEnabled()) {
      GlobalCacheMetrics().accounted_bytes.Add(
          -static_cast<int64_t>(accounted_bytes_));
    }
    accounted_bytes_ = 0;
    peak_accounted_bytes_ = 0;
    clock_ = 0;
    for (auto& [key, slot] : loaded) {
      if (entries_.count(key) != 0) continue;
      if (!AdmitLocked(*slot)) continue;  // budget full even after eviction
      entries_.emplace(key, std::move(slot));
    }
  }
  FlushPendingDemotions();  // admissions above may have evicted
  return Status::OK();
}

std::shared_ptr<PathMatrixCache::Slot> PathMatrixCache::ReadySlot(
    std::shared_ptr<const SparseMatrix> matrix) {
  auto slot = std::make_shared<Slot>();
  std::promise<Result<std::shared_ptr<const SparseMatrix>>> promise;
  slot->future = promise.get_future().share();
  slot->ready = true;
  slot->bytes = matrix->ApproxBytes();
  // Disk loads have no measured compute cost; a zero cost makes them the
  // cheapest entries to evict, which is the safe default (they can be
  // re-read offline).
  slot->compute_seconds = 0.0;
  promise.set_value(
      Result<std::shared_ptr<const SparseMatrix>>(std::move(matrix)));
  return slot;
}

Result<std::shared_ptr<const SparseMatrix>> PathMatrixCache::GetOrCompute(
    const std::string& key, const QueryContext& ctx,
    const std::function<Result<SparseMatrix>()>& compute) {
  for (;;) {
    HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
    std::promise<Result<std::shared_ptr<const SparseMatrix>>> promise;
    std::shared_ptr<Slot> slot;
    std::shared_ptr<MatrixStore> store;  // captured at claim time
    bool claimed = false;
    {
      MutexLock lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++hits_;
        if (MetricsEnabled()) GlobalCacheMetrics().hits.Increment();
        slot = it->second;
        if (slot->ready) TouchLocked(*slot);
      } else {
        // First requester claims the key; everyone arriving from here on
        // finds the slot above and waits, so each key is computed at most
        // once per residency. The claimant alone probes the store below,
        // which is what makes disk reads exactly-once per residency too.
        ++misses_;
        if (MetricsEnabled()) GlobalCacheMetrics().misses.Increment();
        slot = std::make_shared<Slot>();
        slot->future = promise.get_future().share();
        entries_.emplace(key, slot);
        store = store_;
        claimed = true;
      }
    }

    if (!claimed) {
      // Wait without holding the map lock — concurrent requests for other
      // keys proceed freely. The wait is bounded by OUR deadline and polled
      // for OUR cancellation; abandoning it does not poison the slot — the
      // computing thread still publishes for later callers.
      for (;;) {
        HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
        if (slot->future.wait_for(kWaiterPollInterval) ==
            std::future_status::ready) {
          break;
        }
      }
      Result<std::shared_ptr<const SparseMatrix>> published = slot->future.get();
      if (published.ok()) return published;
      // The computation failed under its claimant's context (deadline,
      // cancellation, or an injected fault). Remove the dead slot if it is
      // still installed — pointer identity guards against erasing a
      // successor — then retry under our own context.
      {
        MutexLock lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second == slot) entries_.erase(it);
      }
      continue;
    }

    // We claimed the key. Probe the persistent tier first: a promoted
    // matrix is served without recomputation (and without touching
    // ComputeCount — reading back is not a computation). The store
    // validates checksum and structure; anything wrong there surfaces as a
    // plain NotFound-style miss and we fall through to compute.
    if (store != nullptr) {
      Result<SparseMatrix> promoted = store->Get(key);
      {
        MutexLock lock(mutex_);
        if (promoted.ok()) {
          ++store_hits_;
        } else {
          ++store_misses_;
        }
      }
      if (promoted.ok()) {
        auto matrix =
            std::make_shared<const SparseMatrix>(*std::move(promoted));
        // Same publish-then-admit ordering as the compute path below.
        promise.set_value(Result<std::shared_ptr<const SparseMatrix>>(matrix));
        {
          MutexLock lock(mutex_);
          auto it = entries_.find(key);
          if (it != entries_.end() && it->second == slot) {
            slot->bytes = matrix->ApproxBytes();
            slot->compute_seconds = 0.0;  // re-readable for free-ish
            slot->from_store = true;
            if (AdmitLocked(*slot)) {
              slot->ready = true;
            } else {
              ++rejected_inserts_;
              if (MetricsEnabled()) {
                GlobalCacheMetrics().rejected_inserts.Increment();
              }
              entries_.erase(it);
            }
          }
        }
        FlushPendingDemotions();
        return matrix;
      }
    }

    // Store miss (or no store): compute outside the lock.
    {
      MutexLock lock(mutex_);
      ++compute_counts_[key];
    }
    const auto start = std::chrono::steady_clock::now();
    Result<SparseMatrix> computed = compute();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (!computed.ok()) {
      // Publish the error FIRST (waiters — including SaveToDirectory, which
      // waits while holding mutex_ — must never block on a thread that needs
      // the lock), then unlink the slot so the next caller recomputes.
      promise.set_value(computed.status());
      if (MetricsEnabled()) GlobalCacheMetrics().failed_computes.Increment();
      {
        MutexLock lock(mutex_);
        ++failed_computes_;
        auto it = entries_.find(key);
        if (it != entries_.end() && it->second == slot) entries_.erase(it);
      }
      return computed.status();
    }

    auto matrix = std::make_shared<const SparseMatrix>(*std::move(computed));
    // Same ordering rule: resolve the future before taking the lock.
    promise.set_value(Result<std::shared_ptr<const SparseMatrix>>(matrix));
    {
      MutexLock lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second == slot) {
        slot->bytes = matrix->ApproxBytes();
        slot->compute_seconds = seconds;
        if (AdmitLocked(*slot)) {
          slot->ready = true;
        } else {
          // Does not fit even after eviction: serve uncached.
          ++rejected_inserts_;
          if (MetricsEnabled()) {
            GlobalCacheMetrics().rejected_inserts.Increment();
          }
          entries_.erase(it);
        }
      }
      // else: Clear()/Load() raced us and already dropped the slot; the
      // matrix is still delivered to us and any waiters, just not retained.
    }
    FlushPendingDemotions();
    return matrix;
  }
}

bool PathMatrixCache::AdmitLocked(Slot& slot) {
  if (HETESIM_FAULT_POINT("cache.insert")) return false;
  TouchLocked(slot);
  if (budget_ != nullptr) {
    while (!budget_->TryReserve(slot.bytes)) {
      if (!EvictOneLocked()) return false;
    }
    slot.reservation = MemoryReservation(budget_.get(), slot.bytes);
  }
  accounted_bytes_ += slot.bytes;
  peak_accounted_bytes_ = std::max(peak_accounted_bytes_, accounted_bytes_);
  if (MetricsEnabled()) {
    GlobalCacheMetrics().accounted_bytes.Add(
        static_cast<int64_t>(slot.bytes));
  }
  return true;
}

bool PathMatrixCache::EvictOneLocked() {
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (!it->second->ready) continue;  // never evict in-flight entries
    if (victim == entries_.end() ||
        it->second->priority < victim->second->priority) {
      victim = it;
    }
  }
  if (victim == entries_.end()) return false;
  Slot& slot = *victim->second;
  // Demote instead of drop: a victim not yet on disk is queued for the
  // store (no IO under the lock — FlushPendingDemotions writes it after
  // the caller releases mutex_). Ready slots resolve immediately.
  if (store_ != nullptr && !slot.from_store) {
    Result<std::shared_ptr<const SparseMatrix>> entry = slot.future.get();
    if (entry.ok()) {
      pending_demotions_.emplace_back(victim->first, *std::move(entry));
    }
  }
  // GreedyDual-Size aging: the clock rises to the evicted priority, so
  // long-untouched survivors gradually lose their head start.
  clock_ = std::max(clock_, slot.priority);
  accounted_bytes_ -= slot.bytes;
  slot.reservation.reset();
  ++evictions_;
  if (MetricsEnabled()) {
    CacheMetrics& metrics = GlobalCacheMetrics();
    metrics.evictions.Increment();
    metrics.accounted_bytes.Add(-static_cast<int64_t>(slot.bytes));
  }
  entries_.erase(victim);
  return true;
}

void PathMatrixCache::FlushPendingDemotions() {
  std::vector<std::pair<std::string, std::shared_ptr<const SparseMatrix>>>
      pending;
  std::shared_ptr<MatrixStore> store;
  {
    MutexLock lock(mutex_);
    if (pending_demotions_.empty()) return;
    pending.swap(pending_demotions_);
    store = store_;
  }
  if (store == nullptr) return;  // detached while victims were queued
  size_t written = 0;
  for (const auto& [key, matrix] : pending) {
    // Best-effort: the entry is already evicted either way; if the write
    // fails (disk full, injected store.write.alloc) the next miss simply
    // recomputes, which is the pre-store behavior.
    if (store->Put(key, *matrix).ok()) ++written;
  }
  if (written == 0) return;
  {
    MutexLock lock(mutex_);
    store_demotions_ += written;
  }
  if (MetricsEnabled()) {
    GlobalCacheMetrics().store_demotions.Increment(written);
  }
}

void PathMatrixCache::TouchLocked(Slot& slot) {
  // GreedyDual-Size priority: recency (clock_) plus recompute cost per
  // byte, so a bulky-but-cheap product is evicted before a compact one
  // that took a long SpGEMM chain to build.
  const double cost_per_byte =
      slot.compute_seconds / static_cast<double>(std::max<size_t>(slot.bytes, 1));
  slot.priority = clock_ + cost_per_byte;
}

size_t PathMatrixCache::ComputeCount(const std::string& key) const {
  MutexLock lock(mutex_);
  auto it = compute_counts_.find(key);
  if (it == compute_counts_.end()) return 0;
  return it->second;
}

}  // namespace hetesim
