#include "core/materialize.h"

#include <filesystem>
#include <fstream>

#include "common/string_util.h"
#include "matrix/serialize.h"

namespace hetesim {

namespace {

/// Joins the rendered steps in `[begin, end)` of `path` with commas.
std::string StepRangeString(const MetaPath& path, int begin, int end) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<size_t>(end - begin));
  for (int i = begin; i < end; ++i) {
    parts.push_back(path.schema().StepToString(path.StepAt(i)));
  }
  return Join(parts, ",");
}

/// Joins the *inverted, reversed* steps in `[begin, end)` — the canonical
/// rendering of walking that segment backwards.
std::string InverseStepRangeString(const MetaPath& path, int begin, int end) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<size_t>(end - begin));
  for (int i = end - 1; i >= begin; --i) {
    parts.push_back(path.schema().StepToString(path.StepAt(i).Inverse()));
  }
  return Join(parts, ",");
}

}  // namespace

std::string PathMatrixCache::ReachKey(const MetaPath& path) {
  return "PM:" + path.ToRelationString();
}

std::string PathMatrixCache::LeftKey(const MetaPath& path) {
  const int l = path.length();
  if (l % 2 == 0) {
    // Even: the left half is the plain reachable matrix of the prefix, so
    // it shares its entry with GetReach of that prefix and with the left
    // half of ANY path starting with the same steps.
    return "PM:" + StepRangeString(path, 0, l / 2);
  }
  // Odd: prefix transitions followed by the source half of the decomposed
  // middle atomic relation (Definition 6).
  return "PM:" + StepRangeString(path, 0, l / 2) + "|EO+:" +
         path.schema().StepToString(path.StepAt(l / 2));
}

std::string PathMatrixCache::RightKey(const MetaPath& path) {
  const int l = path.length();
  if (l % 2 == 0) {
    return "PM:" + InverseStepRangeString(path, l / 2, l);
  }
  return "PM:" + InverseStepRangeString(path, l / 2 + 1, l) + "|EO-:" +
         path.schema().StepToString(path.StepAt(l / 2));
}

std::shared_ptr<const SparseMatrix> PathMatrixCache::GetLeft(const HinGraph& graph,
                                                             const MetaPath& path) {
  return GetOrCompute(LeftKey(path), [&graph, &path] {
    return LeftReachMatrix(DecomposePath(graph, path));
  });
}

std::shared_ptr<const SparseMatrix> PathMatrixCache::GetRight(const HinGraph& graph,
                                                              const MetaPath& path) {
  return GetOrCompute(RightKey(path), [&graph, &path] {
    return RightReachMatrix(DecomposePath(graph, path));
  });
}

std::shared_ptr<const SparseMatrix> PathMatrixCache::GetReach(const HinGraph& graph,
                                                              const MetaPath& path) {
  return GetOrCompute(ReachKey(path),
                      [&graph, &path] { return ReachProbability(graph, path); });
}

PathMatrixCache::Stats PathMatrixCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return Stats{hits_, misses_, entries_.size()};
}

void PathMatrixCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

Status PathMatrixCache::SaveToDirectory(const std::string& directory) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create cache directory '" + directory +
                           "': " + ec.message());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream manifest(fs::path(directory) / "manifest.txt");
  if (!manifest.is_open()) {
    return Status::IOError("cannot write cache manifest in '" + directory + "'");
  }
  int sequence = 0;
  for (const auto& [key, slot] : entries_) {
    const std::string file_name = StrFormat("entry_%04d.hsm", sequence++);
    // Keys contain no newlines (relation names reject none, but be safe).
    if (key.find('\n') != std::string::npos) {
      return Status::InvalidArgument("cache key contains a newline");
    }
    manifest << file_name << "\t" << key << "\n";
    // Waits for any in-flight computation of this key: publishing needs no
    // cache lock, so holding mutex_ here cannot deadlock the computer.
    HETESIM_RETURN_NOT_OK(WriteSparseMatrixToFile(
        *slot->future.get(), (fs::path(directory) / file_name).string()));
  }
  if (!manifest.good()) {
    return Status::IOError("cache manifest write failed");
  }
  return Status::OK();
}

Status PathMatrixCache::LoadFromDirectory(const std::string& directory) {
  namespace fs = std::filesystem;
  std::ifstream manifest(fs::path(directory) / "manifest.txt");
  if (!manifest.is_open()) {
    return Status::IOError("cannot read cache manifest in '" + directory + "'");
  }
  std::unordered_map<std::string, std::shared_ptr<Slot>> loaded;
  std::string line;
  int line_number = 0;
  while (std::getline(manifest, line)) {
    ++line_number;
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("manifest line %d: missing tab separator", line_number));
    }
    const std::string file_name = line.substr(0, tab);
    const std::string key = line.substr(tab + 1);
    Result<SparseMatrix> matrix =
        ReadSparseMatrixFromFile((fs::path(directory) / file_name).string());
    if (!matrix.ok()) return matrix.status();
    loaded.emplace(key, ReadySlot(std::make_shared<const SparseMatrix>(
                            *std::move(matrix))));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  entries_ = std::move(loaded);
  hits_ = 0;
  misses_ = 0;
  return Status::OK();
}

std::shared_ptr<PathMatrixCache::Slot> PathMatrixCache::ReadySlot(
    std::shared_ptr<const SparseMatrix> matrix) {
  auto slot = std::make_shared<Slot>();
  std::promise<std::shared_ptr<const SparseMatrix>> promise;
  slot->future = promise.get_future().share();
  promise.set_value(std::move(matrix));
  return slot;
}

std::shared_ptr<const SparseMatrix> PathMatrixCache::GetOrCompute(
    const std::string& key, const std::function<SparseMatrix()>& compute) {
  std::promise<std::shared_ptr<const SparseMatrix>> promise;
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      // Blocks until the computing thread publishes, without holding the
      // map lock — concurrent requests for *other* keys proceed freely.
      std::shared_future<std::shared_ptr<const SparseMatrix>> future =
          it->second->future;
      lock.unlock();
      return future.get();
    }
    // First requester claims the key; everyone arriving from here on finds
    // the slot above and waits, so each key is computed exactly once.
    ++misses_;
    slot = std::make_shared<Slot>();
    slot->future = promise.get_future().share();
    entries_.emplace(key, slot);
  }
  slot->compute_count.fetch_add(1, std::memory_order_relaxed);
  auto computed = std::make_shared<const SparseMatrix>(compute());
  promise.set_value(computed);
  return computed;
}

size_t PathMatrixCache::ComputeCount(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  return it->second->compute_count.load(std::memory_order_relaxed);
}

}  // namespace hetesim
