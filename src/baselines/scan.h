#ifndef HETESIM_BASELINES_SCAN_H_
#define HETESIM_BASELINES_SCAN_H_

#include <vector>

#include "common/result.h"
#include "matrix/sparse.h"

namespace hetesim {

/// Options for SCAN structural clustering.
struct ScanOptions {
  /// Minimum structural similarity for two adjacent nodes to be
  /// "epsilon-neighbors", in (0, 1].
  double epsilon = 0.7;
  /// Minimum epsilon-neighborhood size (including the node itself) for a
  /// node to be a cluster core.
  int mu = 2;
};

/// Result of a SCAN run.
struct ScanResult {
  /// Cluster id per node, or -1 for non-members (hubs and outliers).
  std::vector<int> labels;
  /// Non-member nodes adjacent to two or more clusters.
  std::vector<Index> hubs;
  /// Non-member nodes adjacent to at most one cluster.
  std::vector<Index> outliers;
  /// Number of clusters found.
  int num_clusters = 0;
};

/// \brief SCAN — Structural Clustering Algorithm for Networks (Xu et al.,
/// KDD 2007; the paper's related work cites it as a same-typed,
/// neighbor-set similarity measure that "cannot be applied in
/// heterogeneous networks").
///
/// Structural similarity of adjacent nodes u, v uses closed neighborhoods:
///   sigma(u, v) = |N[u] ∩ N[v]| / sqrt(|N[u]| |N[v]|).
/// Cores (>= mu epsilon-neighbors) grow clusters by structural
/// reachability; leftover nodes are hubs (bridging >= 2 clusters) or
/// outliers. `adjacency` must be square and is treated as an undirected
/// unweighted graph (any non-zero is an edge; it is symmetrized first).
[[nodiscard]] Result<ScanResult> ScanCluster(const SparseMatrix& adjacency,
                               const ScanOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_BASELINES_SCAN_H_
