#ifndef HETESIM_BASELINES_PCRW_H_
#define HETESIM_BASELINES_PCRW_H_

#include <vector>

#include "common/result.h"
#include "hin/graph.h"
#include "hin/metapath.h"
#include "matrix/dense.h"

namespace hetesim {

/// \brief Path-Constrained Random Walk proximity (Lao & Cohen, Machine
/// Learning 2010): the probability that a random walker starting at `a` and
/// constrained to follow `path` ends at `b` — i.e. the reachable probability
/// matrix `PM_P` of Definition 9 read as a similarity.
///
/// PCRW is *asymmetric*: `PCRW(a, b | P) != PCRW(b, a | P^-1)` in general,
/// which is exactly the deficiency HeteSim's symmetry (Property 3) fixes
/// (Tables 3-5, Fig 6 of the paper compare against it).

/// Full |A1| x |A(l+1)| PCRW proximity matrix along `path`.
DenseMatrix PcrwMatrix(const HinGraph& graph, const MetaPath& path);

/// PCRW proximity from `source` to every target object.
[[nodiscard]] Result<std::vector<double>> PcrwSingleSource(const HinGraph& graph,
                                             const MetaPath& path, Index source);

/// PCRW proximity of a single (source, target) pair.
[[nodiscard]] Result<double> PcrwPair(const HinGraph& graph, const MetaPath& path, Index source,
                        Index target);

}  // namespace hetesim

#endif  // HETESIM_BASELINES_PCRW_H_
