#include "baselines/objectrank.h"

namespace hetesim {

Result<SparseMatrix> AuthorityTransition(const HinGraph& graph,
                                         const AuthorityTransfer& transfer) {
  const Schema& schema = graph.schema();
  if (transfer.rates.size() != static_cast<size_t>(schema.NumRelations())) {
    return Status::InvalidArgument("need one authority rate per relation");
  }
  double total_rate = 0.0;
  for (double rate : transfer.rates) {
    if (rate < 0.0) {
      return Status::InvalidArgument("authority rates must be non-negative");
    }
    total_rate += rate;
  }
  if (total_rate == 0.0) {
    return Status::InvalidArgument("at least one authority rate must be positive");
  }

  HomogeneousView view = BuildHomogeneousView(graph);
  // Unnormalized transfer mass: rate_r * U_r for both orientations, where
  // U_r splits a node's rate uniformly among its relation-r neighbors.
  std::vector<Triplet> triplets;
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    const double rate = transfer.rates[static_cast<size_t>(r)];
    if (rate == 0.0) continue;
    const TypeId src_type = schema.RelationSource(r);
    const TypeId dst_type = schema.RelationTarget(r);
    for (const bool forward : {true, false}) {
      const SparseMatrix u = graph.StepTransition({r, forward});
      const TypeId from_type = forward ? src_type : dst_type;
      const TypeId to_type = forward ? dst_type : src_type;
      for (Index i = 0; i < u.rows(); ++i) {
        auto indices = u.RowIndices(i);
        auto values = u.RowValues(i);
        for (size_t k = 0; k < indices.size(); ++k) {
          triplets.push_back({view.GlobalId(from_type, i),
                              view.GlobalId(to_type, indices[k]),
                              rate * values[k]});
        }
      }
    }
  }
  // Row-normalize the combined mass into the walker's transition matrix.
  return SparseMatrix::FromTriplets(view.TotalNodes(), view.TotalNodes(),
                                    std::move(triplets))
      .RowNormalized();
}

Result<std::vector<double>> ObjectRank(const HinGraph& graph,
                                       const AuthorityTransfer& transfer,
                                       TypeId source_type, Index source_id,
                                       const RwrOptions& options) {
  if (!graph.schema().IsValidType(source_type) || source_id < 0 ||
      source_id >= graph.NumNodes(source_type)) {
    return Status::OutOfRange("source object out of range");
  }
  HETESIM_ASSIGN_OR_RETURN(SparseMatrix transition,
                           AuthorityTransition(graph, transfer));
  HomogeneousView view = BuildHomogeneousView(graph);
  return RandomWalkWithRestart(transition, view.GlobalId(source_type, source_id),
                               options);
}

}  // namespace hetesim
