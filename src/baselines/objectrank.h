#ifndef HETESIM_BASELINES_OBJECTRANK_H_
#define HETESIM_BASELINES_OBJECTRANK_H_

#include <vector>

#include "baselines/rwr.h"
#include "hin/graph.h"
#include "hin/homogeneous.h"

namespace hetesim {

/// \brief ObjectRank-style authority-transfer ranking (Balmin et al.,
/// VLDB 2004 — cited by the paper's related work as an approach that
/// "noticed that heterogeneous relationships could affect the similarity"
/// but does not capture per-path semantics).
///
/// A random walk with restart over the whole network where each relation
/// carries an *authority transfer rate*: from any node, the walker first
/// picks an incident relation orientation proportional to its rate, then a
/// uniform neighbor within it. Setting every rate to 1 degenerates to the
/// plain type-blind RWR baseline; skewing rates expresses domain knowledge
/// ("citations transfer more authority than co-terms") without the path
/// semantics HeteSim provides — which is exactly the contrast the related
/// work draws.

/// Per-relation authority transfer rates, applied to both orientations.
struct AuthorityTransfer {
  /// rate[r] >= 0 for relation r; size must equal NumRelations(). Rates
  /// need not sum to anything — they are normalized per node.
  std::vector<double> rates;
};

/// Builds the authority-weighted global transition matrix over the
/// homogeneous node space of `graph` (see `HomogeneousView` for the id
/// layout). Errors if `transfer.rates` is missized or any rate < 0, or if
/// every rate is zero.
[[nodiscard]] Result<SparseMatrix> AuthorityTransition(const HinGraph& graph,
                                         const AuthorityTransfer& transfer);

/// ObjectRank score of every object (global ids per `HomogeneousView`)
/// from a restart at `source_id` of `source_type`.
[[nodiscard]] Result<std::vector<double>> ObjectRank(const HinGraph& graph,
                                       const AuthorityTransfer& transfer,
                                       TypeId source_type, Index source_id,
                                       const RwrOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_BASELINES_OBJECTRANK_H_
