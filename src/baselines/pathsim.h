#ifndef HETESIM_BASELINES_PATHSIM_H_
#define HETESIM_BASELINES_PATHSIM_H_

#include <vector>

#include "common/result.h"
#include "hin/graph.h"
#include "hin/metapath.h"
#include "matrix/dense.h"

namespace hetesim {

/// \brief PathSim (Sun et al., VLDB 2011): meta-path-based similarity of
/// *same-typed* objects along a *symmetric* path.
///
///   PathSim(a, b | P) = 2 |paths a~>b| / (|paths a~>a| + |paths b~>b|)
///
/// where path counts are entries of the product of the raw (unnormalized)
/// adjacency matrices along `P`. Unlike HeteSim it is undefined for
/// asymmetric paths and different-typed endpoints — the restriction the
/// paper's Tables 4 and 6 highlight — so the API returns InvalidArgument
/// for non-symmetric paths.

/// Full |A| x |A| PathSim matrix along symmetric path `path`.
[[nodiscard]] Result<DenseMatrix> PathSimMatrix(const HinGraph& graph, const MetaPath& path);

/// PathSim of every object to `source` (one row of the matrix).
[[nodiscard]] Result<std::vector<double>> PathSimSingleSource(const HinGraph& graph,
                                                const MetaPath& path, Index source);

/// PathSim of a single pair.
[[nodiscard]] Result<double> PathSimPair(const HinGraph& graph, const MetaPath& path,
                           Index a, Index b);

}  // namespace hetesim

#endif  // HETESIM_BASELINES_PATHSIM_H_
