#ifndef HETESIM_BASELINES_RWR_H_
#define HETESIM_BASELINES_RWR_H_

#include <vector>

#include "common/result.h"
#include "hin/homogeneous.h"
#include "matrix/sparse.h"

namespace hetesim {

/// Options for random walk with restart.
struct RwrOptions {
  /// Restart (teleport) probability back to the source each step.
  double restart = 0.15;
  /// Maximum power iterations.
  int max_iterations = 100;
  /// Early-stop threshold on the L1 change of the distribution.
  double tolerance = 1e-10;
};

/// \brief Random Walk with Restart / Personalized PageRank (Jeh & Widom,
/// WWW 2003; Tong et al., ICDM 2006) over a homogeneous graph.
///
/// Iterates `r <- (1 - c) * r P + c * e_source` where `P` is the
/// row-normalized `adjacency` and `c` the restart probability, returning the
/// stationary visiting distribution. A type-blind baseline: on a HIN it
/// mixes all path semantics together, which is what the paper's
/// path-constrained measures improve upon.
[[nodiscard]] Result<std::vector<double>> RandomWalkWithRestart(const SparseMatrix& adjacency,
                                                  Index source,
                                                  const RwrOptions& options = {});

/// RWR over a collapsed heterogeneous network from node `source_id` of
/// `source_type`. The result is indexed by global ids (`view.GlobalId`).
[[nodiscard]] Result<std::vector<double>> RandomWalkWithRestart(const HomogeneousView& view,
                                                  TypeId source_type, Index source_id,
                                                  const RwrOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_BASELINES_RWR_H_
