#include "baselines/rwr.h"

#include <cmath>

namespace hetesim {

Result<std::vector<double>> RandomWalkWithRestart(const SparseMatrix& adjacency,
                                                  Index source,
                                                  const RwrOptions& options) {
  if (adjacency.rows() != adjacency.cols()) {
    return Status::InvalidArgument("RWR needs a square adjacency matrix");
  }
  if (source < 0 || source >= adjacency.rows()) {
    return Status::OutOfRange("source id out of range");
  }
  if (options.restart <= 0.0 || options.restart >= 1.0) {
    return Status::InvalidArgument("restart probability must lie in (0, 1)");
  }
  const SparseMatrix transition = adjacency.RowNormalized();
  const size_t n = static_cast<size_t>(adjacency.rows());
  std::vector<double> r(n, 0.0);
  r[static_cast<size_t>(source)] = 1.0;
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    std::vector<double> next = transition.LeftMultiplyVector(r);
    double change = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double value = (1.0 - options.restart) * next[i];
      if (i == static_cast<size_t>(source)) value += options.restart;
      change += std::abs(value - r[i]);
      r[i] = value;
    }
    if (change <= options.tolerance) break;
  }
  return r;
}

Result<std::vector<double>> RandomWalkWithRestart(const HomogeneousView& view,
                                                  TypeId source_type, Index source_id,
                                                  const RwrOptions& options) {
  return RandomWalkWithRestart(view.adjacency, view.GlobalId(source_type, source_id),
                               options);
}

}  // namespace hetesim
