#include "baselines/pathsim.h"

#include "common/check.h"
#include "matrix/ops.h"
#include "matrix/sparse.h"

namespace hetesim {

namespace {

Status ValidateSymmetric(const MetaPath& path) {
  if (!path.IsSymmetric()) {
    return Status::InvalidArgument(
        "PathSim requires a symmetric meta-path; '" + path.ToString() +
        "' is not (use HeteSim for arbitrary paths)");
  }
  return Status::OK();
}

/// For a symmetric path the count matrix is M H H'-shaped with H the first
/// half, so only the half product is needed; diagonal entries are row-norm
/// squares of H.
SparseMatrix HalfCountMatrix(const HinGraph& graph, const MetaPath& path) {
  std::vector<SparseMatrix> chain;
  const int half = path.length() / 2;
  chain.reserve(static_cast<size_t>(half));
  for (int i = 0; i < half; ++i) {
    chain.push_back(graph.StepAdjacency(path.StepAt(i)));
  }
  return MultiplyChain(chain);
}

}  // namespace

Result<DenseMatrix> PathSimMatrix(const HinGraph& graph, const MetaPath& path) {
  HETESIM_RETURN_NOT_OK(ValidateSymmetric(path));
  const SparseMatrix half = HalfCountMatrix(graph, path);
  DenseMatrix counts = half.Multiply(half.Transpose()).ToDense();
  DenseMatrix out(counts.rows(), counts.cols());
  for (Index a = 0; a < counts.rows(); ++a) {
    for (Index b = 0; b < counts.cols(); ++b) {
      const double denominator = counts(a, a) + counts(b, b);
      if (denominator != 0.0) out(a, b) = 2.0 * counts(a, b) / denominator;
    }
  }
  return out;
}

Result<std::vector<double>> PathSimSingleSource(const HinGraph& graph,
                                                const MetaPath& path, Index source) {
  HETESIM_RETURN_NOT_OK(ValidateSymmetric(path));
  if (source < 0 || source >= graph.NumNodes(path.SourceType())) {
    return Status::OutOfRange("source id out of range");
  }
  const SparseMatrix half = HalfCountMatrix(graph, path);
  std::vector<double> numerators =
      half.MultiplyVector(half.RowDense(source));  // counts(source, :)
  const double self_source = Dot(half.RowDense(source), half.RowDense(source));
  std::vector<double> out(numerators.size(), 0.0);
  for (size_t b = 0; b < out.size(); ++b) {
    const double nb = half.RowNorm(static_cast<Index>(b));
    const double denominator = self_source + nb * nb;
    if (denominator != 0.0) out[b] = 2.0 * numerators[b] / denominator;
  }
  return out;
}

Result<double> PathSimPair(const HinGraph& graph, const MetaPath& path, Index a,
                           Index b) {
  HETESIM_RETURN_NOT_OK(ValidateSymmetric(path));
  const Index n = graph.NumNodes(path.SourceType());
  if (a < 0 || a >= n || b < 0 || b >= n) {
    return Status::OutOfRange("object id out of range");
  }
  const SparseMatrix half = HalfCountMatrix(graph, path);
  const double count_ab = half.RowDot(a, half, b);
  const double na = half.RowNorm(a);
  const double nb = half.RowNorm(b);
  const double denominator = na * na + nb * nb;
  if (denominator == 0.0) return 0.0;
  return 2.0 * count_ab / denominator;
}

}  // namespace hetesim
