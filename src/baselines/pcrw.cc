#include "baselines/pcrw.h"

#include "core/path_matrix.h"

namespace hetesim {

DenseMatrix PcrwMatrix(const HinGraph& graph, const MetaPath& path) {
  return ReachProbability(graph, path).ToDense();
}

Result<std::vector<double>> PcrwSingleSource(const HinGraph& graph,
                                             const MetaPath& path, Index source) {
  if (source < 0 || source >= graph.NumNodes(path.SourceType())) {
    return Status::OutOfRange("source id out of range");
  }
  return ReachDistribution(graph, path, source);
}

Result<double> PcrwPair(const HinGraph& graph, const MetaPath& path, Index source,
                        Index target) {
  if (target < 0 || target >= graph.NumNodes(path.TargetType())) {
    return Status::OutOfRange("target id out of range");
  }
  HETESIM_ASSIGN_OR_RETURN(std::vector<double> distribution,
                           PcrwSingleSource(graph, path, source));
  return distribution[static_cast<size_t>(target)];
}

}  // namespace hetesim
