#include "baselines/scan.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

namespace hetesim {

namespace {

/// Sorted closed neighborhood N[u] (neighbors plus u itself).
std::vector<Index> ClosedNeighborhood(const SparseMatrix& adjacency, Index u) {
  std::vector<Index> neighborhood(adjacency.RowIndices(u).begin(),
                                  adjacency.RowIndices(u).end());
  auto self = std::lower_bound(neighborhood.begin(), neighborhood.end(), u);
  if (self == neighborhood.end() || *self != u) neighborhood.insert(self, u);
  return neighborhood;
}

/// |a ∩ b| for sorted vectors.
size_t IntersectionSize(const std::vector<Index>& a, const std::vector<Index>& b) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

Result<ScanResult> ScanCluster(const SparseMatrix& adjacency,
                               const ScanOptions& options) {
  if (adjacency.rows() != adjacency.cols()) {
    return Status::InvalidArgument("SCAN needs a square adjacency matrix");
  }
  if (options.epsilon <= 0.0 || options.epsilon > 1.0) {
    return Status::InvalidArgument("epsilon must lie in (0, 1]");
  }
  if (options.mu < 1) {
    return Status::InvalidArgument("mu must be at least 1");
  }
  const SparseMatrix graph = adjacency.Add(adjacency.Transpose());
  const Index n = graph.rows();

  // Precompute closed neighborhoods and each node's epsilon-neighbors.
  std::vector<std::vector<Index>> neighborhoods(static_cast<size_t>(n));
  for (Index u = 0; u < n; ++u) neighborhoods[static_cast<size_t>(u)] =
      ClosedNeighborhood(graph, u);
  auto sigma = [&](Index u, Index v) {
    const auto& nu = neighborhoods[static_cast<size_t>(u)];
    const auto& nv = neighborhoods[static_cast<size_t>(v)];
    return static_cast<double>(IntersectionSize(nu, nv)) /
           std::sqrt(static_cast<double>(nu.size()) *
                     static_cast<double>(nv.size()));
  };
  std::vector<std::vector<Index>> epsilon_neighbors(static_cast<size_t>(n));
  std::vector<bool> is_core(static_cast<size_t>(n), false);
  for (Index u = 0; u < n; ++u) {
    for (Index v : neighborhoods[static_cast<size_t>(u)]) {
      if (sigma(u, v) >= options.epsilon) {
        epsilon_neighbors[static_cast<size_t>(u)].push_back(v);
      }
    }
    is_core[static_cast<size_t>(u)] =
        static_cast<int>(epsilon_neighbors[static_cast<size_t>(u)].size()) >=
        options.mu;
  }

  // Grow clusters from cores by structural reachability (BFS over cores'
  // epsilon-neighbors).
  ScanResult result;
  result.labels.assign(static_cast<size_t>(n), -1);
  for (Index seed = 0; seed < n; ++seed) {
    if (!is_core[static_cast<size_t>(seed)] ||
        result.labels[static_cast<size_t>(seed)] != -1) {
      continue;
    }
    const int cluster = result.num_clusters++;
    std::deque<Index> frontier = {seed};
    result.labels[static_cast<size_t>(seed)] = cluster;
    while (!frontier.empty()) {
      const Index u = frontier.front();
      frontier.pop_front();
      if (!is_core[static_cast<size_t>(u)]) continue;  // border: absorb, no growth
      for (Index v : epsilon_neighbors[static_cast<size_t>(u)]) {
        if (result.labels[static_cast<size_t>(v)] == -1) {
          result.labels[static_cast<size_t>(v)] = cluster;
          frontier.push_back(v);
        }
      }
    }
  }

  // Classify the leftovers: hubs touch >= 2 clusters, outliers don't.
  for (Index u = 0; u < n; ++u) {
    if (result.labels[static_cast<size_t>(u)] != -1) continue;
    std::set<int> adjacent_clusters;
    for (Index v : graph.RowIndices(u)) {
      const int label = result.labels[static_cast<size_t>(v)];
      if (label != -1) adjacent_clusters.insert(label);
    }
    if (adjacent_clusters.size() >= 2) {
      result.hubs.push_back(u);
    } else {
      result.outliers.push_back(u);
    }
  }
  return result;
}

}  // namespace hetesim
