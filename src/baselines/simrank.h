#ifndef HETESIM_BASELINES_SIMRANK_H_
#define HETESIM_BASELINES_SIMRANK_H_

#include "hin/graph.h"
#include "hin/homogeneous.h"
#include "matrix/dense.h"
#include "matrix/sparse.h"

namespace hetesim {

/// Options for the iterative SimRank computation (Jeh & Widom, KDD 2002).
struct SimRankOptions {
  /// Decay factor C of the recurrence (the paper's Property 5 statement
  /// sets C = 1 for the HeteSim connection).
  double decay = 0.8;
  /// Maximum fixed-point iterations.
  int max_iterations = 10;
  /// Early-stop threshold on the max entry change between iterations.
  double tolerance = 1e-6;
};

/// \brief Classic SimRank over a homogeneous directed graph.
///
/// `adjacency(i, j) != 0` means an edge i -> j; the recurrence averages
/// over *in*-neighbors as in the original paper:
///   s(a, b) = C / (|I(a)| |I(b)|) * sum_{i,j} s(I_i(a), I_j(b)),
/// with s(a, a) = 1 pinned every iteration. Runs in O(iterations * d * n^2)
/// time and O(n^2) space — the complexity HeteSim's Section 4.6 analysis
/// compares against.
DenseMatrix SimRankHomogeneous(const SparseMatrix& adjacency,
                               const SimRankOptions& options = {});

/// SimRank over an entire heterogeneous network collapsed to its
/// homogeneous view (all (T n)^2 pairs at once — the O(k d n^2 T^4) regime
/// of Section 4.6). Entry lookup via `view.GlobalId(type, id)`.
DenseMatrix SimRankHeterogeneous(const HomogeneousView& view,
                                 const SimRankOptions& options = {});

/// \brief The truncated meeting-probability series of Property 5.
///
/// For a bipartite relation `W: A -> B`, returns
///   sum_{k=1..depth} M_k M_k'
/// where `M_k` is the product of the first `k` alternating transition
/// matrices `U_AB, U_BA, U_AB, ...` (row-normalized W and W'). By
/// Property 5 this equals the sum of *unnormalized* HeteSim over the paths
/// `(R R^-1)^k` on the A side (pass `a_side = false` for the B side,
/// alternation starting with `U_BA`) and converges to SimRank with C = 1.
DenseMatrix BipartiteSimRankSeries(const SparseMatrix& w, int depth,
                                   bool a_side = true);

}  // namespace hetesim

#endif  // HETESIM_BASELINES_SIMRANK_H_
