#include "baselines/simrank.h"

#include "common/check.h"
#include "matrix/ops.h"

namespace hetesim {

namespace {

/// One SimRank fixed-point sweep in matrix form: S <- C * Q' S Q with the
/// diagonal pinned to 1, where Q is the column-normalized adjacency
/// (Q(i, a) = 1/|I(a)| for each in-neighbor i of a).
DenseMatrix SimRankIterate(const SparseMatrix& q, const SparseMatrix& q_transpose,
                           const DenseMatrix& s, double decay) {
  DenseMatrix next = MultiplyDenseSparse(q_transpose.MultiplyDense(s), q);
  for (Index i = 0; i < next.rows(); ++i) {
    for (Index j = 0; j < next.cols(); ++j) next(i, j) *= decay;
    next(i, i) = 1.0;
  }
  return next;
}

DenseMatrix SimRankFixedPoint(const SparseMatrix& adjacency,
                              const SimRankOptions& options) {
  HETESIM_CHECK_EQ(adjacency.rows(), adjacency.cols());
  const SparseMatrix q = adjacency.ColNormalized();
  const SparseMatrix q_transpose = q.Transpose();
  DenseMatrix s = DenseMatrix::Identity(adjacency.rows());
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    DenseMatrix next = SimRankIterate(q, q_transpose, s, options.decay);
    const double delta = next.MaxAbsDiff(s);
    s = std::move(next);
    if (delta <= options.tolerance) break;
  }
  return s;
}

}  // namespace

DenseMatrix SimRankHomogeneous(const SparseMatrix& adjacency,
                               const SimRankOptions& options) {
  return SimRankFixedPoint(adjacency, options);
}

DenseMatrix SimRankHeterogeneous(const HomogeneousView& view,
                                 const SimRankOptions& options) {
  return SimRankFixedPoint(view.adjacency, options);
}

DenseMatrix BipartiteSimRankSeries(const SparseMatrix& w, int depth, bool a_side) {
  HETESIM_CHECK_GE(depth, 1);
  const SparseMatrix u_ab = w.RowNormalized();
  const SparseMatrix u_ba = w.Transpose().RowNormalized();
  // M_k = product of the first k alternating transitions; term_k = M_k M_k'.
  SparseMatrix m = a_side ? u_ab : u_ba;
  const Index n = m.rows();
  DenseMatrix total(n, n);
  for (int k = 1; k <= depth; ++k) {
    total = total.Add(m.Multiply(m.Transpose()).ToDense());
    if (k == depth) break;
    // Extend the walk by one step; the next factor alternates sides.
    const bool next_is_ab = (a_side && k % 2 == 0) || (!a_side && k % 2 == 1);
    m = m.Multiply(next_is_ab ? u_ab : u_ba);
  }
  return total;
}

}  // namespace hetesim
