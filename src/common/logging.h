#ifndef HETESIM_COMMON_LOGGING_H_
#define HETESIM_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace hetesim {

/// Severity levels for the library logger, in increasing order.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Receives every emitted log line. Called with the logger's sink mutex
/// held, so implementations are serialized and need no locking of their
/// own — but must not log re-entrantly (the mutex is non-reentrant).
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// \brief Minimal process-wide logger.
///
/// Messages below the configured threshold are discarded; everything else
/// is handed to the installed sink (default: stderr as `[LEVEL] message`).
/// The level check is one relaxed atomic load; the sink itself is guarded
/// by an annotated `Mutex`, so concurrent emitters never interleave bytes
/// and `SetSink` is safe while other threads log. The library logs
/// sparingly (data generation progress, numeric warnings); benchmarks and
/// examples write their results to stdout directly.
class Logger {
 public:
  /// Sets the global minimum severity that will be emitted.
  static void SetLevel(LogLevel level);
  /// Returns the global minimum severity.
  static LogLevel GetLevel();
  /// Emits `message` at `level` if it passes the threshold.
  static void Log(LogLevel level, const std::string& message);
  /// Replaces the process-wide sink (tests capture output this way).
  /// Passing nullptr restores the default stderr sink.
  static void SetSink(LogSink sink);
};

namespace internal_logging {

/// Accumulates one log line and emits it on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { Logger::Log(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace hetesim

#define HETESIM_LOG(level) \
  ::hetesim::internal_logging::LogStream(::hetesim::LogLevel::k##level)

#endif  // HETESIM_COMMON_LOGGING_H_
