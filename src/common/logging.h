#ifndef HETESIM_COMMON_LOGGING_H_
#define HETESIM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hetesim {

/// Severity levels for the library logger, in increasing order.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Minimal process-wide logger.
///
/// Messages below the configured threshold are discarded; everything else is
/// written to stderr as `[LEVEL] message`. The library logs sparingly (data
/// generation progress, numeric warnings); benchmarks and examples write
/// their results to stdout directly.
class Logger {
 public:
  /// Sets the global minimum severity that will be emitted.
  static void SetLevel(LogLevel level);
  /// Returns the global minimum severity.
  static LogLevel GetLevel();
  /// Emits `message` at `level` if it passes the threshold.
  static void Log(LogLevel level, const std::string& message);
};

namespace internal_logging {

/// Accumulates one log line and emits it on destruction.
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { Logger::Log(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace hetesim

#define HETESIM_LOG(level) \
  ::hetesim::internal_logging::LogStream(::hetesim::LogLevel::k##level)

#endif  // HETESIM_COMMON_LOGGING_H_
