#ifndef HETESIM_COMMON_TRACE_H_
#define HETESIM_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace hetesim {

/// \brief Per-query span tree with monotonic timestamps (DESIGN.md §12).
///
/// A `Trace` is owned by the caller (CLI, bench, test) and attached to a
/// `QueryContext` via `WithTrace`; the compute stack opens `TraceSpan`s at
/// *stage* granularity (plan, one span per chain step, normalization,
/// top-k scan) on the query thread — never per parallel chunk, so tracing
/// costs a handful of records per query, not per element. With no trace
/// attached (`ctx.trace() == nullptr`, the default), `TraceSpan` is an
/// inactive no-op: two pointer stores, no allocation, no lock.
///
/// Timestamps come from `steady_clock` and are rendered as nanosecond
/// offsets from the trace's construction instant, so a dumped trace is
/// self-contained and immune to wall-clock steps.
class Trace {
 public:
  using SpanId = int64_t;
  using Clock = std::chrono::steady_clock;
  /// Parent value for root spans; never a real span id.
  static constexpr SpanId kNoParent = 0;

  Trace() : epoch_(Clock::now()) {}
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// One recorded span. `end` is meaningful only when `finished`; a span
  /// left unfinished in a dump was still open when the trace was rendered
  /// (e.g. the query was abandoned rather than unwound).
  struct Span {
    SpanId id = 0;
    SpanId parent = kNoParent;
    std::string name;
    Clock::time_point start{};
    Clock::time_point end{};
    bool finished = false;
    /// Ordered key/value markers: status, cancellation, truncation,
    /// kernel choices. Duplicate keys allowed (append-only).
    std::vector<std::pair<std::string, std::string>> annotations;
  };

  /// Opens a span under `parent` (or as a root with `kNoParent`) and
  /// returns its id. Prefer the `TraceSpan` RAII wrapper, which threads the
  /// parent automatically.
  SpanId BeginSpan(std::string_view name, SpanId parent) EXCLUDES(mutex_);
  /// Closes `id`, stamping its end time. Unknown/already-finished ids are
  /// ignored (a trace never turns a bug into a crash mid-query).
  void EndSpan(SpanId id) EXCLUDES(mutex_);
  /// Appends a key/value marker to span `id`.
  void Annotate(SpanId id, std::string_view key, std::string_view value)
      EXCLUDES(mutex_);

  /// Snapshot of every span recorded so far, in creation order.
  std::vector<Span> Spans() const EXCLUDES(mutex_);
  /// The instant offsets are measured from.
  Clock::time_point epoch() const { return epoch_; }

  /// JSON dump: {"spans": [{id, parent, name, start_ns, end_ns|null,
  /// annotations: {...}}]}; `start_ns`/`end_ns` are offsets from `epoch()`.
  std::string RenderJson() const EXCLUDES(mutex_);

 private:
  const Clock::time_point epoch_;
  mutable Mutex mutex_;
  std::vector<Span> spans_ GUARDED_BY(mutex_);  ///< spans_[id - 1]
};

/// \brief RAII span: opens on construction, closes on destruction.
///
/// Parenting uses a thread-local "current span" that the constructor saves
/// and the destructor restores, so nested `TraceSpan`s on one thread form a
/// tree without any call site threading ids around — including across the
/// early returns of `HETESIM_RETURN_NOT_OK`. Constructed with a null trace
/// it is inactive and records nothing.
class TraceSpan {
 public:
  TraceSpan(Trace* trace, std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Appends a marker to this span (no-op when inactive).
  void Annotate(std::string_view key, std::string_view value);
  bool active() const { return trace_ != nullptr; }

 private:
  Trace* trace_ = nullptr;
  Trace::SpanId id_ = Trace::kNoParent;
  /// The thread's previous current-span, restored on destruction.
  Trace* saved_trace_ = nullptr;
  Trace::SpanId saved_id_ = Trace::kNoParent;
};

}  // namespace hetesim

#endif  // HETESIM_COMMON_TRACE_H_
