#ifndef HETESIM_COMMON_STOPWATCH_H_
#define HETESIM_COMMON_STOPWATCH_H_

#include <chrono>

namespace hetesim {

/// \brief Wall-clock stopwatch used by the benchmark harness and the
/// materialization cache's cost accounting.
class Stopwatch {
 public:
  /// Starts (or restarts) timing at construction.
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hetesim

#endif  // HETESIM_COMMON_STOPWATCH_H_
