#ifndef HETESIM_COMMON_CONTEXT_H_
#define HETESIM_COMMON_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "common/annotations.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"

namespace hetesim {

class Trace;  // common/trace.h; contexts carry a non-owning pointer only

/// \brief Cooperative cancellation flag, shared by value.
///
/// Copies of a token observe the same underlying flag, so a caller can hand
/// a token into a long-running computation, keep a copy, and flip it from
/// another thread. Checking is one relaxed-ish atomic load; computations
/// poll at *chunk* granularity (once per parallel block / row stripe), never
/// per element, so the steady-state cost is unmeasurable.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation. Idempotent; safe from any thread. Const because
  /// it mutates the shared flag, not the handle — a computation holding a
  /// `const QueryContext&` can still be cancelled through another copy.
  void Cancel() const { state_->store(true, std::memory_order_release); }
  /// True once `Cancel()` has been called on any copy of this token.
  bool cancelled() const { return state_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// \brief Atomic byte accounting against a fixed limit.
///
/// `TryReserve` atomically charges bytes if and only if the result stays
/// within the limit, so the accounted total can never overshoot — the
/// invariant behind the `--max-cache-mb` guarantee. Reservations are
/// released through the RAII `MemoryReservation` handle (or `Release` for
/// the rare manual case). `peak_bytes()` tracks the high-water mark.
class MemoryBudget {
 public:
  static constexpr size_t kUnlimited = std::numeric_limits<size_t>::max();

  explicit MemoryBudget(size_t limit_bytes) : limit_(limit_bytes) {}
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Charges `bytes` if the new total stays <= limit. Returns false (and
  /// charges nothing) otherwise.
  bool TryReserve(size_t bytes);
  /// Returns a previous reservation. Over-release is a programming error
  /// and clamps to zero rather than wrapping.
  void Release(size_t bytes);

  size_t limit_bytes() const { return limit_; }
  size_t used_bytes() const { return used_.load(std::memory_order_relaxed); }
  size_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }

  /// Fraction of the limit currently reserved, in [0, 1]; 0 for an
  /// unlimited budget. The admission controller's memory-pressure signal.
  double UsedFraction() const {
    if (limit_ == 0 || limit_ == kUnlimited) return 0.0;
    const double f = static_cast<double>(used_bytes()) / static_cast<double>(limit_);
    return f > 1.0 ? 1.0 : f;
  }

 private:
  const size_t limit_;
  std::atomic<size_t> used_{0};
  std::atomic<size_t> peak_{0};
};

/// \brief RAII handle for a `MemoryBudget` reservation.
///
/// Move-only; releases its bytes back to the budget on destruction. A
/// default-constructed reservation is empty (owns nothing), which is also
/// the state used when no budget is attached — callers can hold one
/// unconditionally.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  /// Takes ownership of `bytes` already reserved on `budget`.
  MemoryReservation(MemoryBudget* budget, size_t bytes)
      : budget_(budget), bytes_(bytes) {}
  ~MemoryReservation() { reset(); }

  MemoryReservation(MemoryReservation&& other) noexcept
      : budget_(std::exchange(other.budget_, nullptr)),
        bytes_(std::exchange(other.bytes_, 0)) {}
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = std::exchange(other.budget_, nullptr);
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  /// Releases the bytes now instead of at destruction.
  void reset() {
    if (budget_ != nullptr && bytes_ > 0) budget_->Release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  size_t bytes() const { return bytes_; }
  bool empty() const { return bytes_ == 0; }

 private:
  MemoryBudget* budget_ = nullptr;
  size_t bytes_ = 0;
};

/// \brief Per-query execution context: monotonic deadline, cooperative
/// cancellation, and an optional memory budget.
///
/// A `QueryContext` is cheap to copy (a token, an optional time point, and
/// two raw pointers) and is passed by const reference through the compute
/// stack. Every pooled parallel region checks `CheckAlive()` at chunk
/// granularity: a cancelled or expired context makes the remaining chunks
/// no-ops, so the region drains within one chunk's worth of work and never
/// leaks pool tasks. `Background()` is the no-deadline, never-cancelled,
/// unbudgeted default used by all legacy entry points.
class QueryContext {
 public:
  using Clock = std::chrono::steady_clock;

  QueryContext() = default;

  /// The shared do-everything context: no deadline, no budget, and a token
  /// that is never cancelled.
  static const QueryContext& Background();

  /// Returns a copy of this context that additionally expires at `deadline`.
  QueryContext WithDeadline(Clock::time_point deadline) const {
    QueryContext copy = *this;
    copy.deadline_ = deadline;
    return copy;
  }
  /// Returns a copy expiring `ms` milliseconds from now.
  QueryContext WithDeadlineAfterMs(int64_t ms) const {
    return WithDeadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  /// Returns a copy charging transient allocations against `budget`
  /// (non-owning; the budget must outlive the context).
  QueryContext WithBudget(MemoryBudget* budget) const {
    QueryContext copy = *this;
    copy.budget_ = budget;
    return copy;
  }
  /// Returns a copy observing `token` instead of this context's own token.
  /// Lets an external party (e.g. a connection handler that detects a
  /// client disconnect) cancel the query without holding the context.
  QueryContext WithCancel(CancelToken token) const {
    QueryContext copy = *this;
    copy.token_ = std::move(token);
    return copy;
  }
  /// Returns a copy that records stage spans into `trace` (non-owning; the
  /// trace must outlive the context). See common/trace.h for the span model.
  QueryContext WithTrace(Trace* trace) const {
    QueryContext copy = *this;
    copy.trace_ = trace;
    return copy;
  }

  /// Requests cooperative cancellation of every computation holding a copy
  /// of this context (or its token).
  void Cancel() const { token_.Cancel(); }

  const CancelToken& token() const { return token_; }
  std::optional<Clock::time_point> deadline() const { return deadline_; }
  MemoryBudget* budget() const { return budget_; }
  /// The attached trace, or nullptr (the default: tracing off).
  Trace* trace() const { return trace_; }

  bool cancelled() const { return token_.cancelled(); }
  bool deadline_expired() const {
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }
  /// One combined check, cheapest first: cancellation is an atomic load,
  /// the deadline costs a clock read only when one is set.
  bool Expired() const { return cancelled() || deadline_expired(); }

  /// OK while the query should keep running; `Cancelled` or
  /// `DeadlineExceeded` once it should stop. Cancellation wins ties so a
  /// caller-initiated stop is reported as such even after the deadline.
  [[nodiscard]] Status CheckAlive() const;

  /// Reserves `bytes` on the attached budget; an empty reservation when no
  /// budget is attached (unbudgeted contexts never fail allocation checks).
  [[nodiscard]] Result<MemoryReservation> Reserve(size_t bytes) const;

 private:
  CancelToken token_;
  std::optional<Clock::time_point> deadline_;
  MemoryBudget* budget_ = nullptr;
  Trace* trace_ = nullptr;
};

/// \brief First-error-wins status aggregator for parallel regions.
///
/// Parallel bodies cannot return a `Status`, so a region shares one of
/// these: any chunk that fails records its status (first failure kept);
/// subsequent chunks see `ok() == false` via one atomic load and skip their
/// work, and the caller returns `status()` after the join.
class SharedStatus {
 public:
  SharedStatus() = default;
  SharedStatus(const SharedStatus&) = delete;
  SharedStatus& operator=(const SharedStatus&) = delete;

  /// Records `status` if it is the first non-OK one. OK statuses are
  /// ignored.
  void Update(Status status) EXCLUDES(mutex_);
  /// True while no failure has been recorded (one relaxed atomic load).
  bool ok() const { return !failed_.load(std::memory_order_acquire); }
  /// The first recorded failure, or OK.
  [[nodiscard]] Status status() const EXCLUDES(mutex_);

 private:
  std::atomic<bool> failed_{false};
  mutable Mutex mutex_;
  Status first_ GUARDED_BY(mutex_);
};

}  // namespace hetesim

#endif  // HETESIM_COMMON_CONTEXT_H_
