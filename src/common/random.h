#ifndef HETESIM_COMMON_RANDOM_H_
#define HETESIM_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hetesim {

/// \brief Deterministic pseudo-random source used throughout the library.
///
/// Wraps the xoshiro256** generator (public-domain algorithm by Blackman &
/// Vigna) seeded via SplitMix64, so every dataset generator, clustering run
/// and benchmark is exactly reproducible from a single 64-bit seed. The
/// standard `<random>` distributions are deliberately avoided: their output
/// differs between standard library implementations, which would make test
/// expectations non-portable.
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in `[0, bound)`; `bound` must be positive. Uses
  /// rejection sampling, so the distribution is exactly uniform.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in `[lo, hi]` inclusive; requires `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of entropy.
  double UniformDouble();

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via the Marsaglia polar method.
  double Normal();

  /// Zipf-distributed integer in `[1, n]` with exponent `s > 0` drawn by
  /// inversion over the precomputable CDF. Small `n` only; for repeated
  /// sampling prefer `ZipfSampler`.
  uint64_t Zipf(uint64_t n, double s);

  /// Index drawn proportionally to `weights` (all non-negative, sum > 0).
  size_t Categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// \brief Precomputed-CDF Zipf sampler for repeated draws over a fixed
/// support `[1, n]` with exponent `s`. O(n) setup, O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double s);
  /// Draws one Zipf value in `[1, n]` using `rng`.
  uint64_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace hetesim

#endif  // HETESIM_COMMON_RANDOM_H_
