#include "common/status.h"

namespace hetesim {

namespace {
const std::string& EmptyString() {
  // Leaked singleton: immune to static destruction order.
  static const std::string* const kEmpty = new std::string();  // hetesim-lint: allow(no-naked-new)
  return *kEmpty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr : std::make_unique<State>(*other.state_);
  }
  return *this;
}

Status Status::InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status Status::NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status Status::AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status Status::OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Status::FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status Status::IOError(std::string message) {
  return Status(StatusCode::kIOError, std::move(message));
}
Status Status::NotImplemented(std::string message) {
  return Status(StatusCode::kNotImplemented, std::move(message));
}
Status Status::Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Status::DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status Status::ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status Status::Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

const std::string& Status::message() const {
  return ok() ? EmptyString() : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace hetesim
