#ifndef HETESIM_COMMON_ANNOTATIONS_H_
#define HETESIM_COMMON_ANNOTATIONS_H_

/// \file
/// Clang thread-safety analysis attributes (no-ops elsewhere).
///
/// These are the canonical macro names from the Clang thread-safety
/// documentation (the same set Abseil ships under the `ABSL_` prefix).
/// Annotated code compiles unchanged on GCC/MSVC; under Clang with
/// `-Wthread-safety` (the CI `static-analysis` job builds with
/// `-Werror=thread-safety`, see `-DHETESIM_THREAD_SAFETY=ON`) the compiler
/// proves at compile time that every `GUARDED_BY` field is only touched
/// with its mutex held, that `REQUIRES` functions are only called under
/// the right lock, and that scoped locks are not leaked.
///
/// Use the annotated `Mutex`/`MutexLock`/`CondVar` wrappers from
/// common/mutex.h — plain `std::mutex` is invisible to the analysis (and
/// rejected by `hetesim_lint`'s `no-raw-mutex` rule in library code).
///
/// Conventions (see DESIGN.md §11 for the full table):
///  * Every field touched by more than one thread is either `std::atomic`
///    or `GUARDED_BY` an annotated mutex.
///  * Private `...Locked()` helpers are `REQUIRES(mutex_)`.
///  * Public entry points that take the lock are `EXCLUDES(mutex_)` so the
///    analysis rejects self-deadlock on the non-reentrant `std::mutex`.

#if defined(__clang__)
#define HETESIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HETESIM_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Declares a type to be a lockable capability (e.g. `class CAPABILITY("mutex") Mutex`).
#ifndef CAPABILITY
#define CAPABILITY(x) HETESIM_THREAD_ANNOTATION_(capability(x))
#endif

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY HETESIM_THREAD_ANNOTATION_(scoped_lockable)
#endif

/// Field may only be read or written with capability `x` held.
#ifndef GUARDED_BY
#define GUARDED_BY(x) HETESIM_THREAD_ANNOTATION_(guarded_by(x))
#endif

/// Pointer field whose *pointee* may only be accessed with `x` held.
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) HETESIM_THREAD_ANNOTATION_(pt_guarded_by(x))
#endif

/// Function must be called with the listed capabilities held (and does not
/// release them).
#ifndef REQUIRES
#define REQUIRES(...) HETESIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#endif

/// Shared (reader) variant of REQUIRES.
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  HETESIM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#endif

/// Function acquires the listed capabilities and holds them on return.
#ifndef ACQUIRE
#define ACQUIRE(...) HETESIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#endif

/// Shared (reader) variant of ACQUIRE.
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  HETESIM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#endif

/// Function releases the listed capabilities (which must be held on entry).
#ifndef RELEASE
#define RELEASE(...) HETESIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#endif

/// Shared (reader) variant of RELEASE.
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  HETESIM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#endif

/// Function attempts to acquire the capability; the first argument is the
/// return value that signals success.
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) HETESIM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#endif

/// Function must be called with the listed capabilities NOT held. Because
/// `std::mutex` is non-reentrant, every public method that locks `mutex_`
/// internally is `EXCLUDES(mutex_)`.
#ifndef EXCLUDES
#define EXCLUDES(...) HETESIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#endif

/// Runtime assertion that the capability is held (tells the analysis so).
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) HETESIM_THREAD_ANNOTATION_(assert_capability(x))
#endif

/// Function returns a reference to the named capability.
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) HETESIM_THREAD_ANNOTATION_(lock_returned(x))
#endif

/// Escape hatch: disables analysis for one function. Use only inside the
/// lock wrappers themselves or with a comment explaining why the analysis
/// cannot see the invariant.
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS HETESIM_THREAD_ANNOTATION_(no_thread_safety_analysis)
#endif

#endif  // HETESIM_COMMON_ANNOTATIONS_H_
