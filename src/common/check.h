#ifndef HETESIM_COMMON_CHECK_H_
#define HETESIM_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hetesim::internal_check {

/// Accumulates a fatal diagnostic and aborts the process when destroyed.
/// Used only via the HETESIM_CHECK* macros below for internal invariants —
/// recoverable errors go through Status/Result instead.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message on the non-failing path. `operator&&` has
/// lower precedence than `<<`, which lets the macro discard the whole chain.
struct CheckVoidify {
  void operator&&(const CheckFailureStream&) const {}
};

}  // namespace hetesim::internal_check

/// Aborts with a diagnostic when `condition` is false. For internal
/// invariants and programmer errors only; user-facing validation must
/// return Status.
#define HETESIM_CHECK(condition)                                       \
  (condition) ? (void)0                                                \
              : ::hetesim::internal_check::CheckVoidify() &&           \
                    ::hetesim::internal_check::CheckFailureStream(     \
                        __FILE__, __LINE__, #condition)

#define HETESIM_CHECK_EQ(a, b) HETESIM_CHECK((a) == (b))
#define HETESIM_CHECK_NE(a, b) HETESIM_CHECK((a) != (b))
#define HETESIM_CHECK_LT(a, b) HETESIM_CHECK((a) < (b))
#define HETESIM_CHECK_LE(a, b) HETESIM_CHECK((a) <= (b))
#define HETESIM_CHECK_GT(a, b) HETESIM_CHECK((a) > (b))
#define HETESIM_CHECK_GE(a, b) HETESIM_CHECK((a) >= (b))

#ifdef NDEBUG
#define HETESIM_DCHECK(condition) HETESIM_CHECK(true || (condition))
#else
#define HETESIM_DCHECK(condition) HETESIM_CHECK(condition)
#endif

#endif  // HETESIM_COMMON_CHECK_H_
