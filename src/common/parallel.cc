#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace hetesim {

int HardwareThreads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

void ParallelChunks(int64_t begin, int64_t end, int num_threads,
                    const std::function<void(int64_t, int64_t)>& body) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  const int chunks = static_cast<int>(
      std::min<int64_t>(std::max(num_threads, 1), range));
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const int64_t chunk_size = (range + chunks - 1) / chunks;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(chunks));
  for (int c = 0; c < chunks; ++c) {
    const int64_t chunk_begin = begin + c * chunk_size;
    const int64_t chunk_end = std::min(end, chunk_begin + chunk_size);
    if (chunk_begin >= chunk_end) break;
    workers.emplace_back([&body, chunk_begin, chunk_end] {
      body(chunk_begin, chunk_end);
    });
  }
  for (std::thread& worker : workers) worker.join();
}

}  // namespace hetesim
