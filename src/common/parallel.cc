#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace hetesim {

namespace {

std::atomic<ParallelDispatch> g_dispatch{ParallelDispatch::kPooled};

/// The pre-pool execution strategy: one freshly spawned `std::thread` per
/// block, joined before returning. Identical block partition to the pooled
/// path so the two dispatch modes differ only in scheduling cost.
void SpawnPerCallFor(int64_t begin, int64_t end, int threads,
                     const std::function<void(int64_t, int64_t)>& body,
                     const GrainOptions& grain) {
  const internal::BlockPlan plan = internal::PlanBlocks(end - begin, threads, grain);
  if (threads <= 1 || plan.num_blocks <= 1) {
    body(begin, end);
    return;
  }
  // Raw threads are the point of this ablation baseline (bench_pool_dispatch
  // measures pooled dispatch against exactly this spawn cost).
  std::vector<std::thread> workers;  // hetesim-lint: allow(no-raw-thread)
  workers.reserve(static_cast<size_t>(plan.num_blocks));
  for (int64_t block = 0; block < plan.num_blocks; ++block) {
    const int64_t block_begin = begin + block * plan.block_size;
    const int64_t block_end = std::min(end, block_begin + plan.block_size);
    workers.emplace_back([&body, block_begin, block_end] {
      body(block_begin, block_end);
    });
  }
  for (std::thread& worker : workers) worker.join();  // hetesim-lint: allow(no-raw-thread)
}

}  // namespace

int HardwareThreads() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

int ResolveNumThreads(int num_threads) {
  if (num_threads == 0) return HardwareThreads();
  return std::max(num_threads, 1);
}

void SetParallelDispatch(ParallelDispatch dispatch) {
  g_dispatch.store(dispatch, std::memory_order_relaxed);
}

ParallelDispatch GetParallelDispatch() {
  return g_dispatch.load(std::memory_order_relaxed);
}

void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t, int64_t)>& body,
                 const GrainOptions& grain) {
  if (end - begin <= 0) return;
  const int threads = ResolveNumThreads(num_threads);
  if (GetParallelDispatch() == ParallelDispatch::kSpawnPerCall) {
    SpawnPerCallFor(begin, end, threads, body, grain);
    return;
  }
  ThreadPool::Global().ParallelFor(begin, end, threads, body, grain);
}

void ParallelChunks(int64_t begin, int64_t end, int num_threads,
                    const std::function<void(int64_t, int64_t)>& body) {
  // Static split into at most `num_threads` chunks: min_grain 1 with one
  // block per thread reproduces the historical chunk shape, now executed
  // on the pool (or spawned, under the ablation baseline).
  GrainOptions grain;
  grain.cost_per_element = 1e9;  // always split down to min_grain
  grain.min_grain = 1;
  grain.max_blocks_per_thread = 1;
  ParallelFor(begin, end, num_threads, body, grain);
}

}  // namespace hetesim
