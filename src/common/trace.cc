#include "common/trace.h"

#include <chrono>

#include "common/string_util.h"

namespace hetesim {

namespace {

// The innermost open TraceSpan on this thread, used for automatic
// parenting. A plain pair of thread-locals (not a stack): each TraceSpan
// saves the previous value in itself and restores it on destruction, so
// nesting works without a heap-allocated stack per thread.
thread_local Trace* tls_current_trace = nullptr;
thread_local Trace::SpanId tls_current_span = Trace::kNoParent;

int64_t NanosSince(Trace::Clock::time_point epoch,
                   Trace::Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch)
      .count();
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Trace::SpanId Trace::BeginSpan(std::string_view name, SpanId parent) {
  const Clock::time_point now = Clock::now();
  MutexLock lock(mutex_);
  Span span;
  span.id = static_cast<SpanId>(spans_.size()) + 1;
  span.parent = parent;
  span.name = std::string(name);
  span.start = now;
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Trace::EndSpan(SpanId id) {
  const Clock::time_point now = Clock::now();
  MutexLock lock(mutex_);
  if (id < 1 || id > static_cast<SpanId>(spans_.size())) return;
  Span& span = spans_[static_cast<size_t>(id) - 1];
  if (span.finished) return;
  span.end = now;
  span.finished = true;
}

void Trace::Annotate(SpanId id, std::string_view key, std::string_view value) {
  MutexLock lock(mutex_);
  if (id < 1 || id > static_cast<SpanId>(spans_.size())) return;
  spans_[static_cast<size_t>(id) - 1].annotations.emplace_back(
      std::string(key), std::string(value));
}

std::vector<Trace::Span> Trace::Spans() const {
  MutexLock lock(mutex_);
  return spans_;
}

std::string Trace::RenderJson() const {
  const std::vector<Span> spans = Spans();
  std::string out = "{\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    out += StrFormat("%s\n    {\"id\": %lld, \"parent\": %lld, \"name\": \"",
                     i == 0 ? "" : ",", static_cast<long long>(span.id),
                     static_cast<long long>(span.parent));
    AppendJsonEscaped(out, span.name);
    out += StrFormat("\", \"start_ns\": %lld, \"end_ns\": ",
                     static_cast<long long>(NanosSince(epoch_, span.start)));
    if (span.finished) {
      out += StrFormat("%lld",
                       static_cast<long long>(NanosSince(epoch_, span.end)));
    } else {
      out += "null";
    }
    out += ", \"annotations\": {";
    for (size_t j = 0; j < span.annotations.size(); ++j) {
      out += j == 0 ? "\"" : ", \"";
      AppendJsonEscaped(out, span.annotations[j].first);
      out += "\": \"";
      AppendJsonEscaped(out, span.annotations[j].second);
      out += "\"";
    }
    out += "}}";
  }
  out += spans.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

TraceSpan::TraceSpan(Trace* trace, std::string_view name) : trace_(trace) {
  if (trace_ == nullptr) return;
  // Parent under the innermost open span only if it belongs to the same
  // trace (two queries interleaving on one thread stay separate trees).
  const Trace::SpanId parent =
      tls_current_trace == trace_ ? tls_current_span : Trace::kNoParent;
  id_ = trace_->BeginSpan(name, parent);
  saved_trace_ = tls_current_trace;
  saved_id_ = tls_current_span;
  tls_current_trace = trace_;
  tls_current_span = id_;
}

TraceSpan::~TraceSpan() {
  if (trace_ == nullptr) return;
  trace_->EndSpan(id_);
  tls_current_trace = saved_trace_;
  tls_current_span = saved_id_;
}

void TraceSpan::Annotate(std::string_view key, std::string_view value) {
  if (trace_ == nullptr) return;
  trace_->Annotate(id_, key, value);
}

}  // namespace hetesim
