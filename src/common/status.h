#ifndef HETESIM_COMMON_STATUS_H_
#define HETESIM_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace hetesim {

/// \brief Machine-readable category of a `Status`.
///
/// The set mirrors the categories used by Arrow/RocksDB-style database
/// libraries: the public API never throws; every fallible operation returns
/// a `Status` (or a `Result<T>`, see result.h) carrying one of these codes.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  kDeadlineExceeded = 9,
  kResourceExhausted = 10,
  kCancelled = 11,
};

/// \brief Returns a stable human-readable name for a status code
/// (e.g. "Invalid argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus a diagnostic message.
///
/// `Status` is cheap to pass by value: the OK state is represented by a null
/// pointer, so success costs one pointer copy and no allocation.
///
/// Typical use:
/// \code
///   Status s = graph.AddEdge("writes", a, p);
///   if (!s.ok()) return s;
/// \endcode
/// or with the convenience macro:
/// \code
///   HETESIM_RETURN_NOT_OK(graph.AddEdge("writes", a, p));
/// \endcode
///
/// The class is `[[nodiscard]]`: any call that returns a `Status` by value
/// and drops it is a compile error under `-Werror=unused-result` (enforced
/// repo-wide, see DESIGN.md §11). The rare intentional drop must say so via
/// `HETESIM_IGNORE_STATUS(expr)` with a justification comment.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  /// Constructs a status with the given code and message. A `kOk` code with
  /// a message is collapsed to the plain OK status.
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&& other) noexcept = default;
  Status& operator=(Status&& other) noexcept = default;

  /// Factory helpers, one per non-OK code.
  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string message);
  [[nodiscard]] static Status NotFound(std::string message);
  [[nodiscard]] static Status AlreadyExists(std::string message);
  [[nodiscard]] static Status OutOfRange(std::string message);
  [[nodiscard]] static Status FailedPrecondition(std::string message);
  [[nodiscard]] static Status IOError(std::string message);
  [[nodiscard]] static Status NotImplemented(std::string message);
  [[nodiscard]] static Status Internal(std::string message);
  [[nodiscard]] static Status DeadlineExceeded(std::string message);
  [[nodiscard]] static Status ResourceExhausted(std::string message);
  [[nodiscard]] static Status Cancelled(std::string message);

  /// True iff the status carries no error.
  bool ok() const { return state_ == nullptr; }
  /// The status code (`kOk` when `ok()`).
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The diagnostic message (empty when `ok()`).
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const { return code() == StatusCode::kFailedPrecondition; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsResourceExhausted() const { return code() == StatusCode::kResourceExhausted; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Two statuses compare equal when code and message both match.
  friend bool operator==(const Status& a, const Status& b);

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // null <=> OK
};

}  // namespace hetesim

/// Propagates a non-OK `Status` to the caller.
#define HETESIM_RETURN_NOT_OK(expr)                   \
  do {                                                \
    ::hetesim::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Explicitly discards a `Status` or `Result<T>`. The only sanctioned way
/// past `[[nodiscard]]` + `-Werror=unused-result`; every use carries a
/// one-line justification comment (best-effort cleanup, logged-elsewhere,
/// ...). Grep-able, so dropped errors stay auditable.
#define HETESIM_IGNORE_STATUS(expr) static_cast<void>(expr)

#endif  // HETESIM_COMMON_STATUS_H_
