#ifndef HETESIM_COMMON_MUTEX_H_
#define HETESIM_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace hetesim {

/// \brief `std::mutex` wrapped as a Clang thread-safety *capability*.
///
/// Functionally identical to `std::mutex` (same non-reentrant semantics,
/// zero added state), but visible to `-Wthread-safety`: fields declared
/// `GUARDED_BY(mutex_)` may only be touched while a `MutexLock` on (or an
/// explicit `Lock()` of) that mutex is in scope, and the CI static-analysis
/// job turns violations into compile errors. All library-internal locking
/// goes through this type; `hetesim_lint` rejects raw `std::mutex` /
/// `std::lock_guard` in `src/` outside this header.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock on a `Mutex` (the annotated `std::lock_guard`).
///
/// Scoped-capability type: the analysis treats the guarded mutex as held
/// from construction to the end of the enclosing scope. Condition-variable
/// wait loops are written at the call site so the analysis can see the
/// guarded reads:
/// \code
///   MutexLock lock(mutex_);
///   while (queue_.empty() && !stop_) cv_.Wait(mutex_);
/// \endcode
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with `Mutex`.
///
/// `Wait` atomically releases the mutex, sleeps, and re-acquires it before
/// returning — the annotation says the caller must (and will again) hold
/// the mutex. Spurious wakeups are possible; callers loop on their
/// predicate under the lock as shown above, which is also the shape the
/// thread-safety analysis can verify (a predicate lambda would be analyzed
/// without the REQUIRES context and falsely flagged).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). Requires `mu` held; it is
  /// released while sleeping and re-held on return.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// `Wait` with a timeout; returns false if `deadline` passed first.
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hetesim

#endif  // HETESIM_COMMON_MUTEX_H_
