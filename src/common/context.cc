#include "common/context.h"

#include "common/string_util.h"

namespace hetesim {

bool MemoryBudget::TryReserve(size_t bytes) {
  size_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    if (bytes > limit_ || used > limit_ - bytes) return false;
    if (used_.compare_exchange_weak(used, used + bytes,
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  const size_t now_used = used + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (now_used > peak &&
         !peak_.compare_exchange_weak(peak, now_used, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryBudget::Release(size_t bytes) {
  size_t used = used_.load(std::memory_order_relaxed);
  for (;;) {
    const size_t next = bytes > used ? 0 : used - bytes;
    if (used_.compare_exchange_weak(used, next, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

const QueryContext& QueryContext::Background() {
  // Leaked like ThreadPool::Global(): reachable forever, so no static
  // destruction ordering hazards and no LeakSanitizer report.
  static const QueryContext* const kBackground =
      new QueryContext();  // hetesim-lint: allow(no-naked-new)
  return *kBackground;
}

Status QueryContext::CheckAlive() const {
  if (cancelled()) return Status::Cancelled("query cancelled");
  if (deadline_expired()) return Status::DeadlineExceeded("query deadline exceeded");
  return Status::OK();
}

Result<MemoryReservation> QueryContext::Reserve(size_t bytes) const {
  if (budget_ == nullptr) return MemoryReservation();
  if (!budget_->TryReserve(bytes)) {
    return Status::ResourceExhausted(StrFormat(
        "memory budget exhausted: need %zu bytes, %zu of %zu in use", bytes,
        budget_->used_bytes(), budget_->limit_bytes()));
  }
  return MemoryReservation(budget_, bytes);
}

void SharedStatus::Update(Status status) {
  if (status.ok()) return;
  MutexLock lock(mutex_);
  if (first_.ok()) {
    first_ = std::move(status);
    failed_.store(true, std::memory_order_release);
  }
}

Status SharedStatus::status() const {
  if (ok()) return Status::OK();
  MutexLock lock(mutex_);
  return first_;
}

}  // namespace hetesim
