#ifndef HETESIM_COMMON_STRING_UTIL_H_
#define HETESIM_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace hetesim {

/// Splits `text` on `delimiter`, keeping empty fields. `"a--b"` split on
/// `'-'` yields `{"a", "", "b"}`.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Splits and drops empty fields after trimming each piece.
std::vector<std::string> SplitSkipEmpty(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string (libstdc++ 12 lacks
/// `<format>`, so this is the project's formatting primitive).
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

/// Strict base-10 integer parse: the whole (trimmed) string must be a valid
/// integer — no trailing junk, no empty input, overflow rejected. This is
/// the project-wide replacement for `atoi`-style parsing, which silently
/// turns garbage into 0 and negative surprises into accepted values.
[[nodiscard]] Result<int64_t> ParseInt64(std::string_view text);

/// Strict unsigned parse; additionally rejects any leading '-'.
[[nodiscard]] Result<uint64_t> ParseUint64(std::string_view text);

/// Strict floating-point parse (decimal or scientific); whole string must
/// be consumed, NaN/Inf rejected.
[[nodiscard]] Result<double> ParseDouble(std::string_view text);

}  // namespace hetesim

#endif  // HETESIM_COMMON_STRING_UTIL_H_
