#ifndef HETESIM_COMMON_THREAD_POOL_H_
#define HETESIM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace hetesim {

/// \brief Grain-sizing hints for `ParallelFor` (cost-based chunking).
///
/// A parallel region is split into *blocks* that workers claim dynamically.
/// The block size is chosen so one block amortizes scheduling overhead:
/// roughly `kTargetGrainCost / cost_per_element` elements per block, where
/// `cost_per_element` is the caller's estimate of the work per element in
/// arbitrary relative units (1.0 ~ a handful of arithmetic ops; pass e.g.
/// the row width for a dense row sweep). Cheap bodies therefore get few
/// large blocks — possibly one, which runs inline with zero dispatch cost —
/// while expensive bodies get enough blocks for dynamic load balancing.
struct GrainOptions {
  /// Estimated relative cost of one element (>= 0; values < 1e-9 are
  /// treated as 1e-9). Default assumes a trivially cheap body.
  double cost_per_element = 1.0;
  /// Lower bound on elements per block, applied after the cost heuristic.
  int64_t min_grain = 1;
  /// Upper bound on blocks per participating thread. More blocks than
  /// threads lets fast threads pick up slack from slow ones; 1 reproduces
  /// static up-to-`num_threads` chunking.
  int64_t max_blocks_per_thread = 4;
};

namespace internal {
/// Deterministic block partition of a `range`-element iteration space for
/// `threads` participants under `grain`: `num_blocks` blocks of
/// `block_size` elements each (the last block may be short). Centralizes
/// the clamping previously repeated in every caller: always
/// `1 <= num_blocks <= max(range, 1)`, and `num_blocks == 1` whenever the
/// range is empty, `threads <= 1`, or the whole range is cheaper than one
/// grain.
struct BlockPlan {
  int64_t block_size = 0;
  int64_t num_blocks = 0;
};
BlockPlan PlanBlocks(int64_t range, int threads, const GrainOptions& grain);
}  // namespace internal

/// \brief A persistent pool of worker threads with a blocking task queue.
///
/// Workers are spawned once at construction and sleep on a condition
/// variable when idle, so dispatching a parallel region costs a queue push
/// and a wake-up instead of `pthread_create` + join per call. One
/// lazily-initialized process-wide pool (`Global()`) is shared by every
/// parallel region in the library — `SparseMatrix::MultiplyParallel`, the
/// engine's normalization sweeps, `ComputePairs`, and the benches — so
/// concurrent queries time-share one set of OS threads instead of
/// oversubscribing the machine with per-call spawns.
///
/// Thread-safety: every public member is safe to call from any thread,
/// including from inside pool tasks (`ParallelFor` is nested-safe: the
/// caller always drains its own blocks, so a worker calling `ParallelFor`
/// never deadlocks waiting for itself).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 0; a 0-worker pool
  /// is valid — every region then runs entirely on the calling thread).
  explicit ThreadPool(int num_threads);
  /// Joins all workers after they drain the queue: every task submitted
  /// before destruction runs (on a 0-worker pool, pending tasks are
  /// discarded — but such a pool never enqueues region helpers).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use with `HardwareThreads()`
  /// workers and intentionally never destroyed (worker threads must not be
  /// joined during static destruction; the object stays reachable, so it
  /// is not a leak under LeakSanitizer).
  static ThreadPool& Global();

  /// Number of worker threads (excluding callers, which also execute
  /// blocks inside `ParallelFor`).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker. Fire-and-forget; use
  /// `ParallelFor` for blocking fan-out/join.
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Runs `body(block_begin, block_end)` over `[begin, end)` split per
  /// `grain`, using up to `num_threads` participants: the calling thread
  /// plus up to `num_threads - 1` pool workers. Blocks until the whole
  /// range is done. `num_threads == 0` means "all hardware threads".
  /// Blocks partition the range deterministically (same begin/end/threads/
  /// grain => same block boundaries), so per-block output buffers are
  /// race-free and results are reproducible at any thread count.
  void ParallelFor(int64_t begin, int64_t end, int num_threads,
                   const std::function<void(int64_t, int64_t)>& body,
                   const GrainOptions& grain = {});

  /// Concurrency counters, surfaced in the same spirit as
  /// `PathMatrixCache::Stats` and mirrored into the process-wide
  /// `MetricsRegistry` as `hetesim_pool_*` (DESIGN.md §12). All counters
  /// monotonically increasing; `queue_depth` is the instantaneous level.
  /// At a fixed thread count, `tasks_run`, `regions` and `dispatches` are
  /// deterministic (block partitions and helper counts are pure functions
  /// of range/threads/grain); `steals` and the wait/idle times depend on
  /// scheduling and are not.
  struct Stats {
    uint64_t tasks_run = 0;       ///< blocks executed (workers + callers)
    uint64_t steals = 0;          ///< blocks executed by pool workers
    uint64_t regions = 0;         ///< ParallelFor regions dispatched
    uint64_t dispatches = 0;      ///< tasks enqueued via Submit
    int64_t queue_depth = 0;      ///< tasks currently enqueued, not yet popped
    double caller_wait_seconds = 0;  ///< callers blocked on straggler blocks
    double worker_idle_seconds = 0;  ///< workers blocked on an empty queue
  };
  Stats stats() const;
  /// Zeroes all counters (benches bracket runs with this).
  void ResetStats();

 private:
  void WorkerLoop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar queue_cv_;  ///< signalled on push and on shutdown
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;

  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> regions_{0};
  std::atomic<uint64_t> dispatches_{0};
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<uint64_t> caller_wait_ns_{0};
  std::atomic<uint64_t> worker_idle_ns_{0};
};

}  // namespace hetesim

#endif  // HETESIM_COMMON_THREAD_POOL_H_
