#include "common/fault_injection.h"

#include <cstdlib>

namespace hetesim {

namespace {

/// SplitMix64: a tiny, high-quality mixer; the standard choice for turning
/// (seed, site, counter) into an i.i.d.-looking decision stream.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  // FNV-1a: stable across platforms (std::hash is not).
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* const kInjector =
      new FaultInjector();  // hetesim-lint: allow(no-naked-new)
  return *kInjector;
}

FaultInjector::FaultInjector() {
  if (const char* env = std::getenv("HETESIM_FAULT_SEED")) {
    seed_ = std::strtoull(env, nullptr, 10);
  }
}

void FaultInjector::Seed(uint64_t seed) {
  MutexLock lock(mutex_);
  seed_ = seed;
  sites_.clear();
}

void FaultInjector::Arm(const std::string& site_prefix, double probability,
                        int64_t max_failures) {
  MutexLock lock(mutex_);
  rules_.push_back({site_prefix, probability, max_failures});
}

void FaultInjector::Reset() {
  MutexLock lock(mutex_);
  rules_.clear();
  sites_.clear();
}

bool FaultInjector::ShouldFail(std::string_view site) {
  MutexLock lock(mutex_);
  if (rules_.empty()) return false;
  const Rule* match = nullptr;
  for (const Rule& rule : rules_) {
    if (site.substr(0, rule.prefix.size()) == rule.prefix) match = &rule;
  }
  SiteState& state = sites_[std::string(site)];
  const uint64_t n = state.evaluations++;
  if (match == nullptr || match->probability <= 0.0) return false;
  if (match->max_failures >= 0 &&
      state.failures >= static_cast<uint64_t>(match->max_failures)) {
    return false;
  }
  const uint64_t draw = SplitMix64(seed_ ^ HashSite(site) ^ (n * 0xda942042e4dd58b5ULL));
  const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
  if (unit < match->probability) {
    ++state.failures;
    return true;
  }
  return false;
}

FaultInjector::SiteStats FaultInjector::StatsFor(std::string_view site) const {
  MutexLock lock(mutex_);
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) return {};
  return {it->second.evaluations, it->second.failures};
}

uint64_t FaultInjector::TotalFailures() const {
  MutexLock lock(mutex_);
  uint64_t total = 0;
  for (const auto& [site, state] : sites_) total += state.failures;
  return total;
}

}  // namespace hetesim
