#ifndef HETESIM_COMMON_METRICS_H_
#define HETESIM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace hetesim {

/// \file
/// Process-wide metrics: counters, gauges, and fixed-bucket histograms in a
/// `MetricsRegistry`, rendered as Prometheus text exposition or JSON
/// (DESIGN.md §12). Naming convention: `hetesim_<subsystem>_<what>` with a
/// `_total` suffix for counters and a unit suffix (`_bytes`, `_seconds`)
/// where one applies.
///
/// Overhead contract: every recording site is guarded by `MetricsEnabled()`.
/// When the build sets `HETESIM_METRICS=OFF` (compile definition
/// `HETESIM_METRICS_DISABLED`), that guard is a compile-time `false` and the
/// recording code is dead-stripped — near-zero means zero. When compiled in,
/// the guard is one relaxed atomic load and recording is a relaxed atomic
/// add; hot loops accumulate locally and flush once per chunk so the
/// measured overhead on the DBLP APCPA bench stays <= 2%.

#ifdef HETESIM_METRICS_DISABLED
/// Metrics are compiled out; the guard folds to `false` so instrumentation
/// blocks are eliminated entirely.
constexpr bool MetricsCompiledIn() { return false; }
constexpr bool MetricsEnabled() { return false; }
inline void SetMetricsEnabled(bool /*enabled*/) {}
#else
namespace internal {
/// Runtime kill switch (default on). Lives in metrics.cc.
extern std::atomic<bool> g_metrics_enabled;
}  // namespace internal
constexpr bool MetricsCompiledIn() { return true; }
/// True when recording should happen: compiled in and not switched off at
/// runtime. The runtime switch exists so one binary can measure its own
/// instrumentation overhead (bench_observability) and so tests can isolate
/// themselves; production code never toggles it.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}
#endif  // HETESIM_METRICS_DISABLED

/// \brief Monotonically increasing event count. Lock-free: one relaxed
/// atomic add per `Increment`, safe from any thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// Zeroes the counter (tests and benches bracket runs with
  /// `MetricsRegistry::Reset`; production code never resets).
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Instantaneous signed level (queue depth, bytes held). Lock-free.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram (Prometheus semantics: bucket counts are
/// cumulative only at render time; internally each bucket counts its own
/// range). `Observe` is a binary search over the boundaries plus two
/// relaxed atomic adds — no locks, safe from any thread.
///
/// Boundaries are upper bounds: an observation lands in the first bucket
/// whose boundary is >= the value, or in the implicit `+Inf` bucket.
class Histogram {
 public:
  /// `boundaries` must be strictly increasing; the registry validates once
  /// at registration.
  explicit Histogram(std::vector<double> boundaries);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& boundaries() const { return boundaries_; }
  /// Per-bucket counts (size = boundaries.size() + 1; last is +Inf).
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  const std::vector<double> boundaries_;
  // One atomic per bucket plus the implicit +Inf bucket. unique_ptr<[]>
  // because std::atomic is not movable and the count is run-time sized.
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets in seconds: 1us .. ~100s in half-decade steps.
/// Shared by every `*_latency_seconds` histogram so dashboards line up.
const std::vector<double>& DefaultLatencyBoundariesSeconds();

/// \brief Process-wide registry of named instruments.
///
/// `GetCounter`/`GetGauge`/`GetHistogram` register on first use and return a
/// reference that stays valid for the life of the process (instruments are
/// heap-allocated and never erased), so hot paths resolve a name once into a
/// `static` local and record lock-free thereafter. Registration and
/// collection take `mutex_`; recording never does.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (leaked singleton, same lifetime rationale
  /// as `ThreadPool::Global`).
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name) EXCLUDES(mutex_);
  Gauge& GetGauge(const std::string& name) EXCLUDES(mutex_);
  /// Registers (or fetches) a histogram. On first registration the
  /// boundaries are captured; later calls ignore `boundaries` and return
  /// the existing instrument.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> boundaries) EXCLUDES(mutex_);

  /// Point-in-time copy of every instrument, names sorted, suitable for
  /// rendering or test assertions without holding the registry lock.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    struct HistogramValue {
      std::string name;
      std::vector<double> boundaries;
      std::vector<uint64_t> bucket_counts;  ///< per-bucket, last is +Inf
      uint64_t count = 0;
      double sum = 0;
    };
    std::vector<HistogramValue> histograms;
  };
  Snapshot Collect() const EXCLUDES(mutex_);

  /// Prometheus text exposition format (one `# TYPE` line per metric;
  /// histogram buckets rendered cumulatively with `le` labels).
  std::string RenderPrometheus() const EXCLUDES(mutex_);
  /// Structured JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {boundaries, bucket_counts, count, sum}}}.
  std::string RenderJson() const EXCLUDES(mutex_);

  /// Zeroes every registered instrument (registrations are kept so cached
  /// references stay valid). Tests and benches only.
  void Reset() EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  // std::map keeps names sorted for deterministic rendering; unique_ptr
  // gives instruments stable addresses across rehash-free growth.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace hetesim

#endif  // HETESIM_COMMON_METRICS_H_
