#ifndef HETESIM_COMMON_RESULT_H_
#define HETESIM_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace hetesim {

/// \brief Value-or-error return type for fallible operations that produce a
/// value (the Arrow `Result<T>` idiom).
///
/// A `Result<T>` holds either a `T` or a non-OK `Status` — never both and
/// never neither. Constructing a `Result` from an OK status is a programming
/// error and aborts (an OK status carries no value to return).
///
/// \code
///   Result<MetaPath> mp = MetaPath::Parse(schema, "A-P-V-C");
///   if (!mp.ok()) return mp.status();
///   Use(*mp);
/// \endcode
/// Like `Status`, `Result` is `[[nodiscard]]`: dropping a returned
/// `Result<T>` is a compile error under `-Werror=unused-result`; use
/// `HETESIM_IGNORE_STATUS` (status.h) for the rare intentional drop.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Wraps a value (implicit, so functions can `return value;`).
  Result(T value) : repr_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  /// Wraps an error status (implicit, so functions can `return status;`).
  Result(Status status) : repr_(std::in_place_index<1>, std::move(status)) {  // NOLINT
    HETESIM_CHECK(!std::get<1>(repr_).ok())
        << "Result<T> constructed from an OK Status carries no value";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return repr_.index() == 0; }

  /// The status: OK when a value is present, the stored error otherwise.
  [[nodiscard]] Status status() const { return ok() ? Status::OK() : std::get<1>(repr_); }

  /// Accessors. Calling these on an error result aborts.
  const T& value() const& {
    HETESIM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<0>(repr_);
  }
  T& value() & {
    HETESIM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<0>(repr_);
  }
  T&& value() && {
    HETESIM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<0>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<0>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace hetesim

/// Evaluates `expr` (a `Result<T>`), propagating any error; on success binds
/// the value to `lhs`. `lhs` may declare a new variable.
#define HETESIM_ASSIGN_OR_RETURN(lhs, expr)                    \
  HETESIM_ASSIGN_OR_RETURN_IMPL_(                              \
      HETESIM_CONCAT_(_result_, __LINE__), lhs, expr)

#define HETESIM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define HETESIM_CONCAT_(a, b) HETESIM_CONCAT_IMPL_(a, b)
#define HETESIM_CONCAT_IMPL_(a, b) a##b

#endif  // HETESIM_COMMON_RESULT_H_
