#ifndef HETESIM_COMMON_FAULT_INJECTION_H_
#define HETESIM_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace hetesim {

/// \brief Deterministic, seedable fault injection for resilience tests.
///
/// Production code marks failure-prone sites with `HETESIM_FAULT_POINT`:
///
/// \code
///   if (HETESIM_FAULT_POINT("spgemm.alloc")) {
///     return Status::ResourceExhausted("injected: spgemm.alloc");
///   }
/// \endcode
///
/// In a release build (no `HETESIM_FAULT_INJECTION` compile definition) the
/// macro is the constant `false` and the branch folds away — fault points
/// cost nothing and cannot fire in production. In an instrumented build
/// (`-DHETESIM_FAULT_INJECTION=ON`), `FaultInjector::Global()` decides at
/// each evaluation whether the site fails.
///
/// Decisions are *deterministic*: site `s` fails on its `n`-th evaluation
/// iff `hash(seed, s, n) < probability`. The per-site decision sequence
/// therefore depends only on the seed, never on thread interleaving — which
/// call observes the n-th decision may vary across runs, but a seed sweep
/// still explores a reproducible family of failure patterns (CI sweeps
/// `HETESIM_FAULT_SEED` over 8 seeds). Disarmed sites (the default) never
/// fail, so an instrumented build with no `Arm` calls behaves exactly like
/// release.
class FaultInjector {
 public:
  /// The process-wide injector. Seeded from the `HETESIM_FAULT_SEED`
  /// environment variable on first use (0 when unset).
  static FaultInjector& Global();

  /// True when the build has fault points compiled in; tests skip
  /// injection scenarios otherwise.
  static constexpr bool CompiledIn() {
#ifdef HETESIM_FAULT_INJECTION
    return true;
#else
    return false;
#endif
  }

  /// Re-seeds the decision stream and resets all per-site counters.
  void Seed(uint64_t seed) EXCLUDES(mutex_);

  /// Arms every site whose name starts with `site_prefix`:  each
  /// evaluation fails with `probability` (in [0, 1]), up to `max_failures`
  /// total failures for that site (-1 = unlimited).
  void Arm(const std::string& site_prefix, double probability,
           int64_t max_failures = -1) EXCLUDES(mutex_);

  /// Disarms everything and resets counters; the seed is kept.
  void Reset() EXCLUDES(mutex_);

  /// Decision point, normally reached via `HETESIM_FAULT_POINT`.
  /// Thread-safe.
  bool ShouldFail(std::string_view site) EXCLUDES(mutex_);

  /// Per-site counters since the last `Seed`/`Reset`.
  struct SiteStats {
    uint64_t evaluations = 0;
    uint64_t failures = 0;
  };
  SiteStats StatsFor(std::string_view site) const EXCLUDES(mutex_);
  /// Total injected failures across all sites since the last `Seed`/`Reset`.
  uint64_t TotalFailures() const EXCLUDES(mutex_);

 private:
  FaultInjector();

  struct Rule {
    std::string prefix;
    double probability = 0.0;
    int64_t max_failures = -1;
  };
  struct SiteState {
    uint64_t evaluations = 0;
    uint64_t failures = 0;
  };

  mutable Mutex mutex_;
  uint64_t seed_ GUARDED_BY(mutex_) = 0;
  std::vector<Rule> rules_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, SiteState> sites_ GUARDED_BY(mutex_);
};

}  // namespace hetesim

/// Marks a failure-injection site. Evaluates to `true` when the global
/// injector decides this evaluation should fail; constant `false` (zero
/// cost, dead-code eliminated) in builds without HETESIM_FAULT_INJECTION.
#ifdef HETESIM_FAULT_INJECTION
#define HETESIM_FAULT_POINT(site) (::hetesim::FaultInjector::Global().ShouldFail(site))
#else
#define HETESIM_FAULT_POINT(site) (false)
#endif

#endif  // HETESIM_COMMON_FAULT_INJECTION_H_
