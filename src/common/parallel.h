#ifndef HETESIM_COMMON_PARALLEL_H_
#define HETESIM_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "common/thread_pool.h"

namespace hetesim {

/// Number of hardware threads, at least 1.
int HardwareThreads();

/// Resolves a `num_threads` option to an effective thread count:
/// `0` means "all hardware threads" (the size of the global pool),
/// negative values clamp to 1, everything else passes through.
int ResolveNumThreads(int num_threads);

/// How parallel regions are executed. `kPooled` (the default) dispatches
/// onto the persistent `ThreadPool::Global()`; `kSpawnPerCall` creates and
/// joins raw `std::thread`s for every region — the pre-pool behaviour, kept
/// only as an ablation baseline for `bench_parallel` and tests. The setting
/// is process-global and atomic; flip it only from a single thread while no
/// region is in flight.
enum class ParallelDispatch { kPooled, kSpawnPerCall };
void SetParallelDispatch(ParallelDispatch dispatch);
ParallelDispatch GetParallelDispatch();

/// \brief Runs `body(block_begin, block_end)` over `[begin, end)` on the
/// global thread pool with cost-based grain sizing (see `GrainOptions`).
///
/// Up to `num_threads` threads participate (the caller plus pool workers);
/// `num_threads == 0` uses all hardware threads, `<= 1` runs inline on the
/// calling thread. Empty and single-element ranges, and thread counts
/// larger than the range, are handled here — callers need no clamping.
/// Blocks partition `[begin, end)` exactly and deterministically; blocks
/// never overlap, so `body` only needs to be safe on disjoint ranges.
/// Blocks until every block finishes. Safe to call from inside pool tasks
/// (nested regions drain on the calling thread).
void ParallelFor(int64_t begin, int64_t end, int num_threads,
                 const std::function<void(int64_t, int64_t)>& body,
                 const GrainOptions& grain = {});

/// \brief Runs `body(chunk_begin, chunk_end)` over a contiguous index
/// range split into up to `num_threads` chunks.
///
/// Thin shim over `ParallelFor` with static up-to-`num_threads` chunking,
/// kept for callers that size per-chunk scratch buffers off the thread
/// count. `num_threads == 0` uses all hardware threads; `<= 1` (or a range
/// smaller than 2 elements) runs inline on the calling thread — no
/// dispatch cost for the sequential case. `body` must be safe to run
/// concurrently on disjoint chunks; chunks partition `[begin, end)`
/// exactly. Blocks until every chunk finishes.
void ParallelChunks(int64_t begin, int64_t end, int num_threads,
                    const std::function<void(int64_t, int64_t)>& body);

}  // namespace hetesim

#endif  // HETESIM_COMMON_PARALLEL_H_
