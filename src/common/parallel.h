#ifndef HETESIM_COMMON_PARALLEL_H_
#define HETESIM_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace hetesim {

/// Number of hardware threads, at least 1.
int HardwareThreads();

/// \brief Runs `body(chunk_begin, chunk_end)` over a contiguous index
/// range split into up to `num_threads` chunks, one thread per chunk.
///
/// `num_threads <= 1` (or a range smaller than 2 elements per chunk) runs
/// inline on the calling thread — no spawn cost for the sequential case.
/// `body` must be safe to run concurrently on disjoint chunks; chunks
/// partition `[begin, end)` exactly. Blocks until every chunk finishes.
void ParallelChunks(int64_t begin, int64_t end, int num_threads,
                    const std::function<void(int64_t, int64_t)>& body);

}  // namespace hetesim

#endif  // HETESIM_COMMON_PARALLEL_H_
