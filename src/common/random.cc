#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hetesim {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  HETESIM_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` that fits.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  HETESIM_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal() {
  // Marsaglia polar method; the spare variate is discarded for simplicity.
  for (;;) {
    double u = 2.0 * UniformDouble() - 1.0;
    double v = 2.0 * UniformDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(*this);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  HETESIM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    HETESIM_CHECK_GE(w, 0.0);
    total += w;
  }
  HETESIM_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Floating-point slop: fall back to the last bin.
}

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  HETESIM_CHECK_GT(n, 0u);
  HETESIM_CHECK_GT(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace hetesim
