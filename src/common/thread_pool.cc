#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/parallel.h"

namespace hetesim {

namespace {

/// Process-wide pool instruments, mirroring `ThreadPool::Stats` for the
/// metrics sinks. Shared across pool instances (tests build private pools;
/// production uses Global()), so values aggregate.
struct PoolMetrics {
  Counter& tasks;
  Counter& steals;
  Counter& regions;
  Counter& dispatches;
  Gauge& queue_depth;
};

PoolMetrics& GlobalPoolMetrics() {
  static PoolMetrics metrics{
      MetricsRegistry::Global().GetCounter("hetesim_pool_tasks_total"),
      MetricsRegistry::Global().GetCounter("hetesim_pool_steals_total"),
      MetricsRegistry::Global().GetCounter("hetesim_pool_regions_total"),
      MetricsRegistry::Global().GetCounter("hetesim_pool_dispatches_total"),
      MetricsRegistry::Global().GetGauge("hetesim_pool_queue_depth"),
  };
  return metrics;
}

}  // namespace

namespace internal {

namespace {
/// Target work per block, in `GrainOptions::cost_per_element` units. Tuned
/// so a block of trivially cheap elements (~ns each) still outweighs the
/// cost of a queue push + wake-up (~µs).
constexpr double kTargetGrainCost = 16384.0;
}  // namespace

BlockPlan PlanBlocks(int64_t range, int threads, const GrainOptions& grain) {
  if (range <= 0) return {0, 0};
  const double cost = std::max(grain.cost_per_element, 1e-9);
  int64_t grain_size = static_cast<int64_t>(kTargetGrainCost / cost);
  grain_size = std::max<int64_t>({grain_size, grain.min_grain, 1});
  const int64_t participants = std::max(threads, 1);
  int64_t blocks = (range + grain_size - 1) / grain_size;
  blocks = std::min(blocks,
                    participants * std::max<int64_t>(grain.max_blocks_per_thread, 1));
  blocks = std::max<int64_t>(std::min(blocks, range), 1);
  const int64_t block_size = (range + blocks - 1) / blocks;
  // Re-derive the count so no trailing block is empty.
  blocks = (range + block_size - 1) / block_size;
  return {block_size, blocks};
}

}  // namespace internal

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(num_threads, 0);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  // A 0-worker pool may discard tasks that were pushed but never popped;
  // return their contribution so the global gauge stays balanced.
  MutexLock lock(mutex_);
  if (MetricsEnabled() && !queue_.empty()) {
    GlobalPoolMetrics().queue_depth.Add(
        -static_cast<int64_t>(queue_.size()));
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads must never be joined from static
  // destructors (they may hold locks or outlive other statics). The
  // pointer keeps the pool reachable, so LeakSanitizer stays quiet.
  static ThreadPool* const pool =
      new ThreadPool(HardwareThreads());  // hetesim-lint: allow(no-naked-new)
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  queue_depth_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) {
    PoolMetrics& metrics = GlobalPoolMetrics();
    metrics.dispatches.Increment();
    metrics.queue_depth.Add(1);
  }
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      const Clock::time_point idle_start = Clock::now();
      // Predicate loop written inline (not as a wait-lambda) so the
      // thread-safety analysis sees the guarded reads under the lock.
      while (!stop_ && queue_.empty()) queue_cv_.Wait(mutex_);
      worker_idle_ns_.fetch_add(
          static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                    Clock::now() - idle_start)
                                    .count()),
          std::memory_order_relaxed);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    queue_depth_.fetch_add(-1, std::memory_order_relaxed);
    if (MetricsEnabled()) GlobalPoolMetrics().queue_depth.Add(-1);
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int num_threads,
                             const std::function<void(int64_t, int64_t)>& body,
                             const GrainOptions& grain) {
  const int64_t range = end - begin;
  if (range <= 0) return;
  regions_.fetch_add(1, std::memory_order_relaxed);
  if (MetricsEnabled()) GlobalPoolMetrics().regions.Increment();
  const int threads = num_threads == 0 ? std::max(1, this->num_threads())
                                       : std::max(num_threads, 1);
  const internal::BlockPlan plan = internal::PlanBlocks(range, threads, grain);
  if (threads <= 1 || plan.num_blocks <= 1) {
    body(begin, end);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsEnabled()) GlobalPoolMetrics().tasks.Increment();
    return;
  }

  /// Shared fan-out/join state. Held by shared_ptr so helper tasks that
  /// fire after the region already finished (they claim no block and exit)
  /// never touch freed memory.
  struct Region {
    std::atomic<int64_t> next{0};
    Mutex m;
    CondVar cv;
    int64_t done GUARDED_BY(m) = 0;
  };
  auto region = std::make_shared<Region>();
  const int64_t blocks = plan.num_blocks;
  const int64_t block_size = plan.block_size;
  // The caller outlives the last block (it waits for done == blocks), so
  // late helpers only ever read the pointer, never dereference it.
  const auto* body_ptr = &body;
  auto drain = [this, region, body_ptr, begin, end, block_size, blocks](bool stolen) {
    for (;;) {
      const int64_t block = region->next.fetch_add(1, std::memory_order_relaxed);
      if (block >= blocks) return;
      const int64_t block_begin = begin + block * block_size;
      const int64_t block_end = std::min(end, block_begin + block_size);
      (*body_ptr)(block_begin, block_end);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
      if (stolen) steals_.fetch_add(1, std::memory_order_relaxed);
      if (MetricsEnabled()) {
        PoolMetrics& metrics = GlobalPoolMetrics();
        metrics.tasks.Increment();
        if (stolen) metrics.steals.Increment();
      }
      MutexLock lock(region->m);
      if (++region->done == blocks) region->cv.NotifyAll();
    }
  };

  // No more helpers than pool workers: extra tasks would only queue up and
  // find no blocks left (a 0-worker pool degenerates to inline execution).
  const int64_t helpers = std::min<int64_t>(
      {threads - 1, blocks - 1, static_cast<int64_t>(this->num_threads())});
  for (int64_t h = 0; h < helpers; ++h) {
    // Fault site "pool.dispatch": a lost helper submission. The region must
    // still complete correctly (just with less parallelism) because the
    // caller's own drain below claims every unclaimed block.
    if (HETESIM_FAULT_POINT("pool.dispatch")) continue;
    Submit([drain] { drain(/*stolen=*/true); });
  }
  drain(/*stolen=*/false);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point wait_start = Clock::now();
  {
    MutexLock lock(region->m);
    while (region->done != blocks) region->cv.Wait(region->m);
  }
  caller_wait_ns_.fetch_add(
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - wait_start)
                                .count()),
      std::memory_order_relaxed);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats stats;
  stats.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  stats.steals = steals_.load(std::memory_order_relaxed);
  stats.regions = regions_.load(std::memory_order_relaxed);
  stats.dispatches = dispatches_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  stats.caller_wait_seconds =
      static_cast<double>(caller_wait_ns_.load(std::memory_order_relaxed)) * 1e-9;
  stats.worker_idle_seconds =
      static_cast<double>(worker_idle_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return stats;
}

void ThreadPool::ResetStats() {
  tasks_run_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  regions_.store(0, std::memory_order_relaxed);
  dispatches_.store(0, std::memory_order_relaxed);
  // queue_depth_ is a level, not a counter: resetting it would desync it
  // from the queue it mirrors.
  caller_wait_ns_.store(0, std::memory_order_relaxed);
  worker_idle_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace hetesim
