#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/string_util.h"

namespace hetesim {

#ifndef HETESIM_METRICS_DISABLED
namespace internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal
#endif

namespace {

// Boundaries must be strictly increasing for the lower_bound in Observe;
// rather than trusting every call site, normalize once at construction.
std::vector<double> SortedUnique(std::vector<double> boundaries) {
  std::sort(boundaries.begin(), boundaries.end());
  boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                   boundaries.end());
  return boundaries;
}

}  // namespace

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(SortedUnique(std::move(boundaries))),
      buckets_(std::make_unique<std::atomic<uint64_t>[]>(boundaries_.size() +
                                                         1)) {
  for (size_t i = 0; i <= boundaries_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // First boundary >= value; past-the-end means the +Inf bucket. NaN needs
  // the explicit test: it compares false everywhere, so lower_bound would
  // put it in the first bucket rather than +Inf.
  const size_t bucket =
      std::isnan(value)
          ? boundaries_.size()
          : static_cast<size_t>(
                std::lower_bound(boundaries_.begin(), boundaries_.end(),
                                 value) -
                boundaries_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> counts(boundaries_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= boundaries_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundariesSeconds() {
  static const std::vector<double> kBoundaries = {
      1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
      1e-2, 5e-2, 1e-1, 5e-1, 1.0,  5.0,  10.0, 100.0};
  return kBoundaries;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumentation sites cache references into the
  // registry, and those must stay valid through static destruction. The
  // pointer keeps it reachable, so LeakSanitizer stays quiet.
  static MetricsRegistry* const registry =
      new MetricsRegistry();  // hetesim-lint: allow(no-naked-new)
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> boundaries) {
  MutexLock lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(boundaries));
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::Collect() const {
  Snapshot snap;
  MutexLock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    Snapshot::HistogramValue value;
    value.name = name;
    value.boundaries = histogram->boundaries();
    value.bucket_counts = histogram->bucket_counts();
    value.count = histogram->count();
    value.sum = histogram->sum();
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

namespace {

// Shortest double representation that round-trips; Prometheus renders +Inf
// as "+Inf", JSON has no Inf so boundaries there are always finite (the
// +Inf bucket is implied by bucket_counts.size() == boundaries.size() + 1).
std::string FormatDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  std::string text = StrFormat("%.17g", value);
  // Prefer the shorter form when it round-trips (keeps files readable).
  for (int precision = 1; precision < 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    if (std::stod(candidate) == value) return candidate;
  }
  return text;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  const Snapshot snap = Collect();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += StrFormat("# TYPE %s counter\n", name.c_str());
    out += StrFormat("%s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    out += StrFormat("# TYPE %s gauge\n", name.c_str());
    out += StrFormat("%s %lld\n", name.c_str(), static_cast<long long>(value));
  }
  for (const auto& histogram : snap.histograms) {
    out += StrFormat("# TYPE %s histogram\n", histogram.name.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
      cumulative += histogram.bucket_counts[i];
      const std::string le = i < histogram.boundaries.size()
                                 ? FormatDouble(histogram.boundaries[i])
                                 : "+Inf";
      out += StrFormat("%s_bucket{le=\"%s\"} %llu\n", histogram.name.c_str(),
                       le.c_str(), static_cast<unsigned long long>(cumulative));
    }
    out += StrFormat("%s_sum %s\n", histogram.name.c_str(),
                     FormatDouble(histogram.sum).c_str());
    out += StrFormat("%s_count %llu\n", histogram.name.c_str(),
                     static_cast<unsigned long long>(histogram.count));
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  const Snapshot snap = Collect();
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    out += StrFormat("%s\n    \"%s\": %llu", i == 0 ? "" : ",",
                     snap.counters[i].first.c_str(),
                     static_cast<unsigned long long>(snap.counters[i].second));
  }
  out += snap.counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    out += StrFormat("%s\n    \"%s\": %lld", i == 0 ? "" : ",",
                     snap.gauges[i].first.c_str(),
                     static_cast<long long>(snap.gauges[i].second));
  }
  out += snap.gauges.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& histogram = snap.histograms[i];
    out += StrFormat("%s\n    \"%s\": {\n      \"boundaries\": [",
                     i == 0 ? "" : ",", histogram.name.c_str());
    for (size_t j = 0; j < histogram.boundaries.size(); ++j) {
      out += StrFormat("%s%s", j == 0 ? "" : ", ",
                       FormatDouble(histogram.boundaries[j]).c_str());
    }
    out += "],\n      \"bucket_counts\": [";
    for (size_t j = 0; j < histogram.bucket_counts.size(); ++j) {
      out += StrFormat(
          "%s%llu", j == 0 ? "" : ", ",
          static_cast<unsigned long long>(histogram.bucket_counts[j]));
    }
    out += StrFormat("],\n      \"count\": %llu,\n      \"sum\": %s\n    }",
                     static_cast<unsigned long long>(histogram.count),
                     FormatDouble(histogram.sum).c_str());
  }
  out += snap.histograms.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, gauge] : gauges_) gauge->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace hetesim
