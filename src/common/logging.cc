#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <string_view>
#include <utility>

#include "common/annotations.h"
#include "common/mutex.h"

namespace hetesim {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// The guarded sink. Kept behind a leaked pointer like the other process
/// globals (ThreadPool::Global, FaultInjector::Global): reachable forever,
/// so no static-destruction ordering hazards and no LeakSanitizer report.
struct SinkState {
  Mutex mutex;
  LogSink sink GUARDED_BY(mutex);  // empty => default stderr sink
};

SinkState& GlobalSink() {
  static SinkState* const state = new SinkState();  // hetesim-lint: allow(no-naked-new)
  return *state;
}

}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  SinkState& state = GlobalSink();
  MutexLock lock(state.mutex);
  if (state.sink) {
    state.sink(level, message);
    return;
  }
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

void Logger::SetSink(LogSink sink) {
  SinkState& state = GlobalSink();
  MutexLock lock(state.mutex);
  state.sink = std::move(sink);
}

}  // namespace hetesim
