#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <string_view>

namespace hetesim {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void Logger::SetLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::GetLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::cerr << "[" << LevelName(level) << "] " << message << "\n";
}

}  // namespace hetesim
