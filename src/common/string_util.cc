#include "common/string_util.h"

#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace hetesim {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitSkipEmpty(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  for (const std::string& piece : Split(text, delimiter)) {
    std::string_view trimmed = Trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string trimmed(Trim(text));
  if (trimmed.empty()) {
    return Status::InvalidArgument("expected an integer, got empty string");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size() || errno == ERANGE) {
    return Status::InvalidArgument("'" + trimmed + "' is not a valid integer");
  }
  return static_cast<int64_t>(value);
}

Result<uint64_t> ParseUint64(std::string_view text) {
  const std::string trimmed(Trim(text));
  if (trimmed.empty()) {
    return Status::InvalidArgument("expected an unsigned integer, got empty string");
  }
  if (trimmed[0] == '-') {
    return Status::InvalidArgument("'" + trimmed + "' must be non-negative");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size() || errno == ERANGE) {
    return Status::InvalidArgument("'" + trimmed +
                                   "' is not a valid unsigned integer");
  }
  return static_cast<uint64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string trimmed(Trim(text));
  if (trimmed.empty()) {
    return Status::InvalidArgument("expected a number, got empty string");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return Status::InvalidArgument("'" + trimmed + "' is not a finite number");
  }
  return value;
}

}  // namespace hetesim
