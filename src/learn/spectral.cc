#include "learn/spectral.h"

#include <cmath>

#include "learn/eigen_jacobi.h"
#include "learn/lanczos.h"

namespace hetesim {

Result<std::vector<int>> SpectralClusterNormalizedCut(const DenseMatrix& affinity,
                                                      int k,
                                                      const SpectralOptions& options) {
  if (affinity.rows() != affinity.cols()) {
    return Status::InvalidArgument("affinity matrix must be square");
  }
  const Index n = affinity.rows();
  if (k < 1 || k > static_cast<int>(n)) {
    return Status::InvalidArgument("k must lie in [1, n]");
  }
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      if (affinity(i, j) < -1e-12) {
        return Status::InvalidArgument("affinity entries must be non-negative");
      }
    }
  }

  // Symmetrize defensively and build D^{-1/2}.
  DenseMatrix w = affinity.Add(affinity.Transpose()).Scale(0.5);
  std::vector<double> inv_sqrt_degree(static_cast<size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    double degree = 0.0;
    for (Index j = 0; j < n; ++j) degree += w(i, j);
    if (degree > 0.0) inv_sqrt_degree[static_cast<size_t>(i)] = 1.0 / std::sqrt(degree);
  }

  // Normalized affinity N = D^{-1/2} W D^{-1/2}. The NCut embedding is its
  // k LARGEST eigenvectors (equivalently the smallest of L = I - N).
  DenseMatrix normalized(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      normalized(i, j) = w(i, j) * inv_sqrt_degree[static_cast<size_t>(i)] *
                         inv_sqrt_degree[static_cast<size_t>(j)];
    }
  }

  const bool use_lanczos =
      options.solver == EigenSolverKind::kLanczos ||
      (options.solver == EigenSolverKind::kAuto &&
       n > options.auto_lanczos_threshold);

  DenseMatrix embedding(n, k);
  if (use_lanczos) {
    SparseMatrix sparse =
        SparseMatrix::FromDense(normalized, options.lanczos_sparsify_threshold);
    LanczosOptions lanczos_options;
    lanczos_options.seed = options.kmeans.seed * 2654435761ULL + 97;
    HETESIM_ASSIGN_OR_RETURN(EigenDecomposition eigen,
                             LanczosLargestEigenpairs(sparse, k, lanczos_options));
    for (Index i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) embedding(i, c) = eigen.vectors(i, c);
    }
  } else {
    HETESIM_ASSIGN_OR_RETURN(EigenDecomposition eigen,
                             JacobiEigenSymmetric(normalized));
    // Jacobi returns ascending; the top-k live in the trailing columns.
    for (Index i = 0; i < n; ++i) {
      for (int c = 0; c < k; ++c) {
        embedding(i, c) = eigen.vectors(i, n - k + c);
      }
    }
  }

  // Row-normalize the embedding (Ng-Jordan-Weiss variant of NCut; rows of
  // zero norm stay zero and cluster together).
  for (Index i = 0; i < n; ++i) {
    double norm = 0.0;
    for (int c = 0; c < k; ++c) norm += embedding(i, c) * embedding(i, c);
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (int c = 0; c < k; ++c) embedding(i, c) /= norm;
    }
  }

  HETESIM_ASSIGN_OR_RETURN(KMeansResult kmeans,
                           KMeans(embedding, k, options.kmeans));
  return std::move(kmeans.assignments);
}

}  // namespace hetesim
