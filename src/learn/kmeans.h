#ifndef HETESIM_LEARN_KMEANS_H_
#define HETESIM_LEARN_KMEANS_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "matrix/dense.h"

namespace hetesim {

/// Options for Lloyd's k-means with k-means++ seeding.
struct KMeansOptions {
  /// Cap on Lloyd iterations; a run also stops as soon as no assignment
  /// changes.
  int max_iterations = 100;
  /// Seed for k-means++ sampling; runs are deterministic given the seed.
  uint64_t seed = 42;
  /// Independent restarts; the run with the lowest inertia wins.
  int restarts = 5;
};

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster label per row of the input, in `[0, k)`.
  std::vector<int> assignments;
  /// Cluster centers, `k x dims`.
  DenseMatrix centers;
  /// Sum of squared distances of points to their centers.
  double inertia = 0.0;
  /// Iterations used by the winning restart.
  int iterations = 0;
};

/// \brief Lloyd's algorithm with k-means++ initialization on the rows of
/// `points` (`n x dims`). Deterministic given `options.seed`.
///
/// `k` must satisfy `1 <= k <= n`. Empty clusters are re-seeded with the
/// point farthest from its center, so exactly `k` clusters survive.
[[nodiscard]] Result<KMeansResult> KMeans(const DenseMatrix& points, int k,
                            const KMeansOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_LEARN_KMEANS_H_
