#include "learn/eigen_jacobi.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hetesim {

namespace {

/// Sum of squares of strictly-off-diagonal entries.
double OffDiagonalNormSquared(const DenseMatrix& a) {
  double acc = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      if (i != j) acc += a(i, j) * a(i, j);
    }
  }
  return acc;
}

}  // namespace

Result<EigenDecomposition> JacobiEigenSymmetric(const DenseMatrix& matrix,
                                                const JacobiOptions& options) {
  if (matrix.rows() != matrix.cols()) {
    return Status::InvalidArgument("eigendecomposition needs a square matrix");
  }
  const Index n = matrix.rows();
  const double scale = std::max(1.0, matrix.FrobeniusNorm());
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      if (std::abs(matrix(i, j) - matrix(j, i)) > 1e-8 * scale) {
        return Status::InvalidArgument("matrix is not symmetric");
      }
    }
  }

  DenseMatrix a = matrix;
  DenseMatrix v = DenseMatrix::Identity(n);
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (std::sqrt(OffDiagonalNormSquared(a)) <= options.tolerance * scale) break;
    for (Index p = 0; p < n; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        // Classic Jacobi rotation zeroing a(p, q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (Index k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (Index k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (Index k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by ascending eigenvalue.
  std::vector<Index> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](Index x, Index y) { return a(x, x) < a(y, y); });
  EigenDecomposition result;
  result.values.resize(static_cast<size_t>(n));
  result.vectors = DenseMatrix(n, n);
  for (Index rank = 0; rank < n; ++rank) {
    const Index src = order[static_cast<size_t>(rank)];
    result.values[static_cast<size_t>(rank)] = a(src, src);
    for (Index k = 0; k < n; ++k) result.vectors(k, rank) = v(k, src);
  }
  return result;
}

}  // namespace hetesim
