#ifndef HETESIM_LEARN_EIGEN_JACOBI_H_
#define HETESIM_LEARN_EIGEN_JACOBI_H_

#include <vector>

#include "common/result.h"
#include "matrix/dense.h"

namespace hetesim {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Eigenvectors as matrix columns, aligned with `values`; each column has
  /// unit norm and the set is orthonormal.
  DenseMatrix vectors;
};

/// Options for the cyclic Jacobi eigensolver.
struct JacobiOptions {
  /// Stop when the off-diagonal Frobenius norm falls below this.
  double tolerance = 1e-12;
  /// Hard cap on full sweeps (each sweep rotates every off-diagonal pair).
  int max_sweeps = 100;
};

/// \brief Eigendecomposition of a real symmetric matrix by the cyclic
/// Jacobi rotation method.
///
/// Jacobi is O(n^3) per sweep but unconditionally stable and exact on
/// symmetric input — the right trade-off for spectral clustering on the
/// few-thousand-node relevance matrices this library produces. Fails with
/// InvalidArgument if `matrix` is not square or not symmetric within
/// `1e-8` relative tolerance.
[[nodiscard]] Result<EigenDecomposition> JacobiEigenSymmetric(const DenseMatrix& matrix,
                                                const JacobiOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_LEARN_EIGEN_JACOBI_H_
