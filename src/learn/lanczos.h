#ifndef HETESIM_LEARN_LANCZOS_H_
#define HETESIM_LEARN_LANCZOS_H_

#include <cstdint>

#include "common/result.h"
#include "learn/eigen_jacobi.h"
#include "matrix/sparse.h"

namespace hetesim {

/// Options for the Lanczos eigensolver.
struct LanczosOptions {
  /// Krylov subspace dimension; 0 picks `min(n, 4k + 40)` automatically.
  int subspace = 0;
  /// Seed of the random start vector (deterministic given the seed).
  uint64_t seed = 12345;
  /// Breakdown threshold on the off-diagonal recurrence coefficient.
  double breakdown_tolerance = 1e-12;
};

/// \brief Top-`k` (largest-eigenvalue) eigenpairs of a symmetric sparse
/// matrix by the Lanczos method with full reorthogonalization.
///
/// One Krylov sweep of `subspace` matrix-vector products (O(subspace *
/// nnz)), a Jacobi solve of the small tridiagonal, and Ritz-vector
/// assembly — the standard recipe for the few extreme eigenpairs of the
/// normalized affinity matrices spectral clustering needs, where the
/// dense Jacobi solver's O(n^3) per sweep stops being viable.
///
/// Returns eigenvalues ascending (like `JacobiEigenSymmetric`), vectors as
/// columns, all with unit norm. Requires a square symmetric matrix and
/// `1 <= k <= rows`. Accuracy of interior pairs degrades as `k` approaches
/// `n`; for `k` close to `n` use the dense solver.
[[nodiscard]] Result<EigenDecomposition> LanczosLargestEigenpairs(const SparseMatrix& matrix,
                                                    int k,
                                                    const LanczosOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_LEARN_LANCZOS_H_
