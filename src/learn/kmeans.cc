#include "learn/kmeans.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace hetesim {

namespace {

double SquaredDistance(const double* a, const double* b, Index dims) {
  double acc = 0.0;
  for (Index d = 0; d < dims; ++d) {
    const double diff = a[d] - b[d];
    acc += diff * diff;
  }
  return acc;
}

/// k-means++ seeding: first center uniform, later centers sampled
/// proportionally to squared distance from the nearest chosen center.
DenseMatrix SeedCenters(const DenseMatrix& points, int k, Rng& rng) {
  const Index n = points.rows();
  const Index dims = points.cols();
  DenseMatrix centers(k, dims);
  std::vector<double> min_distance(static_cast<size_t>(n),
                                   std::numeric_limits<double>::max());
  Index first = static_cast<Index>(rng.Uniform(static_cast<uint64_t>(n)));
  for (Index d = 0; d < dims; ++d) centers(0, d) = points(first, d);
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (Index i = 0; i < n; ++i) {
      const double dist =
          SquaredDistance(points.RowData(i), centers.RowData(c - 1), dims);
      min_distance[static_cast<size_t>(i)] =
          std::min(min_distance[static_cast<size_t>(i)], dist);
      total += min_distance[static_cast<size_t>(i)];
    }
    Index chosen = 0;
    if (total > 0.0) {
      double target = rng.UniformDouble() * total;
      double acc = 0.0;
      for (Index i = 0; i < n; ++i) {
        acc += min_distance[static_cast<size_t>(i)];
        if (target < acc) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<Index>(rng.Uniform(static_cast<uint64_t>(n)));
    }
    for (Index d = 0; d < dims; ++d) centers(c, d) = points(chosen, d);
  }
  return centers;
}

KMeansResult RunOnce(const DenseMatrix& points, int k, int max_iterations,
                     Rng& rng) {
  const Index n = points.rows();
  const Index dims = points.cols();
  DenseMatrix centers = SeedCenters(points, k, rng);
  KMeansResult result;
  result.assignments.assign(static_cast<size_t>(n), -1);
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    bool changed = false;
    // Assignment step.
    for (Index i = 0; i < n; ++i) {
      int best = 0;
      double best_distance = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        const double dist =
            SquaredDistance(points.RowData(i), centers.RowData(c), dims);
        if (dist < best_distance) {
          best_distance = dist;
          best = c;
        }
      }
      if (result.assignments[static_cast<size_t>(i)] != best) {
        result.assignments[static_cast<size_t>(i)] = best;
        changed = true;
      }
    }
    result.iterations = iteration + 1;
    if (!changed) break;
    // Update step.
    centers.Fill(0.0);
    std::vector<Index> counts(static_cast<size_t>(k), 0);
    for (Index i = 0; i < n; ++i) {
      const int c = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      for (Index d = 0; d < dims; ++d) centers(c, d) += points(i, d);
    }
    for (int c = 0; c < k; ++c) {
      const Index count = counts[static_cast<size_t>(c)];
      if (count == 0) {
        // Re-seed an empty cluster with the point farthest from its center.
        Index farthest = 0;
        double farthest_distance = -1.0;
        for (Index i = 0; i < n; ++i) {
          const int ci = result.assignments[static_cast<size_t>(i)];
          const double dist =
              SquaredDistance(points.RowData(i), centers.RowData(ci), dims);
          if (dist > farthest_distance) {
            farthest_distance = dist;
            farthest = i;
          }
        }
        for (Index d = 0; d < dims; ++d) centers(c, d) = points(farthest, d);
        continue;
      }
      for (Index d = 0; d < dims; ++d) {
        centers(c, d) /= static_cast<double>(count);
      }
    }
  }
  // Final inertia.
  result.inertia = 0.0;
  for (Index i = 0; i < n; ++i) {
    const int c = result.assignments[static_cast<size_t>(i)];
    result.inertia += SquaredDistance(points.RowData(i), centers.RowData(c), dims);
  }
  result.centers = std::move(centers);
  return result;
}

}  // namespace

Result<KMeansResult> KMeans(const DenseMatrix& points, int k,
                            const KMeansOptions& options) {
  if (points.rows() == 0) {
    return Status::InvalidArgument("k-means needs at least one point");
  }
  if (k < 1 || k > static_cast<int>(points.rows())) {
    return Status::InvalidArgument("k must lie in [1, number of points]");
  }
  Rng rng(options.seed);
  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();
  for (int restart = 0; restart < std::max(1, options.restarts); ++restart) {
    KMeansResult run = RunOnce(points, k, options.max_iterations, rng);
    if (run.inertia < best.inertia) best = std::move(run);
  }
  return best;
}

}  // namespace hetesim
