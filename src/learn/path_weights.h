#ifndef HETESIM_LEARN_PATH_WEIGHTS_H_
#define HETESIM_LEARN_PATH_WEIGHTS_H_

#include <vector>

#include "common/result.h"
#include "core/hetesim.h"
#include "hin/graph.h"
#include "hin/metapath.h"

namespace hetesim {

/// One supervised example for path-weight learning: how related the pair
/// (source, target) should be, in [0, 1].
struct LabeledPair {
  Index source = 0;
  Index target = 0;
  double relatedness = 0.0;
};

/// Options for `LearnPathWeights`.
struct PathWeightOptions {
  /// Projected-gradient iterations.
  int max_iterations = 500;
  /// Gradient step size.
  double learning_rate = 0.5;
  /// L2 regularization on the weights.
  double l2 = 1e-4;
  /// Early stop when the loss improvement falls below this.
  double tolerance = 1e-10;
  /// Options forwarded to the per-path HeteSim evaluations.
  HeteSimOptions hetesim;
};

/// The learned model: a convex combination of relevance paths.
struct PathWeightModel {
  /// Candidate paths, as given to the learner.
  std::vector<MetaPath> paths;
  /// Non-negative weights summing to 1, aligned with `paths`.
  std::vector<double> weights;
  /// Mean squared training error of the final model.
  double training_loss = 0.0;
  /// Iterations actually used.
  int iterations = 0;
};

/// \brief Learns a weighting over candidate relevance paths from labeled
/// object pairs — the Section 5.1 suggestion "supervised learning can be
/// used to automatically select relevance paths ... and the associated
/// weights" made concrete.
///
/// The model scores a pair as `sum_k w_k * HeteSim(s, t | P_k)` and the
/// learner minimizes mean squared error against `labels.relatedness` by
/// projected gradient descent on the probability simplex (weights stay
/// non-negative and sum to 1, so the combined score stays in [0, 1] when
/// normalized HeteSim is used).
///
/// Requirements: at least one path and one labeled pair; every path must
/// run between the same source and target types; pair ids must be in
/// range. Deterministic (no randomness in the optimization).
[[nodiscard]] Result<PathWeightModel> LearnPathWeights(const HinGraph& graph,
                                         const std::vector<MetaPath>& paths,
                                         const std::vector<LabeledPair>& labels,
                                         const PathWeightOptions& options = {});

/// Per-path goodness of fit against labeled pairs.
struct PathFit {
  /// Index into the candidate list handed to `RankPathsByFit`.
  size_t path_index = 0;
  /// Mean squared error of the single best-scaled predictor
  /// `w * HeteSim(.|path)` with `w` in [0, 1] chosen optimally.
  double mse = 0.0;
};

/// \brief Ranks candidate paths by how well each one alone explains the
/// labels (ascending MSE) — a cheap single-path selection pass, useful to
/// shortlist candidates before `LearnPathWeights` or when one relevance
/// path must be chosen for interpretability (the paper's "users can try
/// multiple relevance paths, then make a choice").
[[nodiscard]] Result<std::vector<PathFit>> RankPathsByFit(const HinGraph& graph,
                                            const std::vector<MetaPath>& paths,
                                            const std::vector<LabeledPair>& labels,
                                            const HeteSimOptions& options = {});

/// Combined relevance of one pair under a learned model.
[[nodiscard]] Result<double> CombinedRelevance(const HinGraph& graph, const PathWeightModel& model,
                                 Index source, Index target,
                                 const HeteSimOptions& options = {});

/// Combined relevance of `source` to every target object under a model.
[[nodiscard]] Result<std::vector<double>> CombinedSingleSource(const HinGraph& graph,
                                                 const PathWeightModel& model,
                                                 Index source,
                                                 const HeteSimOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_LEARN_PATH_WEIGHTS_H_
