#ifndef HETESIM_LEARN_METRICS_H_
#define HETESIM_LEARN_METRICS_H_

#include <vector>

#include "common/result.h"
#include "matrix/dense.h"

namespace hetesim {

/// \brief Normalized Mutual Information between two labelings of the same
/// objects, in [0, 1] (1 = identical partitions up to relabeling). The
/// clustering quality criterion of the paper's Table 6.
///
/// NMI = I(X; Y) / sqrt(H(X) H(Y)); degenerate cases where either labeling
/// has zero entropy return 1 if the partitions are identical as partitions,
/// else 0.
[[nodiscard]] Result<double> NormalizedMutualInformation(const std::vector<int>& labels_a,
                                           const std::vector<int>& labels_b);

/// \brief Area under the ROC curve of `scores` against binary `relevant`
/// flags — the ranking quality criterion of the paper's Table 5.
///
/// Computed via the Mann-Whitney statistic with midrank tie handling.
/// Errors when sizes differ or either class is empty.
[[nodiscard]] Result<double> AreaUnderRoc(const std::vector<double>& scores,
                            const std::vector<bool>& relevant);

/// Ranks of `scores` in descending order: `rank[i]` is the 1-based position
/// of object `i` (ties get the mean of their positions — "midranks").
std::vector<double> DescendingRanks(const std::vector<double>& scores);

/// \brief Mean absolute rank displacement between two score vectors over
/// the top `top_n` objects of `ground_truth` — the paper's Fig. 6 metric
/// ("average rank difference" of a measure's ranking vs. the paper-count
/// ground truth).
///
/// Objects are ranked descending under both vectors; the result averages
/// |rank_measure(i) - rank_truth(i)| over the `top_n` highest-truth objects.
[[nodiscard]] Result<double> AverageRankDifference(const std::vector<double>& ground_truth,
                                     const std::vector<double>& measure,
                                     int top_n);

/// Spearman rank correlation of two score vectors (midrank ties), in
/// [-1, 1]. Errors when sizes differ or are < 2, or a vector is constant.
[[nodiscard]] Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Fraction of the `k` highest-scoring objects that are relevant
/// (descending scores, ties by ascending index — the `TopK` order).
/// Errors when sizes differ, inputs are empty or `k < 1`.
[[nodiscard]] Result<double> PrecisionAtK(const std::vector<double>& scores,
                            const std::vector<bool>& relevant, int k);

/// Normalized Discounted Cumulative Gain at `k` of `scores` against
/// non-negative graded `gains`, in [0, 1] (1 = ideal ordering). Uses the
/// standard log2 discount; returns 0 when every gain is zero.
[[nodiscard]] Result<double> NdcgAtK(const std::vector<double>& scores,
                       const std::vector<double>& gains, int k);

/// Kendall tau-a rank correlation of two score vectors, in [-1, 1]
/// (pairs tied in either vector count as discordant-neutral, i.e. 0).
/// Errors when sizes differ or are < 2.
[[nodiscard]] Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b);

}  // namespace hetesim

#endif  // HETESIM_LEARN_METRICS_H_
