#include "learn/path_weights.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "core/materialize.h"

namespace hetesim {

namespace {

/// Euclidean projection of `v` onto the probability simplex
/// {w : w_i >= 0, sum w_i = 1} (Duchi et al., 2008).
void ProjectOntoSimplex(std::vector<double>& v) {
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double running = 0.0;
  double theta = 0.0;
  int support = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[i];
    const double candidate = (running - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      theta = candidate;
      support = static_cast<int>(i + 1);
    }
  }
  if (support == 0) {
    // All mass projected away (cannot happen for finite input, but keep a
    // safe uniform fallback).
    const double uniform = 1.0 / static_cast<double>(v.size());
    for (double& x : v) x = uniform;
    return;
  }
  for (double& x : v) x = std::max(0.0, x - theta);
}

Status ValidateInputs(const HinGraph& graph, const std::vector<MetaPath>& paths,
                      const std::vector<LabeledPair>& labels) {
  if (paths.empty()) {
    return Status::InvalidArgument("need at least one candidate path");
  }
  if (labels.empty()) {
    return Status::InvalidArgument("need at least one labeled pair");
  }
  const TypeId source_type = paths[0].SourceType();
  const TypeId target_type = paths[0].TargetType();
  for (const MetaPath& path : paths) {
    if (path.SourceType() != source_type || path.TargetType() != target_type) {
      return Status::InvalidArgument(
          "all candidate paths must share source and target types");
    }
  }
  const Index num_sources = graph.NumNodes(source_type);
  const Index num_targets = graph.NumNodes(target_type);
  for (const LabeledPair& pair : labels) {
    if (pair.source < 0 || pair.source >= num_sources || pair.target < 0 ||
        pair.target >= num_targets) {
      return Status::OutOfRange("labeled pair references an unknown object");
    }
    if (pair.relatedness < 0.0 || pair.relatedness > 1.0) {
      return Status::InvalidArgument("pair relatedness must lie in [0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

Result<PathWeightModel> LearnPathWeights(const HinGraph& graph,
                                         const std::vector<MetaPath>& paths,
                                         const std::vector<LabeledPair>& labels,
                                         const PathWeightOptions& options) {
  HETESIM_RETURN_NOT_OK(ValidateInputs(graph, paths, labels));
  if (options.max_iterations < 1 || options.learning_rate <= 0.0 ||
      options.l2 < 0.0) {
    return Status::InvalidArgument("invalid optimization options");
  }

  // Feature matrix: features[i][k] = HeteSim(pair i | path k). A shared
  // cache makes the per-pair evaluations cheap row dots.
  const size_t num_pairs = labels.size();
  const size_t num_paths = paths.size();
  auto cache = std::make_shared<PathMatrixCache>();
  HeteSimEngine engine(graph, options.hetesim, cache);
  std::vector<std::vector<double>> features(num_pairs,
                                            std::vector<double>(num_paths, 0.0));
  for (size_t i = 0; i < num_pairs; ++i) {
    for (size_t k = 0; k < num_paths; ++k) {
      HETESIM_ASSIGN_OR_RETURN(
          features[i][k],
          engine.ComputePair(paths[k], labels[i].source, labels[i].target));
    }
  }

  // Projected gradient descent on mean squared error over the simplex.
  PathWeightModel model;
  model.paths = paths;
  model.weights.assign(num_paths, 1.0 / static_cast<double>(num_paths));
  auto loss_of = [&](const std::vector<double>& w) {
    double loss = 0.0;
    for (size_t i = 0; i < num_pairs; ++i) {
      double prediction = 0.0;
      for (size_t k = 0; k < num_paths; ++k) prediction += w[k] * features[i][k];
      const double residual = prediction - labels[i].relatedness;
      loss += residual * residual;
    }
    loss /= static_cast<double>(num_pairs);
    for (double wk : w) loss += options.l2 * wk * wk;
    return loss;
  };

  double previous_loss = loss_of(model.weights);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    model.iterations = iteration + 1;
    std::vector<double> gradient(num_paths, 0.0);
    for (size_t i = 0; i < num_pairs; ++i) {
      double prediction = 0.0;
      for (size_t k = 0; k < num_paths; ++k) {
        prediction += model.weights[k] * features[i][k];
      }
      const double residual = prediction - labels[i].relatedness;
      for (size_t k = 0; k < num_paths; ++k) {
        gradient[k] += 2.0 * residual * features[i][k];
      }
    }
    for (size_t k = 0; k < num_paths; ++k) {
      gradient[k] /= static_cast<double>(num_pairs);
      gradient[k] += 2.0 * options.l2 * model.weights[k];
      model.weights[k] -= options.learning_rate * gradient[k];
    }
    ProjectOntoSimplex(model.weights);
    const double loss = loss_of(model.weights);
    if (previous_loss - loss < options.tolerance) {
      previous_loss = std::min(previous_loss, loss);
      break;
    }
    previous_loss = loss;
  }
  model.training_loss = previous_loss;
  return model;
}

Result<std::vector<PathFit>> RankPathsByFit(const HinGraph& graph,
                                            const std::vector<MetaPath>& paths,
                                            const std::vector<LabeledPair>& labels,
                                            const HeteSimOptions& options) {
  HETESIM_RETURN_NOT_OK(ValidateInputs(graph, paths, labels));
  auto cache = std::make_shared<PathMatrixCache>();
  HeteSimEngine engine(graph, options, cache);
  std::vector<PathFit> fits;
  fits.reserve(paths.size());
  const double n = static_cast<double>(labels.size());
  for (size_t k = 0; k < paths.size(); ++k) {
    // Optimal scale for the single-feature least squares y ~ w * f, with w
    // clamped to [0, 1] to stay a valid convex-combination weight.
    double ff = 0.0;
    double fy = 0.0;
    std::vector<double> feature(labels.size());
    for (size_t i = 0; i < labels.size(); ++i) {
      HETESIM_ASSIGN_OR_RETURN(
          feature[i],
          engine.ComputePair(paths[k], labels[i].source, labels[i].target));
      ff += feature[i] * feature[i];
      fy += feature[i] * labels[i].relatedness;
    }
    const double w = ff > 0.0 ? std::clamp(fy / ff, 0.0, 1.0) : 0.0;
    double mse = 0.0;
    for (size_t i = 0; i < labels.size(); ++i) {
      const double residual = w * feature[i] - labels[i].relatedness;
      mse += residual * residual;
    }
    fits.push_back({k, mse / n});
  }
  std::sort(fits.begin(), fits.end(), [](const PathFit& a, const PathFit& b) {
    return a.mse != b.mse ? a.mse < b.mse : a.path_index < b.path_index;
  });
  return fits;
}

Result<double> CombinedRelevance(const HinGraph& graph, const PathWeightModel& model,
                                 Index source, Index target,
                                 const HeteSimOptions& options) {
  if (model.paths.size() != model.weights.size() || model.paths.empty()) {
    return Status::InvalidArgument("malformed path-weight model");
  }
  HeteSimEngine engine(graph, options);
  double total = 0.0;
  for (size_t k = 0; k < model.paths.size(); ++k) {
    HETESIM_ASSIGN_OR_RETURN(double score,
                             engine.ComputePair(model.paths[k], source, target));
    total += model.weights[k] * score;
  }
  return total;
}

Result<std::vector<double>> CombinedSingleSource(const HinGraph& graph,
                                                 const PathWeightModel& model,
                                                 Index source,
                                                 const HeteSimOptions& options) {
  if (model.paths.size() != model.weights.size() || model.paths.empty()) {
    return Status::InvalidArgument("malformed path-weight model");
  }
  HeteSimEngine engine(graph, options);
  std::vector<double> combined;
  for (size_t k = 0; k < model.paths.size(); ++k) {
    HETESIM_ASSIGN_OR_RETURN(std::vector<double> scores,
                             engine.ComputeSingleSource(model.paths[k], source));
    if (combined.empty()) combined.assign(scores.size(), 0.0);
    if (scores.size() != combined.size()) {
      return Status::InvalidArgument(
          "candidate paths disagree on the target type");
    }
    for (size_t t = 0; t < scores.size(); ++t) {
      combined[t] += model.weights[k] * scores[t];
    }
  }
  return combined;
}

}  // namespace hetesim
