#ifndef HETESIM_LEARN_SPECTRAL_H_
#define HETESIM_LEARN_SPECTRAL_H_

#include <vector>

#include "common/result.h"
#include "learn/kmeans.h"
#include "matrix/dense.h"

namespace hetesim {

/// Which eigensolver backs the spectral embedding.
enum class EigenSolverKind {
  /// Dense cyclic Jacobi below `kAutoLanczosThreshold` nodes, Lanczos above.
  kAuto,
  /// Dense cyclic Jacobi: exact, O(n^3) per sweep — small affinities.
  kJacobi,
  /// Sparse Lanczos on the normalized affinity: O(subspace * nnz) — large
  /// affinities where Jacobi is prohibitive.
  kLanczos,
};

/// Options for Normalized-Cut spectral clustering.
struct SpectralOptions {
  /// Passed through to the k-means stage on the spectral embedding.
  KMeansOptions kmeans;
  /// Eigensolver selection (see EigenSolverKind).
  EigenSolverKind solver = EigenSolverKind::kAuto;
  /// Node count at which kAuto switches from Jacobi to Lanczos.
  Index auto_lanczos_threshold = 400;
  /// Entries of the normalized affinity below this are dropped when
  /// densifying for Lanczos (keeps the matvec sparse).
  double lanczos_sparsify_threshold = 1e-12;
};

/// \brief Normalized Cut spectral clustering (Shi & Malik, PAMI 2000) —
/// the clustering algorithm the paper applies to HeteSim/PathSim similarity
/// matrices in Table 6.
///
/// Pipeline: symmetrize the affinity `W <- (W + W') / 2` (path-based
/// similarity matrices are symmetric up to floating-point error; PCRW-style
/// inputs are symmetrized explicitly), form the normalized Laplacian
/// `L = I - D^{-1/2} W D^{-1/2}`, embed each object into the `k` smallest
/// eigenvectors, row-normalize the embedding and run k-means.
///
/// `affinity` must be square with non-negative entries; `k` in
/// `[1, n]`. Isolated rows (zero degree) are assigned to cluster 0.
[[nodiscard]] Result<std::vector<int>> SpectralClusterNormalizedCut(
    const DenseMatrix& affinity, int k, const SpectralOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_LEARN_SPECTRAL_H_
