#include "learn/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace hetesim {

namespace {

/// Shannon entropy of a label histogram over `total` items.
double Entropy(const std::map<int, Index>& counts, double total) {
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / total;
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

Result<double> NormalizedMutualInformation(const std::vector<int>& labels_a,
                                           const std::vector<int>& labels_b) {
  if (labels_a.size() != labels_b.size()) {
    return Status::InvalidArgument("labelings must cover the same objects");
  }
  if (labels_a.empty()) {
    return Status::InvalidArgument("labelings must be non-empty");
  }
  const double n = static_cast<double>(labels_a.size());
  std::map<int, Index> counts_a;
  std::map<int, Index> counts_b;
  std::map<std::pair<int, int>, Index> joint;
  for (size_t i = 0; i < labels_a.size(); ++i) {
    ++counts_a[labels_a[i]];
    ++counts_b[labels_b[i]];
    ++joint[{labels_a[i], labels_b[i]}];
  }
  const double ha = Entropy(counts_a, n);
  const double hb = Entropy(counts_b, n);
  if (ha == 0.0 || hb == 0.0) {
    // One side is a single cluster: NMI is conventionally 1 when both are
    // the same single cluster, else 0.
    return (ha == 0.0 && hb == 0.0) ? 1.0 : 0.0;
  }
  double mutual = 0.0;
  for (const auto& [pair, count] : joint) {
    const double pxy = static_cast<double>(count) / n;
    const double px = static_cast<double>(counts_a[pair.first]) / n;
    const double py = static_cast<double>(counts_b[pair.second]) / n;
    mutual += pxy * std::log(pxy / (px * py));
  }
  return mutual / std::sqrt(ha * hb);
}

Result<double> AreaUnderRoc(const std::vector<double>& scores,
                            const std::vector<bool>& relevant) {
  if (scores.size() != relevant.size()) {
    return Status::InvalidArgument("scores and labels must align");
  }
  Index positives = 0;
  for (bool r : relevant) positives += r ? 1 : 0;
  const Index negatives = static_cast<Index>(relevant.size()) - positives;
  if (positives == 0 || negatives == 0) {
    return Status::InvalidArgument("AUC needs at least one positive and one negative");
  }
  // Mann-Whitney: AUC = (sum of positive midranks - P(P+1)/2) / (P*N),
  // ranking ascending by score.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t x, size_t y) { return scores[x] < scores[y]; });
  double positive_rank_sum = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    // Items i..j-1 tie; each gets the midrank (1-based).
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (relevant[order[k]]) positive_rank_sum += midrank;
    }
    i = j;
  }
  const double p = static_cast<double>(positives);
  const double n = static_cast<double>(negatives);
  return (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * n);
}

std::vector<double> DescendingRanks(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t x, size_t y) { return scores[x] > scores[y]; });
  std::vector<double> ranks(scores.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j < order.size() && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) ranks[order[k]] = midrank;
    i = j;
  }
  return ranks;
}

Result<double> AverageRankDifference(const std::vector<double>& ground_truth,
                                     const std::vector<double>& measure,
                                     int top_n) {
  if (ground_truth.size() != measure.size()) {
    return Status::InvalidArgument("score vectors must align");
  }
  if (ground_truth.empty()) {
    return Status::InvalidArgument("score vectors must be non-empty");
  }
  if (top_n < 1) {
    return Status::InvalidArgument("top_n must be positive");
  }
  const std::vector<double> truth_ranks = DescendingRanks(ground_truth);
  const std::vector<double> measure_ranks = DescendingRanks(measure);
  // The top_n objects by ground truth, i.e. truth rank <= top_n.
  double total = 0.0;
  Index counted = 0;
  for (size_t i = 0; i < truth_ranks.size(); ++i) {
    if (truth_ranks[i] <= static_cast<double>(top_n)) {
      total += std::abs(measure_ranks[i] - truth_ranks[i]);
      ++counted;
    }
  }
  if (counted == 0) {
    return Status::Internal("no objects within top_n ground-truth ranks");
  }
  return total / static_cast<double>(counted);
}

namespace {

/// Indices of `scores` ordered descending, ties by ascending index (the
/// deterministic order used by TopK and the ranking benches).
std::vector<size_t> DescendingOrder(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](size_t x, size_t y) {
    return scores[x] != scores[y] ? scores[x] > scores[y] : x < y;
  });
  return order;
}

}  // namespace

Result<double> PrecisionAtK(const std::vector<double>& scores,
                            const std::vector<bool>& relevant, int k) {
  if (scores.size() != relevant.size()) {
    return Status::InvalidArgument("scores and labels must align");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("scores must be non-empty");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be positive");
  }
  const std::vector<size_t> order = DescendingOrder(scores);
  const size_t keep = std::min(static_cast<size_t>(k), order.size());
  size_t hits = 0;
  for (size_t i = 0; i < keep; ++i) {
    if (relevant[order[i]]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(keep);
}

Result<double> NdcgAtK(const std::vector<double>& scores,
                       const std::vector<double>& gains, int k) {
  if (scores.size() != gains.size()) {
    return Status::InvalidArgument("scores and gains must align");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("scores must be non-empty");
  }
  if (k < 1) {
    return Status::InvalidArgument("k must be positive");
  }
  for (double g : gains) {
    if (g < 0.0) return Status::InvalidArgument("gains must be non-negative");
  }
  auto dcg = [&](const std::vector<size_t>& order) {
    double total = 0.0;
    const size_t keep = std::min(static_cast<size_t>(k), order.size());
    for (size_t i = 0; i < keep; ++i) {
      total += gains[order[i]] / std::log2(static_cast<double>(i) + 2.0);
    }
    return total;
  };
  const double achieved = dcg(DescendingOrder(scores));
  const double ideal = dcg(DescendingOrder(gains));
  if (ideal == 0.0) return 0.0;
  return achieved / ideal;
}

Result<double> KendallTau(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("score vectors must align");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least two observations");
  }
  // O(n^2) pair scan; tau-a with ties contributing 0. The inputs here are
  // per-conference author lists (hundreds to thousands), far below the
  // sizes where an O(n log n) merge-count would matter.
  const size_t n = a.size();
  int64_t concordant = 0;
  int64_t discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double product = da * db;
      if (product > 0.0) ++concordant;
      if (product < 0.0) ++discordant;
    }
  }
  const double total_pairs = static_cast<double>(n) * (n - 1) / 2.0;
  return (concordant - discordant) / total_pairs;
}

Result<double> SpearmanCorrelation(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("score vectors must align");
  }
  if (a.size() < 2) {
    return Status::InvalidArgument("need at least two observations");
  }
  const std::vector<double> ra = DescendingRanks(a);
  const std::vector<double> rb = DescendingRanks(b);
  const double n = static_cast<double>(a.size());
  double mean = (n + 1.0) / 2.0;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = ra[i] - mean;
    const double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) {
    return Status::InvalidArgument("constant score vector has undefined correlation");
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace hetesim
