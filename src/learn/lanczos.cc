#include "learn/lanczos.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "matrix/ops.h"

namespace hetesim {

namespace {

/// Removes the components of `w` along every vector in `basis` (classic
/// Gram-Schmidt, applied twice by the caller for numerical robustness).
void OrthogonalizeAgainst(const std::vector<std::vector<double>>& basis,
                          std::vector<double>& w) {
  for (const std::vector<double>& v : basis) {
    const double projection = Dot(w, v);
    for (size_t i = 0; i < w.size(); ++i) w[i] -= projection * v[i];
  }
}

std::vector<double> RandomUnit(size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal();
  NormalizeL2(v);
  return v;
}

}  // namespace

Result<EigenDecomposition> LanczosLargestEigenpairs(const SparseMatrix& matrix,
                                                    int k,
                                                    const LanczosOptions& options) {
  const Index n = matrix.rows();
  if (matrix.cols() != n) {
    return Status::InvalidArgument("Lanczos needs a square matrix");
  }
  if (!matrix.ApproxEquals(matrix.Transpose(), 1e-9)) {
    return Status::InvalidArgument("Lanczos needs a symmetric matrix");
  }
  if (k < 1 || k > static_cast<int>(n)) {
    return Status::InvalidArgument("k must lie in [1, n]");
  }
  const int subspace =
      options.subspace > 0
          ? std::min<int>(options.subspace, static_cast<int>(n))
          : std::min<int>(static_cast<int>(n), 4 * k + 40);
  if (subspace < k) {
    return Status::InvalidArgument("subspace dimension must be at least k");
  }

  Rng rng(options.seed);
  std::vector<std::vector<double>> basis;  // v_1 .. v_m, orthonormal
  basis.push_back(RandomUnit(static_cast<size_t>(n), rng));
  std::vector<double> alpha;  // diagonal of the tridiagonal T
  std::vector<double> beta;   // off-diagonal of T

  for (int j = 0; j < subspace; ++j) {
    std::vector<double> w = matrix.MultiplyVector(basis[static_cast<size_t>(j)]);
    alpha.push_back(Dot(w, basis[static_cast<size_t>(j)]));
    // Full reorthogonalization, twice ("twice is enough" — Parlett).
    OrthogonalizeAgainst(basis, w);
    OrthogonalizeAgainst(basis, w);
    const double norm = Norm2(w);
    if (j + 1 == subspace) break;
    if (norm < options.breakdown_tolerance) {
      // Invariant subspace found: restart with a fresh orthogonal vector
      // (exact-breakdown handling; beta entry is 0).
      std::vector<double> fresh = RandomUnit(static_cast<size_t>(n), rng);
      OrthogonalizeAgainst(basis, fresh);
      OrthogonalizeAgainst(basis, fresh);
      const double fresh_norm = Norm2(fresh);
      if (fresh_norm < options.breakdown_tolerance) break;  // space exhausted
      for (double& x : fresh) x /= fresh_norm;
      beta.push_back(0.0);
      basis.push_back(std::move(fresh));
      continue;
    }
    for (double& x : w) x /= norm;
    beta.push_back(norm);
    basis.push_back(std::move(w));
  }

  // Small dense solve of the tridiagonal T.
  const int m = static_cast<int>(alpha.size());
  if (m < k) {
    return Status::Internal("Krylov space collapsed below k dimensions");
  }
  DenseMatrix tridiagonal(m, m);
  for (int i = 0; i < m; ++i) {
    tridiagonal(i, i) = alpha[static_cast<size_t>(i)];
    if (i + 1 < m && static_cast<size_t>(i) < beta.size()) {
      tridiagonal(i, i + 1) = beta[static_cast<size_t>(i)];
      tridiagonal(i + 1, i) = beta[static_cast<size_t>(i)];
    }
  }
  HETESIM_ASSIGN_OR_RETURN(EigenDecomposition small,
                           JacobiEigenSymmetric(tridiagonal));

  // Ritz pairs: the k largest eigenvalues of T with vectors V * s. Jacobi
  // returns ascending, so take the trailing k columns but emit ascending.
  EigenDecomposition result;
  result.values.resize(static_cast<size_t>(k));
  result.vectors = DenseMatrix(n, k);
  for (int out = 0; out < k; ++out) {
    const int ritz = m - k + out;  // ascending within the top-k block
    result.values[static_cast<size_t>(out)] = small.values[static_cast<size_t>(ritz)];
    std::vector<double> ritz_vector(static_cast<size_t>(n), 0.0);
    for (int j = 0; j < m; ++j) {
      const double coefficient = small.vectors(j, ritz);
      const std::vector<double>& vj = basis[static_cast<size_t>(j)];
      for (Index i = 0; i < n; ++i) {
        ritz_vector[static_cast<size_t>(i)] += coefficient * vj[static_cast<size_t>(i)];
      }
    }
    NormalizeL2(ritz_vector);
    for (Index i = 0; i < n; ++i) {
      result.vectors(i, out) = ritz_vector[static_cast<size_t>(i)];
    }
  }
  return result;
}

}  // namespace hetesim
