#ifndef HETESIM_MATRIX_COST_MODEL_H_
#define HETESIM_MATRIX_COST_MODEL_H_

#include <vector>

#include "matrix/sparse.h"

namespace hetesim {

/// \brief Shared deterministic cost model for sparse products.
///
/// This is the single source of truth for "how expensive is this multiply":
/// the materialization advisor prices candidate halves with the *exact*
/// counters, and the chain-association planner (`matrix/chain_plan.h`)
/// prices candidate parenthesizations with the *estimated* ones (an
/// intermediate product that was never materialized has no exact nnz to
/// count). Everything here is a pure function of matrix shapes and fills —
/// no wall-clock timing — so plans and advisor choices are deterministic
/// across runs and machines.

/// Shape and fill of a sparse matrix that may or may not be materialized.
/// For materialized matrices (`exact == true`) `nnz` is the stored-entry
/// count; for predicted intermediates it is an expectation under the
/// independent-fill model of `EstimateProduct`.
struct MatrixEstimate {
  Index rows = 0;
  Index cols = 0;
  double nnz = 0.0;
  bool exact = false;

  /// Fraction of cells expected to be stored; 0 for empty shapes.
  double Density() const {
    if (rows <= 0 || cols <= 0) return 0.0;
    return nnz / (static_cast<double>(rows) * static_cast<double>(cols));
  }
};

/// Exact estimate of a materialized matrix (its true shape and nnz).
MatrixEstimate EstimateOf(const SparseMatrix& m);

/// Expected shape/fill of `a * b` under the standard independent-fill
/// model: a cell (i, j) of the product is non-zero unless all `k` inner
/// terms vanish, so the expected density is `1 - (1 - da*db)^k` with
/// `k = a.cols`. Exact inputs give a good estimate for unstructured
/// matrices and a (useful) upper bound for row-stochastic transition
/// chains, whose products densify exactly the way this model predicts.
MatrixEstimate EstimateProduct(const MatrixEstimate& a, const MatrixEstimate& b);

/// Expected Gustavson multiply-add count of `a * b`: every stored entry
/// (i, k) of `a` touches every stored entry of row k of `b`, so the
/// expectation is `nnz(a) * nnz(b) / k` (average `b` row fill per `a`
/// entry). Exact when both inputs are exact and `b`'s rows are uniform.
double EstimateProductFlops(const MatrixEstimate& a, const MatrixEstimate& b);

/// Exact multiply-add count of one Gustavson product `a * b`: for every
/// stored entry (i, k) of `a`, one multiply-add per stored entry of `b`'s
/// row k. This is the advisor's deterministic recomputation cost.
double ProductFlops(const SparseMatrix& a, const SparseMatrix& b);

/// Exact multiply-add count of the sparse chain product
/// `chain[0] * chain[1] * ...` evaluated left-to-right. Materializes the
/// intermediate products to count exactly (cost O(product) itself — meant
/// for offline advisor runs, not the query hot path; the planner uses
/// `EstimateProductFlops` there).
double ChainProductFlops(const std::vector<SparseMatrix>& chain);

}  // namespace hetesim

#endif  // HETESIM_MATRIX_COST_MODEL_H_
