#ifndef HETESIM_MATRIX_SPARSE_H_
#define HETESIM_MATRIX_SPARSE_H_

#include <span>
#include <vector>

#include "common/context.h"
#include "matrix/dense.h"

namespace hetesim {

/// One entry of a coordinate-format (COO) triplet list.
struct Triplet {
  Index row = 0;
  Index col = 0;
  double value = 0.0;
};

/// \brief Compressed-sparse-row (CSR) matrix of doubles.
///
/// This is the workhorse of the library: every typed adjacency matrix
/// `W_AB`, transition matrix `U_AB` / `V_AB` (Definition 8) and reachable
/// probability matrix `PM_P` (Definition 9) is a `SparseMatrix`. Rows are
/// stored contiguously with column indices sorted ascending within each row;
/// explicit zeros are dropped at construction, duplicates are summed.
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() : rows_(0), cols_(0), row_ptr_(1, 0) {}
  /// `rows` x `cols` matrix with no non-zeros.
  SparseMatrix(Index rows, Index cols);

  SparseMatrix(const SparseMatrix&) = default;
  SparseMatrix& operator=(const SparseMatrix&) = default;
  SparseMatrix(SparseMatrix&&) noexcept = default;
  SparseMatrix& operator=(SparseMatrix&&) noexcept = default;

  /// Builds from a COO triplet list; duplicate coordinates are summed and
  /// entries that sum to exactly zero are dropped.
  static SparseMatrix FromTriplets(Index rows, Index cols,
                                   std::vector<Triplet> triplets);
  /// Adopts ready-made CSR arrays: `row_ptr` has `rows + 1` monotonically
  /// non-decreasing offsets, column indices are in range and sorted
  /// ascending within each row, no duplicates. The offset invariants are
  /// always checked; per-entry column order/range is verified in debug
  /// builds only — callers must hand in well-formed arrays. The fast path
  /// for kernels that already produce CSR order (adaptive SpGEMM chunk
  /// stitching, dense->sparse conversion).
  static SparseMatrix FromCsr(Index rows, Index cols, std::vector<Index> row_ptr,
                              std::vector<Index> col_idx,
                              std::vector<double> values);
  /// Builds from a dense matrix, dropping entries with |v| <= `threshold`.
  static SparseMatrix FromDense(const DenseMatrix& dense, double threshold = 0.0);
  /// The `n` x `n` identity.
  static SparseMatrix Identity(Index n);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  /// Number of stored entries.
  Index NumNonZeros() const { return static_cast<Index>(values_.size()); }

  /// Value at (r, c); O(log nnz(row)) via binary search, 0.0 if absent.
  double At(Index r, Index c) const;

  /// Column indices of row `r`, sorted ascending.
  std::span<const Index> RowIndices(Index r) const;
  /// Values of row `r`, aligned with `RowIndices(r)`.
  std::span<const double> RowValues(Index r) const;
  /// Number of stored entries in row `r`.
  Index RowNnz(Index r) const { return row_ptr_[static_cast<size_t>(r) + 1] - row_ptr_[static_cast<size_t>(r)]; }
  /// Sum of the values in row `r`.
  double RowSum(Index r) const;

  /// Transposed copy (CSR of the transpose, i.e. CSC view materialized).
  SparseMatrix Transpose() const;

  /// Sparse-sparse product `this * other` (classic Gustavson SpGEMM).
  SparseMatrix Multiply(const SparseMatrix& other) const;
  /// `Multiply` with the rows of the output computed in parallel on the
  /// global thread pool (each chunk runs an independent Gustavson pass
  /// with its own accumulator; chunks are stitched afterwards). Bitwise
  /// identical to `Multiply` at any thread count; `num_threads == 1` falls
  /// back to it, `num_threads == 0` uses all hardware threads.
  SparseMatrix MultiplyParallel(const SparseMatrix& other, int num_threads) const;
  /// Deadline/cancellation/budget-aware `MultiplyParallel`: the context is
  /// checked once per row chunk (sequentially: once per row stripe), so a
  /// cancelled product stops within one chunk's worth of work and the
  /// region drains cleanly — abandoned chunks become no-ops rather than
  /// leaked pool tasks. Chunk outputs are charged against the context's
  /// memory budget (transient working-set accounting, released on return).
  /// Fails with `Cancelled`, `DeadlineExceeded`, or `ResourceExhausted`;
  /// with `QueryContext::Background()` it is exactly `MultiplyParallel`.
  [[nodiscard]] Result<SparseMatrix> MultiplyParallel(const SparseMatrix& other, int num_threads,
                                        const QueryContext& ctx) const;
  /// Sparse-dense product `this * other`.
  DenseMatrix MultiplyDense(const DenseMatrix& other) const;
  /// Matrix-vector product `this * x`.
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;
  /// Vector-matrix product `x^T * this`, returned as a vector of size cols().
  std::vector<double> LeftMultiplyVector(const std::vector<double>& x) const;

  /// Returns a copy with each row scaled to sum 1 (L1); zero rows unchanged.
  /// This is exactly the transition matrix `U` of Definition 8 when applied
  /// to an adjacency matrix.
  SparseMatrix RowNormalized() const;
  /// Returns a copy with each column scaled to sum 1; zero columns
  /// unchanged. `W.ColNormalized()` is `V` of Definition 8; note
  /// Property 2: `U_AB = V_BA'` and `V_AB = U_BA'`.
  SparseMatrix ColNormalized() const;
  /// Returns a copy with every value multiplied by `factor`.
  SparseMatrix Scaled(double factor) const;
  /// Element-wise sum; shapes must match.
  SparseMatrix Add(const SparseMatrix& other) const;

  /// Dot product of row `r` of this with row `s` of `other`
  /// (`cols()` must equal `other.cols()`), via sorted-merge.
  double RowDot(Index r, const SparseMatrix& other, Index s) const;
  /// L2 norm of row `r`.
  double RowNorm(Index r) const;
  /// Cosine similarity of row `r` of this and row `s` of `other`;
  /// 0 when either row is all-zero. This is exactly the normalized HeteSim
  /// combination step (Definition 10).
  double RowCosine(Index r, const SparseMatrix& other, Index s) const;

  /// Row `r` expanded to a dense vector of size cols().
  std::vector<double> RowDense(Index r) const;

  /// Densified copy.
  DenseMatrix ToDense() const;

  /// Fraction of entries stored: nnz / (rows*cols); 0 for empty shapes.
  double Density() const;

  /// Approximate heap footprint in bytes (CSR arrays + object header) —
  /// the quantity `PathMatrixCache` charges against its memory budget.
  size_t ApproxBytes() const {
    return sizeof(SparseMatrix) + row_ptr_.capacity() * sizeof(Index) +
           col_idx_.capacity() * sizeof(Index) + values_.capacity() * sizeof(double);
  }

  /// True iff shapes match and all entries differ by at most `tolerance`.
  bool ApproxEquals(const SparseMatrix& other, double tolerance = 1e-9) const;

  /// CSR internals, exposed read-only for tests and serialization.
  const std::vector<Index>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  Index rows_;
  Index cols_;
  std::vector<Index> row_ptr_;   // size rows_+1
  std::vector<Index> col_idx_;   // size nnz, sorted within each row
  std::vector<double> values_;   // size nnz
};

}  // namespace hetesim

#endif  // HETESIM_MATRIX_SPARSE_H_
