#include "matrix/cost_model.h"

#include <cmath>

namespace hetesim {

MatrixEstimate EstimateOf(const SparseMatrix& m) {
  MatrixEstimate est;
  est.rows = m.rows();
  est.cols = m.cols();
  est.nnz = static_cast<double>(m.NumNonZeros());
  est.exact = true;
  return est;
}

MatrixEstimate EstimateProduct(const MatrixEstimate& a, const MatrixEstimate& b) {
  MatrixEstimate est;
  est.rows = a.rows;
  est.cols = b.cols;
  est.exact = false;
  const double k = static_cast<double>(a.cols);
  if (a.rows <= 0 || b.cols <= 0 || k <= 0.0) return est;
  const double hit = a.Density() * b.Density();
  // 1 - (1 - hit)^k, computed via expm1/log1p so tiny densities do not
  // cancel to zero. hit == 1 short-circuits (log1p(-1) is -inf).
  const double density =
      hit >= 1.0 ? 1.0 : -std::expm1(k * std::log1p(-hit));
  est.nnz = density * static_cast<double>(a.rows) * static_cast<double>(b.cols);
  return est;
}

double EstimateProductFlops(const MatrixEstimate& a, const MatrixEstimate& b) {
  if (a.cols <= 0) return 0.0;
  return a.nnz * (b.nnz / static_cast<double>(a.cols));
}

double ProductFlops(const SparseMatrix& a, const SparseMatrix& b) {
  std::vector<double> row_nnz(static_cast<size_t>(b.rows()));
  for (Index r = 0; r < b.rows(); ++r) {
    row_nnz[static_cast<size_t>(r)] = static_cast<double>(b.RowNnz(r));
  }
  double flops = 0.0;
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index k : a.RowIndices(i)) {
      flops += row_nnz[static_cast<size_t>(k)];
    }
  }
  return flops;
}

double ChainProductFlops(const std::vector<SparseMatrix>& chain) {
  if (chain.empty()) return 0.0;
  double flops = 0.0;
  SparseMatrix product = chain[0];
  for (size_t i = 1; i < chain.size(); ++i) {
    flops += ProductFlops(product, chain[i]);
    product = product.Multiply(chain[i]);
  }
  return flops;
}

}  // namespace hetesim
