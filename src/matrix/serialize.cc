#include "matrix/serialize.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/fault_injection.h"
#include "common/string_util.h"

namespace hetesim {

namespace {

constexpr char kSparseMagic[4] = {'H', 'S', 'M', '1'};
constexpr char kDenseMagic[4] = {'H', 'D', 'M', '1'};
// Refuse headers describing absurd shapes (corrupt or truncated files);
// 2^31 also keeps dimension products inside int64.
constexpr int64_t kMaxReasonableDimension = int64_t{1} << 31;

void WriteInt64(std::ostream& stream, int64_t value) {
  stream.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ReadInt64(std::istream& stream, int64_t* value) {
  stream.read(reinterpret_cast<char*>(value), sizeof(*value));
  return stream.good();
}

template <typename T>
void WriteArray(std::ostream& stream, const std::vector<T>& values) {
  stream.write(reinterpret_cast<const char*>(values.data()),
               static_cast<std::streamsize>(values.size() * sizeof(T)));
}

// Reads `count` elements in bounded chunks so that a corrupt header
// claiming an absurd size fails at the first missing chunk instead of
// attempting one giant allocation up front.
template <typename T>
bool ReadArray(std::istream& stream, size_t count, std::vector<T>* values) {
  constexpr size_t kChunkElements = size_t{1} << 20;
  values->clear();
  size_t remaining = count;
  while (remaining > 0) {
    const size_t chunk = std::min(remaining, kChunkElements);
    const size_t old_size = values->size();
    values->resize(old_size + chunk);
    stream.read(reinterpret_cast<char*>(values->data() + old_size),
                static_cast<std::streamsize>(chunk * sizeof(T)));
    if (!stream.good()) return false;
    remaining -= chunk;
  }
  return !stream.bad();
}

/// Bytes between the current read position and end-of-stream, or -1 when
/// the stream is not seekable (pipes). Used to reject headers whose claimed
/// payload exceeds what the file can possibly hold *before* any allocation.
int64_t RemainingBytes(std::istream& stream) {
  const std::istream::pos_type pos = stream.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  stream.seekg(0, std::ios::end);
  const std::istream::pos_type end = stream.tellg();
  stream.seekg(pos);
  if (end == std::istream::pos_type(-1) || !stream.good()) return -1;
  return static_cast<int64_t>(end - pos);
}

}  // namespace

Status WriteSparseMatrix(const SparseMatrix& matrix, std::ostream& stream) {
  stream.write(kSparseMagic, sizeof(kSparseMagic));
  WriteInt64(stream, matrix.rows());
  WriteInt64(stream, matrix.cols());
  WriteInt64(stream, matrix.NumNonZeros());
  WriteArray(stream, matrix.row_ptr());
  WriteArray(stream, matrix.col_idx());
  WriteArray(stream, matrix.values());
  if (!stream.good()) return Status::IOError("sparse matrix write failed");
  return Status::OK();
}

Result<SparseMatrix> ReadSparseMatrix(std::istream& stream) {
  char magic[4];
  stream.read(magic, sizeof(magic));
  if (!stream.good() || std::memcmp(magic, kSparseMagic, 4) != 0) {
    return Status::InvalidArgument("not an HSM1 sparse matrix stream");
  }
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;
  if (!ReadInt64(stream, &rows) || !ReadInt64(stream, &cols) ||
      !ReadInt64(stream, &nnz)) {
    return Status::IOError("truncated sparse matrix header");
  }
  if (rows < 0 || cols < 0 || nnz < 0 || rows > kMaxReasonableDimension ||
      cols > kMaxReasonableDimension || nnz > kMaxReasonableDimension ||
      nnz > rows * cols) {
    return Status::InvalidArgument("corrupt sparse matrix header");
  }
  // Cross-check the claimed payload against what the stream actually holds
  // (when seekable) so a corrupt nnz cannot trigger a huge allocation that
  // only fails at the first missing chunk.
  const int64_t payload_bytes =
      (rows + 1) * static_cast<int64_t>(sizeof(Index)) +
      nnz * static_cast<int64_t>(sizeof(Index) + sizeof(double));
  const int64_t remaining = RemainingBytes(stream);
  if (remaining >= 0 && remaining < payload_bytes) {
    return Status::InvalidArgument(StrFormat(
        "sparse matrix header claims %lld payload bytes but only %lld remain",
        static_cast<long long>(payload_bytes), static_cast<long long>(remaining)));
  }
  if (HETESIM_FAULT_POINT("serialize.alloc")) {
    return Status::ResourceExhausted("injected: serialize.alloc");
  }
  std::vector<Index> row_ptr;
  std::vector<Index> col_idx;
  std::vector<double> values;
  if (!ReadArray(stream, static_cast<size_t>(rows) + 1, &row_ptr) ||
      !ReadArray(stream, static_cast<size_t>(nnz), &col_idx) ||
      !ReadArray(stream, static_cast<size_t>(nnz), &values)) {
    return Status::IOError("truncated sparse matrix payload");
  }
  // Validate CSR structure before handing it to FromTriplets.
  if (row_ptr.front() != 0 || row_ptr.back() != nnz) {
    return Status::InvalidArgument("corrupt CSR row pointers");
  }
  for (size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      return Status::InvalidArgument("corrupt CSR row pointers");
    }
  }
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(nnz));
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t k = row_ptr[static_cast<size_t>(r)];
         k < row_ptr[static_cast<size_t>(r) + 1]; ++k) {
      const Index c = col_idx[static_cast<size_t>(k)];
      if (c < 0 || c >= cols) {
        return Status::InvalidArgument("corrupt CSR column index");
      }
      // Every legitimate writer serializes finite values only; a NaN/Inf
      // payload is bit rot or an attack, and letting it in would poison
      // every product computed from the matrix.
      if (!std::isfinite(values[static_cast<size_t>(k)])) {
        return Status::InvalidArgument("non-finite sparse matrix value");
      }
      triplets.push_back({r, c, values[static_cast<size_t>(k)]});
    }
  }
  return SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
}

Status WriteDenseMatrix(const DenseMatrix& matrix, std::ostream& stream) {
  stream.write(kDenseMagic, sizeof(kDenseMagic));
  WriteInt64(stream, matrix.rows());
  WriteInt64(stream, matrix.cols());
  WriteArray(stream, matrix.data());
  if (!stream.good()) return Status::IOError("dense matrix write failed");
  return Status::OK();
}

Result<DenseMatrix> ReadDenseMatrix(std::istream& stream) {
  char magic[4];
  stream.read(magic, sizeof(magic));
  if (!stream.good() || std::memcmp(magic, kDenseMagic, 4) != 0) {
    return Status::InvalidArgument("not an HDM1 dense matrix stream");
  }
  int64_t rows = 0;
  int64_t cols = 0;
  if (!ReadInt64(stream, &rows) || !ReadInt64(stream, &cols)) {
    return Status::IOError("truncated dense matrix header");
  }
  if (rows < 0 || cols < 0 || rows > kMaxReasonableDimension ||
      cols > kMaxReasonableDimension) {
    return Status::InvalidArgument("corrupt dense matrix header");
  }
  // Compare cells against remaining/8 — `rows * cols * 8` could overflow
  // int64 for adversarial headers that pass the dimension checks.
  const int64_t cells = rows * cols;
  const int64_t remaining = RemainingBytes(stream);
  if (remaining >= 0 &&
      cells > remaining / static_cast<int64_t>(sizeof(double))) {
    return Status::InvalidArgument(StrFormat(
        "dense matrix header claims %lld cells but only %lld bytes remain",
        static_cast<long long>(cells), static_cast<long long>(remaining)));
  }
  if (HETESIM_FAULT_POINT("serialize.alloc")) {
    return Status::ResourceExhausted("injected: serialize.alloc");
  }
  std::vector<double> data;
  if (!ReadArray(stream, static_cast<size_t>(rows * cols), &data)) {
    return Status::IOError("truncated dense matrix payload");
  }
  for (const double v : data) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite dense matrix value");
    }
  }
  return DenseMatrix(rows, cols, std::move(data));
}

Status WriteSparseMatrixToFile(const SparseMatrix& matrix, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return WriteSparseMatrix(matrix, file);
}

Result<SparseMatrix> ReadSparseMatrixFromFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return ReadSparseMatrix(file);
}

}  // namespace hetesim
