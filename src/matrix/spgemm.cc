#include "matrix/spgemm.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/parallel.h"

namespace hetesim {

namespace {

/// Kernel-mix instruments (DESIGN.md §12): rows processed per accumulator
/// choice, plus rows written by the dense-output kernels. Recording is
/// chunk-granular — `Run` tallies locally and flushes once — so the hot row
/// loop carries no atomics.
struct SpGemmMetrics {
  Counter& rows_sorted_merge;
  Counter& rows_hash;
  Counter& rows_dense_scratch;
  Counter& dense_out_rows;
};

SpGemmMetrics& GlobalSpGemmMetrics() {
  static SpGemmMetrics metrics{
      MetricsRegistry::Global().GetCounter(
          "hetesim_spgemm_rows_sorted_merge_total"),
      MetricsRegistry::Global().GetCounter("hetesim_spgemm_rows_hash_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_spgemm_rows_dense_scratch_total"),
      MetricsRegistry::Global().GetCounter(
          "hetesim_spgemm_dense_out_rows_total"),
  };
  return metrics;
}

/// Rows per context check when a budget/deadline-aware product runs
/// sequentially (same stripe width as `SparseMatrix::MultiplyParallel`).
constexpr Index kSequentialStripeRows = 64;

/// Rows whose Gustavson fill bound is at most this use the sorted-merge
/// accumulator: the merge is O(fill * log-ish) with no O(cols) scratch.
constexpr Index kSortedMergeMaxFill = 32;

/// The hash accumulator wins while the fill bound is below `cols / 16`;
/// past that the dense scratch's linear sweep amortizes better than
/// probing (measured crossover on the DBLP funnel products in
/// bench_chain_order: at fill ~cols/9 the scratch already beats the hash).
constexpr Index kHashWidthDivisor = 16;

/// Recoverable precondition for the context-aware kernels: a dimension
/// mismatch reaching a Status-returning entry point is the caller's error
/// and must come back as InvalidArgument, not a process abort (the plain
/// variants keep HETESIM_CHECK — DESIGN.md §11, lint rule
/// no-check-in-status-fn).
Status CheckInnerDims(Index a_cols, Index b_rows) {
  if (a_cols == b_rows) return Status::OK();
  return Status::InvalidArgument("inner dimension mismatch: a.cols()=" +
                                 std::to_string(a_cols) +
                                 " vs b.rows()=" + std::to_string(b_rows));
}

/// One output entry of a chunk-local row product, pre-stitch.
struct ChunkResult {
  std::vector<Index> row_sizes;
  std::vector<Index> col_idx;
  std::vector<double> values;
  MemoryReservation reservation;
};

/// \brief Per-chunk scratch shared by the three row accumulators.
///
/// Every accumulator folds the contribution `a_ik * b[k, j]` into column
/// `j`'s running sum in the exact visit order of the seed kernel
/// (ascending position in `a`'s row, then ascending position in `b`'s
/// row), and emits the surviving non-zero sums in ascending column order —
/// so all three produce bitwise-identical rows.
class AdaptiveRowKernels {
 public:
  AdaptiveRowKernels(Index out_cols, const SpGemmOptions& options)
      : out_cols_(out_cols), options_(options) {}

  /// Appends output rows `[row_begin, row_end)` of `a * b` to the chunk
  /// arrays, one `row_sizes` entry per row.
  void Run(const SparseMatrix& a, const SparseMatrix& b, Index row_begin,
           Index row_end, std::vector<Index>* row_sizes,
           std::vector<Index>* col_idx, std::vector<double>* values) {
    uint64_t rows_sorted_merge = 0;
    uint64_t rows_hash = 0;
    uint64_t rows_dense_scratch = 0;
    for (Index i = row_begin; i < row_end; ++i) {
      auto a_indices = a.RowIndices(i);
      Index fill_upper_bound = 0;
      for (Index k : a_indices) fill_upper_bound += b.RowNnz(k);
      const RowKernel kernel =
          options_.forced_kernel.value_or(ChooseRowKernel(fill_upper_bound, out_cols_));
      Index row_nnz = 0;
      switch (kernel) {
        case RowKernel::kSortedMerge:
          row_nnz = RowSortedMerge(a, b, i, col_idx, values);
          ++rows_sorted_merge;
          break;
        case RowKernel::kHash:
          row_nnz = RowHash(a, b, i, fill_upper_bound, col_idx, values);
          ++rows_hash;
          break;
        case RowKernel::kDenseScratch:
          row_nnz = RowDenseScratch(a, b, i, col_idx, values);
          ++rows_dense_scratch;
          break;
      }
      row_sizes->push_back(row_nnz);
    }
    // One flush per chunk keeps atomics off the per-row path (overhead
    // contract, DESIGN.md §12).
    if (MetricsEnabled()) {
      SpGemmMetrics& metrics = GlobalSpGemmMetrics();
      if (rows_sorted_merge != 0) {
        metrics.rows_sorted_merge.Increment(rows_sorted_merge);
      }
      if (rows_hash != 0) metrics.rows_hash.Increment(rows_hash);
      if (rows_dense_scratch != 0) {
        metrics.rows_dense_scratch.Increment(rows_dense_scratch);
      }
    }
  }

 private:
  /// Ping-pong merge: the running row stays sorted; each scaled `b` row is
  /// merged in, summing on column collisions. Entries whose sums cancel to
  /// exactly zero are kept until emit (they may receive later
  /// contributions), then skipped — matching the seed kernel's handling of
  /// transient zeros.
  Index RowSortedMerge(const SparseMatrix& a, const SparseMatrix& b, Index i,
                       std::vector<Index>* col_idx, std::vector<double>* values) {
    merge_cols_.clear();
    merge_vals_.clear();
    auto a_indices = a.RowIndices(i);
    auto a_values = a.RowValues(i);
    for (size_t ka = 0; ka < a_indices.size(); ++ka) {
      const Index k = a_indices[ka];
      const double a_ik = a_values[ka];
      auto b_indices = b.RowIndices(k);
      auto b_values = b.RowValues(k);
      if (b_indices.empty()) continue;
      next_cols_.clear();
      next_vals_.clear();
      size_t p = 0;
      size_t q = 0;
      while (p < merge_cols_.size() && q < b_indices.size()) {
        if (merge_cols_[p] < b_indices[q]) {
          next_cols_.push_back(merge_cols_[p]);
          next_vals_.push_back(merge_vals_[p]);
          ++p;
        } else if (merge_cols_[p] > b_indices[q]) {
          next_cols_.push_back(b_indices[q]);
          next_vals_.push_back(a_ik * b_values[q]);
          ++q;
        } else {
          next_cols_.push_back(merge_cols_[p]);
          next_vals_.push_back(merge_vals_[p] + a_ik * b_values[q]);
          ++p;
          ++q;
        }
      }
      for (; p < merge_cols_.size(); ++p) {
        next_cols_.push_back(merge_cols_[p]);
        next_vals_.push_back(merge_vals_[p]);
      }
      for (; q < b_indices.size(); ++q) {
        next_cols_.push_back(b_indices[q]);
        next_vals_.push_back(a_ik * b_values[q]);
      }
      merge_cols_.swap(next_cols_);
      merge_vals_.swap(next_vals_);
    }
    Index row_nnz = 0;
    for (size_t p = 0; p < merge_cols_.size(); ++p) {
      if (merge_vals_[p] != 0.0) {
        col_idx->push_back(merge_cols_[p]);
        values->push_back(merge_vals_[p]);
        ++row_nnz;
      }
    }
    return row_nnz;
  }

  /// Open-addressing accumulator sized to the fill bound (load factor at
  /// most 1/2, so probing always terminates). Occupied slots are recorded
  /// for O(fill) cleanup and sorted by column at emit.
  Index RowHash(const SparseMatrix& a, const SparseMatrix& b, Index i,
                Index fill_upper_bound, std::vector<Index>* col_idx,
                std::vector<double>* values) {
    size_t capacity = 16;
    while (capacity < 2 * static_cast<size_t>(fill_upper_bound)) capacity <<= 1;
    if (table_cols_.size() < capacity) {
      table_cols_.assign(capacity, kEmptySlot);
      table_vals_.assign(capacity, 0.0);
    }
    // Probe within the row's own power-of-two window even when the table
    // is left larger by a previous row — slot choice must depend only on
    // the row's contents, never on what ran before it in this chunk.
    const size_t mask = capacity - 1;
    occupied_.clear();
    auto a_indices = a.RowIndices(i);
    auto a_values = a.RowValues(i);
    for (size_t ka = 0; ka < a_indices.size(); ++ka) {
      const Index k = a_indices[ka];
      const double a_ik = a_values[ka];
      auto b_indices = b.RowIndices(k);
      auto b_values = b.RowValues(k);
      for (size_t kb = 0; kb < b_indices.size(); ++kb) {
        const Index j = b_indices[kb];
        size_t slot =
            (static_cast<uint64_t>(j) * UINT64_C(0x9E3779B97F4A7C15) >> 32) & mask;
        while (table_cols_[slot] != j) {
          if (table_cols_[slot] == kEmptySlot) {
            table_cols_[slot] = j;
            occupied_.push_back(slot);
            break;
          }
          slot = (slot + 1) & mask;
        }
        table_vals_[slot] += a_ik * b_values[kb];
      }
    }
    std::sort(occupied_.begin(), occupied_.end(),
              [&](size_t x, size_t y) { return table_cols_[x] < table_cols_[y]; });
    Index row_nnz = 0;
    for (size_t slot : occupied_) {
      const double v = table_vals_[slot];
      if (v != 0.0) {
        col_idx->push_back(table_cols_[slot]);
        values->push_back(v);
        ++row_nnz;
      }
      table_cols_[slot] = kEmptySlot;
      table_vals_[slot] = 0.0;
    }
    return row_nnz;
  }

  /// The seed strategy, verbatim: dense scratch, touched list, sort,
  /// read-then-zero emit that skips exact zeros.
  Index RowDenseScratch(const SparseMatrix& a, const SparseMatrix& b, Index i,
                        std::vector<Index>* col_idx, std::vector<double>* values) {
    if (accumulator_.size() < static_cast<size_t>(out_cols_)) {
      accumulator_.assign(static_cast<size_t>(out_cols_), 0.0);
    }
    touched_.clear();
    auto a_indices = a.RowIndices(i);
    auto a_values = a.RowValues(i);
    for (size_t ka = 0; ka < a_indices.size(); ++ka) {
      const Index k = a_indices[ka];
      const double a_ik = a_values[ka];
      auto b_indices = b.RowIndices(k);
      auto b_values = b.RowValues(k);
      for (size_t kb = 0; kb < b_indices.size(); ++kb) {
        const Index j = b_indices[kb];
        if (accumulator_[static_cast<size_t>(j)] == 0.0) touched_.push_back(j);
        accumulator_[static_cast<size_t>(j)] += a_ik * b_values[kb];
      }
    }
    std::sort(touched_.begin(), touched_.end());
    Index row_nnz = 0;
    for (Index j : touched_) {
      const double v = accumulator_[static_cast<size_t>(j)];
      accumulator_[static_cast<size_t>(j)] = 0.0;
      if (v != 0.0) {
        col_idx->push_back(j);
        values->push_back(v);
        ++row_nnz;
      }
    }
    return row_nnz;
  }

  static constexpr Index kEmptySlot = -1;

  Index out_cols_;
  SpGemmOptions options_;
  // Dense scratch (allocated on first dense-scratch row of the chunk).
  std::vector<double> accumulator_;
  std::vector<Index> touched_;
  // Hash accumulator.
  std::vector<Index> table_cols_;
  std::vector<double> table_vals_;
  std::vector<size_t> occupied_;
  // Sorted-merge ping-pong buffers.
  std::vector<Index> merge_cols_;
  std::vector<double> merge_vals_;
  std::vector<Index> next_cols_;
  std::vector<double> next_vals_;
};

/// Stitches chunk outputs (ordered by chunk id == ascending row ranges)
/// into one CSR matrix.
SparseMatrix StitchChunks(Index rows, Index cols,
                          std::vector<ChunkResult> results) {
  std::vector<Index> row_ptr(static_cast<size_t>(rows) + 1, 0);
  if (results.size() == 1) {
    // Single-pass product: adopt the chunk buffers instead of copying them.
    // Output emission dominates funnel-shaped products, so this copy would
    // be a measurable fraction of the whole multiply.
    ChunkResult& only = results.front();
    HETESIM_CHECK_EQ(only.row_sizes.size(), static_cast<size_t>(rows));
    for (size_t r = 0; r < only.row_sizes.size(); ++r) {
      row_ptr[r + 1] = row_ptr[r] + only.row_sizes[r];
    }
    return SparseMatrix::FromCsr(rows, cols, std::move(row_ptr),
                                 std::move(only.col_idx), std::move(only.values));
  }
  size_t total_nnz = 0;
  for (const ChunkResult& result : results) total_nnz += result.values.size();
  std::vector<Index> col_idx;
  std::vector<double> values;
  col_idx.reserve(total_nnz);
  values.reserve(total_nnz);
  size_t row = 0;
  for (ChunkResult& result : results) {
    for (Index size : result.row_sizes) {
      row_ptr[row + 1] = row_ptr[row] + size;
      ++row;
    }
    col_idx.insert(col_idx.end(), result.col_idx.begin(), result.col_idx.end());
    values.insert(values.end(), result.values.begin(), result.values.end());
  }
  HETESIM_CHECK_EQ(row, static_cast<size_t>(rows));
  return SparseMatrix::FromCsr(rows, cols, std::move(row_ptr),
                               std::move(col_idx), std::move(values));
}

/// Shared chunked driver for the dense-output kernels. `fill` writes the
/// disjoint row range `[row_begin, row_end)` of `out` — row-disjoint
/// writes, so results are bitwise identical at any thread count. With a
/// context, the whole output is reserved up front (it is allocated up
/// front) and the context is polled once per chunk; without one the same
/// loop runs fault-free, like `SparseMatrix::Multiply` next to its context
/// variant.
template <typename FillRange>
Result<DenseMatrix> DenseOutDriver(Index rows, Index cols, int num_threads,
                                   const QueryContext* ctx, const FillRange& fill) {
  if (ctx != nullptr) {
    HETESIM_RETURN_NOT_OK(ctx->CheckAlive());
  }
  MemoryReservation reservation;
  if (ctx != nullptr) {
    if (HETESIM_FAULT_POINT("spgemm.alloc")) {
      return Status::ResourceExhausted("injected: spgemm.alloc");
    }
    HETESIM_ASSIGN_OR_RETURN(
        reservation, ctx->Reserve(static_cast<size_t>(rows) *
                                  static_cast<size_t>(cols) * sizeof(double)));
  }
  DenseMatrix out(rows, cols);
  const int threads = ResolveNumThreads(num_threads);
  const bool sequential = threads <= 1 || rows < 2;
  const Index chunks =
      sequential ? std::max<Index>(
                       (rows + kSequentialStripeRows - 1) / kSequentialStripeRows, 1)
                 : std::min<Index>(static_cast<Index>(threads) * 4,
                                   std::max<Index>(rows, 1));
  const Index chunk_size = (rows + chunks - 1) / chunks;
  SharedStatus region_status;
  auto run_chunk = [&](Index c) {
    if (ctx != nullptr) {
      if (!region_status.ok()) return;
      Status alive = ctx->CheckAlive();
      if (!alive.ok()) {
        region_status.Update(std::move(alive));
        return;
      }
    }
    const Index row_begin = c * chunk_size;
    const Index row_end = std::min(rows, row_begin + chunk_size);
    if (row_begin >= row_end) return;
    fill(out, row_begin, row_end);
    if (MetricsEnabled()) {
      GlobalSpGemmMetrics().dense_out_rows.Increment(
          static_cast<uint64_t>(row_end - row_begin));
    }
  };
  if (sequential || chunks < 2) {
    for (Index c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    GrainOptions grain;
    grain.cost_per_element = 1e9;  // each chunk id is its own block
    ParallelFor(0, chunks, threads, [&](int64_t chunk_begin, int64_t chunk_end) {
      for (int64_t c = chunk_begin; c < chunk_end; ++c) {
        run_chunk(static_cast<Index>(c));
      }
    }, grain);
  }
  HETESIM_RETURN_NOT_OK(region_status.status());
  return out;
}

/// Row-range fills for the four dense-output products. Skipping exact-zero
/// `a` entries never changes a finite sum bitwise (v + ±0.0 * w == v), so
/// all fills stay deterministic.
void FillSparseSparse(const SparseMatrix& a, const SparseMatrix& b,
                      DenseMatrix& out, Index row_begin, Index row_end) {
  for (Index i = row_begin; i < row_end; ++i) {
    double* out_row = out.RowData(i);
    auto a_indices = a.RowIndices(i);
    auto a_values = a.RowValues(i);
    for (size_t ka = 0; ka < a_indices.size(); ++ka) {
      const double a_ik = a_values[ka];
      auto b_indices = b.RowIndices(a_indices[ka]);
      auto b_values = b.RowValues(a_indices[ka]);
      for (size_t kb = 0; kb < b_indices.size(); ++kb) {
        out_row[b_indices[kb]] += a_ik * b_values[kb];
      }
    }
  }
}

void FillDenseSparse(const DenseMatrix& a, const SparseMatrix& b,
                     DenseMatrix& out, Index row_begin, Index row_end) {
  for (Index i = row_begin; i < row_end; ++i) {
    double* out_row = out.RowData(i);
    const double* a_row = a.RowData(i);
    for (Index k = 0; k < b.rows(); ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      auto b_indices = b.RowIndices(k);
      auto b_values = b.RowValues(k);
      for (size_t kb = 0; kb < b_indices.size(); ++kb) {
        out_row[b_indices[kb]] += a_ik * b_values[kb];
      }
    }
  }
}

void FillSparseDense(const SparseMatrix& a, const DenseMatrix& b,
                     DenseMatrix& out, Index row_begin, Index row_end) {
  for (Index i = row_begin; i < row_end; ++i) {
    double* out_row = out.RowData(i);
    auto a_indices = a.RowIndices(i);
    auto a_values = a.RowValues(i);
    for (size_t ka = 0; ka < a_indices.size(); ++ka) {
      const double a_ik = a_values[ka];
      const double* b_row = b.RowData(a_indices[ka]);
      for (Index j = 0; j < b.cols(); ++j) out_row[j] += a_ik * b_row[j];
    }
  }
}

void FillDenseDense(const DenseMatrix& a, const DenseMatrix& b,
                    DenseMatrix& out, Index row_begin, Index row_end) {
  for (Index i = row_begin; i < row_end; ++i) {
    double* out_row = out.RowData(i);
    const double* a_row = a.RowData(i);
    for (Index k = 0; k < b.rows(); ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      const double* b_row = b.RowData(k);
      for (Index j = 0; j < b.cols(); ++j) out_row[j] += a_ik * b_row[j];
    }
  }
}

}  // namespace

RowKernel ChooseRowKernel(Index fill_upper_bound, Index out_cols) {
  if (fill_upper_bound <= kSortedMergeMaxFill) return RowKernel::kSortedMerge;
  if (fill_upper_bound < out_cols / kHashWidthDivisor) return RowKernel::kHash;
  return RowKernel::kDenseScratch;
}

SparseMatrix MultiplySparseAdaptive(const SparseMatrix& a, const SparseMatrix& b,
                                    int num_threads, const SpGemmOptions& options) {
  HETESIM_CHECK_EQ(a.cols(), b.rows());
  const int threads = ResolveNumThreads(num_threads);
  if (threads <= 1 || a.rows() < 2) {
    std::vector<ChunkResult> results(1);
    AdaptiveRowKernels kernels(b.cols(), options);
    kernels.Run(a, b, 0, a.rows(), &results[0].row_sizes, &results[0].col_idx,
                &results[0].values);
    return StitchChunks(a.rows(), b.cols(), std::move(results));
  }
  const Index chunks = std::min<Index>(static_cast<Index>(threads) * 4,
                                       std::max<Index>(a.rows(), 1));
  const Index chunk_size = (a.rows() + chunks - 1) / chunks;
  std::vector<ChunkResult> results(static_cast<size_t>(chunks));
  GrainOptions grain;
  grain.cost_per_element = 1e9;  // each chunk id is its own block
  ParallelFor(0, chunks, threads, [&](int64_t chunk_begin, int64_t chunk_end) {
    AdaptiveRowKernels kernels(b.cols(), options);
    for (int64_t c = chunk_begin; c < chunk_end; ++c) {
      const Index row_begin = static_cast<Index>(c) * chunk_size;
      const Index row_end = std::min(a.rows(), row_begin + chunk_size);
      if (row_begin >= row_end) continue;
      ChunkResult& result = results[static_cast<size_t>(c)];
      kernels.Run(a, b, row_begin, row_end, &result.row_sizes, &result.col_idx,
                  &result.values);
    }
  }, grain);
  return StitchChunks(a.rows(), b.cols(), std::move(results));
}

Result<SparseMatrix> MultiplySparseAdaptive(const SparseMatrix& a,
                                            const SparseMatrix& b, int num_threads,
                                            const QueryContext& ctx,
                                            const SpGemmOptions& options) {
  HETESIM_RETURN_NOT_OK(CheckInnerDims(a.cols(), b.rows()));
  HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
  const int threads = ResolveNumThreads(num_threads);
  const bool sequential = threads <= 1 || a.rows() < 2;
  const Index chunks =
      sequential ? std::max<Index>(
                       (a.rows() + kSequentialStripeRows - 1) / kSequentialStripeRows, 1)
                 : std::min<Index>(static_cast<Index>(threads) * 4,
                                   std::max<Index>(a.rows(), 1));
  const Index chunk_size = (a.rows() + chunks - 1) / chunks;
  std::vector<ChunkResult> results(static_cast<size_t>(chunks));
  SharedStatus region_status;

  auto run_chunk = [&](AdaptiveRowKernels& kernels, Index c) {
    if (!region_status.ok()) return;
    Status alive = ctx.CheckAlive();
    if (!alive.ok()) {
      region_status.Update(std::move(alive));
      return;
    }
    if (HETESIM_FAULT_POINT("spgemm.alloc")) {
      region_status.Update(Status::ResourceExhausted("injected: spgemm.alloc"));
      return;
    }
    const Index row_begin = c * chunk_size;
    const Index row_end = std::min(a.rows(), row_begin + chunk_size);
    if (row_begin >= row_end) return;
    ChunkResult& result = results[static_cast<size_t>(c)];
    kernels.Run(a, b, row_begin, row_end, &result.row_sizes, &result.col_idx,
                &result.values);
    Result<MemoryReservation> reservation = ctx.Reserve(
        result.col_idx.capacity() * sizeof(Index) +
        result.values.capacity() * sizeof(double) +
        result.row_sizes.capacity() * sizeof(Index));
    if (!reservation.ok()) {
      result = ChunkResult();
      region_status.Update(reservation.status());
      return;
    }
    result.reservation = *std::move(reservation);
  };

  if (sequential || chunks < 2) {
    AdaptiveRowKernels kernels(b.cols(), options);
    for (Index c = 0; c < chunks; ++c) run_chunk(kernels, c);
  } else {
    GrainOptions grain;
    grain.cost_per_element = 1e9;  // each chunk id is its own block
    ParallelFor(0, chunks, threads, [&](int64_t chunk_begin, int64_t chunk_end) {
      AdaptiveRowKernels kernels(b.cols(), options);
      for (int64_t c = chunk_begin; c < chunk_end; ++c) {
        run_chunk(kernels, static_cast<Index>(c));
      }
    }, grain);
  }
  HETESIM_RETURN_NOT_OK(region_status.status());
  return StitchChunks(a.rows(), b.cols(), std::move(results));
}

DenseMatrix MultiplySparseSparseDense(const SparseMatrix& a, const SparseMatrix& b,
                                      int num_threads) {
  HETESIM_CHECK_EQ(a.cols(), b.rows());
  return *DenseOutDriver(a.rows(), b.cols(), num_threads, nullptr,
                         [&](DenseMatrix& out, Index row_begin, Index row_end) {
                           FillSparseSparse(a, b, out, row_begin, row_end);
                         });
}

Result<DenseMatrix> MultiplySparseSparseDense(const SparseMatrix& a,
                                              const SparseMatrix& b, int num_threads,
                                              const QueryContext& ctx) {
  HETESIM_RETURN_NOT_OK(CheckInnerDims(a.cols(), b.rows()));
  return DenseOutDriver(a.rows(), b.cols(), num_threads, &ctx,
                        [&](DenseMatrix& out, Index row_begin, Index row_end) {
                          FillSparseSparse(a, b, out, row_begin, row_end);
                        });
}

DenseMatrix MultiplyDenseSparseParallel(const DenseMatrix& a, const SparseMatrix& b,
                                        int num_threads) {
  HETESIM_CHECK_EQ(a.cols(), b.rows());
  return *DenseOutDriver(a.rows(), b.cols(), num_threads, nullptr,
                         [&](DenseMatrix& out, Index row_begin, Index row_end) {
                           FillDenseSparse(a, b, out, row_begin, row_end);
                         });
}

Result<DenseMatrix> MultiplyDenseSparseParallel(const DenseMatrix& a,
                                                const SparseMatrix& b, int num_threads,
                                                const QueryContext& ctx) {
  HETESIM_RETURN_NOT_OK(CheckInnerDims(a.cols(), b.rows()));
  return DenseOutDriver(a.rows(), b.cols(), num_threads, &ctx,
                        [&](DenseMatrix& out, Index row_begin, Index row_end) {
                          FillDenseSparse(a, b, out, row_begin, row_end);
                        });
}

DenseMatrix MultiplySparseDenseParallel(const SparseMatrix& a, const DenseMatrix& b,
                                        int num_threads) {
  HETESIM_CHECK_EQ(a.cols(), b.rows());
  return *DenseOutDriver(a.rows(), b.cols(), num_threads, nullptr,
                         [&](DenseMatrix& out, Index row_begin, Index row_end) {
                           FillSparseDense(a, b, out, row_begin, row_end);
                         });
}

Result<DenseMatrix> MultiplySparseDenseParallel(const SparseMatrix& a,
                                                const DenseMatrix& b, int num_threads,
                                                const QueryContext& ctx) {
  HETESIM_RETURN_NOT_OK(CheckInnerDims(a.cols(), b.rows()));
  return DenseOutDriver(a.rows(), b.cols(), num_threads, &ctx,
                        [&](DenseMatrix& out, Index row_begin, Index row_end) {
                          FillSparseDense(a, b, out, row_begin, row_end);
                        });
}

DenseMatrix MultiplyDenseDenseParallel(const DenseMatrix& a, const DenseMatrix& b,
                                       int num_threads) {
  HETESIM_CHECK_EQ(a.cols(), b.rows());
  return *DenseOutDriver(a.rows(), b.cols(), num_threads, nullptr,
                         [&](DenseMatrix& out, Index row_begin, Index row_end) {
                           FillDenseDense(a, b, out, row_begin, row_end);
                         });
}

Result<DenseMatrix> MultiplyDenseDenseParallel(const DenseMatrix& a,
                                               const DenseMatrix& b, int num_threads,
                                               const QueryContext& ctx) {
  HETESIM_RETURN_NOT_OK(CheckInnerDims(a.cols(), b.rows()));
  return DenseOutDriver(a.rows(), b.cols(), num_threads, &ctx,
                        [&](DenseMatrix& out, Index row_begin, Index row_end) {
                          FillDenseDense(a, b, out, row_begin, row_end);
                        });
}

}  // namespace hetesim
