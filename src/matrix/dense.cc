#include "matrix/dense.h"

#include <cmath>
#include <sstream>

#include "common/parallel.h"
#include "common/string_util.h"

namespace hetesim {

DenseMatrix::DenseMatrix(Index rows, Index cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HETESIM_CHECK_EQ(static_cast<size_t>(rows * cols), data_.size());
}

DenseMatrix DenseMatrix::Identity(Index n) {
  DenseMatrix m(n, n);
  for (Index i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> DenseMatrix::Row(Index r) const {
  return std::vector<double>(RowData(r), RowData(r) + cols_);
}

std::vector<double> DenseMatrix::Col(Index c) const {
  std::vector<double> out(static_cast<size_t>(rows_));
  for (Index r = 0; r < rows_; ++r) out[static_cast<size_t>(r)] = (*this)(r, c);
  return out;
}

void DenseMatrix::Fill(double value) {
  for (double& v : data_) v = value;
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  HETESIM_CHECK_EQ(cols_, other.rows_);
  DenseMatrix out(rows_, other.cols_);
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (Index i = 0; i < rows_; ++i) {
    const double* a_row = RowData(i);
    double* out_row = out.RowData(i);
    for (Index k = 0; k < cols_; ++k) {
      const double a_ik = a_row[k];
      if (a_ik == 0.0) continue;
      const double* b_row = other.RowData(k);
      for (Index j = 0; j < other.cols_; ++j) {
        out_row[j] += a_ik * b_row[j];
      }
    }
  }
  return out;
}

std::vector<double> DenseMatrix::MultiplyVector(const std::vector<double>& x) const {
  HETESIM_CHECK_EQ(static_cast<size_t>(cols_), x.size());
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    const double* row = RowData(i);
    double acc = 0.0;
    for (Index j = 0; j < cols_; ++j) acc += row[j] * x[static_cast<size_t>(j)];
    out[static_cast<size_t>(i)] = acc;
  }
  return out;
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

DenseMatrix DenseMatrix::Submatrix(const std::vector<Index>& row_ids,
                                   const std::vector<Index>& col_ids) const {
  DenseMatrix out(static_cast<Index>(row_ids.size()),
                  static_cast<Index>(col_ids.size()));
  for (size_t i = 0; i < row_ids.size(); ++i) {
    HETESIM_CHECK(row_ids[i] >= 0 && row_ids[i] < rows_);
    for (size_t j = 0; j < col_ids.size(); ++j) {
      HETESIM_CHECK(col_ids[j] >= 0 && col_ids[j] < cols_);
      out(static_cast<Index>(i), static_cast<Index>(j)) =
          (*this)(row_ids[i], col_ids[j]);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Add(const DenseMatrix& other) const {
  HETESIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  DenseMatrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

DenseMatrix DenseMatrix::Subtract(const DenseMatrix& other) const {
  HETESIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  DenseMatrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

DenseMatrix DenseMatrix::Scale(double factor) const {
  DenseMatrix out = *this;
  for (double& v : out.data_) v *= factor;
  return out;
}

void DenseMatrix::NormalizeRowsL1(int num_threads) {
  ParallelFor(
      0, rows_, num_threads,
      [this](int64_t row_begin, int64_t row_end) {
        for (Index i = row_begin; i < row_end; ++i) {
          double* row = RowData(i);
          double sum = 0.0;
          for (Index j = 0; j < cols_; ++j) sum += std::abs(row[j]);
          if (sum == 0.0) continue;
          for (Index j = 0; j < cols_; ++j) row[j] /= sum;
        }
      },
      {.cost_per_element = static_cast<double>(cols_)});
}

void DenseMatrix::NormalizeColsL1(int num_threads) {
  std::vector<double> sums(static_cast<size_t>(cols_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    const double* row = RowData(i);
    for (Index j = 0; j < cols_; ++j) sums[static_cast<size_t>(j)] += std::abs(row[j]);
  }
  // The column sums above stay sequential (a parallel version would need
  // per-thread partials); the division sweep is row-partitioned.
  ParallelFor(
      0, rows_, num_threads,
      [this, &sums](int64_t row_begin, int64_t row_end) {
        for (Index i = row_begin; i < row_end; ++i) {
          double* row = RowData(i);
          for (Index j = 0; j < cols_; ++j) {
            if (sums[static_cast<size_t>(j)] != 0.0) {
              row[j] /= sums[static_cast<size_t>(j)];
            }
          }
        }
      },
      {.cost_per_element = static_cast<double>(cols_)});
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& other) const {
  HETESIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double max_diff = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

double DenseMatrix::FrobeniusNorm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool DenseMatrix::ApproxEquals(const DenseMatrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return MaxAbsDiff(other) <= tolerance;
}

std::string DenseMatrix::ToString(int precision) const {
  std::ostringstream out;
  const std::string cell_format = StrFormat("%%.%df", precision);
  for (Index i = 0; i < rows_; ++i) {
    out << "[";
    for (Index j = 0; j < cols_; ++j) {
      if (j != 0) out << ", ";
      out << StrFormat(cell_format.c_str(), (*this)(i, j));
    }
    out << "]\n";
  }
  return out.str();
}

}  // namespace hetesim
