#include "matrix/chain_plan.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace hetesim {

namespace {

/// Planner/executor instruments (DESIGN.md §12). Predicted totals come
/// from the deterministic cost model, actual totals from the materialized
/// products, so predicted-vs-actual drift is readable straight off the
/// exposition. Dense steps report cells (their storage/work unit) instead
/// of nnz.
struct PlanMetrics {
  Counter& plans;
  Counter& steps;
  Counter& dense_steps;
  Counter& predicted_nnz;
  Counter& actual_nnz;
  Counter& dense_cells;
};

PlanMetrics& GlobalPlanMetrics() {
  static PlanMetrics metrics{
      MetricsRegistry::Global().GetCounter("hetesim_plan_plans_total"),
      MetricsRegistry::Global().GetCounter("hetesim_plan_steps_total"),
      MetricsRegistry::Global().GetCounter("hetesim_plan_dense_steps_total"),
      MetricsRegistry::Global().GetCounter("hetesim_plan_predicted_nnz_total"),
      MetricsRegistry::Global().GetCounter("hetesim_plan_actual_nnz_total"),
      MetricsRegistry::Global().GetCounter("hetesim_plan_dense_cells_total"),
  };
  return metrics;
}

/// DP cell for the inclusive input interval [i, j].
struct Interval {
  double total_cost = 0.0;
  int split = -1;  // s: interval splits as [i, s] * [s+1, j]; -1 for leaves
  MatrixEstimate estimate;
  bool dense = false;
};

/// Model cost of producing `[i, s] * [s+1, j]` given the operand cells,
/// plus the resulting estimate/representation. The estimated Gustavson
/// work prices sparse operands; dense operands pay the streaming kernels'
/// exact multiply-add counts. Dense outputs additionally pay a per-cell
/// allocation/zeroing term, sparse outputs a per-entry materialization
/// term.
struct StepCost {
  double cost = 0.0;
  MatrixEstimate estimate;
  bool dense = false;
};

StepCost PriceStep(const Interval& left, const Interval& right,
                   const ChainPlanOptions& options) {
  StepCost step;
  step.estimate = EstimateProduct(left.estimate, right.estimate);
  step.dense = left.dense || right.dense ||
               step.estimate.Density() >= options.dense_switch_density;
  const double cells = static_cast<double>(step.estimate.rows) *
                       static_cast<double>(step.estimate.cols);
  if (!left.dense && !right.dense) {
    const double flops = EstimateProductFlops(left.estimate, right.estimate);
    if (step.dense) {
      step.cost = flops * options.dense_flop_cost + cells * options.dense_cell_cost;
    } else {
      step.cost = flops * options.sparse_flop_cost +
                  step.estimate.nnz * options.sparse_entry_cost;
    }
  } else {
    double flops = 0.0;
    if (left.dense && !right.dense) {
      flops = static_cast<double>(left.estimate.rows) * right.estimate.nnz;
    } else if (!left.dense && right.dense) {
      flops = left.estimate.nnz * static_cast<double>(right.estimate.cols);
    } else {
      flops = static_cast<double>(left.estimate.rows) *
              static_cast<double>(left.estimate.cols) *
              static_cast<double>(right.estimate.cols);
    }
    step.cost = flops * options.dense_flop_cost + cells * options.dense_cell_cost;
  }
  return step;
}

/// Post-order plan emission for interval [i, j]; returns the slot holding
/// that interval's product.
int EmitSteps(const std::vector<std::vector<Interval>>& best, int i, int j,
              int num_inputs, std::vector<ChainPlanStep>* steps) {
  if (i == j) return i;
  const Interval& cell = best[static_cast<size_t>(i)][static_cast<size_t>(j)];
  const int left = EmitSteps(best, i, cell.split, num_inputs, steps);
  const int right = EmitSteps(best, cell.split + 1, j, num_inputs, steps);
  ChainPlanStep step;
  step.left = left;
  step.right = right;
  step.dense_output = cell.dense;
  step.estimate = cell.estimate;
  steps->push_back(step);
  return num_inputs + static_cast<int>(steps->size()) - 1;
}

void RenderSlot(const ChainPlan& plan, int slot, std::string* out) {
  if (slot < plan.num_inputs) {
    out->append(std::to_string(slot));
    return;
  }
  const ChainPlanStep& step = plan.steps[static_cast<size_t>(slot - plan.num_inputs)];
  out->push_back(step.dense_output ? '[' : '(');
  RenderSlot(plan, step.left, out);
  out->push_back('.');
  RenderSlot(plan, step.right, out);
  out->push_back(step.dense_output ? ']' : ')');
}

/// One operand of a planned product: a view of either an input matrix or a
/// previously produced intermediate. Exactly one pointer is set.
struct Operand {
  const SparseMatrix* sparse = nullptr;
  const DenseMatrix* dense = nullptr;
};

/// Storage for step results.
struct Intermediate {
  SparseMatrix sparse;
  DenseMatrix dense;
  bool is_dense = false;
};

}  // namespace

std::string ChainPlan::Parenthesization() const {
  HETESIM_CHECK_GT(num_inputs, 0);
  std::string out;
  const int root = steps.empty() ? 0 : num_inputs + static_cast<int>(steps.size()) - 1;
  RenderSlot(*this, root, &out);
  return out;
}

ChainPlan PlanChain(const std::vector<MatrixEstimate>& inputs,
                    const ChainPlanOptions& options) {
  HETESIM_CHECK(!inputs.empty()) << "cannot plan an empty matrix chain";
  const int n = static_cast<int>(inputs.size());
  for (int i = 0; i + 1 < n; ++i) {
    HETESIM_CHECK_EQ(inputs[static_cast<size_t>(i)].cols,
                     inputs[static_cast<size_t>(i) + 1].rows)
        << "chain matrices " << i << " and " << i + 1 << " do not conform";
  }
  std::vector<std::vector<Interval>> best(
      static_cast<size_t>(n), std::vector<Interval>(static_cast<size_t>(n)));
  for (int i = 0; i < n; ++i) {
    Interval& leaf = best[static_cast<size_t>(i)][static_cast<size_t>(i)];
    leaf.estimate = inputs[static_cast<size_t>(i)];
    leaf.dense = false;
  }
  for (int len = 2; len <= n; ++len) {
    for (int i = 0; i + len - 1 < n; ++i) {
      const int j = i + len - 1;
      Interval& cell = best[static_cast<size_t>(i)][static_cast<size_t>(j)];
      cell.total_cost = std::numeric_limits<double>::infinity();
      for (int s = i; s < j; ++s) {
        const Interval& left = best[static_cast<size_t>(i)][static_cast<size_t>(s)];
        const Interval& right =
            best[static_cast<size_t>(s) + 1][static_cast<size_t>(j)];
        const StepCost step = PriceStep(left, right, options);
        const double total = left.total_cost + right.total_cost + step.cost;
        // Strict '<' with ascending s: ties break toward the smallest
        // split, keeping plans deterministic.
        if (total < cell.total_cost) {
          cell.total_cost = total;
          cell.split = s;
          cell.estimate = step.estimate;
          cell.dense = step.dense;
        }
      }
    }
  }
  ChainPlan plan;
  plan.num_inputs = n;
  plan.predicted_cost = best[0][static_cast<size_t>(n) - 1].total_cost;
  EmitSteps(best, 0, n - 1, n, &plan.steps);
  if (MetricsEnabled()) GlobalPlanMetrics().plans.Increment();
  return plan;
}

ChainPlan PlanChain(const std::vector<SparseMatrix>& chain,
                    const ChainPlanOptions& options) {
  std::vector<MatrixEstimate> inputs;
  inputs.reserve(chain.size());
  for (const SparseMatrix& m : chain) inputs.push_back(EstimateOf(m));
  return PlanChain(inputs, options);
}

namespace {

/// Shared execution loop. `ctx == nullptr` runs the fault-free kernels;
/// with a context every step goes through the polled, budget-charged,
/// fault-injected variants and the loop re-checks liveness between steps.
Result<SparseMatrix> ExecutePlan(const std::vector<SparseMatrix>& chain,
                                 const ChainPlan& plan, int num_threads,
                                 const QueryContext* ctx,
                                 const SpGemmOptions& options) {
  // Plan/chain mismatch and malformed plans are caller errors on a
  // Status-returning path, so they come back as InvalidArgument rather
  // than aborting (hand-built plans reach here through the public
  // ExecuteChainPlan overloads).
  if (static_cast<int>(chain.size()) != plan.num_inputs ||
      plan.steps.size() + 1 != chain.size()) {
    return Status::InvalidArgument(
        "chain plan mismatch: " + std::to_string(chain.size()) +
        " matrices vs plan for " + std::to_string(plan.num_inputs) + " with " +
        std::to_string(plan.steps.size()) + " steps");
  }
  if (plan.steps.empty()) return chain[0];
  // Plan validation: O(steps) = chain length, before any compute starts.
  for (size_t t = 0; t < plan.steps.size(); ++t) {  // hetesim-lint: allow(cancel-poll)
    // A step may reference inputs and intermediates of *earlier* steps only.
    const int ready = plan.num_inputs + static_cast<int>(t);
    if (plan.steps[t].left < 0 || plan.steps[t].left >= ready ||
        plan.steps[t].right < 0 || plan.steps[t].right >= ready) {
      return Status::InvalidArgument(
          "chain plan step " + std::to_string(t) + " references slot " +
          std::to_string(plan.steps[t].left) + "*" +
          std::to_string(plan.steps[t].right) + " outside the " +
          std::to_string(ready) + " available");
    }
  }

  std::vector<Intermediate> inter(plan.steps.size());
  auto operand = [&](int slot) -> Operand {
    HETESIM_DCHECK(slot >= 0 &&
                   slot < plan.num_inputs + static_cast<int>(inter.size()));
    if (slot < plan.num_inputs) return {&chain[static_cast<size_t>(slot)], nullptr};
    Intermediate& m = inter[static_cast<size_t>(slot - plan.num_inputs)];
    if (m.is_dense) return {nullptr, &m.dense};
    return {&m.sparse, nullptr};
  };
  auto release = [&](int slot) {
    if (slot >= plan.num_inputs) {
      inter[static_cast<size_t>(slot - plan.num_inputs)] = Intermediate();
    }
  };

  Trace* const trace = ctx != nullptr ? ctx->trace() : nullptr;
  for (size_t t = 0; t < plan.steps.size(); ++t) {
    const ChainPlanStep& step = plan.steps[t];
    if (ctx != nullptr) HETESIM_RETURN_NOT_OK(ctx->CheckAlive());
    const Operand l = operand(step.left);
    const Operand r = operand(step.right);
    Intermediate& out = inter[t];
    // Hand-built plans may mark a product sparse even though an operand is
    // already dense; the representation follows the operands in that case.
    const bool dense_output =
        step.dense_output || l.dense != nullptr || r.dense != nullptr;
    TraceSpan span(trace, "chain.step");
    if (span.active()) {
      span.Annotate("step", std::to_string(t));
      span.Annotate("kernel", dense_output ? "dense" : "spgemm");
      span.Annotate("predicted_nnz",
                    std::to_string(static_cast<int64_t>(step.estimate.nnz)));
    }
    if (!dense_output) {
      if (ctx != nullptr) {
        HETESIM_ASSIGN_OR_RETURN(
            out.sparse,
            MultiplySparseAdaptive(*l.sparse, *r.sparse, num_threads, *ctx, options));
      } else {
        out.sparse = MultiplySparseAdaptive(*l.sparse, *r.sparse, num_threads, options);
      }
      out.is_dense = false;
    } else {
      out.is_dense = true;
      if (l.sparse != nullptr && r.sparse != nullptr) {
        if (ctx != nullptr) {
          HETESIM_ASSIGN_OR_RETURN(
              out.dense, MultiplySparseSparseDense(*l.sparse, *r.sparse,
                                                   num_threads, *ctx));
        } else {
          out.dense = MultiplySparseSparseDense(*l.sparse, *r.sparse, num_threads);
        }
      } else if (l.dense != nullptr && r.sparse != nullptr) {
        if (ctx != nullptr) {
          HETESIM_ASSIGN_OR_RETURN(
              out.dense, MultiplyDenseSparseParallel(*l.dense, *r.sparse,
                                                     num_threads, *ctx));
        } else {
          out.dense = MultiplyDenseSparseParallel(*l.dense, *r.sparse, num_threads);
        }
      } else if (l.sparse != nullptr && r.dense != nullptr) {
        if (ctx != nullptr) {
          HETESIM_ASSIGN_OR_RETURN(
              out.dense, MultiplySparseDenseParallel(*l.sparse, *r.dense,
                                                     num_threads, *ctx));
        } else {
          out.dense = MultiplySparseDenseParallel(*l.sparse, *r.dense, num_threads);
        }
      } else {
        if (ctx != nullptr) {
          HETESIM_ASSIGN_OR_RETURN(
              out.dense, MultiplyDenseDenseParallel(*l.dense, *r.dense,
                                                    num_threads, *ctx));
        } else {
          out.dense = MultiplyDenseDenseParallel(*l.dense, *r.dense, num_threads);
        }
      }
    }
    if (MetricsEnabled()) {
      PlanMetrics& metrics = GlobalPlanMetrics();
      metrics.steps.Increment();
      metrics.predicted_nnz.Increment(
          static_cast<uint64_t>(std::llround(std::max(step.estimate.nnz, 0.0))));
      if (out.is_dense) {
        metrics.dense_steps.Increment();
        metrics.dense_cells.Increment(
            static_cast<uint64_t>(out.dense.rows()) *
            static_cast<uint64_t>(out.dense.cols()));
      } else {
        metrics.actual_nnz.Increment(
            static_cast<uint64_t>(out.sparse.NumNonZeros()));
      }
    }
    if (span.active()) {
      span.Annotate("actual_nnz",
                    out.is_dense ? "dense"
                                 : std::to_string(out.sparse.NumNonZeros()));
    }
    // Each slot feeds exactly one product; free consumed intermediates so
    // peak memory tracks the live frontier, not the whole plan.
    release(step.left);
    release(step.right);
  }

  Intermediate& root = inter.back();
  if (!root.is_dense) return std::move(root.sparse);
  if (ctx != nullptr) HETESIM_RETURN_NOT_OK(ctx->CheckAlive());
  return SparseMatrix::FromDense(root.dense, 0.0);
}

}  // namespace

SparseMatrix ExecuteChainPlan(const std::vector<SparseMatrix>& chain,
                              const ChainPlan& plan, int num_threads,
                              const SpGemmOptions& options) {
  return *ExecutePlan(chain, plan, num_threads, nullptr, options);
}

Result<SparseMatrix> ExecuteChainPlan(const std::vector<SparseMatrix>& chain,
                                      const ChainPlan& plan, int num_threads,
                                      const QueryContext& ctx,
                                      const SpGemmOptions& options) {
  return ExecutePlan(chain, plan, num_threads, &ctx, options);
}

}  // namespace hetesim
