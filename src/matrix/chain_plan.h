#ifndef HETESIM_MATRIX_CHAIN_PLAN_H_
#define HETESIM_MATRIX_CHAIN_PLAN_H_

#include <string>
#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "matrix/cost_model.h"
#include "matrix/sparse.h"
#include "matrix/spgemm.h"

namespace hetesim {

/// \brief Dynamic-programming association planner for path-matrix chains.
///
/// `MultiplyChain` used to evaluate strictly left-to-right with one fixed
/// CSR kernel. For meta-path products that is doubly wrong: association
/// order changes the total multiply-add count by orders of magnitude (the
/// classic matrix-chain problem), and long transition-chain products
/// densify to the point where CSR row assembly is pure overhead. The
/// planner runs the O(l^3) matrix-chain DP over a deterministic cost model
/// (`matrix/cost_model.h`) — exact nnz for the materialized inputs,
/// density propagation for unmaterialized intermediates — and records, per
/// product, whether the intermediate should switch to a dense
/// representation. Execution then dispatches each step to the matching
/// adaptive kernel (`matrix/spgemm.h`).
///
/// Plans are pure functions of the input shapes/nnz and the options, so
/// the same chain always yields the same plan, and a fixed plan executes
/// bitwise-identically at any thread count. See DESIGN.md §10.

/// Cost-model knobs. The defaults are calibrated for the CSR/dense kernels
/// in this repo (see DESIGN.md §10); tests pin them explicitly where the
/// choice matters.
struct ChainPlanOptions {
  /// An intermediate whose predicted density reaches this threshold is
  /// produced directly as a dense matrix (and stays dense downstream).
  double dense_switch_density = 0.25;
  /// Cost of one Gustavson multiply-add into a sparse accumulator,
  /// relative to a dense fused multiply-add (hashing / merging / touched
  /// list bookkeeping).
  double sparse_flop_cost = 4.0;
  /// Cost of materializing one stored CSR entry (sort + stitch + copy).
  double sparse_entry_cost = 2.0;
  /// Cost of one dense multiply-add (the unit of the model).
  double dense_flop_cost = 1.0;
  /// Cost per output cell of allocating/zeroing a dense intermediate.
  double dense_cell_cost = 0.125;
};

/// One planned product. Slots `0..num_inputs-1` are the chain inputs;
/// slot `num_inputs + t` is the result of step `t`. Every slot is consumed
/// by exactly one later step (the last step produces the final result).
struct ChainPlanStep {
  int left = 0;
  int right = 0;
  /// True if this product is produced (and kept) as a dense matrix —
  /// either because an operand is already dense or because its predicted
  /// density crosses `dense_switch_density`.
  bool dense_output = false;
  /// The planner's predicted shape/fill for this product.
  MatrixEstimate estimate;
};

/// A full association plan for one chain.
struct ChainPlan {
  int num_inputs = 0;
  /// Products in execution order; `steps.size() == num_inputs - 1`.
  std::vector<ChainPlanStep> steps;
  /// Total model cost of the plan, in dense-flop units.
  double predicted_cost = 0.0;

  /// Human/test-readable association, e.g. `"((0.1).(2.3))"`; a lone input
  /// renders as `"0"`. Dense products are bracketed as `[l.r]` instead of
  /// `(l.r)`.
  std::string Parenthesization() const;
};

/// Plans the cheapest association for inputs with the given shapes/fills.
/// The chain must be non-empty and conformable (checked). Deterministic:
/// ties between splits break toward the smallest split index.
ChainPlan PlanChain(const std::vector<MatrixEstimate>& inputs,
                    const ChainPlanOptions& options = {});

/// Convenience overload: plans from the materialized matrices' exact
/// shapes and nnz.
ChainPlan PlanChain(const std::vector<SparseMatrix>& chain,
                    const ChainPlanOptions& options = {});

/// Executes `plan` over `chain`, dispatching each step to the adaptive
/// sparse kernel or the dense-representation kernels per `dense_output`,
/// and converting a dense final product back to CSR (exact zeros dropped,
/// as in every CSR product). Bitwise deterministic for a fixed plan at any
/// `num_threads` (1 = sequential, 0 = all hardware threads).
SparseMatrix ExecuteChainPlan(const std::vector<SparseMatrix>& chain,
                              const ChainPlan& plan, int num_threads = 1,
                              const SpGemmOptions& options = {});

/// Context-aware execution: the context is checked between steps and
/// polled per chunk inside every kernel, chunk outputs and dense
/// intermediates are charged against the memory budget, and the
/// `spgemm.alloc` fault point is honored — the planned counterpart of
/// `SparseMatrix::MultiplyParallel(other, threads, ctx)`. Fails with
/// `Cancelled`, `DeadlineExceeded`, or `ResourceExhausted`.
[[nodiscard]] Result<SparseMatrix> ExecuteChainPlan(const std::vector<SparseMatrix>& chain,
                                      const ChainPlan& plan, int num_threads,
                                      const QueryContext& ctx,
                                      const SpGemmOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_MATRIX_CHAIN_PLAN_H_
