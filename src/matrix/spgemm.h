#ifndef HETESIM_MATRIX_SPGEMM_H_
#define HETESIM_MATRIX_SPGEMM_H_

#include <optional>

#include "common/context.h"
#include "common/result.h"
#include "matrix/dense.h"
#include "matrix/sparse.h"

namespace hetesim {

/// \brief Adaptive SpGEMM kernels for path-matrix products.
///
/// The seed Gustavson kernel (`SparseMatrix::Multiply`) uses one dense
/// scratch accumulator per row regardless of how much of the output row it
/// actually fills, paying O(cols) of zeroing/allocation and a sort of the
/// touched list even for rows that produce two entries. These kernels pick
/// a row accumulator from the row's *predicted fill* (the Gustavson upper
/// bound: the sum of `b`-row sizes over the `a`-row's entries) and add
/// dense-output paths for products that densify — the representation
/// switch the chain planner (`matrix/chain_plan.h`) exploits.
///
/// Every kernel accumulates each output column in the same visit order as
/// the seed kernel (ascending `a`-row position, then ascending `b`-row
/// position), so all accumulators — and the seed kernel — agree *bitwise*,
/// not just to rounding. Parallel variants chunk output rows and stitch by
/// row id, so results are bitwise identical at any thread count. Context
/// variants poll `ctx` per chunk, charge chunk outputs against the memory
/// budget and honor the `spgemm.alloc` fault point, exactly like
/// `SparseMatrix::MultiplyParallel(other, threads, ctx)`.

/// Per-row accumulator strategies.
enum class RowKernel {
  /// Keep the row sorted and merge each scaled `b` row in: no O(cols)
  /// scratch, no final sort. Right for rows with tiny predicted fill.
  kSortedMerge,
  /// Open-addressing hash accumulator sized to the predicted fill; entries
  /// are sorted once at emit. Right for medium fill over wide outputs,
  /// where a dense scratch would mostly touch zeros.
  kHash,
  /// The seed strategy: dense scratch + touched list + sort. Right once
  /// the row fills a sizable fraction of the output width.
  kDenseScratch,
};

/// Picks the accumulator for one output row. `fill_upper_bound` is the
/// Gustavson bound on the row's stored entries (duplicate columns counted
/// once per contribution); `out_cols` is the output width. Thresholds are
/// documented in DESIGN.md §10.
RowKernel ChooseRowKernel(Index fill_upper_bound, Index out_cols);

/// Kernel-selection overrides, used by the equivalence tests to pin every
/// row to one accumulator. Defaults adapt per row.
struct SpGemmOptions {
  std::optional<RowKernel> forced_kernel;
};

/// Adaptive sparse-sparse product `a * b`, bitwise identical to
/// `a.Multiply(b)` at any thread count (1 sequential, 0 = all hardware
/// threads).
SparseMatrix MultiplySparseAdaptive(const SparseMatrix& a, const SparseMatrix& b,
                                    int num_threads = 1,
                                    const SpGemmOptions& options = {});

/// Context-aware adaptive product: polled per chunk, budget-charged,
/// `spgemm.alloc` fault point honored.
[[nodiscard]] Result<SparseMatrix> MultiplySparseAdaptive(const SparseMatrix& a,
                                            const SparseMatrix& b, int num_threads,
                                            const QueryContext& ctx,
                                            const SpGemmOptions& options = {});

/// Gustavson product `a * b` accumulated directly into a dense matrix —
/// the representation switch for products predicted (or known) to densify:
/// no touched lists, no per-row sorts, no CSR materialization. The dense
/// output (rows*cols doubles) is reserved against the budget up front.
DenseMatrix MultiplySparseSparseDense(const SparseMatrix& a,
                                      const SparseMatrix& b,
                                      int num_threads = 1);
[[nodiscard]] Result<DenseMatrix> MultiplySparseSparseDense(const SparseMatrix& a,
                                              const SparseMatrix& b,
                                              int num_threads,
                                              const QueryContext& ctx);

/// Dense-representation continuation kernels for the rest of a chain once
/// an intermediate has switched: `dense * sparse` streams the sparse rows
/// of `b`, `sparse * dense` streams the dense rows of `b`, and
/// `dense * dense` is the classic i-k-j product. All are row-parallel with
/// the same chunk-granular context polling; the non-context overloads are
/// fault-free, like `SparseMatrix::Multiply` next to its context variant.
DenseMatrix MultiplyDenseSparseParallel(const DenseMatrix& a,
                                        const SparseMatrix& b,
                                        int num_threads = 1);
[[nodiscard]] Result<DenseMatrix> MultiplyDenseSparseParallel(const DenseMatrix& a,
                                                const SparseMatrix& b,
                                                int num_threads,
                                                const QueryContext& ctx);
DenseMatrix MultiplySparseDenseParallel(const SparseMatrix& a,
                                        const DenseMatrix& b,
                                        int num_threads = 1);
[[nodiscard]] Result<DenseMatrix> MultiplySparseDenseParallel(const SparseMatrix& a,
                                                const DenseMatrix& b,
                                                int num_threads,
                                                const QueryContext& ctx);
DenseMatrix MultiplyDenseDenseParallel(const DenseMatrix& a,
                                       const DenseMatrix& b,
                                       int num_threads = 1);
[[nodiscard]] Result<DenseMatrix> MultiplyDenseDenseParallel(const DenseMatrix& a,
                                               const DenseMatrix& b,
                                               int num_threads,
                                               const QueryContext& ctx);

}  // namespace hetesim

#endif  // HETESIM_MATRIX_SPGEMM_H_
