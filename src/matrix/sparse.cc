#include "matrix/sparse.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/fault_injection.h"
#include "common/parallel.h"

namespace hetesim {

SparseMatrix::SparseMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols), row_ptr_(static_cast<size_t>(rows) + 1, 0) {
  HETESIM_CHECK_GE(rows, 0);
  HETESIM_CHECK_GE(cols, 0);
}

SparseMatrix SparseMatrix::FromTriplets(Index rows, Index cols,
                                        std::vector<Triplet> triplets) {
  SparseMatrix out(rows, cols);
  for (const Triplet& t : triplets) {
    HETESIM_CHECK(t.row >= 0 && t.row < rows && t.col >= 0 && t.col < cols)
        << "triplet (" << t.row << "," << t.col << ") out of bounds for "
        << rows << "x" << cols;
  }
  std::sort(triplets.begin(), triplets.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  // Merge duplicates, dropping entries that cancel to exactly zero.
  out.col_idx_.reserve(triplets.size());
  out.values_.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    const Index row = triplets[i].row;
    const Index col = triplets[i].col;
    double sum = 0.0;
    while (i < triplets.size() && triplets[i].row == row && triplets[i].col == col) {
      sum += triplets[i].value;
      ++i;
    }
    if (sum != 0.0) {
      out.col_idx_.push_back(col);
      out.values_.push_back(sum);
      ++out.row_ptr_[static_cast<size_t>(row) + 1];
    }
  }
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    out.row_ptr_[r + 1] += out.row_ptr_[r];
  }
  return out;
}

SparseMatrix SparseMatrix::FromCsr(Index rows, Index cols,
                                   std::vector<Index> row_ptr,
                                   std::vector<Index> col_idx,
                                   std::vector<double> values) {
  SparseMatrix out(rows, cols);
  HETESIM_CHECK_EQ(row_ptr.size(), static_cast<size_t>(rows) + 1);
  HETESIM_CHECK_EQ(col_idx.size(), values.size());
  HETESIM_CHECK_EQ(static_cast<size_t>(row_ptr.back()), col_idx.size());
  HETESIM_CHECK_EQ(row_ptr.front(), 0);
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    HETESIM_CHECK_LE(row_ptr[r], row_ptr[r + 1]);
  }
#ifndef NDEBUG
  // Per-entry validation is an extra O(nnz) pass over output arrays the
  // SpGEMM kernels already emit sorted, and it is measurable on products
  // whose cost is emission-dominated — so it runs in debug builds only.
  for (size_t r = 0; r < static_cast<size_t>(rows); ++r) {
    for (Index k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const Index c = col_idx[static_cast<size_t>(k)];
      HETESIM_CHECK(c >= 0 && c < cols)
          << "CSR column " << c << " out of bounds for width " << cols;
      HETESIM_CHECK(k == row_ptr[r] || col_idx[static_cast<size_t>(k) - 1] < c)
          << "CSR columns must be strictly ascending within a row";
    }
  }
#endif
  out.row_ptr_ = std::move(row_ptr);
  out.col_idx_ = std::move(col_idx);
  out.values_ = std::move(values);
  return out;
}

SparseMatrix SparseMatrix::FromDense(const DenseMatrix& dense, double threshold) {
  // A dense scan already visits cells in CSR order, so build the arrays
  // directly instead of routing millions of cells through a triplet sort.
  std::vector<Index> row_ptr(static_cast<size_t>(dense.rows()) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  for (Index i = 0; i < dense.rows(); ++i) {
    for (Index j = 0; j < dense.cols(); ++j) {
      const double v = dense(i, j);
      if (std::abs(v) > threshold) {
        col_idx.push_back(j);
        values.push_back(v);
      }
    }
    row_ptr[static_cast<size_t>(i) + 1] = static_cast<Index>(col_idx.size());
  }
  return FromCsr(dense.rows(), dense.cols(), std::move(row_ptr),
                 std::move(col_idx), std::move(values));
}

SparseMatrix SparseMatrix::Identity(Index n) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) triplets.push_back({i, i, 1.0});
  return FromTriplets(n, n, std::move(triplets));
}

double SparseMatrix::At(Index r, Index c) const {
  HETESIM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  auto indices = RowIndices(r);
  auto it = std::lower_bound(indices.begin(), indices.end(), c);
  if (it == indices.end() || *it != c) return 0.0;
  return values_[static_cast<size_t>(row_ptr_[static_cast<size_t>(r)] +
                                     (it - indices.begin()))];
}

std::span<const Index> SparseMatrix::RowIndices(Index r) const {
  HETESIM_DCHECK(r >= 0 && r < rows_);
  const size_t begin = static_cast<size_t>(row_ptr_[static_cast<size_t>(r)]);
  const size_t end = static_cast<size_t>(row_ptr_[static_cast<size_t>(r) + 1]);
  return {col_idx_.data() + begin, end - begin};
}

std::span<const double> SparseMatrix::RowValues(Index r) const {
  HETESIM_DCHECK(r >= 0 && r < rows_);
  const size_t begin = static_cast<size_t>(row_ptr_[static_cast<size_t>(r)]);
  const size_t end = static_cast<size_t>(row_ptr_[static_cast<size_t>(r) + 1]);
  return {values_.data() + begin, end - begin};
}

double SparseMatrix::RowSum(Index r) const {
  double acc = 0.0;
  for (double v : RowValues(r)) acc += v;
  return acc;
}

SparseMatrix SparseMatrix::Transpose() const {
  SparseMatrix out(cols_, rows_);
  out.col_idx_.resize(values_.size());
  out.values_.resize(values_.size());
  // Count entries per output row (input column).
  for (Index c : col_idx_) ++out.row_ptr_[static_cast<size_t>(c) + 1];
  for (size_t r = 0; r < static_cast<size_t>(cols_); ++r) {
    out.row_ptr_[r + 1] += out.row_ptr_[r];
  }
  std::vector<Index> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (Index r = 0; r < rows_; ++r) {
    auto indices = RowIndices(r);
    auto values = RowValues(r);
    for (size_t k = 0; k < indices.size(); ++k) {
      const size_t pos = static_cast<size_t>(cursor[static_cast<size_t>(indices[k])]++);
      out.col_idx_[pos] = r;
      out.values_[pos] = values[k];
    }
  }
  // Column indices within each output row are ascending because the source
  // rows were visited in ascending order.
  return out;
}

namespace {

/// Rows per context check when a budget/deadline-aware product runs
/// sequentially: small enough that one stripe of even a dense-ish product
/// completes in well under a millisecond at DBLP scale, so cancellation
/// latency stays bounded without a parallel region.
constexpr Index kSequentialStripeRows = 64;

/// One Gustavson pass over the row range `[row_begin, row_end)` of `a * b`,
/// appending results to chunk-local arrays. `row_sizes[i]` receives the
/// number of stored entries of output row `row_begin + i`.
void GustavsonRange(const SparseMatrix& a, const SparseMatrix& b, Index row_begin,
                    Index row_end, std::vector<Index>* row_sizes,
                    std::vector<Index>* col_idx, std::vector<double>* values) {
  std::vector<double> accumulator(static_cast<size_t>(b.cols()), 0.0);
  std::vector<Index> touched;
  for (Index i = row_begin; i < row_end; ++i) {
    touched.clear();
    auto a_indices = a.RowIndices(i);
    auto a_values = a.RowValues(i);
    for (size_t ka = 0; ka < a_indices.size(); ++ka) {
      const Index k = a_indices[ka];
      const double a_ik = a_values[ka];
      auto b_indices = b.RowIndices(k);
      auto b_values = b.RowValues(k);
      for (size_t kb = 0; kb < b_indices.size(); ++kb) {
        const Index j = b_indices[kb];
        if (accumulator[static_cast<size_t>(j)] == 0.0) touched.push_back(j);
        accumulator[static_cast<size_t>(j)] += a_ik * b_values[kb];
      }
    }
    std::sort(touched.begin(), touched.end());
    Index row_nnz = 0;
    for (Index j : touched) {
      const double v = accumulator[static_cast<size_t>(j)];
      accumulator[static_cast<size_t>(j)] = 0.0;
      if (v != 0.0) {
        col_idx->push_back(j);
        values->push_back(v);
        ++row_nnz;
      }
    }
    row_sizes->push_back(row_nnz);
  }
}

}  // namespace

SparseMatrix SparseMatrix::Multiply(const SparseMatrix& other) const {
  HETESIM_CHECK_EQ(cols_, other.rows_);
  SparseMatrix out(rows_, other.cols_);
  std::vector<Index> row_sizes;
  row_sizes.reserve(static_cast<size_t>(rows_));
  GustavsonRange(*this, other, 0, rows_, &row_sizes, &out.col_idx_, &out.values_);
  for (size_t r = 0; r < static_cast<size_t>(rows_); ++r) {
    out.row_ptr_[r + 1] = out.row_ptr_[r] + row_sizes[r];
  }
  return out;
}

SparseMatrix SparseMatrix::MultiplyParallel(const SparseMatrix& other,
                                            int num_threads) const {
  HETESIM_CHECK_EQ(cols_, other.rows_);
  const int threads = ResolveNumThreads(num_threads);
  if (threads <= 1 || rows_ < 2) return Multiply(other);
  // A few chunks per thread: the per-chunk output buffers are stitched by
  // deterministic chunk id (so the result is bitwise identical regardless
  // of execution order), and the extra chunks let the pool balance rows of
  // uneven density.
  const Index chunks =
      std::min<Index>(static_cast<Index>(threads) * 4, std::max<Index>(rows_, 1));
  struct ChunkResult {
    std::vector<Index> row_sizes;
    std::vector<Index> col_idx;
    std::vector<double> values;
  };
  std::vector<ChunkResult> results(static_cast<size_t>(chunks));
  const Index chunk_size = (rows_ + chunks - 1) / chunks;
  GrainOptions grain;
  grain.cost_per_element = 1e9;  // each chunk id is its own block
  ParallelFor(0, chunks, threads, [&](int64_t chunk_begin, int64_t chunk_end) {
    for (int64_t c = chunk_begin; c < chunk_end; ++c) {
      const Index row_begin = static_cast<Index>(c) * chunk_size;
      const Index row_end = std::min(rows_, row_begin + chunk_size);
      if (row_begin >= row_end) continue;
      ChunkResult& result = results[static_cast<size_t>(c)];
      GustavsonRange(*this, other, row_begin, row_end, &result.row_sizes,
                     &result.col_idx, &result.values);
    }
  }, grain);
  // Stitch the chunk outputs back into one CSR matrix.
  SparseMatrix out(rows_, other.cols_);
  size_t total_nnz = 0;
  for (const ChunkResult& result : results) total_nnz += result.values.size();
  out.col_idx_.reserve(total_nnz);
  out.values_.reserve(total_nnz);
  size_t row = 0;
  for (const ChunkResult& result : results) {
    for (Index size : result.row_sizes) {
      out.row_ptr_[row + 1] = out.row_ptr_[row] + size;
      ++row;
    }
    out.col_idx_.insert(out.col_idx_.end(), result.col_idx.begin(),
                        result.col_idx.end());
    out.values_.insert(out.values_.end(), result.values.begin(),
                       result.values.end());
  }
  HETESIM_CHECK_EQ(row, static_cast<size_t>(rows_));
  return out;
}

Result<SparseMatrix> SparseMatrix::MultiplyParallel(const SparseMatrix& other,
                                                    int num_threads,
                                                    const QueryContext& ctx) const {
  // Caller error on a Status-returning path: report, don't abort (the plain
  // Multiply/MultiplyParallel overloads keep the CHECK).
  if (cols_ != other.rows_) {
    return Status::InvalidArgument(
        "inner dimension mismatch: cols()=" + std::to_string(cols_) +
        " vs rows()=" + std::to_string(other.rows_));
  }
  HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
  const int threads = ResolveNumThreads(num_threads);

  struct ChunkResult {
    std::vector<Index> row_sizes;
    std::vector<Index> col_idx;
    std::vector<double> values;
    MemoryReservation reservation;
  };
  // Sequential case: same Gustavson pass, striped so the context is still
  // polled at bounded intervals (a stripe is the sequential "chunk").
  const bool sequential = threads <= 1 || rows_ < 2;
  const Index chunks =
      sequential ? std::max<Index>((rows_ + kSequentialStripeRows - 1) /
                                       kSequentialStripeRows, 1)
                 : std::min<Index>(static_cast<Index>(threads) * 4,
                                   std::max<Index>(rows_, 1));
  const Index chunk_size = (rows_ + chunks - 1) / chunks;
  std::vector<ChunkResult> results(static_cast<size_t>(chunks));
  SharedStatus region_status;

  auto run_chunk = [&](Index c) {
    // A failed/cancelled region turns every remaining chunk into a no-op:
    // the pool task still runs (and the region joins normally — nothing is
    // leaked), it just does no work. Promptness is therefore bounded by
    // the one chunk already in flight.
    if (!region_status.ok()) return;
    Status alive = ctx.CheckAlive();
    if (!alive.ok()) {
      region_status.Update(std::move(alive));
      return;
    }
    if (HETESIM_FAULT_POINT("spgemm.alloc")) {
      region_status.Update(Status::ResourceExhausted("injected: spgemm.alloc"));
      return;
    }
    const Index row_begin = c * chunk_size;
    const Index row_end = std::min(rows_, row_begin + chunk_size);
    if (row_begin >= row_end) return;
    ChunkResult& result = results[static_cast<size_t>(c)];
    GustavsonRange(*this, other, row_begin, row_end, &result.row_sizes,
                   &result.col_idx, &result.values);
    // Charge this chunk's output against the query budget; on exhaustion
    // the chunk's buffers are dropped immediately and the region winds
    // down (budgeted peak usage, not post-hoc accounting).
    Result<MemoryReservation> reservation = ctx.Reserve(
        result.col_idx.capacity() * sizeof(Index) +
        result.values.capacity() * sizeof(double) +
        result.row_sizes.capacity() * sizeof(Index));
    if (!reservation.ok()) {
      result = ChunkResult();
      region_status.Update(reservation.status());
      return;
    }
    result.reservation = *std::move(reservation);
  };

  if (sequential || chunks < 2) {
    for (Index c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    GrainOptions grain;
    grain.cost_per_element = 1e9;  // each chunk id is its own block
    ParallelFor(0, chunks, threads, [&](int64_t chunk_begin, int64_t chunk_end) {
      for (int64_t c = chunk_begin; c < chunk_end; ++c) {
        run_chunk(static_cast<Index>(c));
      }
    }, grain);
  }
  HETESIM_RETURN_NOT_OK(region_status.status());

  SparseMatrix out(rows_, other.cols_);
  size_t total_nnz = 0;
  for (const ChunkResult& result : results) total_nnz += result.values.size();
  out.col_idx_.reserve(total_nnz);
  out.values_.reserve(total_nnz);
  size_t row = 0;
  // Stitch copy of already-computed chunks; the parallel region above
  // polled per chunk and the output memory is already reserved.
  for (ChunkResult& result : results) {  // hetesim-lint: allow(cancel-poll)
    for (Index size : result.row_sizes) {
      out.row_ptr_[row + 1] = out.row_ptr_[row] + size;
      ++row;
    }
    out.col_idx_.insert(out.col_idx_.end(), result.col_idx.begin(),
                        result.col_idx.end());
    out.values_.insert(out.values_.end(), result.values.begin(),
                       result.values.end());
  }
  // Internal stitch invariant (not a caller error): debug-only check on
  // this Status-returning path.
  HETESIM_DCHECK(row == static_cast<size_t>(rows_));
  return out;
}

DenseMatrix SparseMatrix::MultiplyDense(const DenseMatrix& other) const {
  HETESIM_CHECK_EQ(cols_, other.rows());
  DenseMatrix out(rows_, other.cols());
  for (Index i = 0; i < rows_; ++i) {
    double* out_row = out.RowData(i);
    auto indices = RowIndices(i);
    auto values = RowValues(i);
    for (size_t k = 0; k < indices.size(); ++k) {
      const double a_ik = values[k];
      const double* b_row = other.RowData(indices[k]);
      for (Index j = 0; j < other.cols(); ++j) out_row[j] += a_ik * b_row[j];
    }
  }
  return out;
}

std::vector<double> SparseMatrix::MultiplyVector(const std::vector<double>& x) const {
  HETESIM_CHECK_EQ(static_cast<size_t>(cols_), x.size());
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    auto indices = RowIndices(i);
    auto values = RowValues(i);
    double acc = 0.0;
    for (size_t k = 0; k < indices.size(); ++k) {
      acc += values[k] * x[static_cast<size_t>(indices[k])];
    }
    out[static_cast<size_t>(i)] = acc;
  }
  return out;
}

std::vector<double> SparseMatrix::LeftMultiplyVector(const std::vector<double>& x) const {
  HETESIM_CHECK_EQ(static_cast<size_t>(rows_), x.size());
  std::vector<double> out(static_cast<size_t>(cols_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    const double xi = x[static_cast<size_t>(i)];
    if (xi == 0.0) continue;
    auto indices = RowIndices(i);
    auto values = RowValues(i);
    for (size_t k = 0; k < indices.size(); ++k) {
      out[static_cast<size_t>(indices[k])] += xi * values[k];
    }
  }
  return out;
}

SparseMatrix SparseMatrix::RowNormalized() const {
  SparseMatrix out = *this;
  for (Index r = 0; r < rows_; ++r) {
    const double sum = RowSum(r);
    if (sum == 0.0) continue;
    const size_t begin = static_cast<size_t>(row_ptr_[static_cast<size_t>(r)]);
    const size_t end = static_cast<size_t>(row_ptr_[static_cast<size_t>(r) + 1]);
    for (size_t k = begin; k < end; ++k) out.values_[k] /= sum;
  }
  return out;
}

SparseMatrix SparseMatrix::ColNormalized() const {
  std::vector<double> col_sums(static_cast<size_t>(cols_), 0.0);
  for (size_t k = 0; k < values_.size(); ++k) {
    col_sums[static_cast<size_t>(col_idx_[k])] += values_[k];
  }
  SparseMatrix out = *this;
  for (size_t k = 0; k < values_.size(); ++k) {
    const double sum = col_sums[static_cast<size_t>(col_idx_[k])];
    if (sum != 0.0) out.values_[k] /= sum;
  }
  return out;
}

SparseMatrix SparseMatrix::Scaled(double factor) const {
  SparseMatrix out = *this;
  for (double& v : out.values_) v *= factor;
  return out;
}

SparseMatrix SparseMatrix::Add(const SparseMatrix& other) const {
  HETESIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  std::vector<Triplet> triplets;
  triplets.reserve(values_.size() + other.values_.size());
  for (Index r = 0; r < rows_; ++r) {
    auto ai = RowIndices(r);
    auto av = RowValues(r);
    for (size_t k = 0; k < ai.size(); ++k) triplets.push_back({r, ai[k], av[k]});
    auto bi = other.RowIndices(r);
    auto bv = other.RowValues(r);
    for (size_t k = 0; k < bi.size(); ++k) triplets.push_back({r, bi[k], bv[k]});
  }
  return FromTriplets(rows_, cols_, std::move(triplets));
}

double SparseMatrix::RowDot(Index r, const SparseMatrix& other, Index s) const {
  HETESIM_CHECK_EQ(cols_, other.cols_);
  auto ai = RowIndices(r);
  auto av = RowValues(r);
  auto bi = other.RowIndices(s);
  auto bv = other.RowValues(s);
  double acc = 0.0;
  size_t p = 0;
  size_t q = 0;
  while (p < ai.size() && q < bi.size()) {
    if (ai[p] < bi[q]) {
      ++p;
    } else if (ai[p] > bi[q]) {
      ++q;
    } else {
      acc += av[p] * bv[q];
      ++p;
      ++q;
    }
  }
  return acc;
}

double SparseMatrix::RowNorm(Index r) const {
  double acc = 0.0;
  for (double v : RowValues(r)) acc += v * v;
  return std::sqrt(acc);
}

double SparseMatrix::RowCosine(Index r, const SparseMatrix& other, Index s) const {
  const double na = RowNorm(r);
  const double nb = other.RowNorm(s);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return RowDot(r, other, s) / (na * nb);
}

std::vector<double> SparseMatrix::RowDense(Index r) const {
  std::vector<double> out(static_cast<size_t>(cols_), 0.0);
  auto indices = RowIndices(r);
  auto values = RowValues(r);
  for (size_t k = 0; k < indices.size(); ++k) {
    out[static_cast<size_t>(indices[k])] = values[k];
  }
  return out;
}

DenseMatrix SparseMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (Index r = 0; r < rows_; ++r) {
    auto indices = RowIndices(r);
    auto values = RowValues(r);
    for (size_t k = 0; k < indices.size(); ++k) out(r, indices[k]) = values[k];
  }
  return out;
}

double SparseMatrix::Density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(NumNonZeros()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

bool SparseMatrix::ApproxEquals(const SparseMatrix& other, double tolerance) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  // Compare by merging both rows; structure may differ even if values agree.
  for (Index r = 0; r < rows_; ++r) {
    auto ai = RowIndices(r);
    auto av = RowValues(r);
    auto bi = other.RowIndices(r);
    auto bv = other.RowValues(r);
    size_t p = 0;
    size_t q = 0;
    while (p < ai.size() || q < bi.size()) {
      if (q == bi.size() || (p < ai.size() && ai[p] < bi[q])) {
        if (std::abs(av[p]) > tolerance) return false;
        ++p;
      } else if (p == ai.size() || bi[q] < ai[p]) {
        if (std::abs(bv[q]) > tolerance) return false;
        ++q;
      } else {
        if (std::abs(av[p] - bv[q]) > tolerance) return false;
        ++p;
        ++q;
      }
    }
  }
  return true;
}

}  // namespace hetesim
