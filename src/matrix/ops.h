#ifndef HETESIM_MATRIX_OPS_H_
#define HETESIM_MATRIX_OPS_H_

#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "matrix/dense.h"
#include "matrix/sparse.h"

namespace hetesim {

/// Dot product of two equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm2(const std::vector<double>& a);

/// Sum of entries (L1 norm for non-negative vectors).
double Sum(const std::vector<double>& a);

/// Scales `a` in place so it sums to 1; no-op for an all-zero vector.
void NormalizeL1(std::vector<double>& a);

/// Scales `a` in place to unit L2 norm; no-op for an all-zero vector.
void NormalizeL2(std::vector<double>& a);

/// Cosine similarity in [-1, 1]; 0 when either vector is all-zero. For two
/// reachable-probability distributions this is the normalized HeteSim
/// combination step (Definition 10 of the paper).
double CosineSimilarity(const std::vector<double>& a, const std::vector<double>& b);

/// Dense-times-sparse product `a * b`, streaming the sparse rows of `b`.
DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const SparseMatrix& b);

/// Multiplies a chain of sparse matrices:
/// `chain[0] * chain[1] * ... * chain.back()`. Adjacent dimensions must
/// agree; an empty chain is invalid (aborts via `HETESIM_CHECK`; the
/// context variant returns `InvalidArgument` instead). The association
/// order and per-product representation (CSR vs dense) are chosen by the
/// cost-model planner (`matrix/chain_plan.h`); the plan is a pure function
/// of the chain's shapes and fills, so repeated calls on the same chain
/// are bitwise reproducible. Association order changes floating-point
/// rounding, so results agree with the left-to-right product to ~1e-12,
/// not bitwise — use `MultiplyChainLeftToRight` where the seed order
/// itself is wanted.
SparseMatrix MultiplyChain(const std::vector<SparseMatrix>& chain);

/// The seed evaluation order: strictly left-to-right with the fixed CSR
/// Gustavson kernel. Kept as the planner's correctness reference and the
/// benchmark baseline. `num_threads` follows the library convention
/// (1 sequential, 0 = all hardware threads).
SparseMatrix MultiplyChainLeftToRight(const std::vector<SparseMatrix>& chain,
                                      int num_threads = 1);

/// Deadline/cancellation/budget-aware `MultiplyChain`: rejects an empty
/// chain with `InvalidArgument`, then runs the same planned execution
/// through the context-checked kernels (polled at chunk granularity, chunk
/// outputs and dense intermediates charged against the memory budget), so
/// a long relevance-path product can be abandoned mid-plan. `num_threads`
/// follows the library convention (1 sequential, 0 = all hardware
/// threads). For a given chain this returns results bitwise identical to
/// `MultiplyChain` at any thread count (same plan, same kernels).
[[nodiscard]] Result<SparseMatrix> MultiplyChainWithContext(const std::vector<SparseMatrix>& chain,
                                              int num_threads,
                                              const QueryContext& ctx);

/// Multiplies a chain of sparse matrices into a dense result, densifying
/// after the first product. Faster than `MultiplyChain` once intermediate
/// products become dense (long paths on well-connected networks).
DenseMatrix MultiplyChainDense(const std::vector<SparseMatrix>& chain);

/// Row vector times a chain of sparse matrices:
/// `x^T * chain[0] * ... * chain.back()`. This is the single-source
/// reachable-probability computation — O(sum of nnz) instead of a full
/// matrix product, the key to fast online queries (Section 4.6).
std::vector<double> VectorThroughChain(std::vector<double> x,
                                       const std::vector<SparseMatrix>& chain);

/// `VectorThroughChain` with approximate truncation (the Section 4.6
/// suggestion of "approximate algorithms ... with a small loss of
/// accuracy"): after each step, entries below `epsilon` are dropped to
/// keep the frontier sparse. For row-stochastic chains the total dropped
/// probability mass — and hence the absolute error of any downstream dot
/// product against a vector bounded by 1 — is at most
/// `chain.size() * epsilon * x.size()`. `epsilon <= 0` is exact.
std::vector<double> VectorThroughChainTruncated(std::vector<double> x,
                                                const std::vector<SparseMatrix>& chain,
                                                double epsilon);

}  // namespace hetesim

#endif  // HETESIM_MATRIX_OPS_H_
