#ifndef HETESIM_MATRIX_DENSE_H_
#define HETESIM_MATRIX_DENSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace hetesim {

/// Signed index type used across the linear-algebra substrate (Google style
/// prefers signed arithmetic; sizes here are far below 2^63).
using Index = int64_t;

/// \brief Row-major dense matrix of doubles.
///
/// Used for relevance matrices (|A| x |B| similarity tables), spectral
/// embeddings and the Jacobi eigensolver. Sparse structure lives in
/// `SparseMatrix`; chains of transition-matrix products typically start
/// sparse and densify, so both representations interconvert cheaply.
class DenseMatrix {
 public:
  /// Empty 0x0 matrix.
  DenseMatrix() : rows_(0), cols_(0) {}
  /// `rows` x `cols` matrix, zero-initialized.
  DenseMatrix(Index rows, Index cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {
    HETESIM_CHECK_GE(rows, 0);
    HETESIM_CHECK_GE(cols, 0);
  }
  /// `rows` x `cols` matrix from row-major `data` (size must match).
  DenseMatrix(Index rows, Index cols, std::vector<double> data);

  DenseMatrix(const DenseMatrix&) = default;
  DenseMatrix& operator=(const DenseMatrix&) = default;
  DenseMatrix(DenseMatrix&&) noexcept = default;
  DenseMatrix& operator=(DenseMatrix&&) noexcept = default;

  /// The `n` x `n` identity.
  static DenseMatrix Identity(Index n);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  /// Total number of entries.
  Index size() const { return rows_ * cols_; }

  double operator()(Index r, Index c) const {
    HETESIM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double& operator()(Index r, Index c) {
    HETESIM_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Pointer to the start of row `r` (contiguous, `cols()` entries).
  const double* RowData(Index r) const {
    HETESIM_DCHECK(r >= 0 && r < rows_);
    return data_.data() + r * cols_;
  }
  double* RowData(Index r) {
    HETESIM_DCHECK(r >= 0 && r < rows_);
    return data_.data() + r * cols_;
  }

  /// Copy of row `r` as a vector.
  std::vector<double> Row(Index r) const;
  /// Copy of column `c` as a vector.
  std::vector<double> Col(Index c) const;

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Matrix product `this * other`; dimensions must agree.
  DenseMatrix Multiply(const DenseMatrix& other) const;
  /// Matrix-vector product `this * x`; `x.size() == cols()`.
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;
  /// Transposed copy.
  DenseMatrix Transpose() const;

  /// Copy restricted to the given rows and columns, in the given order
  /// (indices may repeat). Used e.g. to carve the labeled sample out of a
  /// full similarity matrix before clustering.
  DenseMatrix Submatrix(const std::vector<Index>& row_ids,
                        const std::vector<Index>& col_ids) const;

  /// Element-wise sum / difference / scale.
  DenseMatrix Add(const DenseMatrix& other) const;
  DenseMatrix Subtract(const DenseMatrix& other) const;
  DenseMatrix Scale(double factor) const;

  /// L1-normalizes each row in place; all-zero rows are left untouched.
  /// The sweep is row-parallel on the shared thread pool: `num_threads`
  /// follows the usual convention (1 = sequential, 0 = all hardware
  /// threads); results are identical at any thread count.
  void NormalizeRowsL1(int num_threads = 1);
  /// L1-normalizes each column in place; all-zero columns are untouched.
  /// Same `num_threads` convention as `NormalizeRowsL1`.
  void NormalizeColsL1(int num_threads = 1);

  /// max_ij |a_ij - b_ij|; matrices must have identical shapes.
  double MaxAbsDiff(const DenseMatrix& other) const;
  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// True iff every entry differs from `other` by at most `tolerance`.
  bool ApproxEquals(const DenseMatrix& other, double tolerance = 1e-9) const;

  /// Raw row-major storage (for tests and serialization).
  const std::vector<double>& data() const { return data_; }

  /// Human-readable rendering with fixed precision, for debugging.
  std::string ToString(int precision = 4) const;

 private:
  Index rows_;
  Index cols_;
  std::vector<double> data_;
};

}  // namespace hetesim

#endif  // HETESIM_MATRIX_DENSE_H_
