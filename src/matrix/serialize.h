#ifndef HETESIM_MATRIX_SERIALIZE_H_
#define HETESIM_MATRIX_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "matrix/dense.h"
#include "matrix/sparse.h"

namespace hetesim {

/// \brief Binary (de)serialization of matrices, the substrate for the
/// Section 4.6 offline-materialization workflow: reachable-probability
/// matrices for frequently-used relevance paths are computed once, written
/// to disk and memory-mapped-style reloaded by query servers.
///
/// Format (little-endian, host order — files are machine-local artifacts):
///   sparse: "HSM1" | rows i64 | cols i64 | nnz i64 | row_ptr | col_idx | values
///   dense:  "HDM1" | rows i64 | cols i64 | values row-major
/// Readers validate magic, sizes, CSR monotonicity, and value finiteness
/// (NaN/Inf payloads are corruption and are rejected) before constructing.

/// Writes `matrix` to `stream` in HSM1 format.
[[nodiscard]] Status WriteSparseMatrix(const SparseMatrix& matrix, std::ostream& stream);
/// Reads an HSM1 sparse matrix.
[[nodiscard]] Result<SparseMatrix> ReadSparseMatrix(std::istream& stream);

/// Writes `matrix` to `stream` in HDM1 format.
[[nodiscard]] Status WriteDenseMatrix(const DenseMatrix& matrix, std::ostream& stream);
/// Reads an HDM1 dense matrix.
[[nodiscard]] Result<DenseMatrix> ReadDenseMatrix(std::istream& stream);

/// File-path conveniences.
[[nodiscard]] Status WriteSparseMatrixToFile(const SparseMatrix& matrix, const std::string& path);
[[nodiscard]] Result<SparseMatrix> ReadSparseMatrixFromFile(const std::string& path);

}  // namespace hetesim

#endif  // HETESIM_MATRIX_SERIALIZE_H_
