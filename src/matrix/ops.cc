#include "matrix/ops.h"

#include <cmath>

#include "common/check.h"
#include "matrix/chain_plan.h"

namespace hetesim {

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  HETESIM_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& a) {
  double acc = 0.0;
  for (double v : a) acc += v * v;
  return std::sqrt(acc);
}

double Sum(const std::vector<double>& a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

void NormalizeL1(std::vector<double>& a) {
  double total = 0.0;
  for (double v : a) total += std::abs(v);
  if (total == 0.0) return;
  for (double& v : a) v /= total;
}

void NormalizeL2(std::vector<double>& a) {
  const double norm = Norm2(a);
  if (norm == 0.0) return;
  for (double& v : a) v /= norm;
}

double CosineSimilarity(const std::vector<double>& a, const std::vector<double>& b) {
  const double na = Norm2(a);
  const double nb = Norm2(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

DenseMatrix MultiplyDenseSparse(const DenseMatrix& a, const SparseMatrix& b) {
  HETESIM_CHECK_EQ(a.cols(), b.rows());
  DenseMatrix out(a.rows(), b.cols());
  for (Index r = 0; r < a.rows(); ++r) {
    const double* in_row = a.RowData(r);
    double* out_row = out.RowData(r);
    for (Index k = 0; k < a.cols(); ++k) {
      const double v = in_row[k];
      if (v == 0.0) continue;
      auto indices = b.RowIndices(k);
      auto values = b.RowValues(k);
      for (size_t t = 0; t < indices.size(); ++t) {
        out_row[indices[t]] += v * values[t];
      }
    }
  }
  return out;
}

SparseMatrix MultiplyChain(const std::vector<SparseMatrix>& chain) {
  HETESIM_CHECK(!chain.empty()) << "empty matrix chain";
  return ExecuteChainPlan(chain, PlanChain(chain));
}

SparseMatrix MultiplyChainLeftToRight(const std::vector<SparseMatrix>& chain,
                                      int num_threads) {
  HETESIM_CHECK(!chain.empty()) << "empty matrix chain";
  SparseMatrix product = chain[0];
  for (size_t i = 1; i < chain.size(); ++i) {
    product = product.MultiplyParallel(chain[i], num_threads);
  }
  return product;
}

Result<SparseMatrix> MultiplyChainWithContext(const std::vector<SparseMatrix>& chain,
                                              int num_threads,
                                              const QueryContext& ctx) {
  if (chain.empty()) {
    return Status::InvalidArgument("empty matrix chain");
  }
  HETESIM_ASSIGN_OR_RETURN(
      SparseMatrix product,
      ExecuteChainPlan(chain, PlanChain(chain), num_threads, ctx));
  HETESIM_RETURN_NOT_OK(ctx.CheckAlive());
  return product;
}

DenseMatrix MultiplyChainDense(const std::vector<SparseMatrix>& chain) {
  HETESIM_CHECK(!chain.empty());
  if (chain.size() == 1) return chain[0].ToDense();
  DenseMatrix product = chain[0].MultiplyDense(chain[1].ToDense());
  for (size_t i = 2; i < chain.size(); ++i) {
    product = MultiplyDenseSparse(product, chain[i]);
  }
  return product;
}

std::vector<double> VectorThroughChain(std::vector<double> x,
                                       const std::vector<SparseMatrix>& chain) {
  for (const SparseMatrix& m : chain) {
    x = m.LeftMultiplyVector(x);
  }
  return x;
}

std::vector<double> VectorThroughChainTruncated(std::vector<double> x,
                                                const std::vector<SparseMatrix>& chain,
                                                double epsilon) {
  for (const SparseMatrix& m : chain) {
    x = m.LeftMultiplyVector(x);
    if (epsilon > 0.0) {
      for (double& v : x) {
        if (std::abs(v) < epsilon) v = 0.0;
      }
    }
  }
  return x;
}

}  // namespace hetesim
