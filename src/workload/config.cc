#include "workload/config.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace hetesim::workload {
namespace {

/// One parsed directive line: the directive word, positional words, and
/// `key=value` pairs (insertion order preserved for error messages).
struct Line {
  int number = 0;
  std::string directive;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
};

Status LineError(const Line& line, const std::string& message) {
  return Status::InvalidArgument(StrFormat("line %d: %s", line.number,
                                           message.c_str()));
}

/// Splits a raw line into words on whitespace.
std::vector<std::string> Words(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

Result<Line> TokenizeLine(int number, std::string_view text) {
  Line line;
  line.number = number;
  std::vector<std::string> words = Words(text);
  if (words.empty()) return line;  // caller skips empty directives
  line.directive = words[0];
  for (size_t i = 1; i < words.size(); ++i) {
    const size_t eq = words[i].find('=');
    if (eq == std::string::npos) {
      line.positional.push_back(words[i]);
    } else {
      const std::string key = words[i].substr(0, eq);
      if (key.empty()) {
        return LineError(line, "option '" + words[i] + "' has an empty key");
      }
      if (line.options.count(key) != 0) {
        return LineError(line, "duplicate option '" + key + "'");
      }
      line.options[key] = words[i].substr(eq + 1);
    }
  }
  return line;
}

/// Typed option accessors; every failure names the line and the option.
class OptionReader {
 public:
  OptionReader(const Line& line) : line_(line), remaining_(line.options) {}

  std::optional<std::string> Take(const std::string& key) {
    auto it = remaining_.find(key);
    if (it == remaining_.end()) return std::nullopt;
    std::string value = it->second;
    remaining_.erase(it);
    return value;
  }

  Result<int64_t> TakeInt(const std::string& key, int64_t fallback,
                          int64_t min_value) {
    auto raw = Take(key);
    if (!raw) return fallback;
    Result<int64_t> parsed = ParseInt64(*raw);
    if (!parsed.ok()) return Wrap(key, parsed.status());
    if (*parsed < min_value) {
      return LineError(line_, StrFormat("%s must be >= %lld, got %lld",
                                        key.c_str(),
                                        static_cast<long long>(min_value),
                                        static_cast<long long>(*parsed)));
    }
    return parsed;
  }

  Result<uint64_t> TakeUint(const std::string& key, uint64_t fallback) {
    auto raw = Take(key);
    if (!raw) return fallback;
    Result<uint64_t> parsed = ParseUint64(*raw);
    if (!parsed.ok()) return Wrap(key, parsed.status());
    return parsed;
  }

  Result<double> TakeDouble(const std::string& key, double fallback,
                            double min_value) {
    auto raw = Take(key);
    if (!raw) return fallback;
    Result<double> parsed = ParseDouble(*raw);
    if (!parsed.ok()) return Wrap(key, parsed.status());
    if (*parsed < min_value) {
      return LineError(line_, StrFormat("%s must be >= %g, got %g", key.c_str(),
                                        min_value, *parsed));
    }
    return parsed;
  }

  /// After all expected options were taken, rejects leftovers so typos
  /// (`thinkms=1`) fail loudly instead of silently doing nothing.
  Status CheckNoLeftovers() {
    if (remaining_.empty()) return Status::OK();
    return LineError(line_, "unknown option '" + remaining_.begin()->first +
                                "' for directive '" + line_.directive + "'");
  }

 private:
  Status Wrap(const std::string& key, const Status& inner) {
    return LineError(line_, key + ": " + std::string(inner.message()));
  }

  const Line& line_;
  std::map<std::string, std::string> remaining_;
};

Result<PopularitySpec> ParsePopularity(const Line& line,
                                       const std::string& kind_word,
                                       OptionReader& reader) {
  PopularitySpec spec;
  if (kind_word == "uniform") {
    spec.kind = PopularityKind::kUniform;
  } else if (kind_word == "zipf") {
    spec.kind = PopularityKind::kZipf;
    HETESIM_ASSIGN_OR_RETURN(spec.zipf_s, reader.TakeDouble("s", 1.05, 1e-3));
  } else if (kind_word == "nurand") {
    spec.kind = PopularityKind::kNurand;
  } else {
    return LineError(line, "unknown popularity '" + kind_word +
                               "' (want uniform | zipf | nurand)");
  }
  return spec;
}

Result<RelevanceAlgo> ParseAlgoWord(const Line& line,
                                    const std::string& word) {
  Result<RelevanceAlgo> algo = ParseRelevanceAlgo(word);
  if (!algo.ok()) {
    return LineError(line, std::string(algo.status().message()));
  }
  return algo;
}

Status ParseGraphLine(const Line& line, OptionReader& reader,
                      WorkloadConfig* config) {
  if (line.positional.size() != 1) {
    return LineError(line, "graph needs a kind: dblp | acm | file");
  }
  const std::string& kind = line.positional[0];
  if (kind == "dblp") {
    config->graph.kind = GraphSpec::Kind::kDblp;
  } else if (kind == "acm") {
    config->graph.kind = GraphSpec::Kind::kAcm;
  } else if (kind == "file") {
    config->graph.kind = GraphSpec::Kind::kFile;
    auto path = reader.Take("path");
    if (!path || path->empty()) {
      return LineError(line, "graph file needs path=FILE");
    }
    config->graph.path = *path;
    return Status::OK();
  } else {
    return LineError(line, "unknown graph kind '" + kind + "'");
  }
  HETESIM_ASSIGN_OR_RETURN(int64_t papers, reader.TakeInt("papers", 0, 0));
  HETESIM_ASSIGN_OR_RETURN(int64_t authors, reader.TakeInt("authors", 0, 0));
  HETESIM_ASSIGN_OR_RETURN(config->graph.seed, reader.TakeUint("seed", 7));
  config->graph.papers = static_cast<int>(papers);
  config->graph.authors = static_cast<int>(authors);
  return Status::OK();
}

Status ParseArrivalLine(const Line& line, OptionReader& reader,
                        WorkloadConfig* config) {
  if (line.positional.size() != 1) {
    return LineError(line, "arrival needs a mode: closed | open");
  }
  const std::string& mode = line.positional[0];
  HETESIM_ASSIGN_OR_RETURN(int64_t workers,
                           reader.TakeInt("workers", config->workers, 1));
  config->workers = static_cast<int>(workers);
  if (mode == "closed") {
    config->arrival = ArrivalMode::kClosedLoop;
    HETESIM_ASSIGN_OR_RETURN(config->think_ms,
                             reader.TakeDouble("think_ms", 0, 0));
  } else if (mode == "open") {
    config->arrival = ArrivalMode::kOpenLoop;
    HETESIM_ASSIGN_OR_RETURN(config->rate_qps,
                             reader.TakeDouble("rate_qps", 100, 1e-3));
  } else {
    return LineError(line, "unknown arrival mode '" + mode + "'");
  }
  return Status::OK();
}

Status ParseCacheLine(const Line& line, OptionReader& reader,
                      WorkloadConfig* config) {
  if (!line.positional.empty()) {
    const std::string& word = line.positional[0];
    if (word == "off") {
      config->cache_enabled = false;
      config->cache_mb = 0;
      return Status::OK();
    }
    if (word == "unlimited") {
      config->cache_enabled = true;
      config->cache_mb = 0;
      return Status::OK();
    }
    return LineError(line, "unknown cache mode '" + word +
                               "' (want off | unlimited | mb=N)");
  }
  HETESIM_ASSIGN_OR_RETURN(int64_t mb, reader.TakeInt("mb", -1, 1));
  if (mb < 0) return LineError(line, "cache needs off | unlimited | mb=N");
  config->cache_enabled = true;
  config->cache_mb = static_cast<size_t>(mb);
  return Status::OK();
}

Status ParseStoreLine(const Line& line, OptionReader& reader,
                      WorkloadConfig* config) {
  if (!line.positional.empty()) {
    if (line.positional[0] == "off") {
      config->store = StoreSpec{};
      return Status::OK();
    }
    return LineError(line, "unknown store mode '" + line.positional[0] +
                               "' (want off | dir=PATH [codec=NAME])");
  }
  auto dir = reader.Take("dir");
  if (!dir || dir->empty()) {
    return LineError(line, "store needs dir=PATH (or 'store off')");
  }
  config->store.enabled = true;
  config->store.dir = *dir;
  if (auto codec = reader.Take("codec"); codec) {
    if (*codec != "lossless" && *codec != "quantized") {
      return LineError(line, "unknown store codec '" + *codec +
                                 "' (want lossless | quantized)");
    }
    config->store.codec = *codec;
  }
  return Status::OK();
}

Status ParseServiceLine(const Line& line, OptionReader& reader,
                        WorkloadConfig* config) {
  if (line.positional.size() != 1) {
    return LineError(line, "service needs a mode: on | off");
  }
  const std::string& mode = line.positional[0];
  if (mode == "off") {
    config->service = ServiceSpec{};
    return Status::OK();
  }
  if (mode != "on") {
    return LineError(line, "unknown service mode '" + mode + "' (want on | off)");
  }
  config->service.enabled = true;
  HETESIM_ASSIGN_OR_RETURN(int64_t workers, reader.TakeInt("workers", 0, 0));
  config->service.workers = static_cast<int>(workers);
  HETESIM_ASSIGN_OR_RETURN(int64_t queue_depth,
                           reader.TakeInt("queue_depth", 64, 1));
  config->service.queue_depth = static_cast<int>(queue_depth);
  HETESIM_ASSIGN_OR_RETURN(int64_t memory_mb,
                           reader.TakeInt("memory_mb", 0, 0));
  config->service.memory_mb = static_cast<size_t>(memory_mb);
  HETESIM_ASSIGN_OR_RETURN(config->service.tenant_rate,
                           reader.TakeDouble("tenant_rate", 0, 0));
  HETESIM_ASSIGN_OR_RETURN(config->service.tenant_burst,
                           reader.TakeDouble("tenant_burst", 1.0, 0));
  HETESIM_ASSIGN_OR_RETURN(config->service.truncate_slice_ms,
                           reader.TakeDouble("truncate_slice_ms", 10.0, 0));
  HETESIM_ASSIGN_OR_RETURN(int64_t retries, reader.TakeInt("retries", 0, 0));
  if (retries > 16) return LineError(line, "retries must be <= 16");
  config->service.retries = static_cast<int>(retries);
  return Status::OK();
}

Status ParseClassLine(const Line& line, OptionReader& reader,
                      WorkloadConfig* config) {
  if (line.positional.size() != 1) {
    return LineError(line, "class needs a name, e.g. 'class hot_topk type=topk ...'");
  }
  QueryClassSpec spec;
  spec.name = line.positional[0];
  for (const QueryClassSpec& existing : config->classes) {
    if (existing.name == spec.name) {
      return LineError(line, "duplicate class '" + spec.name + "'");
    }
  }
  auto type = reader.Take("type");
  if (!type) return LineError(line, "class needs type=pair|single|topk");
  if (*type == "pair") {
    spec.type = QueryType::kPair;
  } else if (*type == "single" || *type == "single_source") {
    spec.type = QueryType::kSingleSource;
  } else if (*type == "topk") {
    spec.type = QueryType::kTopK;
  } else {
    return LineError(line, "unknown class type '" + *type +
                               "' (want pair | single | topk)");
  }
  auto path = reader.Take("path");
  if (!path || path->empty()) {
    return LineError(line, "class needs path=SPEC (MetaPath::Parse syntax)");
  }
  spec.path_spec = *path;
  HETESIM_ASSIGN_OR_RETURN(spec.weight, reader.TakeDouble("weight", 1.0, 1e-9));
  HETESIM_ASSIGN_OR_RETURN(int64_t k, reader.TakeInt("k", 10, 1));
  spec.k = static_cast<int>(k);
  HETESIM_ASSIGN_OR_RETURN(spec.deadline.mean_ms,
                           reader.TakeDouble("deadline_ms", 0, 0));
  HETESIM_ASSIGN_OR_RETURN(spec.deadline.jitter_pct,
                           reader.TakeDouble("deadline_jitter_pct", 0, 0));
  if (spec.deadline.jitter_pct > 100) {
    return LineError(line, "deadline_jitter_pct must be <= 100");
  }
  if (auto pop = reader.Take("popularity"); pop) {
    HETESIM_ASSIGN_OR_RETURN(PopularitySpec popularity,
                             ParsePopularity(line, *pop, reader));
    spec.popularity = popularity;
  }
  if (auto algo = reader.Take("algo"); algo) {
    HETESIM_ASSIGN_OR_RETURN(spec.algo, ParseAlgoWord(line, *algo));
  }
  config->classes.push_back(std::move(spec));
  return Status::OK();
}

}  // namespace

Result<WorkloadConfig> ParseWorkloadConfig(std::string_view text) {
  WorkloadConfig config;
  bool saw_scenario = false;
  std::istringstream stream{std::string(text)};
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    const size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.resize(hash);
    if (Trim(raw).empty()) continue;
    HETESIM_ASSIGN_OR_RETURN(Line line, TokenizeLine(number, raw));
    OptionReader reader(line);
    if (line.directive == "scenario") {
      if (line.positional.size() != 1) {
        return LineError(line, "scenario needs exactly one name");
      }
      config.name = line.positional[0];
      saw_scenario = true;
    } else if (line.directive == "seed") {
      if (line.positional.size() != 1) {
        return LineError(line, "seed needs one value");
      }
      Result<uint64_t> seed = ParseUint64(line.positional[0]);
      if (!seed.ok()) return LineError(line, std::string(seed.status().message()));
      config.seed = *seed;
    } else if (line.directive == "tenants") {
      if (line.positional.size() != 1) {
        return LineError(line, "tenants needs one value");
      }
      Result<int64_t> tenants = ParseInt64(line.positional[0]);
      if (!tenants.ok() || *tenants < 1 || *tenants > 4096) {
        return LineError(line, "tenants must be an integer in [1, 4096]");
      }
      config.tenants = static_cast<int>(*tenants);
    } else if (line.directive == "queries") {
      if (line.positional.size() != 1) {
        return LineError(line, "queries needs one value");
      }
      Result<int64_t> queries = ParseInt64(line.positional[0]);
      if (!queries.ok() || *queries < 1) {
        return LineError(line, "queries must be a positive integer");
      }
      config.num_queries = *queries;
    } else if (line.directive == "warmup") {
      if (line.positional.size() != 1) {
        return LineError(line, "warmup needs one value");
      }
      Result<int64_t> warmup = ParseInt64(line.positional[0]);
      if (!warmup.ok() || *warmup < 0) {
        return LineError(line, "warmup must be a non-negative integer");
      }
      config.warmup_queries = *warmup;
    } else if (line.directive == "graph") {
      HETESIM_RETURN_NOT_OK(ParseGraphLine(line, reader, &config));
    } else if (line.directive == "arrival") {
      HETESIM_RETURN_NOT_OK(ParseArrivalLine(line, reader, &config));
    } else if (line.directive == "popularity") {
      if (line.positional.size() != 1) {
        return LineError(line, "popularity needs a kind: uniform | zipf | nurand");
      }
      HETESIM_ASSIGN_OR_RETURN(
          config.popularity, ParsePopularity(line, line.positional[0], reader));
    } else if (line.directive == "algo") {
      if (line.positional.size() != 1) {
        return LineError(line,
                         "algo needs a name: exhaustive | pruned | frontier");
      }
      HETESIM_ASSIGN_OR_RETURN(config.algo,
                               ParseAlgoWord(line, line.positional[0]));
    } else if (line.directive == "cache") {
      HETESIM_RETURN_NOT_OK(ParseCacheLine(line, reader, &config));
    } else if (line.directive == "store") {
      HETESIM_RETURN_NOT_OK(ParseStoreLine(line, reader, &config));
    } else if (line.directive == "service") {
      HETESIM_RETURN_NOT_OK(ParseServiceLine(line, reader, &config));
    } else if (line.directive == "class") {
      HETESIM_RETURN_NOT_OK(ParseClassLine(line, reader, &config));
    } else {
      return LineError(line, "unknown directive '" + line.directive + "'");
    }
    HETESIM_RETURN_NOT_OK(reader.CheckNoLeftovers());
  }
  if (!saw_scenario) {
    return Status::InvalidArgument("config has no 'scenario NAME' line");
  }
  if (config.classes.empty()) {
    return Status::InvalidArgument("scenario '" + config.name +
                                   "' declares no query classes");
  }
  if (config.warmup_queries >= config.num_queries) {
    return Status::InvalidArgument(
        "warmup must be smaller than the query count");
  }
  return config;
}

Result<WorkloadConfig> LoadWorkloadConfigFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open workload config '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("failed reading workload config '" + path + "'");
  }
  Result<WorkloadConfig> config = ParseWorkloadConfig(buffer.str());
  if (!config.ok()) {
    return Status::InvalidArgument(path + ": " +
                                   std::string(config.status().message()));
  }
  return config;
}

}  // namespace hetesim::workload
