#ifndef HETESIM_WORKLOAD_REPORT_H_
#define HETESIM_WORKLOAD_REPORT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "workload/config.h"
#include "workload/recorder.h"

namespace hetesim::workload {

/// Everything one scenario run publishes into `BENCH_workload.json`.
struct ScenarioReport {
  std::string name;
  uint64_t seed = 0;
  std::string arrival;  ///< "closed" | "open"
  int workers = 0;
  int tenants = 0;
  int64_t total_queries = 0;   ///< recorded (post-warmup)
  int64_t warmup_queries = 0;
  double wall_seconds = 0;
  double throughput_qps = 0;
  /// Served answers per wall second, summed over classes (== throughput
  /// when no admission pipeline is in front).
  double goodput_qps = 0;
  /// Schedule identity: equal seeds must produce equal digests (and equal
  /// per-class/per-tenant/per-source counts — the first two are echoed in
  /// the class/tenant sections, the digest covers all of it bitwise).
  uint64_t schedule_digest = 0;
  std::vector<ClassStats> classes;
  std::vector<TenantStats> tenants_stats;
  /// Cache counters when the scenario ran with a budgeted cache.
  size_t cache_peak_bytes = 0;
  size_t cache_limit_bytes = 0;
  size_t cache_evictions = 0;
  /// Persistent-tier counters, present when the scenario declared a
  /// `store` directive. `store_hits` are cache misses served by reading
  /// the store back instead of recomputing — the cold/warm-restart
  /// benchmark's core measurement.
  bool store_enabled = false;
  size_t store_hits = 0;
  size_t store_misses = 0;
  size_t store_demotions = 0;
  /// Service-mode summary (DESIGN.md §13), present when queries went
  /// through a QueryService admission pipeline instead of straight into
  /// the engine.
  bool service_enabled = false;
  std::string service_mode;  ///< "inproc" | "socket"
  uint64_t service_rejected = 0;
  uint64_t service_shed = 0;
  uint64_t service_degraded = 0;
  /// Calibrated executor throughput (in-process mode only; 0 over socket).
  double service_flops_per_second = 0;
  /// Client-side retry attempts beyond the first try (retrying client only).
  uint64_t service_retries = 0;
};

/// Renders reports as the `BENCH_workload.json` document:
/// `{"context": {...}, "scenarios": [...]}`. No trailing metrics section —
/// callers append one via `bench_util.h`'s `MergeMetricsIntoBenchJson` (the
/// standard BENCH artifact pipeline) or leave it off.
std::string RenderWorkloadReportsJson(const std::vector<ScenarioReport>& reports);

/// Writes `RenderWorkloadReportsJson` to `path`.
[[nodiscard]] Status WriteWorkloadReports(
    const std::string& path, const std::vector<ScenarioReport>& reports);

/// One-line human summary per class, printed by the CLI after a run.
std::string RenderScenarioSummary(const ScenarioReport& report);

}  // namespace hetesim::workload

#endif  // HETESIM_WORKLOAD_REPORT_H_
