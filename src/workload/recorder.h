#ifndef HETESIM_WORKLOAD_RECORDER_H_
#define HETESIM_WORKLOAD_RECORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/mutex.h"

namespace hetesim::workload {

/// Terminal state of one executed query.
enum class QueryOutcome {
  kOk,                ///< completed, full answer
  kTruncated,         ///< top-k partial answer with the truncation marker
  kDeadlineExceeded,  ///< all-or-nothing query died on its deadline
  kCancelled,         ///< cooperative cancellation surfaced
  kError,             ///< any other non-OK status
  // Service-mode outcomes (DESIGN.md §13): the admission pipeline answered
  // instead of the engine.
  kRejected,  ///< refused before compute (queue full / deadline / quota)
  kShed,      ///< dropped under overload or memory pressure
  kDegraded,  ///< served, but at a reduced degradation level
};

/// True when the client got an answer with scores in it (kOk, kTruncated,
/// kDegraded) — the numerator of goodput.
bool OutcomeServed(QueryOutcome outcome);

const char* QueryOutcomeName(QueryOutcome outcome);

/// Latency/SLO aggregate of one query class over a run.
struct ClassStats {
  std::string name;
  int64_t queries = 0;  ///< recorded (post-warmup) queries
  int64_t ok = 0;
  int64_t truncated = 0;
  int64_t deadline_exceeded = 0;
  int64_t cancelled = 0;
  int64_t errors = 0;
  int64_t rejected = 0;  ///< admission refusals (service mode)
  int64_t shed = 0;      ///< load/memory shedding (service mode)
  int64_t degraded = 0;  ///< served at a reduced degradation level
  /// Queries whose latency exceeded their per-query deadline OR that ended
  /// truncated/expired — the user-facing SLO-miss count.
  int64_t deadline_missed = 0;
  double throughput_qps = 0;  ///< queries / wall seconds of the run
  /// Served answers (ok + truncated + degraded) / wall seconds — the number
  /// that must stay flat past saturation if shedding works.
  double goodput_qps = 0;
  /// Mean deadline the scenario assigned this class (0 = none); echoed so
  /// the report is self-contained for SLO assertions.
  double deadline_ms = 0;
  double mean_ms = 0;
  double max_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  /// Latency quantiles over *served* answers only. Rejections return in
  /// microseconds and would make the all-outcome p99 look better under
  /// overload, not worse — SLO verdicts for admitted queries read these.
  double served_p99_ms = 0;
  double served_max_ms = 0;
};

/// Per-tenant issue counts (fairness reporting).
struct TenantStats {
  int tenant = 0;
  int64_t queries = 0;
};

/// \brief Thread-safe per-class latency collector.
///
/// Workers call `Record` concurrently; aggregation (`ClassReport`) sorts the
/// raw samples and reports exact quantiles — no histogram interpolation
/// error in the published p99s. Each `Record` also feeds the process-wide
/// metrics registry (`hetesim_workload_*`), so BENCH artifacts and
/// `--metrics-out` dumps carry the same numbers.
class LatencyRecorder {
 public:
  /// `class_names` fixes the class-id space; `tenants` the tenant count.
  LatencyRecorder(std::vector<std::string> class_names, int tenants);

  /// Records one finished query. Thread-safe; `latency_seconds` is wall
  /// time, `deadline_missed` is the caller's SLO verdict (false when the
  /// query had no deadline).
  void Record(int class_id, int tenant, double latency_seconds,
              QueryOutcome outcome, bool deadline_missed) EXCLUDES(mutex_);

  /// Aggregates one class; `wall_seconds` converts counts to throughput.
  ClassStats ClassReport(int class_id, double wall_seconds) const
      EXCLUDES(mutex_);
  std::vector<TenantStats> TenantReport() const EXCLUDES(mutex_);
  int64_t total_recorded() const EXCLUDES(mutex_);

 private:
  struct PerClass {
    std::vector<double> latencies_s;
    /// Subset of `latencies_s` whose outcome served an answer.
    std::vector<double> served_latencies_s;
    int64_t ok = 0;
    int64_t truncated = 0;
    int64_t deadline_exceeded = 0;
    int64_t cancelled = 0;
    int64_t errors = 0;
    int64_t rejected = 0;
    int64_t shed = 0;
    int64_t degraded = 0;
    int64_t deadline_missed = 0;
  };

  std::vector<std::string> class_names_;
  mutable Mutex mutex_;
  std::vector<PerClass> classes_ GUARDED_BY(mutex_);
  std::vector<int64_t> tenant_counts_ GUARDED_BY(mutex_);
};

}  // namespace hetesim::workload

#endif  // HETESIM_WORKLOAD_RECORDER_H_
