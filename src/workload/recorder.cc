#include "workload/recorder.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/metrics.h"

namespace hetesim::workload {
namespace {

/// Exact quantile by rank on a sorted sample (nearest-rank method: the
/// smallest value with cumulative frequency >= p). p in [0, 1].
double QuantileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Metric-name-safe copy of a class name (Prometheus charset).
std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    (c >= 'A' && c <= 'Z') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk: return "ok";
    case QueryOutcome::kTruncated: return "truncated";
    case QueryOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case QueryOutcome::kCancelled: return "cancelled";
    case QueryOutcome::kError: return "error";
    case QueryOutcome::kRejected: return "rejected";
    case QueryOutcome::kShed: return "shed";
    case QueryOutcome::kDegraded: return "degraded";
  }
  return "unknown";
}

bool OutcomeServed(QueryOutcome outcome) {
  return outcome == QueryOutcome::kOk || outcome == QueryOutcome::kTruncated ||
         outcome == QueryOutcome::kDegraded;
}

LatencyRecorder::LatencyRecorder(std::vector<std::string> class_names,
                                 int tenants)
    : class_names_(std::move(class_names)) {
  HETESIM_CHECK(tenants > 0) << "LatencyRecorder needs at least one tenant";
  MutexLock lock(mutex_);
  classes_.resize(class_names_.size());
  tenant_counts_.assign(static_cast<size_t>(tenants), 0);
}

void LatencyRecorder::Record(int class_id, int tenant, double latency_seconds,
                             QueryOutcome outcome, bool deadline_missed) {
  HETESIM_CHECK(class_id >= 0 &&
                static_cast<size_t>(class_id) < class_names_.size());
  {
    MutexLock lock(mutex_);
    PerClass& cls = classes_[static_cast<size_t>(class_id)];
    cls.latencies_s.push_back(latency_seconds);
    if (OutcomeServed(outcome)) cls.served_latencies_s.push_back(latency_seconds);
    switch (outcome) {
      case QueryOutcome::kOk: cls.ok++; break;
      case QueryOutcome::kTruncated: cls.truncated++; break;
      case QueryOutcome::kDeadlineExceeded: cls.deadline_exceeded++; break;
      case QueryOutcome::kCancelled: cls.cancelled++; break;
      case QueryOutcome::kError: cls.errors++; break;
      case QueryOutcome::kRejected: cls.rejected++; break;
      case QueryOutcome::kShed: cls.shed++; break;
      case QueryOutcome::kDegraded: cls.degraded++; break;
    }
    if (deadline_missed) cls.deadline_missed++;
    if (tenant >= 0 && static_cast<size_t>(tenant) < tenant_counts_.size()) {
      tenant_counts_[static_cast<size_t>(tenant)]++;
    }
  }
  if (MetricsEnabled()) {
    MetricsRegistry& registry = MetricsRegistry::Global();
    registry.GetCounter("hetesim_workload_queries_total").Increment();
    if (deadline_missed) {
      registry.GetCounter("hetesim_workload_deadline_miss_total").Increment();
    }
    if (outcome == QueryOutcome::kCancelled) {
      registry.GetCounter("hetesim_workload_cancelled_total").Increment();
    }
    if (outcome == QueryOutcome::kError) {
      registry.GetCounter("hetesim_workload_errors_total").Increment();
    }
    if (outcome == QueryOutcome::kRejected) {
      registry.GetCounter("hetesim_workload_rejected_total").Increment();
    }
    if (outcome == QueryOutcome::kShed) {
      registry.GetCounter("hetesim_workload_shed_total").Increment();
    }
    if (outcome == QueryOutcome::kDegraded) {
      registry.GetCounter("hetesim_workload_degraded_total").Increment();
    }
    registry
        .GetHistogram("hetesim_workload_" +
                          Sanitize(class_names_[static_cast<size_t>(class_id)]) +
                          "_latency_seconds",
                      DefaultLatencyBoundariesSeconds())
        .Observe(latency_seconds);
  }
}

ClassStats LatencyRecorder::ClassReport(int class_id,
                                        double wall_seconds) const {
  HETESIM_CHECK(class_id >= 0 &&
                static_cast<size_t>(class_id) < class_names_.size());
  std::vector<double> sorted;
  std::vector<double> served_sorted;
  ClassStats stats;
  stats.name = class_names_[static_cast<size_t>(class_id)];
  {
    MutexLock lock(mutex_);
    const PerClass& cls = classes_[static_cast<size_t>(class_id)];
    sorted = cls.latencies_s;
    served_sorted = cls.served_latencies_s;
    stats.ok = cls.ok;
    stats.truncated = cls.truncated;
    stats.deadline_exceeded = cls.deadline_exceeded;
    stats.cancelled = cls.cancelled;
    stats.errors = cls.errors;
    stats.rejected = cls.rejected;
    stats.shed = cls.shed;
    stats.degraded = cls.degraded;
    stats.deadline_missed = cls.deadline_missed;
  }
  std::sort(sorted.begin(), sorted.end());
  stats.queries = static_cast<int64_t>(sorted.size());
  if (wall_seconds > 0) {
    stats.throughput_qps = static_cast<double>(stats.queries) / wall_seconds;
  }
  if (!sorted.empty()) {
    double sum = 0;
    for (double v : sorted) sum += v;
    stats.mean_ms = sum / static_cast<double>(sorted.size()) * 1e3;
    stats.max_ms = sorted.back() * 1e3;
    stats.p50_ms = QuantileSorted(sorted, 0.50) * 1e3;
    stats.p95_ms = QuantileSorted(sorted, 0.95) * 1e3;
    stats.p99_ms = QuantileSorted(sorted, 0.99) * 1e3;
    stats.p999_ms = QuantileSorted(sorted, 0.999) * 1e3;
  }
  std::sort(served_sorted.begin(), served_sorted.end());
  if (wall_seconds > 0) {
    stats.goodput_qps =
        static_cast<double>(served_sorted.size()) / wall_seconds;
  }
  if (!served_sorted.empty()) {
    stats.served_p99_ms = QuantileSorted(served_sorted, 0.99) * 1e3;
    stats.served_max_ms = served_sorted.back() * 1e3;
  }
  return stats;
}

std::vector<TenantStats> LatencyRecorder::TenantReport() const {
  MutexLock lock(mutex_);
  std::vector<TenantStats> out;
  out.reserve(tenant_counts_.size());
  for (size_t t = 0; t < tenant_counts_.size(); ++t) {
    out.push_back(TenantStats{static_cast<int>(t), tenant_counts_[t]});
  }
  return out;
}

int64_t LatencyRecorder::total_recorded() const {
  MutexLock lock(mutex_);
  int64_t total = 0;
  for (const PerClass& cls : classes_) {
    total += static_cast<int64_t>(cls.latencies_s.size());
  }
  return total;
}

}  // namespace hetesim::workload
