#ifndef HETESIM_WORKLOAD_CONFIG_H_
#define HETESIM_WORKLOAD_CONFIG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/hetesim.h"
#include "workload/generators.h"

namespace hetesim::workload {

/// \file
/// The workload scenario DSL (genny-style, dependency-free).
///
/// A scenario is a line-oriented text file; `#` starts a comment, blank
/// lines are ignored. Each line is a directive followed by positional words
/// and/or `key=value` pairs:
///
/// \code
///   scenario steady_state_dblp
///   graph dblp papers=1200 authors=800 seed=7     # or: graph file path=g.hin
///   seed 42
///   tenants 4
///   queries 2000
///   warmup 100
///   arrival closed workers=8 think_ms=1.5         # closed loop + think time
///   arrival open rate_qps=400 workers=8           # open loop, Poisson arrivals
///   popularity zipf s=1.05                        # or: uniform | nurand
///   algo frontier                                 # or: exhaustive | pruned (default)
///   cache mb=64                                   # or: cache off | cache unlimited
///   store dir=/tmp/hs_store codec=lossless        # persistent tier (or: store off)
///   service on workers=2 queue_depth=8 memory_mb=64 retries=2   # admission pipeline
///   class pair_hot type=pair   path=A-P-A   weight=0.3 deadline_ms=200
///   class topk_c   type=topk   path=C-P-A   weight=0.5 k=10 deadline_ms=100 deadline_jitter_pct=50 popularity=nurand algo=frontier
///   class row_scan type=single path=A-P-C-P-A weight=0.2
/// \endcode
///
/// Weights are relative (normalized over the declared classes). Deadlines
/// are per query: `deadline_ms` is the mean, `deadline_jitter_pct` draws
/// uniformly in `mean * [1 - j/100, 1 + j/100]`; omitting `deadline_ms`
/// runs the class without a deadline. A per-class `popularity=` overrides
/// the scenario default. The full grammar is documented in
/// docs/performance.md §9.

/// Which engine entry point a query class exercises.
enum class QueryType {
  kPair,          ///< HeteSimEngine::ComputePairs, one (source, target)
  kSingleSource,  ///< HeteSimEngine::ComputeSingleSource, one full row
  kTopK,          ///< TopKSearcher::Query (prepared once per class)
};

/// How queries arrive.
enum class ArrivalMode {
  kClosedLoop,  ///< `workers` loops issue-think-repeat (think time exp-distributed)
  kOpenLoop,    ///< Poisson arrivals at `rate_qps`, served by `workers` loops
};

/// Source-popularity distribution (see workload/generators.h).
struct PopularitySpec {
  PopularityKind kind = PopularityKind::kUniform;
  double zipf_s = 1.05;  ///< Zipf exponent, used when kind == kZipf
};

/// Per-query deadline distribution. `mean_ms == 0` means no deadline.
struct DeadlineSpec {
  double mean_ms = 0;
  double jitter_pct = 0;  ///< uniform in mean * [1 - j/100, 1 + j/100]
};

/// One query class of the mix.
struct QueryClassSpec {
  std::string name;
  QueryType type = QueryType::kPair;
  std::string path_spec;  ///< MetaPath::Parse syntax, e.g. "C-P-A"
  double weight = 1.0;    ///< relative share of the mix
  int k = 10;             ///< top-k width (kTopK only)
  DeadlineSpec deadline;
  std::optional<PopularitySpec> popularity;  ///< override of the scenario default
  /// Per-class relevance-strategy override (`algo=frontier`). Lets one
  /// scenario race two strategies over an identical query stream — the
  /// apples-to-apples A/B that BENCH_workload.json's frontier evidence
  /// rests on. Absent = the scenario-level `algo` directive.
  std::optional<RelevanceAlgo> algo;
};

/// Admission-pipeline knobs for service-mode scenarios (`service on ...`).
/// When enabled, the runner routes queries through a resident
/// `service::QueryService` (in-process, or over a Unix socket when the run
/// is given `--service-socket`) instead of calling the engine directly, so
/// overload scenarios exercise rejection/shedding/degradation.
struct ServiceSpec {
  bool enabled = false;
  /// Executor threads inside the service; 0 = the scenario's `workers`.
  int workers = 0;
  int queue_depth = 64;      ///< admission queue capacity
  size_t memory_mb = 0;      ///< service memory budget, 0 = unlimited
  double tenant_rate = 0;    ///< per-tenant quota, cost-seconds/s (0 = off)
  double tenant_burst = 1.0; ///< per-tenant burst, cost-seconds
  double truncate_slice_ms = 10.0;  ///< degraded top-k deadline slice
  /// Client-side retries per query beyond the first attempt (0 = plain
  /// client, no retry loop).
  int retries = 0;
};

/// Persistent path-matrix tier (`store dir=PATH [codec=...]` directive):
/// the runner opens a `MatrixStore` at `dir` against the scenario graph's
/// digest and attaches it under the cache (DESIGN.md §16), so cache misses
/// read from disk before recomputing and evictions demote instead of
/// dropping. The cold/warm-restart benchmark drives the same scenario file
/// twice against one directory to measure the readback advantage.
struct StoreSpec {
  bool enabled = false;
  std::string dir;
  /// Demotion encoding: "lossless" | "quantized" (store/codec.h).
  std::string codec = "lossless";
};

/// Where the graph under load comes from.
struct GraphSpec {
  enum class Kind { kDblp, kAcm, kFile };
  Kind kind = Kind::kDblp;
  int papers = 0;     ///< 0 = generator default
  int authors = 0;    ///< 0 = generator default
  uint64_t seed = 7;  ///< generator seed (dblp/acm)
  std::string path;   ///< kFile: datagen/io.h text format
};

/// A parsed scenario.
struct WorkloadConfig {
  std::string name = "unnamed";
  uint64_t seed = 1;        ///< master seed: schedule is a pure function of it
  int tenants = 1;          ///< round-robin-free: tenant drawn per query
  int64_t num_queries = 1000;
  int64_t warmup_queries = 0;  ///< executed but excluded from the report
  GraphSpec graph;
  ArrivalMode arrival = ArrivalMode::kClosedLoop;
  int workers = 4;
  double think_ms = 0;    ///< closed loop: mean exponential think time
  double rate_qps = 100;  ///< open loop: Poisson arrival rate
  PopularitySpec popularity;
  /// Scenario-wide relevance strategy (`algo frontier` directive); classes
  /// may override per class with `algo=`. In service mode only this
  /// scenario-level value applies (the service holds one engine config).
  RelevanceAlgo algo = RelevanceAlgo::kPruned;
  bool cache_enabled = true;
  size_t cache_mb = 0;  ///< 0 = unlimited (no memory budget)
  StoreSpec store;
  ServiceSpec service;
  std::vector<QueryClassSpec> classes;
};

/// Parses a scenario from DSL text. Errors carry the 1-based line number.
[[nodiscard]] Result<WorkloadConfig> ParseWorkloadConfig(std::string_view text);

/// Parses the scenario file at `path`.
[[nodiscard]] Result<WorkloadConfig> LoadWorkloadConfigFromFile(
    const std::string& path);

}  // namespace hetesim::workload

#endif  // HETESIM_WORKLOAD_CONFIG_H_
