#ifndef HETESIM_WORKLOAD_SCHEDULE_H_
#define HETESIM_WORKLOAD_SCHEDULE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "hin/graph.h"
#include "workload/config.h"

namespace hetesim::workload {

/// One scheduled query, fully decided before execution begins: which class,
/// which tenant issues it, which source (and target, for pair queries),
/// its deadline, and its timing parameters. Every field is a pure function
/// of `(config.seed, index)` — see workload/generators.h — so the schedule
/// is bitwise reproducible at any worker count, which is what makes latency
/// comparisons between runs meaningful.
struct QuerySpec {
  int64_t index = 0;
  int class_id = 0;
  int tenant = 0;
  Index source = 0;
  Index target = 0;     ///< pair classes only; 0 otherwise
  int k = 0;            ///< top-k classes only; 0 otherwise
  double deadline_ms = 0;  ///< 0 = no deadline
  int64_t arrival_us = 0;  ///< open loop: offset from run start
  int64_t think_us = 0;    ///< closed loop: think time after this query
};

/// Source/target domain sizes of one query class (taken from the graph:
/// `NumNodes(path.SourceType())` / `NumNodes(path.TargetType())`).
struct ClassDomain {
  Index num_sources = 0;
  Index num_targets = 0;
};

/// A materialized schedule plus the aggregates the determinism contract is
/// checked against ("two identical-seed runs produce identical schedules:
/// counts per class, per tenant, per source bitwise-equal").
struct Schedule {
  std::vector<QuerySpec> specs;
  /// FNV-1a over every field of every spec, in index order.
  uint64_t digest = 0;
  std::vector<int64_t> queries_per_class;
  std::vector<int64_t> queries_per_tenant;
  /// Per class: source id -> times drawn. std::map keeps iteration (and the
  /// digest of any rendering) deterministic.
  std::vector<std::map<Index, int64_t>> sources_per_class;
};

/// Generates the full schedule for `config` over per-class domains
/// (`domains[i]` describes `config.classes[i]`). Fails when a class has an
/// empty source/target domain. Deterministic in `config.seed`; thread count
/// plays no part.
[[nodiscard]] Result<Schedule> BuildSchedule(
    const WorkloadConfig& config, const std::vector<ClassDomain>& domains);

/// FNV-1a 64-bit over `data`; exposed for digest fixtures and tests.
uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace hetesim::workload

#endif  // HETESIM_WORKLOAD_SCHEDULE_H_
