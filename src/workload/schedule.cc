#include "workload/schedule.h"

#include <cmath>
#include <cstring>

#include "common/string_util.h"

namespace hetesim::workload {
namespace {

/// Stream ids for the independent random decisions of one query. Fixed
/// constants: renumbering them is a schedule-format break (digest fixtures
/// would shift), so append only.
enum QueryStream : uint64_t {
  kStreamClass = 1,
  kStreamTenant = 2,
  kStreamSource = 3,
  kStreamTarget = 4,
  kStreamDeadline = 5,
  kStreamThink = 6,
};

/// The arrival process gets its own top-level stream, distinct from any
/// per-query stream: inter-arrival gaps are cumulative, hence generated
/// sequentially from one generator.
constexpr uint64_t kArrivalStream = 0x41525249;  // "ARRI"

uint64_t QueryStreamSeed(uint64_t base, int64_t index, QueryStream stream) {
  return DeriveStreamSeed(DeriveStreamSeed(base, static_cast<uint64_t>(index)),
                          stream);
}

void HashValue(uint64_t value, uint64_t* digest) {
  *digest = Fnv1a64(&value, sizeof(value), *digest);
}

/// Exponential draw with mean `mean` (inversion; strictly positive).
double Exponential(Rng& rng, double mean) {
  double u = rng.UniformDouble();
  if (u >= 1.0) u = 0.9999999999999999;
  return -mean * std::log1p(-u);
}

}  // namespace

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Result<Schedule> BuildSchedule(const WorkloadConfig& config,
                               const std::vector<ClassDomain>& domains) {
  if (domains.size() != config.classes.size()) {
    return Status::InvalidArgument(StrFormat(
        "BuildSchedule: %zu domains for %zu classes", domains.size(),
        config.classes.size()));
  }
  const size_t num_classes = config.classes.size();

  // Class-selection CDF over the normalized weights.
  std::vector<double> cdf(num_classes);
  double total_weight = 0;
  for (const QueryClassSpec& spec : config.classes) total_weight += spec.weight;
  double acc = 0;
  for (size_t i = 0; i < num_classes; ++i) {
    acc += config.classes[i].weight / total_weight;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;  // guard against rounding

  // One popularity sampler per class, seeded so classes sharing the default
  // scenario popularity also share hot keys (the hot-key scenario), while a
  // per-class override re-seeds and scatters them.
  std::vector<PopularitySampler> samplers;
  samplers.reserve(num_classes);
  for (size_t i = 0; i < num_classes; ++i) {
    const ClassDomain& domain = domains[i];
    if (domain.num_sources <= 0) {
      return Status::InvalidArgument("class '" + config.classes[i].name +
                                     "' has an empty source domain");
    }
    if (config.classes[i].type == QueryType::kPair && domain.num_targets <= 0) {
      return Status::InvalidArgument("class '" + config.classes[i].name +
                                     "' has an empty target domain");
    }
    const PopularitySpec& pop = config.classes[i].popularity.has_value()
                                    ? *config.classes[i].popularity
                                    : config.popularity;
    const uint64_t pop_seed =
        config.classes[i].popularity.has_value()
            ? DeriveStreamSeed(config.seed, 0x504f50 + i)  // "POP" + class
            : DeriveStreamSeed(config.seed, 0x504f50);
    samplers.emplace_back(pop.kind, domain.num_sources, pop.zipf_s, pop_seed);
  }

  Schedule schedule;
  schedule.specs.reserve(static_cast<size_t>(config.num_queries));
  schedule.queries_per_class.assign(num_classes, 0);
  schedule.queries_per_tenant.assign(static_cast<size_t>(config.tenants), 0);
  schedule.sources_per_class.resize(num_classes);

  // Open-loop arrivals: cumulative Poisson process, sequential by nature.
  std::vector<int64_t> arrivals;
  if (config.arrival == ArrivalMode::kOpenLoop) {
    arrivals.resize(static_cast<size_t>(config.num_queries));
    Rng arrival_rng(DeriveStreamSeed(config.seed, kArrivalStream));
    const double mean_gap_us = 1e6 / config.rate_qps;
    double now_us = 0;
    for (int64_t i = 0; i < config.num_queries; ++i) {
      now_us += Exponential(arrival_rng, mean_gap_us);
      arrivals[static_cast<size_t>(i)] = static_cast<int64_t>(now_us);
    }
  }

  uint64_t digest = 0xcbf29ce484222325ULL;
  for (int64_t i = 0; i < config.num_queries; ++i) {
    QuerySpec spec;
    spec.index = i;

    Rng class_rng(QueryStreamSeed(config.seed, i, kStreamClass));
    const double pick = class_rng.UniformDouble();
    size_t class_id = 0;
    while (class_id + 1 < num_classes && pick >= cdf[class_id]) ++class_id;
    spec.class_id = static_cast<int>(class_id);
    const QueryClassSpec& cls = config.classes[class_id];
    const ClassDomain& domain = domains[class_id];

    Rng tenant_rng(QueryStreamSeed(config.seed, i, kStreamTenant));
    spec.tenant = static_cast<int>(
        tenant_rng.Uniform(static_cast<uint64_t>(config.tenants)));

    Rng source_rng(QueryStreamSeed(config.seed, i, kStreamSource));
    spec.source = samplers[class_id].Sample(source_rng);

    if (cls.type == QueryType::kPair) {
      Rng target_rng(QueryStreamSeed(config.seed, i, kStreamTarget));
      spec.target = static_cast<Index>(
          target_rng.Uniform(static_cast<uint64_t>(domain.num_targets)));
    }
    if (cls.type == QueryType::kTopK) spec.k = cls.k;

    if (cls.deadline.mean_ms > 0) {
      Rng deadline_rng(QueryStreamSeed(config.seed, i, kStreamDeadline));
      const double jitter = cls.deadline.jitter_pct / 100.0;
      const double factor =
          1.0 + jitter * (2.0 * deadline_rng.UniformDouble() - 1.0);
      spec.deadline_ms = cls.deadline.mean_ms * factor;
    }

    if (config.arrival == ArrivalMode::kClosedLoop && config.think_ms > 0) {
      Rng think_rng(QueryStreamSeed(config.seed, i, kStreamThink));
      spec.think_us =
          static_cast<int64_t>(Exponential(think_rng, config.think_ms * 1e3));
    }
    if (config.arrival == ArrivalMode::kOpenLoop) {
      spec.arrival_us = arrivals[static_cast<size_t>(i)];
    }

    schedule.queries_per_class[class_id]++;
    schedule.queries_per_tenant[static_cast<size_t>(spec.tenant)]++;
    schedule.sources_per_class[class_id][spec.source]++;

    HashValue(static_cast<uint64_t>(spec.index), &digest);
    HashValue(static_cast<uint64_t>(spec.class_id), &digest);
    HashValue(static_cast<uint64_t>(spec.tenant), &digest);
    HashValue(static_cast<uint64_t>(spec.source), &digest);
    HashValue(static_cast<uint64_t>(spec.target), &digest);
    HashValue(static_cast<uint64_t>(spec.k), &digest);
    uint64_t deadline_bits = 0;
    static_assert(sizeof(deadline_bits) == sizeof(spec.deadline_ms));
    std::memcpy(&deadline_bits, &spec.deadline_ms, sizeof(deadline_bits));
    HashValue(deadline_bits, &digest);
    HashValue(static_cast<uint64_t>(spec.arrival_us), &digest);
    HashValue(static_cast<uint64_t>(spec.think_us), &digest);

    schedule.specs.push_back(spec);
  }
  schedule.digest = digest;
  return schedule;
}

}  // namespace hetesim::workload
