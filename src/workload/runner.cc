#include "workload/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "datagen/acm_generator.h"
#include "datagen/dblp_generator.h"
#include "datagen/io.h"
#include "hin/digest.h"
#include "hin/metapath.h"
#include "service/client.h"
#include "service/protocol.h"
#include "store/store.h"

namespace hetesim::workload {
namespace {

using Clock = QueryContext::Clock;

Result<std::unique_ptr<HinGraph>> BuildGraph(const GraphSpec& spec) {
  switch (spec.kind) {
    case GraphSpec::Kind::kDblp: {
      DblpConfig config;
      config.seed = spec.seed;
      if (spec.papers > 0) config.num_papers = spec.papers;
      if (spec.authors > 0) config.num_authors = spec.authors;
      HETESIM_ASSIGN_OR_RETURN(DblpDataset dataset, GenerateDblp(config));
      return std::make_unique<HinGraph>(std::move(dataset.graph));
    }
    case GraphSpec::Kind::kAcm: {
      AcmConfig config;
      config.seed = spec.seed;
      if (spec.papers > 0) config.num_papers = spec.papers;
      if (spec.authors > 0) config.num_authors = spec.authors;
      HETESIM_ASSIGN_OR_RETURN(AcmDataset dataset, GenerateAcm(config));
      return std::make_unique<HinGraph>(std::move(dataset.graph));
    }
    case GraphSpec::Kind::kFile: {
      HETESIM_ASSIGN_OR_RETURN(HinGraph graph,
                               LoadHinGraphFromFile(spec.path));
      return std::make_unique<HinGraph>(std::move(graph));
    }
  }
  return Status::Internal("unreachable graph kind");
}

QueryOutcome OutcomeFromStatus(const Status& status) {
  if (status.ok()) return QueryOutcome::kOk;
  if (status.IsDeadlineExceeded()) return QueryOutcome::kDeadlineExceeded;
  if (status.IsCancelled()) return QueryOutcome::kCancelled;
  return QueryOutcome::kError;
}

QueryOutcome OutcomeFromResponse(const service::QueryResponse& response) {
  using service::ResponseOutcome;
  switch (response.outcome) {
    case ResponseOutcome::kOk:
      return response.truncated ? QueryOutcome::kTruncated : QueryOutcome::kOk;
    case ResponseOutcome::kDegraded: return QueryOutcome::kDegraded;
    case ResponseOutcome::kRejected: return QueryOutcome::kRejected;
    case ResponseOutcome::kShed: return QueryOutcome::kShed;
    case ResponseOutcome::kDeadlineExceeded:
      return QueryOutcome::kDeadlineExceeded;
    case ResponseOutcome::kCancelled: return QueryOutcome::kCancelled;
    case ResponseOutcome::kError: return QueryOutcome::kError;
    case ResponseOutcome::kTransportError: return QueryOutcome::kError;
  }
  return QueryOutcome::kError;
}

service::QueryKind KindOf(QueryType type) {
  switch (type) {
    case QueryType::kPair: return service::QueryKind::kPair;
    case QueryType::kSingleSource: return service::QueryKind::kSingleSource;
    case QueryType::kTopK: return service::QueryKind::kTopK;
  }
  return service::QueryKind::kPair;
}

/// Reduced-scale runs shrink the warmup proportionally (to a tenth of the
/// override) so a scenario tuned for thousands of queries still records a
/// meaningful sample when CI runs a few hundred.
int64_t EffectiveWarmup(const WorkloadConfig& config, int64_t override_queries) {
  if (override_queries <= 0) return config.warmup_queries;
  return std::min(config.warmup_queries, override_queries / 10);
}

}  // namespace

WorkloadRunner::WorkloadRunner(WorkloadConfig config,
                               std::unique_ptr<HinGraph> graph)
    : config_(std::move(config)), graph_(std::move(graph)) {}

Result<std::unique_ptr<WorkloadRunner>> WorkloadRunner::Create(
    const WorkloadConfig& config) {
  HETESIM_ASSIGN_OR_RETURN(std::unique_ptr<HinGraph> graph,
                           BuildGraph(config.graph));
  // make_unique needs a public constructor; the runner is assembled in
  // place instead.
  std::unique_ptr<WorkloadRunner> runner(
      new WorkloadRunner(config, std::move(graph)));  // hetesim-lint: allow(no-naked-new)

  if (config.cache_enabled) {
    runner->cache_ = std::make_shared<PathMatrixCache>();
    if (config.cache_mb > 0) {
      runner->budget_ =
          std::make_shared<MemoryBudget>(config.cache_mb * 1024 * 1024);
      runner->cache_->SetMemoryBudget(runner->budget_);
    }
  }

  // `store dir=...` — the persistent tier. Attached before searcher
  // preparation so a warm restart serves even the one-time materialization
  // from disk (that is the whole point of the cold_restart benchmark).
  std::shared_ptr<MatrixStore> store;
  if (config.store.enabled) {
    if (!config.cache_enabled) {
      return Status::InvalidArgument(
          "scenario '" + config.name +
          "': 'store' needs the cache ('cache off' conflicts with it)");
    }
    StoreOptions store_options;
    store_options.directory = config.store.dir;
    store_options.graph_digest = GraphDigest(*runner->graph_);
    HETESIM_ASSIGN_OR_RETURN(store_options.codec,
                             StoreCodecFromString(config.store.codec));
    HETESIM_ASSIGN_OR_RETURN(std::unique_ptr<MatrixStore> opened,
                             MatrixStore::Open(store_options));
    store = std::move(opened);
    runner->cache_->AttachStore(store);
  }

  HeteSimOptions options;
  options.num_threads = 1;  // per-query sequential; concurrency = in-flight queries
  options.algo = config.algo;
  runner->engine_ = std::make_unique<HeteSimEngine>(*runner->graph_, options,
                                                    runner->cache_);

  for (const QueryClassSpec& cls : config.classes) {
    Result<MetaPath> path = MetaPath::Parse(runner->graph_->schema(), cls.path_spec);
    if (!path.ok()) {
      return Status::InvalidArgument("class '" + cls.name + "': " +
                                     std::string(path.status().message()));
    }
    ClassRuntime runtime(std::move(*path));
    runtime.domain.num_sources =
        runner->graph_->NumNodes(runtime.path.SourceType());
    runtime.domain.num_targets =
        runner->graph_->NumNodes(runtime.path.TargetType());
    if (cls.type == QueryType::kTopK && !config.service.enabled) {
      // Preparation is one-time serving setup (the paper's materialization
      // step), deliberately outside per-query latency. In service mode the
      // QueryService prepares its own searchers, so skip the direct-path one.
      HeteSimOptions class_options = options;
      class_options.algo = cls.algo.value_or(config.algo);
      HETESIM_ASSIGN_OR_RETURN(
          TopKSearcher searcher,
          TopKSearcher::Prepare(*runner->graph_, runtime.path, class_options,
                                QueryContext::Background(),
                                runner->cache_.get()));
      runtime.searcher = std::make_unique<TopKSearcher>(std::move(searcher));
    }
    runner->classes_.push_back(std::move(runtime));
  }

  if (config.service.enabled) {
    service::ServiceOptions service_options;
    service_options.admission.workers =
        config.service.workers > 0 ? config.service.workers : config.workers;
    service_options.admission.queue_capacity = config.service.queue_depth;
    service_options.admission.tenant_rate = config.service.tenant_rate;
    service_options.admission.tenant_burst = config.service.tenant_burst;
    service_options.memory_mb = config.service.memory_mb;
    service_options.cache_enabled = config.cache_enabled;
    service_options.store = store;
    service_options.truncate_slice_ms = config.service.truncate_slice_ms;
    service_options.engine.num_threads = 1;  // same convention as direct mode
    // Per-class overrides do not reach service mode: the service holds one
    // engine configuration for every prepared searcher.
    service_options.engine.algo = config.algo;
    runner->service_ =
        service::QueryService::Create(*runner->graph_, service_options);
  }
  return runner;
}

Result<Schedule> WorkloadRunner::BuildRunSchedule(
    int64_t override_queries) const {
  WorkloadConfig config = config_;
  if (override_queries > 0) {
    config.num_queries = override_queries;
    config.warmup_queries = EffectiveWarmup(config_, override_queries);
  }
  std::vector<ClassDomain> domains;
  domains.reserve(classes_.size());
  for (const ClassRuntime& runtime : classes_) domains.push_back(runtime.domain);
  return BuildSchedule(config, domains);
}

QueryObservation WorkloadRunner::ExecuteQuery(
    const QuerySpec& spec, const RunOptions& options,
    service::ServiceClient* client) const {
  (void)options;
  const ClassRuntime& runtime = classes_[static_cast<size_t>(spec.class_id)];
  const QueryClassSpec& cls = config_.classes[static_cast<size_t>(spec.class_id)];

  if (client != nullptr) {
    service::QueryRequest request;
    request.id = static_cast<uint64_t>(spec.index);
    request.kind = KindOf(cls.type);
    request.tenant = static_cast<uint32_t>(spec.tenant);
    request.deadline_ms = spec.deadline_ms;
    request.path = cls.path_spec;
    request.source = spec.source;
    request.target = spec.target;
    request.k = spec.k;

    const Clock::time_point issue = Clock::now();
    const service::QueryResponse response = client->Execute(request);
    QueryObservation observation;
    observation.outcome = OutcomeFromResponse(response);
    observation.latency_seconds =
        std::chrono::duration<double>(Clock::now() - issue).count();
    observation.deadline_missed =
        spec.deadline_ms > 0 &&
        (observation.latency_seconds * 1e3 > spec.deadline_ms ||
         observation.outcome == QueryOutcome::kTruncated ||
         observation.outcome == QueryOutcome::kDeadlineExceeded ||
         observation.outcome == QueryOutcome::kCancelled);
    return observation;
  }

  const Clock::time_point issue = Clock::now();
  QueryContext ctx;
  if (spec.deadline_ms > 0) {
    ctx = ctx.WithDeadline(
        issue + std::chrono::microseconds(
                    static_cast<int64_t>(spec.deadline_ms * 1e3)));
  }
  if (budget_ != nullptr) ctx = ctx.WithBudget(budget_.get());

  QueryObservation observation;
  switch (cls.type) {
    case QueryType::kPair: {
      Result<std::vector<double>> scores = engine_->ComputePairs(
          runtime.path, {{spec.source, spec.target}}, ctx);
      observation.outcome = OutcomeFromStatus(scores.status());
      break;
    }
    case QueryType::kSingleSource: {
      // ComputeSingleSource has no context overload; the deadline verdict
      // for this class is post-hoc (latency vs. deadline), never a
      // mid-query stop.
      Result<std::vector<double>> row =
          engine_->ComputeSingleSource(runtime.path, spec.source);
      observation.outcome = OutcomeFromStatus(row.status());
      break;
    }
    case QueryType::kTopK: {
      Result<TopKResult> result =
          runtime.searcher->Query(spec.source, spec.k, ctx);
      if (result.ok()) {
        observation.topk = std::move(*result);
        observation.outcome = observation.topk->truncated
                                  ? QueryOutcome::kTruncated
                                  : QueryOutcome::kOk;
      } else {
        observation.outcome = OutcomeFromStatus(result.status());
      }
      break;
    }
  }

  const double latency =
      std::chrono::duration<double>(Clock::now() - issue).count();
  observation.latency_seconds = latency;
  observation.deadline_missed =
      spec.deadline_ms > 0 &&
      (latency * 1e3 > spec.deadline_ms ||
       observation.outcome == QueryOutcome::kTruncated ||
       observation.outcome == QueryOutcome::kDeadlineExceeded ||
       observation.outcome == QueryOutcome::kCancelled);
  return observation;
}

std::unique_ptr<service::ServiceClient> WorkloadRunner::MakeClient(
    const RunOptions& options, int worker_id) const {
  std::unique_ptr<service::ServiceClient> base;
  if (!options.service_socket.empty()) {
    base = std::make_unique<service::SocketClient>(options.service_socket);
  } else if (service_ != nullptr) {
    base = std::make_unique<service::InProcessClient>(service_.get());
  } else {
    return nullptr;  // direct engine path
  }
  if (config_.service.retries <= 0) return base;
  service::RetryOptions retry_options;
  retry_options.max_attempts = config_.service.retries + 1;
  // Distinct deterministic jitter stream per worker.
  retry_options.seed =
      config_.seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(worker_id) + 1;
  return std::make_unique<service::RetryingClient>(std::move(base),
                                                   retry_options);
}

Result<ScenarioReport> WorkloadRunner::Run(const RunOptions& options) {
  HETESIM_ASSIGN_OR_RETURN(Schedule schedule,
                           BuildRunSchedule(options.override_queries));
  const int64_t num_queries = static_cast<int64_t>(schedule.specs.size());
  const int64_t warmup = EffectiveWarmup(config_, options.override_queries);
  const int workers =
      options.override_workers > 0 ? options.override_workers : config_.workers;

  std::vector<std::string> class_names;
  class_names.reserve(config_.classes.size());
  for (const QueryClassSpec& cls : config_.classes) class_names.push_back(cls.name);
  LatencyRecorder recorder(class_names, config_.tenants);

  const bool open_loop = config_.arrival == ArrivalMode::kOpenLoop;
  const bool pace = options.realtime;
  const bool service_mode =
      service_ != nullptr || !options.service_socket.empty();
  std::atomic<int64_t> next{0};
  std::atomic<int> worker_seq{0};
  std::atomic<uint64_t> total_retries{0};

  Mutex done_mutex;
  CondVar done_cv;
  int workers_done = 0;  // guarded by done_mutex

  const Clock::time_point run_start = Clock::now();
  auto worker_loop = [&]() {
    // Connection-per-worker, like a real deployment; null in direct mode.
    const std::unique_ptr<service::ServiceClient> client =
        MakeClient(options, worker_seq.fetch_add(1, std::memory_order_relaxed));
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_queries) break;
      const QuerySpec& spec = schedule.specs[static_cast<size_t>(i)];
      Clock::time_point latency_base = Clock::now();
      if (open_loop && pace) {
        const Clock::time_point arrival =
            run_start + std::chrono::microseconds(spec.arrival_us);
        std::this_thread::sleep_until(arrival);
        // Open-loop latency counts from the *scheduled* arrival, so queueing
        // delay behind slow queries shows up in the tail — the whole point
        // of an open-loop driver.
        latency_base = arrival;
      }
      QueryObservation observation = ExecuteQuery(spec, options, client.get());
      if (open_loop && pace) {
        observation.latency_seconds =
            std::chrono::duration<double>(Clock::now() - latency_base).count();
        observation.deadline_missed =
            observation.deadline_missed ||
            (spec.deadline_ms > 0 &&
             observation.latency_seconds * 1e3 > spec.deadline_ms);
      }
      if (spec.index >= warmup) {
        recorder.Record(spec.class_id, spec.tenant, observation.latency_seconds,
                        observation.outcome, observation.deadline_missed);
      }
      if (options.observer) options.observer(spec, observation);
      if (!open_loop && pace && spec.think_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(spec.think_us));
      }
    }
    if (const auto* retrying =
            dynamic_cast<const service::RetryingClient*>(client.get())) {
      total_retries.fetch_add(retrying->retries_attempted(),
                              std::memory_order_relaxed);
    }
    MutexLock lock(done_mutex);
    ++workers_done;
    done_cv.NotifyAll();
  };

  {
    // Dedicated pool: the global pool stays free for engine internals, and
    // worker loops may block (think time, open-loop pacing) without
    // starving library parallel regions.
    ThreadPool pool(workers);
    for (int w = 0; w < workers; ++w) pool.Submit(worker_loop);
    MutexLock lock(done_mutex);
    while (workers_done < workers) done_cv.Wait(done_mutex);
  }
  const double wall =
      std::chrono::duration<double>(Clock::now() - run_start).count();

  ScenarioReport report;
  report.name = config_.name;
  report.seed = config_.seed;
  report.arrival = open_loop ? "open" : "closed";
  report.workers = workers;
  report.tenants = config_.tenants;
  report.warmup_queries = warmup;
  report.wall_seconds = wall;
  report.schedule_digest = schedule.digest;
  for (size_t c = 0; c < classes_.size(); ++c) {
    report.classes.push_back(recorder.ClassReport(static_cast<int>(c), wall));
    ClassStats& cls = report.classes.back();
    cls.deadline_ms = config_.classes[c].deadline.mean_ms;
    report.total_queries += cls.queries;
    report.goodput_qps += cls.goodput_qps;
  }
  report.tenants_stats = recorder.TenantReport();
  if (wall > 0) {
    report.throughput_qps = static_cast<double>(report.total_queries) / wall;
  }
  if (service_mode) {
    report.service_enabled = true;
    report.service_mode = options.service_socket.empty() ? "inproc" : "socket";
    report.service_retries = total_retries.load(std::memory_order_relaxed);
    // Per-outcome totals come from the recorder (post-warmup, like every
    // other report number), not the service's own counters (which include
    // warmup and, over a socket, aren't visible here anyway).
    for (const ClassStats& cls : report.classes) {
      report.service_rejected += static_cast<uint64_t>(cls.rejected);
      report.service_shed += static_cast<uint64_t>(cls.shed);
      report.service_degraded += static_cast<uint64_t>(cls.degraded);
    }
    if (service_ != nullptr) {
      report.service_flops_per_second = service_->stats().flops_per_second;
    }
  }
  if (cache_ != nullptr && budget_ != nullptr) {
    const PathMatrixCache::Stats stats = cache_->stats();
    report.cache_peak_bytes = stats.peak_accounted_bytes;
    report.cache_limit_bytes = budget_->limit_bytes();
    report.cache_evictions = stats.evictions;
  }
  if (cache_ != nullptr && cache_->store() != nullptr) {
    // Graceful-shutdown persistence: write the resident working set out so
    // the next run against this directory restarts warm even if nothing
    // was ever evicted. Best effort — a full disk must not fail the run.
    HETESIM_IGNORE_STATUS(cache_->FlushToStore());
    const PathMatrixCache::Stats stats = cache_->stats();
    report.store_enabled = true;
    report.store_hits = stats.store_hits;
    report.store_misses = stats.store_misses;
    report.store_demotions = stats.store_demotions;
  }
  return report;
}

}  // namespace hetesim::workload
