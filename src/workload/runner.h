#ifndef HETESIM_WORKLOAD_RUNNER_H_
#define HETESIM_WORKLOAD_RUNNER_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/context.h"
#include "common/result.h"
#include "core/hetesim.h"
#include "core/materialize.h"
#include "core/topk.h"
#include "service/client.h"
#include "service/service.h"
#include "workload/config.h"
#include "workload/report.h"
#include "workload/schedule.h"

namespace hetesim::workload {

/// What the runner saw for one finished query; handed to the optional
/// observer so stress tests can assert engine invariants in-line (truncation
/// markers, score ordering) without re-running queries.
struct QueryObservation {
  QueryOutcome outcome = QueryOutcome::kOk;
  double latency_seconds = 0;
  bool deadline_missed = false;
  /// The full result for top-k classes; empty otherwise. Owned by the
  /// observation (not a pointer into runner state) so observers may stash it.
  std::optional<TopKResult> topk;
};

/// Per-run knobs that override the scenario config without editing it —
/// the CI/reduced-scale escape hatch.
struct RunOptions {
  int64_t override_queries = 0;  ///< 0 = config.num_queries
  int override_workers = 0;      ///< 0 = config.workers
  /// When false, think times and open-loop arrival pacing are skipped and
  /// queries run back-to-back (max-throughput mode for stress tests; the
  /// schedule — and its digest — is unchanged).
  bool realtime = true;
  /// Called after every query (warmup included), from worker threads —
  /// must be thread-safe. Null = off.
  std::function<void(const QuerySpec&, const QueryObservation&)> observer;
  /// When non-empty, queries go over this Unix socket to an external
  /// `hetesim_serve` instead of the in-process engine/service. The scenario
  /// still supplies the schedule; the server supplies admission control.
  std::string service_socket;
};

/// \brief In-process load driver: executes a scenario's schedule against a
/// `HeteSimEngine`/`TopKSearcher` stack through per-query `QueryContext`s.
///
/// `Create` builds (or loads) the graph, parses every class's meta-path,
/// prepares one `TopKSearcher` per top-k class (preparation is serving-time
/// setup, not query latency), and wires the shared `PathMatrixCache` +
/// `MemoryBudget` per the config. `Run` generates the schedule and drives
/// it with `workers` closed- or open-loop worker loops on a dedicated
/// `ThreadPool`. Engine calls run with `num_threads = 1`: concurrency comes
/// from queries in flight, matching the paper's interactive-service setting.
class WorkloadRunner {
 public:
  [[nodiscard]] static Result<std::unique_ptr<WorkloadRunner>> Create(
      const WorkloadConfig& config);

  /// Runs the scenario once. Callable repeatedly; each run rebuilds the
  /// (deterministic) schedule and returns a fresh report.
  [[nodiscard]] Result<ScenarioReport> Run(const RunOptions& options = {});

  /// Builds the schedule this runner would execute (for schedule
  /// inspection / determinism tests) without running it.
  [[nodiscard]] Result<Schedule> BuildRunSchedule(int64_t override_queries = 0) const;

  const HinGraph& graph() const { return *graph_; }
  const WorkloadConfig& config() const { return config_; }
  /// The in-process service when the scenario enables one (null otherwise).
  service::QueryService* service() const { return service_.get(); }

 private:
  struct ClassRuntime {
    MetaPath path;
    ClassDomain domain;
    std::unique_ptr<TopKSearcher> searcher;  ///< top-k classes only

    explicit ClassRuntime(MetaPath p) : path(std::move(p)) {}
  };

  WorkloadRunner(WorkloadConfig config, std::unique_ptr<HinGraph> graph);

  /// Executes one scheduled query; returns what to record. `client` is the
  /// worker's service client in service mode, null for the direct engine
  /// path.
  QueryObservation ExecuteQuery(const QuerySpec& spec,
                                const RunOptions& options,
                                service::ServiceClient* client) const;

  /// Builds one worker's client stack (transport + optional retry
  /// decorator) for service mode; null when the run is direct.
  std::unique_ptr<service::ServiceClient> MakeClient(const RunOptions& options,
                                                     int worker_id) const;

  WorkloadConfig config_;
  std::unique_ptr<HinGraph> graph_;
  std::shared_ptr<MemoryBudget> budget_;       ///< null = unlimited
  std::shared_ptr<PathMatrixCache> cache_;     ///< null = cache off
  std::unique_ptr<HeteSimEngine> engine_;
  std::unique_ptr<service::QueryService> service_;  ///< service-mode only
  std::vector<ClassRuntime> classes_;
};

}  // namespace hetesim::workload

#endif  // HETESIM_WORKLOAD_RUNNER_H_
