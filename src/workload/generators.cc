#include "workload/generators.h"

#include "common/check.h"

namespace hetesim::workload {
namespace {

/// SplitMix64 finalizer (Steele et al.); also used by common/random.cc to
/// expand seeds. Repeated here rather than exported from random.cc so the
/// workload stream-splitting contract is frozen independently of the Rng
/// seeding internals.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t DeriveStreamSeed(uint64_t base, uint64_t stream) {
  // Two finalization rounds over the pair: one mixes the stream id into the
  // base, the second decorrelates neighbouring streams.
  return Mix64(Mix64(base ^ 0x6a09e667f3bcc909ULL) + stream);
}

NURandGenerator::NURandGenerator(Index n, uint64_t run_seed) : n_(n) {
  HETESIM_CHECK(n > 0) << "NURandGenerator needs a positive domain";
  // Smallest 2^k - 1 covering n/4, clamped to [1, n-1]: for TPC-C's 1000
  // customers this lands on 255, matching the spec's constant.
  uint64_t a = 1;
  const uint64_t target = static_cast<uint64_t>(n) / 4;
  while (a < target) a = (a << 1) | 1;
  if (a >= static_cast<uint64_t>(n)) {
    a = n > 1 ? static_cast<uint64_t>(n - 1) : 1;
  }
  a_ = a;
  c_ = DeriveStreamSeed(run_seed, 0xC0FFEE) % static_cast<uint64_t>(n);
}

Index NURandGenerator::Sample(Rng& rng) const {
  const uint64_t hot = rng.Uniform(a_ + 1);
  const uint64_t uniform = rng.Uniform(static_cast<uint64_t>(n_));
  return static_cast<Index>(((hot | uniform) + c_) % static_cast<uint64_t>(n_));
}

PopularitySampler::PopularitySampler(PopularityKind kind, Index n, double s,
                                     uint64_t run_seed)
    : kind_(kind), n_(n) {
  HETESIM_CHECK(n > 0) << "PopularitySampler needs a positive domain";
  // Affine rank->id shuffle: any odd multiplier is a bijection mod 2^64;
  // reduced mod n it is "random enough" to scatter the Zipf head without a
  // stored permutation (domain can be millions of nodes).
  shuffle_mult_ = DeriveStreamSeed(run_seed, 0x5afe) | 1;
  shuffle_add_ = DeriveStreamSeed(run_seed, 0xadd);
  switch (kind) {
    case PopularityKind::kUniform:
      break;
    case PopularityKind::kZipf:
      zipf_ = std::make_shared<const ZipfSampler>(static_cast<uint64_t>(n),
                                                  s > 0 ? s : 1.0);
      break;
    case PopularityKind::kNurand:
      nurand_ = std::make_shared<const NURandGenerator>(n, run_seed);
      break;
  }
}

Index PopularitySampler::Sample(Rng& rng) const {
  switch (kind_) {
    case PopularityKind::kUniform:
      return static_cast<Index>(rng.Uniform(static_cast<uint64_t>(n_)));
    case PopularityKind::kZipf: {
      // ZipfSampler draws a 1-based rank; map rank through the shuffle so
      // the hottest object is seed-dependent, not always id 0.
      const uint64_t rank = zipf_->Sample(rng) - 1;
      return static_cast<Index>(
          (rank * shuffle_mult_ + shuffle_add_) % static_cast<uint64_t>(n_));
    }
    case PopularityKind::kNurand:
      return nurand_->Sample(rng);
  }
  return 0;  // unreachable; switch is exhaustive
}

}  // namespace hetesim::workload
