#include "workload/report.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace hetesim::workload {
namespace {

void AppendClassJson(const ClassStats& stats, std::ostringstream* out) {
  *out << "      {\n"
       << "        \"name\": \"" << stats.name << "\",\n"
       << StrFormat("        \"queries\": %lld,\n",
                    static_cast<long long>(stats.queries))
       << StrFormat("        \"throughput_qps\": %.3f,\n", stats.throughput_qps)
       << StrFormat("        \"goodput_qps\": %.3f,\n", stats.goodput_qps)
       << StrFormat("        \"deadline_ms\": %.4f,\n", stats.deadline_ms)
       << "        \"latency_ms\": {"
       << StrFormat("\"p50\": %.4f, \"p95\": %.4f, \"p99\": %.4f, "
                    "\"p999\": %.4f, \"mean\": %.4f, \"max\": %.4f},\n",
                    stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.p999_ms,
                    stats.mean_ms, stats.max_ms)
       << "        \"served_latency_ms\": {"
       << StrFormat("\"p99\": %.4f, \"max\": %.4f},\n", stats.served_p99_ms,
                    stats.served_max_ms)
       << StrFormat("        \"ok\": %lld,\n", static_cast<long long>(stats.ok))
       << StrFormat("        \"truncated\": %lld,\n",
                    static_cast<long long>(stats.truncated))
       << StrFormat("        \"deadline_exceeded\": %lld,\n",
                    static_cast<long long>(stats.deadline_exceeded))
       << StrFormat("        \"cancelled\": %lld,\n",
                    static_cast<long long>(stats.cancelled))
       << StrFormat("        \"errors\": %lld,\n",
                    static_cast<long long>(stats.errors))
       << StrFormat("        \"rejected\": %lld,\n",
                    static_cast<long long>(stats.rejected))
       << StrFormat("        \"shed\": %lld,\n",
                    static_cast<long long>(stats.shed))
       << StrFormat("        \"degraded\": %lld,\n",
                    static_cast<long long>(stats.degraded))
       << StrFormat("        \"deadline_miss_rate\": %.6f,\n",
                    stats.queries > 0 ? static_cast<double>(stats.deadline_missed) /
                                            static_cast<double>(stats.queries)
                                      : 0.0)
       << StrFormat("        \"cancellation_rate\": %.6f\n",
                    stats.queries > 0 ? static_cast<double>(stats.cancelled) /
                                            static_cast<double>(stats.queries)
                                      : 0.0)
       << "      }";
}

}  // namespace

std::string RenderWorkloadReportsJson(
    const std::vector<ScenarioReport>& reports) {
  std::ostringstream out;
  out << "{\n"
      << "  \"context\": {\n"
      << "    \"harness\": \"hetesim-workload\",\n"
      << "    \"format_version\": 1\n"
      << "  },\n"
      << "  \"scenarios\": [\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const ScenarioReport& report = reports[i];
    out << "    {\n"
        << "      \"name\": \"" << report.name << "\",\n"
        << StrFormat("      \"seed\": %llu,\n",
                     static_cast<unsigned long long>(report.seed))
        << "      \"arrival\": \"" << report.arrival << "\",\n"
        << StrFormat("      \"workers\": %d,\n", report.workers)
        << StrFormat("      \"tenants\": %d,\n", report.tenants)
        << StrFormat("      \"total_queries\": %lld,\n",
                     static_cast<long long>(report.total_queries))
        << StrFormat("      \"warmup_queries\": %lld,\n",
                     static_cast<long long>(report.warmup_queries))
        << StrFormat("      \"wall_seconds\": %.4f,\n", report.wall_seconds)
        << StrFormat("      \"throughput_qps\": %.3f,\n", report.throughput_qps)
        << StrFormat("      \"goodput_qps\": %.3f,\n", report.goodput_qps)
        << StrFormat("      \"schedule_digest\": \"0x%016llx\",\n",
                     static_cast<unsigned long long>(report.schedule_digest));
    if (report.service_enabled) {
      out << "      \"service\": {\n"
          << "        \"mode\": \"" << report.service_mode << "\",\n"
          << StrFormat("        \"rejected\": %llu,\n",
                       static_cast<unsigned long long>(report.service_rejected))
          << StrFormat("        \"shed\": %llu,\n",
                       static_cast<unsigned long long>(report.service_shed))
          << StrFormat("        \"degraded\": %llu,\n",
                       static_cast<unsigned long long>(report.service_degraded))
          << StrFormat("        \"client_retries\": %llu,\n",
                       static_cast<unsigned long long>(report.service_retries))
          << StrFormat("        \"flops_per_second\": %.3e\n",
                       report.service_flops_per_second)
          << "      },\n";
    }
    if (report.cache_limit_bytes > 0) {
      out << StrFormat("      \"cache_peak_bytes\": %zu,\n",
                       report.cache_peak_bytes)
          << StrFormat("      \"cache_limit_bytes\": %zu,\n",
                       report.cache_limit_bytes)
          << StrFormat("      \"cache_evictions\": %zu,\n",
                       report.cache_evictions);
    }
    if (report.store_enabled) {
      out << StrFormat("      \"store_hits\": %zu,\n", report.store_hits)
          << StrFormat("      \"store_misses\": %zu,\n", report.store_misses)
          << StrFormat("      \"store_demotions\": %zu,\n",
                       report.store_demotions);
    }
    out << "      \"classes\": [\n";
    for (size_t c = 0; c < report.classes.size(); ++c) {
      AppendClassJson(report.classes[c], &out);
      out << (c + 1 < report.classes.size() ? ",\n" : "\n");
    }
    out << "      ],\n"
        << "      \"tenant_queries\": [";
    for (size_t t = 0; t < report.tenants_stats.size(); ++t) {
      out << (t == 0 ? "" : ", ")
          << static_cast<long long>(report.tenants_stats[t].queries);
    }
    out << "]\n"
        << "    }" << (i + 1 < reports.size() ? ",\n" : "\n");
  }
  out << "  ]\n"
      << "}\n";
  return out.str();
}

Status WriteWorkloadReports(const std::string& path,
                            const std::vector<ScenarioReport>& reports) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  file << RenderWorkloadReportsJson(reports);
  if (!file.good()) return Status::IOError("failed writing '" + path + "'");
  return Status::OK();
}

std::string RenderScenarioSummary(const ScenarioReport& report) {
  std::ostringstream out;
  out << StrFormat(
      "scenario %-24s %6lld queries  %8.1f q/s  wall %6.2fs  digest 0x%016llx\n",
      report.name.c_str(), static_cast<long long>(report.total_queries),
      report.throughput_qps, report.wall_seconds,
      static_cast<unsigned long long>(report.schedule_digest));
  if (report.service_enabled) {
    out << StrFormat(
        "  service (%s): goodput %8.1f q/s  rejected %llu  shed %llu  "
        "degraded %llu  retries %llu\n",
        report.service_mode.c_str(), report.goodput_qps,
        static_cast<unsigned long long>(report.service_rejected),
        static_cast<unsigned long long>(report.service_shed),
        static_cast<unsigned long long>(report.service_degraded),
        static_cast<unsigned long long>(report.service_retries));
  }
  for (const ClassStats& cls : report.classes) {
    out << StrFormat(
        "  %-16s %6lld q  %8.1f q/s  p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  "
        "miss %5.1f%%  trunc %lld  err %lld\n",
        cls.name.c_str(), static_cast<long long>(cls.queries),
        cls.throughput_qps, cls.p50_ms, cls.p95_ms, cls.p99_ms,
        cls.queries > 0 ? 100.0 * static_cast<double>(cls.deadline_missed) /
                              static_cast<double>(cls.queries)
                        : 0.0,
        static_cast<long long>(cls.truncated),
        static_cast<long long>(cls.errors));
  }
  return out.str();
}

}  // namespace hetesim::workload
