#ifndef HETESIM_WORKLOAD_GENERATORS_H_
#define HETESIM_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "hin/graph.h"

namespace hetesim::workload {

/// \file
/// Deterministic value generation for the workload harness.
///
/// Reproducibility contract: every random decision in a workload run is a
/// pure function of (scenario seed, query index). `DeriveStreamSeed` splits
/// one 64-bit seed into independent streams (SplitMix64 finalization over
/// the pair), so the schedule can be generated — or regenerated for any
/// subset of queries — in any order and on any number of threads and still
/// come out bitwise identical. This is the tpccbench/genny recipe: seed the
/// generator per logical entity, never share a sequential stream across
/// workers.

/// Seed for logical stream `stream` of the generator seeded with `base`.
/// Distinct (base, stream) pairs give statistically independent streams;
/// the mapping is stable across platforms and releases.
uint64_t DeriveStreamSeed(uint64_t base, uint64_t stream);

/// \brief TPC-C style non-uniform random numbers over `[0, n)`.
///
/// `NURand(A, 0, n-1) = (((random(0,A) | random(0,n-1)) + C) % n)` — the
/// bitwise OR concentrates the distribution on a stable set of "hot" values
/// whose identity is shuffled by the run constant `C`, which we derive from
/// the scenario seed (the tpccbench `NURandC::makeRandom` idea). The result
/// is a skewed popularity profile with a hot set of roughly `n * A / (A+1)`
/// effective mass concentrated on `~A` keys, independent of `n`.
class NURandGenerator {
 public:
  /// `n` must be positive; `run_seed` selects the hot-key identity.
  NURandGenerator(Index n, uint64_t run_seed);

  /// Draws one skewed value in `[0, n)` using `rng`.
  Index Sample(Rng& rng) const;

  /// The OR-mask parameter chosen for this domain size (TPC-C uses 255 for
  /// 1 000 values, 1023 for 3 000, 8191 for 100 000; we generalize to the
  /// smallest `2^k - 1 >= n/4`).
  uint64_t a() const { return a_; }

 private:
  Index n_;
  uint64_t a_;
  uint64_t c_;
};

/// How query sources are drawn from a domain of `n` objects.
enum class PopularityKind {
  kUniform,  ///< every object equally likely
  kZipf,     ///< Zipf(s) over a seed-shuffled object order
  kNurand,   ///< TPC-C NURand hot-key skew
};

/// \brief Draws object ids in `[0, n)` under a configured popularity skew.
///
/// For `kZipf`, rank-1 mass goes to a seed-dependent object (ranks are
/// mapped through a multiplicative shuffle), so two classes over the same
/// domain but different seeds have different hot objects — the cache-hostile
/// case — while identical seeds collide on purpose for hot-key scenarios.
class PopularitySampler {
 public:
  /// `n` must be positive. `s` is the Zipf exponent (ignored otherwise).
  PopularitySampler(PopularityKind kind, Index n, double s, uint64_t run_seed);

  Index Sample(Rng& rng) const;

  PopularityKind kind() const { return kind_; }
  Index domain() const { return n_; }

 private:
  PopularityKind kind_;
  Index n_;
  uint64_t shuffle_mult_;  ///< odd multiplier mapping rank -> object id
  uint64_t shuffle_add_;
  std::shared_ptr<const ZipfSampler> zipf_;
  std::shared_ptr<const NURandGenerator> nurand_;
};

}  // namespace hetesim::workload

#endif  // HETESIM_WORKLOAD_GENERATORS_H_
