#ifndef HETESIM_DATAGEN_ACM_GENERATOR_H_
#define HETESIM_DATAGEN_ACM_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "hin/graph.h"

namespace hetesim {

/// \brief Knobs for the synthetic ACM-style bibliographic network.
///
/// The real ACM crawl used in the paper (12K papers, 17K authors, 1.8K
/// affiliations, 196 venues of 14 conferences, 73 subjects, 1.5K terms) is
/// not redistributable, so this generator synthesizes a network with the
/// same schema (Fig. 3a) and the same structural features the experiments
/// rely on (see DESIGN.md §4):
///  * 14 conferences partitioned into 4 research areas, each conference
///    holding `venues_per_conference` yearly venue proceedings;
///  * authors with a home area, a home conference inside it, and
///    Zipf-distributed productivity (a few prolific authors, a long tail);
///  * papers whose venue concentrates on the lead author's home conference,
///    whose coauthors mostly share the area, and whose terms/subjects come
///    from area-specific vocabularies plus a common pool;
///  * a designated *star author* (id in `AcmDataset::star_author`): very
///    prolific and strongly concentrated on conference 0 (KDD), playing the
///    role of the paper's running profiling example.
struct AcmConfig {
  int venues_per_conference = 12;
  int num_papers = 1200;
  int num_authors = 1500;
  int num_affiliations = 120;
  int num_terms = 400;
  int num_subjects = 73;
  int min_authors_per_paper = 1;
  int max_authors_per_paper = 4;
  int terms_per_paper = 8;
  int subjects_per_paper = 2;
  /// Probability that a paper is published in its lead author's home area.
  double home_area_affinity = 0.85;
  /// Probability, within the home area, of choosing the home conference.
  double home_conference_concentration = 0.7;
  /// Probability that a coauthor shares the lead author's area.
  double coauthor_same_area = 0.9;
  /// Zipf exponent of author productivity.
  double productivity_exponent = 1.3;
  /// Fraction of each paper's terms drawn from its area vocabulary (the
  /// rest come from the shared pool).
  double area_term_fraction = 0.6;
  uint64_t seed = 7;
};

/// \brief A generated ACM-style network plus the ids and planted metadata
/// the experiments need.
struct AcmDataset {
  HinGraph graph;

  // Object types (Fig. 3a): papers, authors, affiliations, terms, subjects,
  // venues, conferences.
  TypeId paper;
  TypeId author;
  TypeId affiliation;
  TypeId term;
  TypeId subject;
  TypeId venue;
  TypeId conference;

  // Relations.
  RelationId writes;         ///< author -> paper
  RelationId published_in;   ///< paper -> venue
  RelationId venue_of;       ///< venue -> conference
  RelationId has_term;       ///< paper -> term
  RelationId has_subject;    ///< paper -> subject
  RelationId affiliated_with;  ///< author -> affiliation

  /// Planted research area of each conference / author (ground truth).
  std::vector<int> conference_area;
  std::vector<int> author_area;
  /// Home conference of each author.
  std::vector<Index> author_home_conference;
  /// The injected star author (profiling case-study subject).
  Index star_author = 0;
  /// Number of planted areas (4).
  int num_areas = 4;

  /// Paper-count matrix: entry (a, c) = number of papers author `a`
  /// published in conference `c` — the ground truth for relative importance
  /// (Fig. 6 of the paper).
  DenseMatrix PaperCounts() const;
};

/// Generates a synthetic ACM-style network. Deterministic in `config.seed`.
/// Errors when the configuration is inconsistent (non-positive counts,
/// probabilities outside [0, 1], more subjects/terms requested per paper
/// than exist, ...).
[[nodiscard]] Result<AcmDataset> GenerateAcm(const AcmConfig& config);

/// The 14 conference names used by the generator (the paper's list).
const std::vector<std::string>& AcmConferenceNames();

}  // namespace hetesim

#endif  // HETESIM_DATAGEN_ACM_GENERATOR_H_
