#ifndef HETESIM_DATAGEN_RANDOM_HIN_H_
#define HETESIM_DATAGEN_RANDOM_HIN_H_

#include <cstdint>

#include "hin/graph.h"
#include "matrix/sparse.h"

namespace hetesim {

/// \brief Erdős–Rényi-style random heterogeneous networks, used by the
/// property-test sweeps and the scaling benchmarks.

/// A random three-type network `A -ab-> B -bc-> C` with Bernoulli(p) unit
/// edges. Every node is guaranteed at least one incident edge in each
/// relation touching its type (no empty rows or columns), so every
/// meta-path over the schema reaches somewhere from every node.
/// Deterministic in `seed`.
HinGraph RandomTripartite(Index na, Index nb, Index nc, double p, uint64_t seed);

/// A random bipartite adjacency matrix (`na` x `nb`, Bernoulli(p) unit
/// edges, no empty rows or columns). Deterministic in `seed`.
SparseMatrix RandomBipartiteAdjacency(Index na, Index nb, double p, uint64_t seed);

}  // namespace hetesim

#endif  // HETESIM_DATAGEN_RANDOM_HIN_H_
