#include "datagen/io.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "common/string_util.h"
#include "hin/builder.h"

namespace hetesim {

Status SaveHinGraph(const HinGraph& graph, std::ostream& stream) {
  const Schema& schema = graph.schema();
  stream << "hin v1\n";
  stream << "# " << graph.TotalNodes() << " nodes, " << graph.TotalEdges()
         << " edges\n";
  for (TypeId t = 0; t < schema.NumObjectTypes(); ++t) {
    stream << "type " << schema.TypeName(t) << " " << schema.TypeCode(t) << "\n";
  }
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    stream << "relation " << schema.RelationName(r) << " "
           << schema.TypeName(schema.RelationSource(r)) << " "
           << schema.TypeName(schema.RelationTarget(r)) << "\n";
  }
  for (TypeId t = 0; t < schema.NumObjectTypes(); ++t) {
    for (Index i = 0; i < graph.NumNodes(t); ++i) {
      const std::string& name = graph.NodeName(t, i);
      if (name.empty()) {
        return Status::InvalidArgument(StrFormat(
            "node %lld of type '%s' is anonymous and cannot be serialized",
            static_cast<long long>(i), schema.TypeName(t).c_str()));
      }
      stream << "node " << schema.TypeName(t) << " " << name << "\n";
    }
  }
  for (RelationId r = 0; r < schema.NumRelations(); ++r) {
    const SparseMatrix& w = graph.Adjacency(r);
    const TypeId src_type = schema.RelationSource(r);
    const TypeId dst_type = schema.RelationTarget(r);
    for (Index i = 0; i < w.rows(); ++i) {
      auto indices = w.RowIndices(i);
      auto values = w.RowValues(i);
      for (size_t k = 0; k < indices.size(); ++k) {
        stream << "edge " << schema.RelationName(r) << " "
               << graph.NodeName(src_type, i) << " "
               << graph.NodeName(dst_type, indices[k]);
        if (values[k] != 1.0) stream << " " << values[k];
        stream << "\n";
      }
    }
  }
  if (!stream.good()) {
    return Status::IOError("write failed");
  }
  return Status::OK();
}

Status SaveHinGraphToFile(const HinGraph& graph, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  return SaveHinGraph(graph, file);
}

namespace {

Status ParseError(int line_number, const std::string& message) {
  return Status::InvalidArgument(StrFormat("line %d: %s", line_number,
                                           message.c_str()));
}

}  // namespace

Result<HinGraph> LoadHinGraph(std::istream& stream,
                              const LoadHinOptions& options) {
  HinGraphBuilder builder;
  std::string line;
  int line_number = 0;
  bool saw_header = false;
  // (relation \x1f source \x1f target) triples already seen, for
  // `reject_duplicate_edges`. \x1f cannot appear in space-split tokens.
  std::unordered_set<std::string> seen_edges;
  while (std::getline(stream, line)) {
    ++line_number;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> tokens = SplitSkipEmpty(trimmed, ' ');
    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "hin" || tokens[1] != "v1") {
        return ParseError(line_number, "expected header 'hin v1'");
      }
      saw_header = true;
      continue;
    }
    const std::string& keyword = tokens[0];
    if (keyword == "type") {
      if (tokens.size() != 3 || tokens[2].size() != 1) {
        return ParseError(line_number, "expected 'type <name> <code>'");
      }
      Result<TypeId> added = builder.AddObjectType(tokens[1], tokens[2][0]);
      if (!added.ok()) return ParseError(line_number, added.status().message());
    } else if (keyword == "relation") {
      if (tokens.size() != 4) {
        return ParseError(line_number, "expected 'relation <name> <src> <dst>'");
      }
      Result<TypeId> src = builder.schema().TypeByName(tokens[2]);
      if (!src.ok()) return ParseError(line_number, src.status().message());
      Result<TypeId> dst = builder.schema().TypeByName(tokens[3]);
      if (!dst.ok()) return ParseError(line_number, dst.status().message());
      Result<RelationId> added = builder.AddRelation(tokens[1], *src, *dst);
      if (!added.ok()) return ParseError(line_number, added.status().message());
    } else if (keyword == "node") {
      if (tokens.size() != 3) {
        return ParseError(line_number, "expected 'node <type> <name>'");
      }
      Result<TypeId> type = builder.schema().TypeByName(tokens[1]);
      if (!type.ok()) return ParseError(line_number, type.status().message());
      builder.AddNode(*type, tokens[2]);
    } else if (keyword == "edge") {
      if (tokens.size() != 4 && tokens.size() != 5) {
        return ParseError(line_number,
                          "expected 'edge <relation> <src> <dst> [weight]'");
      }
      Result<RelationId> relation = builder.schema().RelationByName(tokens[1]);
      if (!relation.ok()) return ParseError(line_number, relation.status().message());
      double weight = 1.0;
      if (tokens.size() == 5) {
        std::istringstream parse(tokens[4]);
        parse >> weight;
        if (parse.fail() || !parse.eof()) {
          return ParseError(line_number, "bad edge weight '" + tokens[4] + "'");
        }
        if (!std::isfinite(weight)) {
          return ParseError(line_number,
                            "non-finite edge weight '" + tokens[4] + "'");
        }
      }
      if (options.reject_self_edges && tokens[2] == tokens[3] &&
          builder.schema().RelationSource(*relation) ==
              builder.schema().RelationTarget(*relation)) {
        return ParseError(line_number,
                          "self edge '" + tokens[2] + "' forbidden on relation '" +
                              tokens[1] + "'");
      }
      if (options.reject_duplicate_edges) {
        std::string edge_key = tokens[1] + '\x1f' + tokens[2] + '\x1f' + tokens[3];
        if (!seen_edges.insert(std::move(edge_key)).second) {
          return ParseError(line_number, "duplicate edge '" + tokens[2] + "' -> '" +
                                             tokens[3] + "' on relation '" +
                                             tokens[1] + "'");
        }
      }
      Status added = builder.AddEdgeByName(*relation, tokens[2], tokens[3], weight);
      if (!added.ok()) return ParseError(line_number, added.message());
    } else {
      return ParseError(line_number, "unknown keyword '" + keyword + "'");
    }
  }
  // getline stops on EOF (normal) or on a hard read error; treating the
  // latter as success would silently build a graph from a truncated prefix.
  if (stream.bad()) {
    return Status::IOError(StrFormat(
        "read failed after line %d: stream went bad mid-parse", line_number));
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty input: missing 'hin v1' header");
  }
  return std::move(builder).Build();
}

Result<HinGraph> LoadHinGraphFromFile(const std::string& path,
                                      const LoadHinOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  return LoadHinGraph(file, options);
}

}  // namespace hetesim
