#include "datagen/random_hin.h"

#include "common/check.h"
#include "common/random.h"
#include "hin/builder.h"

namespace hetesim {

HinGraph RandomTripartite(Index na, Index nb, Index nc, double p, uint64_t seed) {
  HETESIM_CHECK(na > 0 && nb > 0 && nc > 0);
  HETESIM_CHECK(p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  HinGraphBuilder builder;
  TypeId a = builder.AddObjectType("alpha", 'A').value();
  TypeId b = builder.AddObjectType("beta", 'B').value();
  TypeId c = builder.AddObjectType("gamma", 'C').value();
  RelationId ab = builder.AddRelation("ab", a, b).value();
  RelationId bc = builder.AddRelation("bc", b, c).value();
  builder.AddNodes(a, na);
  builder.AddNodes(b, nb);
  builder.AddNodes(c, nc);
  auto fill_relation = [&](RelationId rel, Index rows, Index cols) {
    std::vector<bool> col_covered(static_cast<size_t>(cols), false);
    for (Index i = 0; i < rows; ++i) {
      bool any = false;
      for (Index j = 0; j < cols; ++j) {
        if (rng.Bernoulli(p)) {
          HETESIM_CHECK(builder.AddEdge(rel, i, j).ok());
          col_covered[static_cast<size_t>(j)] = true;
          any = true;
        }
      }
      if (!any) {
        Index j = static_cast<Index>(rng.Uniform(static_cast<uint64_t>(cols)));
        HETESIM_CHECK(builder.AddEdge(rel, i, j).ok());
        col_covered[static_cast<size_t>(j)] = true;
      }
    }
    for (Index j = 0; j < cols; ++j) {
      if (!col_covered[static_cast<size_t>(j)]) {
        Index i = static_cast<Index>(rng.Uniform(static_cast<uint64_t>(rows)));
        HETESIM_CHECK(builder.AddEdge(rel, i, j).ok());
      }
    }
  };
  fill_relation(ab, na, nb);
  fill_relation(bc, nb, nc);
  return std::move(builder).Build();
}

SparseMatrix RandomBipartiteAdjacency(Index na, Index nb, double p, uint64_t seed) {
  HETESIM_CHECK(na > 0 && nb > 0);
  HETESIM_CHECK(p >= 0.0 && p <= 1.0);
  Rng rng(seed);
  std::vector<Triplet> triplets;
  std::vector<bool> col_covered(static_cast<size_t>(nb), false);
  for (Index i = 0; i < na; ++i) {
    bool any = false;
    for (Index j = 0; j < nb; ++j) {
      if (rng.Bernoulli(p)) {
        triplets.push_back({i, j, 1.0});
        col_covered[static_cast<size_t>(j)] = true;
        any = true;
      }
    }
    if (!any) {
      Index j = static_cast<Index>(rng.Uniform(static_cast<uint64_t>(nb)));
      triplets.push_back({i, j, 1.0});
      col_covered[static_cast<size_t>(j)] = true;
    }
  }
  for (Index j = 0; j < nb; ++j) {
    if (!col_covered[static_cast<size_t>(j)]) {
      triplets.push_back(
          {static_cast<Index>(rng.Uniform(static_cast<uint64_t>(na))), j, 1.0});
    }
  }
  return SparseMatrix::FromTriplets(na, nb, std::move(triplets));
}

}  // namespace hetesim
