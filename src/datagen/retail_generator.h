#ifndef HETESIM_DATAGEN_RETAIL_GENERATOR_H_
#define HETESIM_DATAGEN_RETAIL_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "hin/graph.h"

namespace hetesim {

/// \brief Knobs for the synthetic retail network (customers, products,
/// brands, categories) — the commerce scenario of the paper's Section 4.1
/// ("customers are more faithful to brands that manufacture many products
/// purchased by the customers") and the recommendation use case of the
/// introduction, at benchmark scale.
///
/// Planted structure: every brand focuses on one category; every customer
/// has a primary category (their *segment*) and a *home brand* within it;
/// purchases concentrate on the primary category (`category_affinity`) and
/// on the home brand inside it (`brand_loyalty`). Purchase multiplicity is
/// recorded as edge weight.
struct RetailConfig {
  int num_customers = 800;
  int num_products = 600;
  int num_brands = 40;
  int num_categories = 8;
  /// Purchases drawn per customer.
  int purchases_per_customer = 12;
  /// Probability a purchase falls in the customer's primary category.
  double category_affinity = 0.8;
  /// Probability, within the primary category, of buying the home brand.
  double brand_loyalty = 0.6;
  uint64_t seed = 17;
};

/// A generated retail network plus planted ground truth.
struct RetailDataset {
  HinGraph graph;

  TypeId customer;
  TypeId product;
  TypeId brand;
  TypeId category;

  RelationId bought;       ///< customer -> product (weight = multiplicity)
  RelationId made_by;      ///< product -> brand
  RelationId in_category;  ///< product -> category

  /// Primary category of each customer / product / brand.
  std::vector<int> customer_segment;
  std::vector<int> product_category;
  std::vector<int> brand_category;
  /// Home brand of each customer.
  std::vector<Index> customer_home_brand;
};

/// Generates a synthetic retail network. Deterministic in `config.seed`.
[[nodiscard]] Result<RetailDataset> GenerateRetail(const RetailConfig& config);

}  // namespace hetesim

#endif  // HETESIM_DATAGEN_RETAIL_GENERATOR_H_
