#include "datagen/acm_generator.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <set>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"
#include "hin/builder.h"

namespace hetesim {

namespace {

// The paper's 14 ACM conferences, grouped into 4 planted research areas:
// 0 = data mining / learning, 1 = databases, 2 = web / IR, 3 = theory /
// systems. The grouping is only used to plant community structure.
struct ConferenceSpec {
  const char* name;
  int area;
};
constexpr ConferenceSpec kConferences[] = {
    {"KDD", 0},      {"ICML", 0},     {"COLT", 0},    {"SIGMOD", 1},
    {"VLDB", 1},     {"CIKM", 1},     {"WWW", 2},     {"SIGIR", 2},
    {"SODA", 3},     {"STOC", 3},     {"SOSP", 3},    {"SPAA", 3},
    {"SIGCOMM", 3},  {"MobiCOMM", 3},
};
constexpr int kNumConferences = static_cast<int>(std::size(kConferences));
constexpr int kNumAreas = 4;

// Area-specific term vocabularies; the rest of the vocabulary is filled
// with synthetic tokens assigned round-robin (including a shared pool).
const char* const kAreaTerms[kNumAreas][12] = {
    {"mining", "patterns", "clustering", "classification", "learning",
     "graphs", "social", "scalable", "kernel", "boosting", "anomaly",
     "streams"},
    {"database", "query", "indexing", "transactions", "storage", "sql",
     "join", "optimization", "views", "schema", "warehouse", "concurrency"},
    {"web", "search", "retrieval", "ranking", "documents", "users",
     "recommendation", "relevance", "feedback", "crawling", "links",
     "queries"},
    {"algorithms", "complexity", "distributed", "networks", "routing",
     "scheduling", "parallel", "approximation", "randomized", "protocols",
     "caching", "latency"},
};

/// Cumulative-distribution sampler over fixed weights (O(log n) a draw).
class CdfSampler {
 public:
  explicit CdfSampler(const std::vector<double>& weights) {
    cdf_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
      HETESIM_CHECK_GE(w, 0.0);
      acc += w;
      cdf_.push_back(acc);
    }
    HETESIM_CHECK_GT(acc, 0.0);
  }
  size_t Sample(Rng& rng) const {
    const double target = rng.UniformDouble() * cdf_.back();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
    if (it == cdf_.end()) --it;
    return static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

Status ValidateConfig(const AcmConfig& config) {
  if (config.venues_per_conference < 1 || config.num_papers < 1 ||
      config.num_authors < 2 || config.num_affiliations < kNumAreas ||
      config.num_terms < 60 || config.num_subjects < kNumAreas) {
    return Status::InvalidArgument(
        "ACM generator needs positive sizes (and at least 60 terms, 4 "
        "affiliations, 4 subjects, 2 authors)");
  }
  if (config.min_authors_per_paper < 1 ||
      config.max_authors_per_paper < config.min_authors_per_paper) {
    return Status::InvalidArgument("authors-per-paper range is invalid");
  }
  if (config.terms_per_paper < 1 || config.terms_per_paper > config.num_terms ||
      config.subjects_per_paper < 1 ||
      config.subjects_per_paper > config.num_subjects) {
    return Status::InvalidArgument("terms/subjects per paper out of range");
  }
  for (double p : {config.home_area_affinity, config.home_conference_concentration,
                   config.coauthor_same_area, config.area_term_fraction}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must lie in [0, 1]");
    }
  }
  if (config.productivity_exponent <= 0.0) {
    return Status::InvalidArgument("productivity exponent must be positive");
  }
  return Status::OK();
}

}  // namespace

const std::vector<std::string>& AcmConferenceNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>();  // hetesim-lint: allow(no-naked-new)
    for (const ConferenceSpec& spec : kConferences) names->emplace_back(spec.name);
    return names;
  }();
  return *kNames;
}

DenseMatrix AcmDataset::PaperCounts() const {
  // counts = W_writes * W_published_in * W_venue_of over raw adjacencies.
  return graph.Adjacency(writes)
      .Multiply(graph.Adjacency(published_in))
      .Multiply(graph.Adjacency(venue_of))
      .ToDense();
}

Result<AcmDataset> GenerateAcm(const AcmConfig& config) {
  HETESIM_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  HinGraphBuilder builder;

  // --- Schema (Fig. 3a) ---
  HETESIM_ASSIGN_OR_RETURN(TypeId paper, builder.AddObjectType("paper", 'P'));
  HETESIM_ASSIGN_OR_RETURN(TypeId author, builder.AddObjectType("author", 'A'));
  HETESIM_ASSIGN_OR_RETURN(TypeId affiliation,
                           builder.AddObjectType("affiliation", 'F'));
  HETESIM_ASSIGN_OR_RETURN(TypeId term, builder.AddObjectType("term", 'T'));
  HETESIM_ASSIGN_OR_RETURN(TypeId subject, builder.AddObjectType("subject", 'S'));
  HETESIM_ASSIGN_OR_RETURN(TypeId venue, builder.AddObjectType("venue", 'V'));
  HETESIM_ASSIGN_OR_RETURN(TypeId conference,
                           builder.AddObjectType("conference", 'C'));
  HETESIM_ASSIGN_OR_RETURN(RelationId writes,
                           builder.AddRelation("writes", author, paper));
  HETESIM_ASSIGN_OR_RETURN(RelationId published_in,
                           builder.AddRelation("published_in", paper, venue));
  HETESIM_ASSIGN_OR_RETURN(RelationId venue_of,
                           builder.AddRelation("venue_of", venue, conference));
  HETESIM_ASSIGN_OR_RETURN(RelationId has_term,
                           builder.AddRelation("has_term", paper, term));
  HETESIM_ASSIGN_OR_RETURN(RelationId has_subject,
                           builder.AddRelation("has_subject", paper, subject));
  HETESIM_ASSIGN_OR_RETURN(
      RelationId affiliated_with,
      builder.AddRelation("affiliated_with", author, affiliation));

  // --- Conferences and venues ---
  std::vector<int> conference_area;
  std::vector<std::vector<Index>> area_conferences(kNumAreas);
  for (int c = 0; c < kNumConferences; ++c) {
    const Index id = builder.AddNode(conference, kConferences[c].name);
    conference_area.push_back(kConferences[c].area);
    area_conferences[static_cast<size_t>(kConferences[c].area)].push_back(id);
  }
  std::vector<std::vector<Index>> conference_venues(kNumConferences);
  for (int c = 0; c < kNumConferences; ++c) {
    for (int v = 0; v < config.venues_per_conference; ++v) {
      const Index vid = builder.AddNode(
          venue, StrFormat("%s_%02d", kConferences[c].name, 99 - v));
      HETESIM_RETURN_NOT_OK(builder.AddEdge(venue_of, vid, c));
      conference_venues[static_cast<size_t>(c)].push_back(vid);
    }
  }

  // --- Affiliations (round-robin over areas) ---
  std::vector<int> affiliation_area;
  std::vector<std::vector<Index>> area_affiliations(kNumAreas);
  for (int f = 0; f < config.num_affiliations; ++f) {
    const Index id = builder.AddNode(affiliation, StrFormat("org_%03d", f));
    const int area = f % kNumAreas;
    affiliation_area.push_back(area);
    area_affiliations[static_cast<size_t>(area)].push_back(id);
  }

  // --- Terms: named area vocabularies, then synthetic fill; the synthetic
  // slice with area index kNumAreas acts as the shared pool. ---
  std::vector<std::vector<Index>> area_terms(kNumAreas + 1);
  for (int a = 0; a < kNumAreas; ++a) {
    for (const char* word : kAreaTerms[a]) {
      area_terms[static_cast<size_t>(a)].push_back(builder.AddNode(term, word));
    }
  }
  for (Index t = builder.NumNodes(term); t < config.num_terms; ++t) {
    const Index id = builder.AddNode(term, StrFormat("term_%04d", static_cast<int>(t)));
    area_terms[static_cast<size_t>(id % (kNumAreas + 1))].push_back(id);
  }

  // --- Subjects: ACM-category-style codes partitioned into area blocks ---
  std::vector<std::vector<Index>> area_subjects(kNumAreas);
  for (int s = 0; s < config.num_subjects; ++s) {
    const char letter = static_cast<char>('A' + s / 10);
    const Index id =
        builder.AddNode(subject, StrFormat("%c.%d", letter, s % 10));
    area_subjects[static_cast<size_t>(s % kNumAreas)].push_back(id);
  }

  // --- Authors: home area, home conference, affiliation, productivity ---
  std::vector<int> author_area(static_cast<size_t>(config.num_authors));
  std::vector<Index> author_home_conference(static_cast<size_t>(config.num_authors));
  std::vector<double> productivity(static_cast<size_t>(config.num_authors));
  const Index star = builder.AddNode(author, "StarAuthor");
  for (int a = 1; a < config.num_authors; ++a) {
    builder.AddNode(author, StrFormat("author_%05d", a));
  }
  // Zipf productivity over a random permutation, so prolific authors are
  // spread across areas; the star author gets the single largest weight.
  std::vector<Index> permutation(static_cast<size_t>(config.num_authors));
  for (size_t i = 0; i < permutation.size(); ++i) permutation[i] = static_cast<Index>(i);
  rng.Shuffle(permutation);
  // Offset the Zipf ranks so the head is prolific but not degenerate (no
  // single author owning a large fraction of all papers); the star gets
  // roughly twice the runner-up's weight.
  for (int a = 0; a < config.num_authors; ++a) {
    const double rank = static_cast<double>(permutation[static_cast<size_t>(a)]) + 10.0;
    productivity[static_cast<size_t>(a)] =
        1.0 / std::pow(rank, config.productivity_exponent);
  }
  productivity[static_cast<size_t>(star)] =
      2.0 / std::pow(10.0, config.productivity_exponent);
  for (int a = 0; a < config.num_authors; ++a) {
    const int area = (a == star) ? 0 : static_cast<int>(rng.Uniform(kNumAreas));
    author_area[static_cast<size_t>(a)] = area;
    const auto& confs = area_conferences[static_cast<size_t>(area)];
    author_home_conference[static_cast<size_t>(a)] =
        (a == star) ? confs[0]
                    : confs[rng.Uniform(static_cast<uint64_t>(confs.size()))];
    const auto& orgs = area_affiliations[static_cast<size_t>(area)];
    const Index org = rng.Bernoulli(0.8)
                          ? orgs[rng.Uniform(static_cast<uint64_t>(orgs.size()))]
                          : static_cast<Index>(
                                rng.Uniform(static_cast<uint64_t>(config.num_affiliations)));
    HETESIM_RETURN_NOT_OK(builder.AddEdge(affiliated_with, a, org));
  }
  // The star's home conference is KDD (conference id 0 is "KDD").
  author_home_conference[static_cast<size_t>(star)] = 0;

  // Per-area productivity samplers for coauthor draws.
  CdfSampler lead_sampler(productivity);
  std::vector<std::vector<Index>> area_authors(kNumAreas);
  for (int a = 0; a < config.num_authors; ++a) {
    area_authors[static_cast<size_t>(author_area[static_cast<size_t>(a)])].push_back(a);
  }
  std::vector<CdfSampler> area_author_sampler;
  for (int area = 0; area < kNumAreas; ++area) {
    std::vector<double> weights;
    weights.reserve(area_authors[static_cast<size_t>(area)].size());
    for (Index a : area_authors[static_cast<size_t>(area)]) {
      weights.push_back(productivity[static_cast<size_t>(a)]);
    }
    if (weights.empty()) weights.push_back(1.0);  // degenerate tiny configs
    area_author_sampler.emplace_back(weights);
  }

  // --- Papers ---
  for (int p = 0; p < config.num_papers; ++p) {
    const Index pid = builder.AddNode(paper, StrFormat("paper_%05d", p));
    const Index lead = static_cast<Index>(lead_sampler.Sample(rng));
    const int lead_area = author_area[static_cast<size_t>(lead)];
    // Venue choice: concentrate on the lead's home area and conference.
    int paper_area = lead_area;
    Index conf;
    if (rng.Bernoulli(config.home_area_affinity)) {
      conf = rng.Bernoulli(config.home_conference_concentration)
                 ? author_home_conference[static_cast<size_t>(lead)]
                 : area_conferences[static_cast<size_t>(lead_area)][rng.Uniform(
                       static_cast<uint64_t>(
                           area_conferences[static_cast<size_t>(lead_area)].size()))];
    } else {
      conf = static_cast<Index>(rng.Uniform(kNumConferences));
      paper_area = conference_area[static_cast<size_t>(conf)];
    }
    const auto& venues = conference_venues[static_cast<size_t>(conf)];
    const Index vid = venues[rng.Uniform(static_cast<uint64_t>(venues.size()))];
    HETESIM_RETURN_NOT_OK(builder.AddEdge(published_in, pid, vid));

    // Author list: the lead plus coauthors, mostly from the lead's area.
    std::set<Index> paper_authors = {lead};
    const int target_authors = static_cast<int>(rng.UniformInt(
        config.min_authors_per_paper, config.max_authors_per_paper));
    for (int attempt = 0;
         attempt < 4 * target_authors &&
         static_cast<int>(paper_authors.size()) < target_authors;
         ++attempt) {
      Index coauthor;
      if (rng.Bernoulli(config.coauthor_same_area)) {
        const auto& pool = area_authors[static_cast<size_t>(lead_area)];
        coauthor = pool[area_author_sampler[static_cast<size_t>(lead_area)].Sample(rng)];
      } else {
        coauthor = static_cast<Index>(lead_sampler.Sample(rng));
      }
      paper_authors.insert(coauthor);
    }
    for (Index a : paper_authors) {
      HETESIM_RETURN_NOT_OK(builder.AddEdge(writes, a, pid));
    }

    // Terms: area vocabulary vs shared pool. The attempt cap keeps tiny
    // vocabularies (pool smaller than terms_per_paper) from looping forever.
    std::set<Index> paper_terms;
    for (int attempt = 0;
         attempt < 10 * config.terms_per_paper &&
         static_cast<int>(paper_terms.size()) < config.terms_per_paper;
         ++attempt) {
      const auto& pool = rng.Bernoulli(config.area_term_fraction)
                             ? area_terms[static_cast<size_t>(paper_area)]
                             : area_terms[kNumAreas];
      if (pool.empty()) continue;
      paper_terms.insert(pool[rng.Uniform(static_cast<uint64_t>(pool.size()))]);
    }
    for (Index t : paper_terms) {
      HETESIM_RETURN_NOT_OK(builder.AddEdge(has_term, pid, t));
    }

    // Subjects: mostly from the area block (same attempt-cap rationale).
    std::set<Index> paper_subjects;
    for (int attempt = 0;
         attempt < 10 * config.subjects_per_paper &&
         static_cast<int>(paper_subjects.size()) < config.subjects_per_paper;
         ++attempt) {
      const auto& pool = rng.Bernoulli(0.8)
                             ? area_subjects[static_cast<size_t>(paper_area)]
                             : area_subjects[rng.Uniform(kNumAreas)];
      paper_subjects.insert(pool[rng.Uniform(static_cast<uint64_t>(pool.size()))]);
    }
    for (Index s : paper_subjects) {
      HETESIM_RETURN_NOT_OK(builder.AddEdge(has_subject, pid, s));
    }
  }

  AcmDataset dataset{std::move(builder).Build(),
                     paper,
                     author,
                     affiliation,
                     term,
                     subject,
                     venue,
                     conference,
                     writes,
                     published_in,
                     venue_of,
                     has_term,
                     has_subject,
                     affiliated_with,
                     std::move(conference_area),
                     std::move(author_area),
                     std::move(author_home_conference),
                     star,
                     kNumAreas};
  return dataset;
}

}  // namespace hetesim
