#ifndef HETESIM_DATAGEN_DBLP_GENERATOR_H_
#define HETESIM_DATAGEN_DBLP_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "hin/graph.h"

namespace hetesim {

/// \brief Knobs for the synthetic DBLP-style four-area network.
///
/// Mirrors the labeled DBLP subset used by the paper (Ji et al. 2010): 20
/// conferences in 4 research areas (database, data mining, information
/// retrieval, artificial intelligence), papers, authors and terms, with
/// area labels on authors, conferences and papers — the ground truth for
/// the AUC query task (Table 5) and the clustering NMI task (Table 6).
/// Schema is Fig. 3b: author - paper - conference / term (papers link
/// directly to conferences, no venue indirection).
struct DblpConfig {
  int num_papers = 1400;
  int num_authors = 1200;
  int num_terms = 600;
  int min_authors_per_paper = 1;
  int max_authors_per_paper = 3;
  int terms_per_paper = 6;
  /// Probability that a paper is published inside its lead author's area.
  double home_area_affinity = 0.85;
  /// Probability that a coauthor shares the lead author's area.
  double coauthor_same_area = 0.9;
  /// Fraction of a paper's terms drawn from its area vocabulary.
  double area_term_fraction = 0.65;
  /// Zipf exponent of author productivity.
  double productivity_exponent = 1.2;
  uint64_t seed = 11;
};

/// A generated DBLP-style network plus labels.
struct DblpDataset {
  HinGraph graph;

  TypeId author;
  TypeId paper;
  TypeId conference;
  TypeId term;

  RelationId writes;        ///< author -> paper
  RelationId published_in;  ///< paper -> conference
  RelationId has_term;      ///< paper -> term

  /// Planted research-area labels (0=DB, 1=DM, 2=IR, 3=AI).
  std::vector<int> author_label;
  std::vector<int> conference_label;
  std::vector<int> paper_label;
  int num_areas = 4;
};

/// Generates a synthetic DBLP-style network. Deterministic in `config.seed`.
[[nodiscard]] Result<DblpDataset> GenerateDblp(const DblpConfig& config);

/// The 20 conference names used by the generator (5 per area).
const std::vector<std::string>& DblpConferenceNames();
/// Area label of each conference in `DblpConferenceNames()` order.
const std::vector<int>& DblpConferenceAreas();

}  // namespace hetesim

#endif  // HETESIM_DATAGEN_DBLP_GENERATOR_H_
