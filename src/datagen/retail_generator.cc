#include "datagen/retail_generator.h"

#include "common/random.h"
#include "common/string_util.h"
#include "hin/builder.h"

namespace hetesim {

namespace {

Status ValidateConfig(const RetailConfig& config) {
  if (config.num_customers < 1 || config.num_products < 1 ||
      config.num_brands < 1 || config.num_categories < 1 ||
      config.purchases_per_customer < 1) {
    return Status::InvalidArgument("retail generator needs positive sizes");
  }
  if (config.num_brands < config.num_categories) {
    return Status::InvalidArgument("need at least one brand per category");
  }
  if (config.num_products < config.num_brands) {
    return Status::InvalidArgument("need at least one product per brand");
  }
  for (double p : {config.category_affinity, config.brand_loyalty}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must lie in [0, 1]");
    }
  }
  return Status::OK();
}

}  // namespace

Result<RetailDataset> GenerateRetail(const RetailConfig& config) {
  HETESIM_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  HinGraphBuilder builder;

  HETESIM_ASSIGN_OR_RETURN(TypeId customer, builder.AddObjectType("customer", 'U'));
  HETESIM_ASSIGN_OR_RETURN(TypeId product, builder.AddObjectType("product", 'P'));
  HETESIM_ASSIGN_OR_RETURN(TypeId brand, builder.AddObjectType("brand", 'B'));
  HETESIM_ASSIGN_OR_RETURN(TypeId category, builder.AddObjectType("category", 'G'));
  HETESIM_ASSIGN_OR_RETURN(RelationId bought,
                           builder.AddRelation("bought", customer, product));
  HETESIM_ASSIGN_OR_RETURN(RelationId made_by,
                           builder.AddRelation("made_by", product, brand));
  HETESIM_ASSIGN_OR_RETURN(RelationId in_category,
                           builder.AddRelation("in_category", product, category));

  // Categories and brands (round-robin focus keeps every category served).
  for (int g = 0; g < config.num_categories; ++g) {
    builder.AddNode(category, StrFormat("category_%02d", g));
  }
  std::vector<int> brand_category(static_cast<size_t>(config.num_brands));
  std::vector<std::vector<Index>> category_brands(
      static_cast<size_t>(config.num_categories));
  for (int b = 0; b < config.num_brands; ++b) {
    const Index id = builder.AddNode(brand, StrFormat("brand_%03d", b));
    const int g = b % config.num_categories;
    brand_category[static_cast<size_t>(b)] = g;
    category_brands[static_cast<size_t>(g)].push_back(id);
  }

  // Products: assigned to a brand (Zipf-ish: earlier brands are larger),
  // inheriting the brand's category.
  std::vector<int> product_category(static_cast<size_t>(config.num_products));
  std::vector<std::vector<Index>> brand_products(
      static_cast<size_t>(config.num_brands));
  ZipfSampler brand_sampler(static_cast<uint64_t>(config.num_brands), 1.1);
  for (int p = 0; p < config.num_products; ++p) {
    const Index id = builder.AddNode(product, StrFormat("product_%05d", p));
    // First pass guarantees every brand at least one product.
    const Index b = p < config.num_brands
                        ? p
                        : static_cast<Index>(brand_sampler.Sample(rng) - 1);
    brand_products[static_cast<size_t>(b)].push_back(id);
    product_category[static_cast<size_t>(p)] =
        brand_category[static_cast<size_t>(b)];
    HETESIM_RETURN_NOT_OK(builder.AddEdge(made_by, id, b));
    HETESIM_RETURN_NOT_OK(builder.AddEdge(
        in_category, id, brand_category[static_cast<size_t>(b)]));
  }
  std::vector<std::vector<Index>> category_products(
      static_cast<size_t>(config.num_categories));
  for (int p = 0; p < config.num_products; ++p) {
    category_products[static_cast<size_t>(product_category[static_cast<size_t>(p)])]
        .push_back(p);
  }

  // Customers and purchases.
  std::vector<int> customer_segment(static_cast<size_t>(config.num_customers));
  std::vector<Index> customer_home_brand(static_cast<size_t>(config.num_customers));
  for (int u = 0; u < config.num_customers; ++u) {
    builder.AddNode(customer, StrFormat("customer_%05d", u));
    const int segment = static_cast<int>(rng.Uniform(config.num_categories));
    customer_segment[static_cast<size_t>(u)] = segment;
    const auto& home_pool = category_brands[static_cast<size_t>(segment)];
    customer_home_brand[static_cast<size_t>(u)] =
        home_pool[rng.Uniform(static_cast<uint64_t>(home_pool.size()))];
    for (int k = 0; k < config.purchases_per_customer; ++k) {
      Index chosen_product;
      if (rng.Bernoulli(config.category_affinity)) {
        // Primary category; within it, home-brand loyalty.
        const Index home = customer_home_brand[static_cast<size_t>(u)];
        const auto& home_products = brand_products[static_cast<size_t>(home)];
        if (rng.Bernoulli(config.brand_loyalty) && !home_products.empty()) {
          chosen_product =
              home_products[rng.Uniform(static_cast<uint64_t>(home_products.size()))];
        } else {
          const auto& pool = category_products[static_cast<size_t>(segment)];
          chosen_product = pool[rng.Uniform(static_cast<uint64_t>(pool.size()))];
        }
      } else {
        chosen_product =
            static_cast<Index>(rng.Uniform(static_cast<uint64_t>(config.num_products)));
      }
      // Repeat purchases accumulate edge weight.
      HETESIM_RETURN_NOT_OK(builder.AddEdge(bought, u, chosen_product));
    }
  }

  RetailDataset dataset{std::move(builder).Build(),
                        customer,
                        product,
                        brand,
                        category,
                        bought,
                        made_by,
                        in_category,
                        std::move(customer_segment),
                        std::move(product_category),
                        std::move(brand_category),
                        std::move(customer_home_brand)};
  return dataset;
}

}  // namespace hetesim
