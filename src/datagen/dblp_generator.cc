#include "datagen/dblp_generator.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <set>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"
#include "hin/builder.h"

namespace hetesim {

namespace {

// 20 conferences, 5 per area: 0 = database, 1 = data mining,
// 2 = information retrieval, 3 = artificial intelligence — the four-area
// DBLP subset of the paper's Section 5.1.
struct ConferenceSpec {
  const char* name;
  int area;
};
constexpr ConferenceSpec kConferences[] = {
    {"SIGMOD", 0}, {"VLDB", 0},  {"ICDE", 0},  {"PODS", 0},  {"EDBT", 0},
    {"KDD", 1},    {"ICDM", 1},  {"SDM", 1},   {"PKDD", 1},  {"PAKDD", 1},
    {"SIGIR", 2},  {"ECIR", 2},  {"CIKM", 2},  {"WSDM", 2},  {"TREC", 2},
    {"AAAI", 3},   {"IJCAI", 3}, {"ICML", 3},  {"UAI", 3},   {"ECAI", 3},
};
constexpr int kNumConferences = static_cast<int>(std::size(kConferences));
constexpr int kNumAreas = 4;

const char* const kAreaTerms[kNumAreas][10] = {
    {"database", "query", "transactions", "indexing", "xml", "schema",
     "storage", "views", "join", "sql"},
    {"mining", "patterns", "clustering", "classification", "frequent",
     "outlier", "graphs", "streams", "itemsets", "association"},
    {"retrieval", "search", "ranking", "documents", "relevance", "feedback",
     "queries", "text", "web", "evaluation"},
    {"learning", "reasoning", "planning", "agents", "knowledge", "logic",
     "inference", "bayesian", "markov", "games"},
};

class CdfSampler {
 public:
  explicit CdfSampler(const std::vector<double>& weights) {
    double acc = 0.0;
    cdf_.reserve(weights.size());
    for (double w : weights) {
      HETESIM_CHECK_GE(w, 0.0);
      acc += w;
      cdf_.push_back(acc);
    }
    HETESIM_CHECK_GT(acc, 0.0);
  }
  size_t Sample(Rng& rng) const {
    const double target = rng.UniformDouble() * cdf_.back();
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), target);
    if (it == cdf_.end()) --it;
    return static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

Status ValidateConfig(const DblpConfig& config) {
  if (config.num_papers < 1 || config.num_authors < 2 || config.num_terms < 80) {
    return Status::InvalidArgument(
        "DBLP generator needs positive sizes (and at least 80 terms)");
  }
  if (config.min_authors_per_paper < 1 ||
      config.max_authors_per_paper < config.min_authors_per_paper) {
    return Status::InvalidArgument("authors-per-paper range is invalid");
  }
  if (config.terms_per_paper < 1 || config.terms_per_paper > config.num_terms) {
    return Status::InvalidArgument("terms per paper out of range");
  }
  for (double p : {config.home_area_affinity, config.coauthor_same_area,
                   config.area_term_fraction}) {
    if (p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("probabilities must lie in [0, 1]");
    }
  }
  if (config.productivity_exponent <= 0.0) {
    return Status::InvalidArgument("productivity exponent must be positive");
  }
  return Status::OK();
}

}  // namespace

const std::vector<std::string>& DblpConferenceNames() {
  static const std::vector<std::string>* const kNames = [] {
    auto* names = new std::vector<std::string>();  // hetesim-lint: allow(no-naked-new)
    for (const ConferenceSpec& spec : kConferences) names->emplace_back(spec.name);
    return names;
  }();
  return *kNames;
}

const std::vector<int>& DblpConferenceAreas() {
  static const std::vector<int>* const kAreas = [] {
    auto* areas = new std::vector<int>();  // hetesim-lint: allow(no-naked-new)
    for (const ConferenceSpec& spec : kConferences) areas->push_back(spec.area);
    return areas;
  }();
  return *kAreas;
}

Result<DblpDataset> GenerateDblp(const DblpConfig& config) {
  HETESIM_RETURN_NOT_OK(ValidateConfig(config));
  Rng rng(config.seed);
  HinGraphBuilder builder;

  // --- Schema (Fig. 3b) ---
  HETESIM_ASSIGN_OR_RETURN(TypeId author, builder.AddObjectType("author", 'A'));
  HETESIM_ASSIGN_OR_RETURN(TypeId paper, builder.AddObjectType("paper", 'P'));
  HETESIM_ASSIGN_OR_RETURN(TypeId conference,
                           builder.AddObjectType("conference", 'C'));
  HETESIM_ASSIGN_OR_RETURN(TypeId term, builder.AddObjectType("term", 'T'));
  HETESIM_ASSIGN_OR_RETURN(RelationId writes,
                           builder.AddRelation("writes", author, paper));
  HETESIM_ASSIGN_OR_RETURN(RelationId published_in,
                           builder.AddRelation("published_in", paper, conference));
  HETESIM_ASSIGN_OR_RETURN(RelationId has_term,
                           builder.AddRelation("has_term", paper, term));

  // --- Conferences ---
  std::vector<int> conference_label;
  std::vector<std::vector<Index>> area_conferences(kNumAreas);
  for (int c = 0; c < kNumConferences; ++c) {
    const Index id = builder.AddNode(conference, kConferences[c].name);
    conference_label.push_back(kConferences[c].area);
    area_conferences[static_cast<size_t>(kConferences[c].area)].push_back(id);
  }

  // --- Terms ---
  std::vector<std::vector<Index>> area_terms(kNumAreas + 1);
  for (int a = 0; a < kNumAreas; ++a) {
    for (const char* word : kAreaTerms[a]) {
      area_terms[static_cast<size_t>(a)].push_back(builder.AddNode(term, word));
    }
  }
  for (Index t = builder.NumNodes(term); t < config.num_terms; ++t) {
    const Index id = builder.AddNode(term, StrFormat("term_%04d", static_cast<int>(t)));
    area_terms[static_cast<size_t>(id % (kNumAreas + 1))].push_back(id);
  }

  // --- Authors ---
  std::vector<int> author_label(static_cast<size_t>(config.num_authors));
  std::vector<double> productivity(static_cast<size_t>(config.num_authors));
  for (int a = 0; a < config.num_authors; ++a) {
    builder.AddNode(author, StrFormat("author_%05d", a));
    author_label[static_cast<size_t>(a)] = static_cast<int>(rng.Uniform(kNumAreas));
  }
  std::vector<Index> permutation(static_cast<size_t>(config.num_authors));
  for (size_t i = 0; i < permutation.size(); ++i) permutation[i] = static_cast<Index>(i);
  rng.Shuffle(permutation);
  for (int a = 0; a < config.num_authors; ++a) {
    const double rank = static_cast<double>(permutation[static_cast<size_t>(a)]) + 10.0;
    productivity[static_cast<size_t>(a)] =
        1.0 / std::pow(rank, config.productivity_exponent);
  }
  CdfSampler lead_sampler(productivity);
  std::vector<std::vector<Index>> area_authors(kNumAreas);
  for (int a = 0; a < config.num_authors; ++a) {
    area_authors[static_cast<size_t>(author_label[static_cast<size_t>(a)])].push_back(a);
  }
  std::vector<CdfSampler> area_author_sampler;
  for (int area = 0; area < kNumAreas; ++area) {
    std::vector<double> weights;
    for (Index a : area_authors[static_cast<size_t>(area)]) {
      weights.push_back(productivity[static_cast<size_t>(a)]);
    }
    if (weights.empty()) weights.push_back(1.0);
    area_author_sampler.emplace_back(weights);
  }

  // --- Papers ---
  std::vector<int> paper_label;
  paper_label.reserve(static_cast<size_t>(config.num_papers));
  for (int p = 0; p < config.num_papers; ++p) {
    const Index pid = builder.AddNode(paper, StrFormat("paper_%05d", p));
    const Index lead = static_cast<Index>(lead_sampler.Sample(rng));
    const int lead_area = author_label[static_cast<size_t>(lead)];
    int paper_area = lead_area;
    if (!rng.Bernoulli(config.home_area_affinity)) {
      paper_area = static_cast<int>(rng.Uniform(kNumAreas));
    }
    paper_label.push_back(paper_area);
    const auto& confs = area_conferences[static_cast<size_t>(paper_area)];
    const Index conf = confs[rng.Uniform(static_cast<uint64_t>(confs.size()))];
    HETESIM_RETURN_NOT_OK(builder.AddEdge(published_in, pid, conf));

    std::set<Index> paper_authors = {lead};
    const int target_authors = static_cast<int>(rng.UniformInt(
        config.min_authors_per_paper, config.max_authors_per_paper));
    for (int attempt = 0;
         attempt < 4 * target_authors &&
         static_cast<int>(paper_authors.size()) < target_authors;
         ++attempt) {
      Index coauthor;
      if (rng.Bernoulli(config.coauthor_same_area)) {
        const auto& pool = area_authors[static_cast<size_t>(lead_area)];
        coauthor = pool[area_author_sampler[static_cast<size_t>(lead_area)].Sample(rng)];
      } else {
        coauthor = static_cast<Index>(lead_sampler.Sample(rng));
      }
      paper_authors.insert(coauthor);
    }
    for (Index a : paper_authors) {
      HETESIM_RETURN_NOT_OK(builder.AddEdge(writes, a, pid));
    }

    std::set<Index> paper_terms;
    for (int attempt = 0;
         attempt < 10 * config.terms_per_paper &&
         static_cast<int>(paper_terms.size()) < config.terms_per_paper;
         ++attempt) {
      const auto& pool = rng.Bernoulli(config.area_term_fraction)
                             ? area_terms[static_cast<size_t>(paper_area)]
                             : area_terms[kNumAreas];
      if (pool.empty()) continue;
      paper_terms.insert(pool[rng.Uniform(static_cast<uint64_t>(pool.size()))]);
    }
    for (Index t : paper_terms) {
      HETESIM_RETURN_NOT_OK(builder.AddEdge(has_term, pid, t));
    }
  }

  DblpDataset dataset{std::move(builder).Build(),
                      author,
                      paper,
                      conference,
                      term,
                      writes,
                      published_in,
                      has_term,
                      std::move(author_label),
                      std::move(conference_label),
                      std::move(paper_label),
                      kNumAreas};
  return dataset;
}

}  // namespace hetesim
