#ifndef HETESIM_DATAGEN_IO_H_
#define HETESIM_DATAGEN_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "hin/graph.h"

namespace hetesim {

/// \brief Plain-text serialization of heterogeneous information networks.
///
/// Line-oriented format (`#` starts a comment; blank lines ignored):
/// \code
///   hin v1
///   type <name> <code>
///   relation <name> <source-type> <target-type>
///   node <type> <name>
///   edge <relation> <source-name> <target-name> [weight]
/// \endcode
/// Declarations must precede use (types before relations, etc.); nodes are
/// auto-created by `edge` lines, so explicit `node` lines are only needed
/// for isolated nodes. Every node must be named — anonymous nodes cannot
/// round-trip, so `SaveHinGraph` rejects graphs containing them.

/// Writes `graph` to `stream`. Fails on anonymous (unnamed) nodes.
[[nodiscard]] Status SaveHinGraph(const HinGraph& graph, std::ostream& stream);

/// Writes `graph` to `path`.
[[nodiscard]] Status SaveHinGraphToFile(const HinGraph& graph, const std::string& path);

/// Strictness knobs for `LoadHinGraph`. The defaults match the historical
/// permissive semantics (duplicates sum their weights per Definition 8's
/// weighted adjacency; self-edges are legal on same-typed relations).
struct LoadHinOptions {
  /// Reject an `edge` line naming the same endpoint twice on a relation
  /// whose source and target types coincide.
  bool reject_self_edges = false;
  /// Reject a second `edge` line for an already-seen
  /// (relation, source, target) triple instead of summing the weights.
  bool reject_duplicate_edges = false;
};

/// Parses a graph from `stream`. Errors carry the offending line number;
/// a stream that dies mid-read (truncated/unreadable file) is an IOError
/// rather than a silently shorter graph.
[[nodiscard]] Result<HinGraph> LoadHinGraph(std::istream& stream,
                              const LoadHinOptions& options = {});

/// Parses a graph from the file at `path`.
[[nodiscard]] Result<HinGraph> LoadHinGraphFromFile(const std::string& path,
                                      const LoadHinOptions& options = {});

}  // namespace hetesim

#endif  // HETESIM_DATAGEN_IO_H_
