#ifndef HETESIM_DATAGEN_IO_H_
#define HETESIM_DATAGEN_IO_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "hin/graph.h"

namespace hetesim {

/// \brief Plain-text serialization of heterogeneous information networks.
///
/// Line-oriented format (`#` starts a comment; blank lines ignored):
/// \code
///   hin v1
///   type <name> <code>
///   relation <name> <source-type> <target-type>
///   node <type> <name>
///   edge <relation> <source-name> <target-name> [weight]
/// \endcode
/// Declarations must precede use (types before relations, etc.); nodes are
/// auto-created by `edge` lines, so explicit `node` lines are only needed
/// for isolated nodes. Every node must be named — anonymous nodes cannot
/// round-trip, so `SaveHinGraph` rejects graphs containing them.

/// Writes `graph` to `stream`. Fails on anonymous (unnamed) nodes.
Status SaveHinGraph(const HinGraph& graph, std::ostream& stream);

/// Writes `graph` to `path`.
Status SaveHinGraphToFile(const HinGraph& graph, const std::string& path);

/// Parses a graph from `stream`. Errors carry the offending line number.
Result<HinGraph> LoadHinGraph(std::istream& stream);

/// Parses a graph from the file at `path`.
Result<HinGraph> LoadHinGraphFromFile(const std::string& path);

}  // namespace hetesim

#endif  // HETESIM_DATAGEN_IO_H_
