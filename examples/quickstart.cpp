// Quickstart: build a tiny bibliographic network by hand (the paper's
// Fig. 4), parse relevance paths and query HeteSim.
//
// The network: three authors (Tom, Mary, Bob), five papers, two
// conferences (KDD, SIGMOD). Tom publishes only in KDD, so HeteSim should
// rate him far more relevant to KDD than to SIGMOD along the
// author-paper-conference (A-P-C) path.

#include <cstdio>

#include "core/hetesim.h"
#include "core/topk.h"
#include "hin/builder.h"
#include "hin/metapath.h"

int main() {
  using namespace hetesim;

  // 1. Declare the schema: object types and typed relations.
  HinGraphBuilder builder;
  TypeId author = builder.AddObjectType("author", 'A').value();
  TypeId paper = builder.AddObjectType("paper", 'P').value();
  TypeId conf = builder.AddObjectType("conference", 'C').value();
  RelationId writes = builder.AddRelation("writes", author, paper).value();
  RelationId published = builder.AddRelation("published_in", paper, conf).value();

  // 2. Add nodes and edges by name (nodes are created on first use).
  struct Edge {
    const char* src;
    const char* dst;
  };
  for (const Edge& e : {Edge{"Tom", "p1"}, {"Tom", "p2"}, {"Mary", "p2"},
                        {"Mary", "p3"}, {"Mary", "p4"}, {"Bob", "p4"},
                        {"Bob", "p5"}}) {
    Status added = builder.AddEdgeByName(writes, e.src, e.dst);
    if (!added.ok()) {
      std::fprintf(stderr, "AddEdgeByName: %s\n", added.ToString().c_str());
      return 1;
    }
  }
  for (const Edge& e : {Edge{"p1", "KDD"}, {"p2", "KDD"}, {"p3", "KDD"},
                        {"p4", "SIGMOD"}, {"p5", "SIGMOD"}}) {
    Status added = builder.AddEdgeByName(published, e.src, e.dst);
    if (!added.ok()) {
      std::fprintf(stderr, "AddEdgeByName: %s\n", added.ToString().c_str());
      return 1;
    }
  }
  HinGraph graph = std::move(builder).Build();
  std::printf("%s\n", graph.Summary().c_str());

  // 3. Parse a relevance path by type codes and evaluate HeteSim.
  MetaPath apc = MetaPath::Parse(graph.schema(), "A-P-C").value();
  HeteSimEngine engine(graph);
  DenseMatrix relevance = engine.Compute(apc);

  std::printf("HeteSim along %s (authors x conferences):\n",
              apc.ToString().c_str());
  for (Index a = 0; a < graph.NumNodes(author); ++a) {
    for (Index c = 0; c < graph.NumNodes(conf); ++c) {
      std::printf("  HeteSim(%-4s, %-6s) = %.4f\n",
                  graph.NodeName(author, a).c_str(),
                  graph.NodeName(conf, c).c_str(), relevance(a, c));
    }
  }

  // 4. Symmetry (Property 3): the reverse path gives the same scores.
  MetaPath cpa = apc.Reverse();
  Index tom = graph.FindNode(author, "Tom").value();
  Index kdd = graph.FindNode(conf, "KDD").value();
  double forward = engine.ComputePair(apc, tom, kdd).value();
  double backward = engine.ComputePair(cpa, kdd, tom).value();
  std::printf("\nSymmetry: HeteSim(Tom,KDD|APC) = %.6f, "
              "HeteSim(KDD,Tom|CPA) = %.6f\n", forward, backward);

  // 5. Same-typed relevance over the symmetric path A-P-C-P-A, and a top-k
  // query: who is most related to Tom through shared conferences?
  MetaPath apcpa = MetaPath::Parse(graph.schema(), "A-P-C-P-A").value();
  TopKSearcher searcher(graph, apcpa);
  TopKResult top = searcher.Query(tom, 3).value();
  std::printf("\nTop authors related to Tom along %s:\n", apcpa.ToString().c_str());
  for (const Scored& item : top.items) {
    std::printf("  %-4s  %.4f\n", graph.NodeName(author, item.id).c_str(),
                item.score);
  }
  return 0;
}
