// Expert finding through relative importance (the paper's Task 2,
// Table 3): because HeteSim is symmetric, the score of an
// (author, conference) pair is comparable across conferences — knowing one
// expert lets you spot experts in areas you don't know. PCRW is
// asymmetric, so its two directions rank pairs inconsistently.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/pcrw.h"
#include "core/hetesim.h"
#include "core/topk.h"
#include "datagen/acm_generator.h"
#include "hin/metapath.h"

int main() {
  using namespace hetesim;
  AcmDataset acm = GenerateAcm(AcmConfig{}).value();
  const HinGraph& graph = acm.graph;
  HeteSimEngine engine(graph);

  MetaPath apvc = MetaPath::Parse(graph.schema(), "A-P-V-C").value();
  MetaPath cvpa = apvc.Reverse();

  // The ground-truth "expert" of each conference: its most prolific author.
  DenseMatrix counts = acm.PaperCounts();
  std::printf("%-10s | %-14s | %8s | %10s | %10s\n", "conference", "top author",
              "papers", "HeteSim", "PCRW A->C");
  std::printf("-----------+----------------+----------+------------+-----------\n");
  for (Index c = 0; c < graph.NumNodes(acm.conference); ++c) {
    Index expert = 0;
    for (Index a = 1; a < counts.rows(); ++a) {
      if (counts(a, c) > counts(expert, c)) expert = a;
    }
    const double hetesim_score = engine.ComputePair(apvc, expert, c).value();
    const double hetesim_reverse = engine.ComputePair(cvpa, c, expert).value();
    const double pcrw_forward = PcrwPair(graph, apvc, expert, c).value();
    std::printf("%-10s | %-14s | %8.0f | %10.4f | %10.4f\n",
                graph.NodeName(acm.conference, c).c_str(),
                graph.NodeName(acm.author, expert).c_str(), counts(expert, c),
                hetesim_score, pcrw_forward);
    // Property 3 sanity: the two directions agree (up to FP rounding, since
    // the reverse path evaluates the same dot product in a different order).
    if (std::abs(hetesim_score - hetesim_reverse) > 1e-9) {
      std::printf("  !! symmetry violated: %f vs %f\n", hetesim_score,
                  hetesim_reverse);
      return 1;
    }
  }

  // Comparable importance: the star author's HeteSim score to KDD is the
  // yardstick; authors in *other* conferences with similar scores are those
  // conferences' influential researchers (the J.F. Naughton / W.B. Croft
  // deduction of the paper's Fig. 2).
  Index kdd = graph.FindNode(acm.conference, "KDD").value();
  const double yardstick = engine.ComputePair(apvc, acm.star_author, kdd).value();
  std::printf("\nYardstick: HeteSim(%s, KDD | APVC) = %.4f\n",
              graph.NodeName(acm.author, acm.star_author).c_str(), yardstick);
  std::printf("Closest-scoring authors in other conferences:\n");
  for (const char* name : {"SIGMOD", "SIGIR", "SODA"}) {
    Index conf = graph.FindNode(acm.conference, name).value();
    std::vector<double> scores = engine.ComputeSingleSource(cvpa, conf).value();
    double best_gap = 1e9;
    Index best = 0;
    for (size_t a = 0; a < scores.size(); ++a) {
      const double gap = std::abs(scores[a] - yardstick);
      if (gap < best_gap) {
        best_gap = gap;
        best = static_cast<Index>(a);
      }
    }
    std::printf("  %-8s: %-14s (HeteSim %.4f)\n", name,
                graph.NodeName(acm.author, best).c_str(), scores[best]);
  }
  return 0;
}
