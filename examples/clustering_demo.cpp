// Clustering with HeteSim similarity matrices (the paper's Table 6):
// because HeteSim is symmetric and semi-metric it can drive clustering
// directly. We cluster the conferences of the synthetic DBLP network with
// Normalized-Cut spectral clustering on the C-P-A-P-C HeteSim matrix and
// score against the planted four research areas with NMI, comparing
// against PathSim on the same path.

#include <cstdio>
#include <vector>

#include "baselines/pathsim.h"
#include "core/hetesim.h"
#include "datagen/dblp_generator.h"
#include "hin/metapath.h"
#include "learn/metrics.h"
#include "learn/spectral.h"

int main() {
  using namespace hetesim;
  DblpDataset dblp = GenerateDblp(DblpConfig{}).value();
  const HinGraph& graph = dblp.graph;
  std::printf("%s\n", graph.Summary().c_str());

  MetaPath cpapc = MetaPath::Parse(graph.schema(), "C-P-A-P-C").value();
  HeteSimEngine engine(graph);

  DenseMatrix hetesim_affinity = engine.Compute(cpapc);
  DenseMatrix pathsim_affinity = PathSimMatrix(graph, cpapc).value();

  const int k = dblp.num_areas;
  std::vector<int> hetesim_clusters =
      SpectralClusterNormalizedCut(hetesim_affinity, k).value();
  std::vector<int> pathsim_clusters =
      SpectralClusterNormalizedCut(pathsim_affinity, k).value();

  double hetesim_nmi =
      NormalizedMutualInformation(hetesim_clusters, dblp.conference_label).value();
  double pathsim_nmi =
      NormalizedMutualInformation(pathsim_clusters, dblp.conference_label).value();

  std::printf("Conference clustering along %s (k = %d):\n",
              cpapc.ToString().c_str(), k);
  std::printf("  %-10s %-8s %s\n", "conference", "cluster", "true area");
  for (Index c = 0; c < graph.NumNodes(dblp.conference); ++c) {
    std::printf("  %-10s %-8d %d\n", graph.NodeName(dblp.conference, c).c_str(),
                hetesim_clusters[static_cast<size_t>(c)],
                dblp.conference_label[static_cast<size_t>(c)]);
  }
  std::printf("\nNMI vs planted areas:  HeteSim %.4f   PathSim %.4f\n",
              hetesim_nmi, pathsim_nmi);
  return 0;
}
