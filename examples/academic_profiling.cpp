// Automatic object profiling (the paper's Task 1, Tables 1 and 2): profile
// an author and a conference of the synthetic ACM network by ranking the
// most relevant objects of several types under different relevance paths.
//
// Each path carries its own semantics — A-P-V-C ranks the conferences an
// author participates in, A-P-T their topical terms, A-P-A their
// co-authors, C-V-P-A-P-V-C the conferences sharing a community.

#include <cstdio>
#include <string>
#include <vector>

#include "core/hetesim.h"
#include "core/topk.h"
#include "datagen/acm_generator.h"
#include "hin/metapath.h"

namespace {

using namespace hetesim;

void PrintProfile(const HinGraph& graph, const HeteSimEngine& engine,
                  const std::string& path_spec, TypeId display_type,
                  Index source, int k) {
  MetaPath path = MetaPath::Parse(graph.schema(), path_spec).value();
  std::vector<double> scores = engine.ComputeSingleSource(path, source).value();
  std::printf("  path %-14s top-%d %ss:\n", path.ToString().c_str(), k,
              graph.schema().TypeName(display_type).c_str());
  for (const Scored& item : TopK(scores, k)) {
    std::printf("    %-16s %.4f\n", graph.NodeName(display_type, item.id).c_str(),
                item.score);
  }
}

}  // namespace

int main() {
  AcmDataset acm = GenerateAcm(AcmConfig{}).value();
  const HinGraph& graph = acm.graph;
  std::printf("%s\n", graph.Summary().c_str());
  HeteSimEngine engine(graph);

  // --- Table 1: profile the star author (a KDD-centric data miner) ---
  std::printf("=== Profile of %s ===\n",
              graph.NodeName(acm.author, acm.star_author).c_str());
  PrintProfile(graph, engine, "A-P-V-C", acm.conference, acm.star_author, 5);
  PrintProfile(graph, engine, "A-P-T", acm.term, acm.star_author, 5);
  PrintProfile(graph, engine, "A-P-S", acm.subject, acm.star_author, 5);
  PrintProfile(graph, engine, "A-P-A", acm.author, acm.star_author, 5);

  // --- Table 2: profile the KDD conference ---
  Index kdd = graph.FindNode(acm.conference, "KDD").value();
  std::printf("\n=== Profile of KDD ===\n");
  PrintProfile(graph, engine, "C-V-P-A", acm.author, kdd, 5);
  PrintProfile(graph, engine, "C-V-P-A-F", acm.affiliation, kdd, 5);
  PrintProfile(graph, engine, "C-V-P-S", acm.subject, kdd, 5);
  PrintProfile(graph, engine, "C-V-P-A-P-V-C", acm.conference, kdd, 5);
  return 0;
}
