// Recommendation with relevance search — the use case the paper's
// introduction motivates ("in a recommendation system, we need to know the
// relatedness between users and movies"). This example:
//   1. builds a small user-movie-genre-actor heterogeneous network,
//   2. enumerates the meta-paths connecting users to movies,
//   3. learns per-path weights from a handful of labeled (user, movie)
//      preference pairs (the Section 5.1 supervised path selection),
//   4. recommends unseen movies by combined HeteSim relevance.

#include <cstdio>
#include <set>
#include <vector>

#include "core/hetesim.h"
#include "core/topk.h"
#include "hin/builder.h"
#include "hin/enumerate.h"
#include "learn/path_weights.h"

int main() {
  using namespace hetesim;

  // --- 1. The network: users watch movies; movies have genres and actors.
  HinGraphBuilder builder;
  TypeId user = builder.AddObjectType("user", 'U').value();
  TypeId movie = builder.AddObjectType("movie", 'M').value();
  TypeId genre = builder.AddObjectType("genre", 'G').value();
  TypeId actor = builder.AddObjectType("actor", 'A').value();
  RelationId watched = builder.AddRelation("watched", user, movie).value();
  RelationId has_genre = builder.AddRelation("has_genre", movie, genre).value();
  RelationId stars = builder.AddRelation("stars", movie, actor).value();

  struct Edge {
    RelationId relation;
    const char* src;
    const char* dst;
  };
  const Edge edges[] = {
      // Alice and Bob like fantasy; Carol likes drama.
      {watched, "alice", "HarryPotter1"},
      {watched, "alice", "HarryPotter2"},
      {watched, "alice", "LordOfTheRings"},
      {watched, "bob", "HarryPotter1"},
      {watched, "bob", "LordOfTheRings"},
      {watched, "bob", "Hobbit"},
      {watched, "carol", "Shawshank"},
      {watched, "carol", "GreenMile"},
      {watched, "dave", "GreenMile"},
      {watched, "dave", "Hobbit"},
      {has_genre, "HarryPotter1", "fantasy"},
      {has_genre, "HarryPotter2", "fantasy"},
      {has_genre, "LordOfTheRings", "fantasy"},
      {has_genre, "Hobbit", "fantasy"},
      {has_genre, "Shawshank", "drama"},
      {has_genre, "GreenMile", "drama"},
      {stars, "HarryPotter1", "Radcliffe"},
      {stars, "HarryPotter2", "Radcliffe"},
      {stars, "LordOfTheRings", "McKellen"},
      {stars, "Hobbit", "McKellen"},
      {stars, "Shawshank", "Freeman"},
      {stars, "GreenMile", "Hanks"},
  };
  for (const Edge& e : edges) {
    Status added = builder.AddEdgeByName(e.relation, e.src, e.dst);
    if (!added.ok()) {
      std::fprintf(stderr, "AddEdgeByName: %s\n", added.ToString().c_str());
      return 1;
    }
  }
  HinGraph graph = std::move(builder).Build();
  std::printf("%s\n", graph.Summary().c_str());

  // --- 2. Candidate relevance paths from users to movies.
  EnumerateOptions enumerate_options;
  enumerate_options.max_length = 4;
  std::vector<MetaPath> paths =
      EnumerateMetaPaths(graph.schema(), user, movie, enumerate_options).value();
  std::printf("candidate user->movie paths (length <= 4):\n");
  for (const MetaPath& path : paths) {
    std::printf("  %-12s (%s)\n", path.ToString().c_str(),
                path.ToRelationString().c_str());
  }

  // --- 3. Learn path weights from a few labeled preferences.
  auto uid = [&](const char* name) { return graph.FindNode(user, name).value(); };
  auto mid = [&](const char* name) { return graph.FindNode(movie, name).value(); };
  std::vector<LabeledPair> labels = {
      {uid("alice"), mid("HarryPotter1"), 1.0},  // loved
      {uid("alice"), mid("Shawshank"), 0.0},     // not her thing
      {uid("bob"), mid("Hobbit"), 1.0},
      {uid("bob"), mid("GreenMile"), 0.0},
      {uid("carol"), mid("GreenMile"), 1.0},
      {uid("carol"), mid("HarryPotter2"), 0.0},
  };
  PathWeightModel model = LearnPathWeights(graph, paths, labels).value();
  std::printf("\nlearned path weights (training MSE %.4f, %d iterations):\n",
              model.training_loss, model.iterations);
  for (size_t k = 0; k < model.paths.size(); ++k) {
    std::printf("  %-12s %.4f\n", model.paths[k].ToString().c_str(),
                model.weights[k]);
  }

  // --- 4. Recommend: top unseen movies per user by combined relevance.
  std::printf("\nrecommendations (unseen movies, combined HeteSim):\n");
  const SparseMatrix& watched_adj = graph.Adjacency(watched);
  for (const char* name : {"alice", "bob", "carol", "dave"}) {
    Index u = uid(name);
    std::vector<double> scores = CombinedSingleSource(graph, model, u).value();
    std::set<Index> seen(watched_adj.RowIndices(u).begin(),
                         watched_adj.RowIndices(u).end());
    std::printf("  %-6s:", name);
    int shown = 0;
    for (const Scored& item : TopK(scores, static_cast<int>(scores.size()))) {
      if (seen.count(item.id) != 0) continue;
      std::printf("  %s (%.3f)", graph.NodeName(movie, item.id).c_str(),
                  item.score);
      if (++shown == 2) break;
    }
    std::printf("\n");
  }
  return 0;
}
