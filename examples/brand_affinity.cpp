// Brand affinity — the paper's Section 4.1 motivating example made
// runnable: "customers are more faithful to brands that manufacture many
// products purchased by the customers". We build a customer-product-brand
// network and measure customer-brand relatedness along C-P-B with HeteSim,
// contrasting it with the asymmetric PCRW view, and use the dynamic-graph
// API to show scores updating as new purchases stream in.

#include <cstdio>

#include "baselines/pcrw.h"
#include "core/hetesim.h"
#include "hin/builder.h"
#include "hin/dynamic.h"
#include "hin/metapath.h"

int main() {
  using namespace hetesim;

  HinGraphBuilder builder;
  TypeId customer = builder.AddObjectType("customer", 'C').value();
  TypeId product = builder.AddObjectType("product", 'P').value();
  TypeId brand = builder.AddObjectType("brand", 'B').value();
  RelationId bought = builder.AddRelation("bought", customer, product).value();
  RelationId made_by = builder.AddRelation("made_by", product, brand).value();

  struct Edge {
    RelationId relation;
    const char* src;
    const char* dst;
  };
  const Edge edges[] = {
      {bought, "ana", "phone_x"},    {bought, "ana", "tablet_x"},
      {bought, "ana", "watch_x"},    {bought, "ben", "phone_x"},
      {bought, "ben", "laptop_y"},   {bought, "cleo", "laptop_y"},
      {bought, "cleo", "monitor_y"}, {bought, "cleo", "mouse_z"},
      {made_by, "phone_x", "Xenon"}, {made_by, "tablet_x", "Xenon"},
      {made_by, "watch_x", "Xenon"}, {made_by, "laptop_y", "Yotta"},
      {made_by, "monitor_y", "Yotta"}, {made_by, "mouse_z", "Zephyr"},
  };
  for (const Edge& e : edges) {
    Status added = builder.AddEdgeByName(e.relation, e.src, e.dst);
    if (!added.ok()) {
      std::fprintf(stderr, "AddEdgeByName: %s\n", added.ToString().c_str());
      return 1;
    }
  }

  DynamicHinGraph network(std::move(builder).Build());
  MetaPath cpb = MetaPath::Parse(network.schema(), "C-P-B").value();

  auto print_affinities = [&](const char* heading) {
    const HinGraph& g = network.snapshot();
    HeteSimEngine engine(g);
    DenseMatrix hetesim = engine.Compute(cpb);
    DenseMatrix pcrw = PcrwMatrix(g, cpb);
    std::printf("%s\n%-8s", heading, "");
    for (Index b = 0; b < g.NumNodes(brand); ++b) {
      std::printf("  %14s", g.NodeName(brand, b).c_str());
    }
    std::printf("\n");
    for (Index c = 0; c < g.NumNodes(customer); ++c) {
      std::printf("%-8s", g.NodeName(customer, c).c_str());
      for (Index b = 0; b < g.NumNodes(brand); ++b) {
        std::printf("  %6.3f (%4.2f)", hetesim(c, b), pcrw(c, b));
      }
      std::printf("\n");
    }
    std::printf("         (HeteSim, PCRW-in-parentheses)\n\n");
  };

  print_affinities("Customer-brand affinity along C-P-B:");

  // Ana buys only Xenon: affinity 1 mutuality needs Xenon to sell only to
  // Ana too — the symmetric measure reflects both sides. Now Ben doubles
  // down on Yotta; his Yotta affinity must rise, Xenon's fall.
  std::printf(">> ben buys two more Yotta products...\n\n");
  Index ben = network.snapshot().FindNode(customer, "ben").value();
  for (const char* name : {"keyboard_y", "dock_y"}) {
    Index p = network.AddNode(product, name).value();
    if (!network.AddEdge(bought, ben, p).ok()) return 1;
    Index yotta = network.snapshot().FindNode(brand, "Yotta").value();
    if (!network.AddEdge(made_by, p, yotta).ok()) return 1;
  }
  print_affinities("After the new purchases (snapshot version bumped):");
  std::printf("snapshot version: %llu\n",
              static_cast<unsigned long long>(network.version()));
  return 0;
}
