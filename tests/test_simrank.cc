#include "baselines/simrank.h"

#include <gtest/gtest.h>

#include "core/hetesim.h"
#include "test_util.h"

namespace hetesim {
namespace {

SparseMatrix PathGraph3() {
  // 0 -> 1 -> 2 (directed path).
  return SparseMatrix::FromTriplets(3, 3, {{0, 1, 1.0}, {1, 2, 1.0}});
}

TEST(SimRankHomogeneous, DiagonalIsOne) {
  DenseMatrix s = SimRankHomogeneous(PathGraph3());
  for (Index i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(s(i, i), 1.0);
}

TEST(SimRankHomogeneous, SymmetricResult) {
  SparseMatrix g = testing::RandomBipartiteAdjacency(8, 8, 0.3, 51);
  DenseMatrix s = SimRankHomogeneous(g);
  EXPECT_TRUE(s.ApproxEquals(s.Transpose(), 1e-12));
}

TEST(SimRankHomogeneous, ValuesInUnitInterval) {
  SparseMatrix g = testing::RandomBipartiteAdjacency(10, 10, 0.25, 52);
  DenseMatrix s = SimRankHomogeneous(g);
  for (Index i = 0; i < s.rows(); ++i) {
    for (Index j = 0; j < s.cols(); ++j) {
      EXPECT_GE(s(i, j), 0.0);
      EXPECT_LE(s(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(SimRankHomogeneous, NoSharedInNeighborsNoFirstOrderSimilarity) {
  // In the 3-node path graph, nodes 1 and 2 have in-neighbor sets {0} and
  // {1}: SimRank(1,2) needs SimRank(0,1) which needs I(0) = {} -> 0.
  DenseMatrix s = SimRankHomogeneous(PathGraph3());
  EXPECT_DOUBLE_EQ(s(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 0.0);
}

TEST(SimRankHomogeneous, SharedInNeighborClassic) {
  // Two sinks fed by one source: s(1,2) = C after convergence.
  SparseMatrix g = SparseMatrix::FromTriplets(3, 3, {{0, 1, 1.0}, {0, 2, 1.0}});
  SimRankOptions options;
  options.decay = 0.8;
  DenseMatrix s = SimRankHomogeneous(g, options);
  EXPECT_NEAR(s(1, 2), 0.8, 1e-9);
}

TEST(SimRankHomogeneous, DecayScalesSimilarity) {
  SparseMatrix g = testing::RandomBipartiteAdjacency(8, 8, 0.3, 53);
  SimRankOptions low;
  low.decay = 0.2;
  SimRankOptions high;
  high.decay = 0.9;
  DenseMatrix s_low = SimRankHomogeneous(g, low);
  DenseMatrix s_high = SimRankHomogeneous(g, high);
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 8; ++j) {
      if (i != j) {
        EXPECT_LE(s_low(i, j), s_high(i, j) + 1e-12);
      }
    }
  }
}

TEST(SimRankHeterogeneous, RunsOnCollapsedHin) {
  HinGraph g = testing::BuildFig4Graph();
  HomogeneousView view = BuildHomogeneousView(g);
  DenseMatrix s = SimRankHeterogeneous(view);
  EXPECT_EQ(s.rows(), view.TotalNodes());
  // Tom and Mary share paper p2 as an (undirected) neighbor.
  TypeId author = *g.schema().TypeByCode('A');
  EXPECT_GT(s(view.GlobalId(author, 0), view.GlobalId(author, 1)), 0.0);
}

TEST(BipartiteSimRankSeries, TermStructure) {
  SparseMatrix w = testing::RandomBipartiteAdjacency(6, 5, 0.4, 54);
  DenseMatrix depth1 = BipartiteSimRankSeries(w, 1);
  DenseMatrix depth3 = BipartiteSimRankSeries(w, 3);
  // Terms are non-negative, so the series is monotone in depth.
  for (Index i = 0; i < 6; ++i) {
    for (Index j = 0; j < 6; ++j) {
      EXPECT_LE(depth1(i, j), depth3(i, j) + 1e-12);
    }
  }
  EXPECT_TRUE(depth1.ApproxEquals(depth1.Transpose(), 1e-12));
  EXPECT_TRUE(depth3.ApproxEquals(depth3.Transpose(), 1e-12));
}

TEST(BipartiteSimRankSeries, BSideUsesTransposedWalk) {
  SparseMatrix w = testing::RandomBipartiteAdjacency(6, 5, 0.4, 55);
  DenseMatrix b_side = BipartiteSimRankSeries(w, 2, /*a_side=*/false);
  DenseMatrix a_side_of_transpose = BipartiteSimRankSeries(w.Transpose(), 2, true);
  EXPECT_TRUE(b_side.ApproxEquals(a_side_of_transpose, 1e-12));
}

TEST(Property5, SimRankSeriesEqualsSumOfUnnormalizedHeteSim) {
  // Property 5 of the paper: on a bipartite schema, the depth-k truncated
  // SimRank series equals the sum of unnormalized HeteSim over the paths
  // (R R^-1)^j, j = 1..k.
  HinGraph g = testing::BuildFig4Graph();
  RelationId writes = *g.schema().RelationByName("writes");
  HeteSimEngine engine(g);
  const SparseMatrix& w = g.Adjacency(writes);
  for (int depth : {1, 2, 3, 4}) {
    DenseMatrix series = BipartiteSimRankSeries(w, depth);
    for (Index a1 = 0; a1 < w.rows(); ++a1) {
      for (Index a2 = 0; a2 < w.rows(); ++a2) {
        EXPECT_NEAR(*engine.SimRankSeries(writes, a1, a2, depth), series(a1, a2),
                    1e-10)
            << "depth " << depth;
      }
    }
  }
}

TEST(Property5, HoldsOnRandomBipartiteGraphs) {
  for (uint64_t seed : {61u, 62u}) {
    HinGraphBuilder builder;
    TypeId a = *builder.AddObjectType("alpha");
    TypeId b = *builder.AddObjectType("beta");
    RelationId r = *builder.AddRelation("r", a, b);
    SparseMatrix w = testing::RandomBipartiteAdjacency(7, 6, 0.35, seed);
    builder.AddNodes(a, 7);
    builder.AddNodes(b, 6);
    for (Index i = 0; i < w.rows(); ++i) {
      auto indices = w.RowIndices(i);
      for (Index j : indices) EXPECT_TRUE(builder.AddEdge(r, i, j).ok());
    }
    HinGraph g = std::move(builder).Build();
    HeteSimEngine engine(g);
    DenseMatrix series = BipartiteSimRankSeries(g.Adjacency(r), 3);
    for (Index a1 = 0; a1 < 7; ++a1) {
      EXPECT_NEAR(*engine.SimRankSeries(r, a1, a1, 3), series(a1, a1), 1e-10);
      EXPECT_NEAR(*engine.SimRankSeries(r, a1, (a1 + 1) % 7, 3),
                  series(a1, (a1 + 1) % 7), 1e-10);
    }
  }
}

TEST(SimRankDeath, NonSquareAborts) {
  EXPECT_DEATH({ (void)SimRankHomogeneous(SparseMatrix(2, 3)); }, "CHECK failed");
}

}  // namespace
}  // namespace hetesim
