#include "datagen/dblp_generator.h"

#include <set>

#include <gtest/gtest.h>

namespace hetesim {
namespace {

DblpConfig SmallConfig() {
  DblpConfig config;
  config.num_papers = 400;
  config.num_authors = 300;
  config.num_terms = 150;
  return config;
}

TEST(DblpGenerator, SchemaMatchesFig3b) {
  DblpDataset dblp = *GenerateDblp(SmallConfig());
  const Schema& schema = dblp.graph.schema();
  EXPECT_EQ(schema.NumObjectTypes(), 4);
  EXPECT_EQ(schema.NumRelations(), 3);
  for (char code : {'A', 'P', 'C', 'T'}) {
    EXPECT_TRUE(schema.TypeByCode(code).ok()) << code;
  }
}

TEST(DblpGenerator, TwentyConferencesFivePerArea) {
  DblpDataset dblp = *GenerateDblp(SmallConfig());
  EXPECT_EQ(dblp.graph.NumNodes(dblp.conference), 20);
  ASSERT_EQ(dblp.conference_label.size(), 20u);
  std::vector<int> per_area(4, 0);
  for (int label : dblp.conference_label) ++per_area[static_cast<size_t>(label)];
  for (int count : per_area) EXPECT_EQ(count, 5);
  EXPECT_EQ(DblpConferenceNames().size(), 20u);
  EXPECT_EQ(DblpConferenceAreas().size(), 20u);
}

TEST(DblpGenerator, LabelsCoverEveryObject) {
  DblpConfig config = SmallConfig();
  DblpDataset dblp = *GenerateDblp(config);
  EXPECT_EQ(dblp.author_label.size(), static_cast<size_t>(config.num_authors));
  EXPECT_EQ(dblp.paper_label.size(), static_cast<size_t>(config.num_papers));
  for (int label : dblp.author_label) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
  for (int label : dblp.paper_label) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(DblpGenerator, PaperLabelsMatchConferenceLabels) {
  // A paper's planted label is the area of the conference it appears in.
  DblpDataset dblp = *GenerateDblp(SmallConfig());
  const SparseMatrix& published = dblp.graph.Adjacency(dblp.published_in);
  for (Index p = 0; p < dblp.graph.NumNodes(dblp.paper); ++p) {
    auto confs = published.RowIndices(p);
    ASSERT_EQ(confs.size(), 1u);
    EXPECT_EQ(dblp.paper_label[static_cast<size_t>(p)],
              dblp.conference_label[static_cast<size_t>(confs[0])]);
  }
}

TEST(DblpGenerator, Deterministic) {
  DblpDataset a = *GenerateDblp(SmallConfig());
  DblpDataset b = *GenerateDblp(SmallConfig());
  EXPECT_TRUE(a.graph.Adjacency(a.writes).ApproxEquals(b.graph.Adjacency(b.writes)));
  EXPECT_EQ(a.author_label, b.author_label);
}

TEST(DblpGenerator, EveryPaperHasAuthorAndTerms) {
  DblpDataset dblp = *GenerateDblp(SmallConfig());
  const SparseMatrix writes_t = dblp.graph.AdjacencyTranspose(dblp.writes);
  const SparseMatrix& terms = dblp.graph.Adjacency(dblp.has_term);
  for (Index p = 0; p < dblp.graph.NumNodes(dblp.paper); ++p) {
    EXPECT_GE(writes_t.RowNnz(p), 1);
    EXPECT_GE(terms.RowNnz(p), 1);
  }
}

TEST(DblpGenerator, CommunityStructurePlanted) {
  DblpDataset dblp = *GenerateDblp(SmallConfig());
  // Authors publish mostly in their own area.
  DenseMatrix counts = dblp.graph.Adjacency(dblp.writes)
                           .Multiply(dblp.graph.Adjacency(dblp.published_in))
                           .ToDense();
  double in_area = 0.0;
  double total = 0.0;
  for (Index a = 0; a < counts.rows(); ++a) {
    for (Index c = 0; c < counts.cols(); ++c) {
      total += counts(a, c);
      if (dblp.author_label[static_cast<size_t>(a)] ==
          dblp.conference_label[static_cast<size_t>(c)]) {
        in_area += counts(a, c);
      }
    }
  }
  EXPECT_GT(in_area / total, 0.6);
}

TEST(DblpGenerator, ConfigValidation) {
  DblpConfig config = SmallConfig();
  config.num_authors = 1;
  EXPECT_TRUE(GenerateDblp(config).status().IsInvalidArgument());
  config = SmallConfig();
  config.coauthor_same_area = -0.1;
  EXPECT_TRUE(GenerateDblp(config).status().IsInvalidArgument());
  config = SmallConfig();
  config.terms_per_paper = 0;
  EXPECT_TRUE(GenerateDblp(config).status().IsInvalidArgument());
}

TEST(DblpGenerator, Table5ConferencesPresent) {
  DblpDataset dblp = *GenerateDblp(SmallConfig());
  // The nine conferences evaluated in the paper's Table 5 all exist.
  for (const char* name : {"KDD", "ICDM", "SDM", "SIGMOD", "ICDE", "VLDB",
                           "AAAI", "IJCAI", "SIGIR"}) {
    EXPECT_TRUE(dblp.graph.FindNode(dblp.conference, name).ok()) << name;
  }
}

}  // namespace
}  // namespace hetesim
