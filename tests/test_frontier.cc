// Property suite for the frontier single-source executor (DESIGN.md §14):
// the frontier top-k must agree with the pruned and exhaustive algorithms
// to 1e-12 on generated DBLP/ACM networks, terminate early via the
// monotone bound without losing exactness, degrade to a marked partial
// result under cancellation mid-frontier, surface injected allocation
// failures at the `frontier.alloc` fault point, and fold cached partial
// products into never-seen paths (ad-hoc meta-path reuse).

#include "core/frontier.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/context.h"
#include "common/fault_injection.h"
#include "core/hetesim.h"
#include "core/materialize.h"
#include "core/topk.h"
#include "datagen/acm_generator.h"
#include "datagen/dblp_generator.h"
#include "hin/metapath.h"
#include "test_util.h"

namespace hetesim {
namespace {

/// Generated networks shared across the suite (generation dominates the
/// runtime, so each dataset graph is built once).
const HinGraph& DatasetGraph(const std::string& dataset) {
  static std::map<std::string, HinGraph>* const kCache =
      new std::map<std::string, HinGraph>();  // hetesim-lint: allow(no-naked-new)
  auto it = kCache->find(dataset);
  if (it != kCache->end()) return it->second;
  if (dataset == "dblp") {
    DblpConfig config;
    config.num_papers = 260;
    config.num_authors = 180;
    config.num_terms = 120;
    config.seed = 17;
    return kCache->emplace(dataset, std::move(GenerateDblp(config)->graph))
        .first->second;
  }
  AcmConfig config;
  config.num_papers = 220;
  config.num_authors = 180;
  config.num_affiliations = 40;
  config.num_terms = 120;
  config.num_subjects = 25;
  config.seed = 17;
  return kCache->emplace(dataset, std::move(GenerateAcm(config)->graph))
      .first->second;
}

TopKSearcher PrepareWithAlgo(const HinGraph& graph, const MetaPath& path,
                             RelevanceAlgo algo,
                             PathMatrixCache* cache = nullptr) {
  HeteSimOptions options;
  options.algo = algo;
  Result<TopKSearcher> searcher = TopKSearcher::Prepare(
      graph, path, options, QueryContext::Background(), cache);
  HETESIM_CHECK(searcher.ok());
  return std::move(*searcher);
}

/// Both rankings are sorted by descending score, ties by ascending id.
/// Positions must carry (near-)identical scores; ids may swap only inside
/// a score tie, where the order is an implementation accident.
void ExpectSameRanking(const TopKResult& got, const TopKResult& want,
                       double tolerance, const std::string& label) {
  ASSERT_EQ(got.items.size(), want.items.size()) << label;
  for (size_t i = 0; i < got.items.size(); ++i) {
    EXPECT_NEAR(got.items[i].score, want.items[i].score, tolerance)
        << label << " rank " << i;
    if (got.items[i].id != want.items[i].id) {
      EXPECT_NEAR(got.items[i].score, want.items[i].score, tolerance)
          << label << " rank " << i << ": id swap outside a score tie";
    }
  }
}

struct FrontierCase {
  const char* dataset;
  const char* path;
};

void PrintTo(const FrontierCase& c, std::ostream* os) {
  *os << c.dataset << "_" << c.path;
}

class FrontierPropertyTest : public ::testing::TestWithParam<FrontierCase> {};

TEST_P(FrontierPropertyTest, MatchesPrunedAndExhaustive) {
  const FrontierCase& c = GetParam();
  const HinGraph& graph = DatasetGraph(c.dataset);
  const MetaPath path = *MetaPath::Parse(graph.schema(), c.path);
  TopKSearcher pruned(graph, path);
  TopKSearcher frontier =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  const Index num_sources = graph.NumNodes(path.SourceType());
  const Index stride = num_sources > 60 ? num_sources / 60 : 1;
  for (Index s = 0; s < num_sources; s += stride) {
    for (int k : {1, 5, 23}) {
      const TopKResult f = *frontier.Query(s, k);
      const TopKResult p = *pruned.Query(s, k);
      ExpectSameRanking(f, p, 1e-12,
                        std::string(c.path) + " source " +
                            std::to_string(s) + " k " + std::to_string(k));
      // Exhaustive keeps zero-score candidates the sparse algos omit;
      // the positive prefix must agree.
      const TopKResult e = *pruned.QueryExhaustive(s, k);
      size_t positive = 0;
      while (positive < e.items.size() && e.items[positive].score > 0.0) {
        ++positive;
      }
      ASSERT_GE(f.items.size(), positive);
      for (size_t i = 0; i < positive; ++i) {
        EXPECT_NEAR(f.items[i].score, e.items[i].score, 1e-12)
            << c.path << " source " << s << " rank " << i;
      }
    }
  }
}

TEST_P(FrontierPropertyTest, NeverExaminesMoreThanPruned) {
  const FrontierCase& c = GetParam();
  const HinGraph& graph = DatasetGraph(c.dataset);
  const MetaPath path = *MetaPath::Parse(graph.schema(), c.path);
  TopKSearcher pruned(graph, path);
  TopKSearcher frontier =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  const Index num_sources = graph.NumNodes(path.SourceType());
  for (Index s = 0; s < num_sources; s += 7) {
    EXPECT_LE(frontier.Query(s, 5)->candidates_examined,
              pruned.Query(s, 5)->candidates_examined)
        << c.path << " source " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeneratedNets, FrontierPropertyTest,
    ::testing::Values(FrontierCase{"dblp", "A-P"},
                      FrontierCase{"dblp", "C-P-A"},
                      FrontierCase{"dblp", "A-P-C-P-A"},
                      FrontierCase{"dblp", "A-P-T-P-A"},
                      FrontierCase{"acm", "A-P-V-C"},
                      FrontierCase{"acm", "A-P-A"}));

TEST(Frontier, BoundExitKeepsExactnessAndHappens) {
  // k = 1 on a skewed long path: the leading candidate's lower bound
  // should overtake the shrinking tail bound well before the frontier is
  // exhausted — and when it does, the answer must still be exact.
  const HinGraph& graph = DatasetGraph("dblp");
  const MetaPath path = *MetaPath::Parse(graph.schema(), "A-P-C-P-A");
  TopKSearcher pruned(graph, path);
  TopKSearcher frontier =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  int bound_exits = 0;
  const Index num_sources = graph.NumNodes(path.SourceType());
  for (Index s = 0; s < num_sources; ++s) {
    const TopKResult f = *frontier.Query(s, 1);
    const TopKResult p = *pruned.Query(s, 1);
    ExpectSameRanking(f, p, 1e-12, "source " + std::to_string(s));
    if (f.bound_exit) {
      ++bound_exits;
      EXPECT_LT(f.middle_processed, f.middle_total)
          << "a bound exit that processed the whole frontier is a no-op";
    }
    EXPECT_FALSE(p.bound_exit) << "pruned never reports bound exits";
  }
  EXPECT_GT(bound_exits, 0)
      << "no source triggered the monotone bound on " << num_sources
      << " sources; the early-exit path is dead code";
}

TEST(Frontier, TruncationThresholdTracksErrorBound) {
  const HinGraph& graph = DatasetGraph("dblp");
  const MetaPath path = *MetaPath::Parse(graph.schema(), "A-P-C-P-A");
  HeteSimOptions options;
  options.algo = RelevanceAlgo::kFrontier;
  options.truncation = 1e-3;  // relative per-hop threshold under frontier
  TopKSearcher truncated = *TopKSearcher::Prepare(
      graph, path, options, QueryContext::Background());
  TopKSearcher exact = PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  for (Index s = 0; s < 40; ++s) {
    const TopKResult t = *truncated.Query(s, 5);
    const TopKResult e = *exact.Query(s, 5);
    EXPECT_GE(t.error_bound, 0.0);
    EXPECT_EQ(e.error_bound, 0.0) << "exact runs drop no mass";
    // Dropped mass is tiny relative mass per hop; scores stay close.
    ASSERT_LE(t.items.size(), e.items.size());
    for (size_t i = 0; i < t.items.size(); ++i) {
      EXPECT_NEAR(t.items[i].score, e.items[i].score, 1e-2)
          << "source " << s << " rank " << i;
    }
  }
}

TEST(Frontier, CancellationMidFrontierTruncatesInsteadOfErroring) {
  const HinGraph& graph = DatasetGraph("dblp");
  const MetaPath path = *MetaPath::Parse(graph.schema(), "A-P-C-P-A");
  TopKSearcher frontier =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  QueryContext cancelled;
  cancelled.Cancel();
  Result<TopKResult> result = frontier.Query(0, 5, cancelled);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->truncated);
  // The same contract for an already-expired deadline.
  const QueryContext expired =
      QueryContext::Background().WithDeadlineAfterMs(0);
  Result<TopKResult> late = frontier.Query(0, 5, expired);
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_TRUE(late->truncated);
}

TEST(Frontier, MemoryBudgetExhaustionIsAnError) {
  // Unlike a deadline, running out of budget is not gracefully degradable:
  // the query reports ResourceExhausted rather than a partial ranking.
  const HinGraph& graph = DatasetGraph("dblp");
  const MetaPath path = *MetaPath::Parse(graph.schema(), "A-P-C-P-A");
  TopKSearcher frontier =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  MemoryBudget tiny(16);
  const QueryContext ctx = QueryContext::Background().WithBudget(&tiny);
  Result<TopKResult> result = frontier.Query(0, 5, ctx);
  EXPECT_TRUE(result.status().IsResourceExhausted())
      << result.status().ToString();
}

TEST(Frontier, AllocFaultInjectionSurfacesResourceExhausted) {
  if (!FaultInjector::CompiledIn()) {
    GTEST_SKIP() << "fault injection compiled out";
  }
  FaultInjector::Global().Reset();
  const HinGraph& graph = DatasetGraph("dblp");
  const MetaPath path = *MetaPath::Parse(graph.schema(), "A-P-C-P-A");
  TopKSearcher frontier =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  FaultInjector::Global().Arm("frontier.alloc", 1.0, /*max_failures=*/1);
  Result<TopKResult> faulted = frontier.Query(0, 5);
  EXPECT_TRUE(faulted.status().IsResourceExhausted())
      << faulted.status().ToString();
  EXPECT_GE(FaultInjector::Global().StatsFor("frontier.alloc").failures, 1u);
  // The single allotted fault is spent; the retry succeeds.
  Result<TopKResult> retried = frontier.Query(0, 5);
  EXPECT_TRUE(retried.ok()) << retried.status().ToString();
  FaultInjector::Global().Reset();
}

TEST(Frontier, AdHocReuseFoldsCachedPartials) {
  const HinGraph& graph = DatasetGraph("dblp");
  // Warm the cache with the reach matrix of the shared A-P prefix — its
  // key doubles as both the left-prefix and (inverted) right-suffix
  // partial of the longer symmetric path.
  PathMatrixCache cache;
  const MetaPath prefix = *MetaPath::Parse(graph.schema(), "A-P");
  (void)cache.GetReach(graph, prefix);
  const MetaPath path = *MetaPath::Parse(graph.schema(), "A-P-C-P-A");
  TopKSearcher with_cache =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier, &cache);
  TopKSearcher without =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  const PathMatrixCache::Stats stats = cache.stats();
  EXPECT_GE(stats.prefix_probes, 1u);
  EXPECT_GE(stats.suffix_probes, 1u);
  EXPECT_GE(stats.prefix_probe_hits + stats.suffix_probe_hits, 1u)
      << "warm A-P partial was never found by the decomposition planner";
  EXPECT_GT(stats.partial_bytes_saved, 0u);
  for (Index s = 0; s < 40; ++s) {
    ExpectSameRanking(*with_cache.Query(s, 5), *without.Query(s, 5), 1e-12,
                      "source " + std::to_string(s));
  }
}

TEST(Frontier, LegacyFixedPollStrideMatchesAdaptive) {
  const HinGraph& graph = DatasetGraph("dblp");
  const MetaPath path = *MetaPath::Parse(graph.schema(), "A-P-C-P-A");
  HeteSimOptions fixed;
  fixed.algo = RelevanceAlgo::kFrontier;
  fixed.topk_poll_stride = PollStrideController::kLegacyFixedStride;
  TopKSearcher pinned = *TopKSearcher::Prepare(
      graph, path, fixed, QueryContext::Background());
  TopKSearcher adaptive =
      PrepareWithAlgo(graph, path, RelevanceAlgo::kFrontier);
  for (Index s = 0; s < 40; ++s) {
    ExpectSameRanking(*pinned.Query(s, 5), *adaptive.Query(s, 5), 1e-12,
                      "source " + std::to_string(s));
  }
}

TEST(Frontier, EnginePairsMatchDefaultAlgo) {
  const HinGraph& graph = DatasetGraph("dblp");
  const MetaPath path = *MetaPath::Parse(graph.schema(), "A-P-C-P-A");
  HeteSimOptions frontier_options;
  frontier_options.algo = RelevanceAlgo::kFrontier;
  HeteSimEngine frontier(graph, frontier_options);
  HeteSimEngine baseline(graph);
  std::vector<std::pair<Index, Index>> pairs;
  for (Index i = 0; i < 25; ++i) pairs.emplace_back(i, (i * 7 + 3) % 100);
  const std::vector<double> got = *frontier.ComputePairs(path, pairs);
  const std::vector<double> want = *baseline.ComputePairs(path, pairs);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-12) << "pair " << i;
  }
}

TEST(PollStrideController, FixedStridePins) {
  PollStrideController controller(1024);
  EXPECT_EQ(controller.stride(), 1024u);
  EXPECT_FALSE(controller.ShouldPoll(0));
  EXPECT_FALSE(controller.ShouldPoll(1023));
  EXPECT_TRUE(controller.ShouldPoll(1024));
  EXPECT_EQ(controller.stride(), 1024u) << "fixed stride must never adapt";
  EXPECT_FALSE(controller.ShouldPoll(1025));
  EXPECT_TRUE(controller.ShouldPoll(2048));
}

TEST(PollStrideController, AdaptiveStrideStaysClamped) {
  PollStrideController controller(0);
  size_t item = 0;
  for (int polls = 0; polls < 200; ++polls) {
    while (!controller.ShouldPoll(item)) ++item;
    EXPECT_GE(controller.stride(), PollStrideController::kMinStride);
    EXPECT_LE(controller.stride(), PollStrideController::kMaxStride);
  }
}

TEST(RelevanceAlgoNames, RoundTripAndReject) {
  EXPECT_EQ(*ParseRelevanceAlgo("exhaustive"), RelevanceAlgo::kExhaustive);
  EXPECT_EQ(*ParseRelevanceAlgo("pruned"), RelevanceAlgo::kPruned);
  EXPECT_EQ(*ParseRelevanceAlgo("frontier"), RelevanceAlgo::kFrontier);
  EXPECT_STREQ(AlgoName(RelevanceAlgo::kFrontier), "frontier");
  EXPECT_TRUE(ParseRelevanceAlgo("bogus").status().IsInvalidArgument());
}

}  // namespace
}  // namespace hetesim
