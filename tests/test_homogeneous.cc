#include "hin/homogeneous.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hetesim {
namespace {

TEST(HomogeneousView, OffsetsPartitionNodes) {
  HinGraph g = testing::BuildFig4Graph();
  HomogeneousView view = BuildHomogeneousView(g);
  ASSERT_EQ(view.type_offset.size(), 4u);  // 3 types + sentinel
  EXPECT_EQ(view.type_offset[0], 0);
  EXPECT_EQ(view.type_offset[1], 3);   // 3 authors
  EXPECT_EQ(view.type_offset[2], 8);   // +5 papers
  EXPECT_EQ(view.type_offset[3], 10);  // +2 conferences
  EXPECT_EQ(view.TotalNodes(), 10);
}

TEST(HomogeneousView, GlobalIdMapping) {
  HinGraph g = testing::BuildFig4Graph();
  HomogeneousView view = BuildHomogeneousView(g);
  TypeId paper = *g.schema().TypeByCode('P');
  EXPECT_EQ(view.GlobalId(paper, 0), 3);
  EXPECT_EQ(view.GlobalId(paper, 4), 7);
}

TEST(HomogeneousView, AdjacencyIsSymmetric) {
  HinGraph g = testing::BuildFig4Graph();
  HomogeneousView view = BuildHomogeneousView(g);
  EXPECT_TRUE(view.adjacency.ApproxEquals(view.adjacency.Transpose()));
}

TEST(HomogeneousView, EdgeCountDoubles) {
  HinGraph g = testing::BuildFig4Graph();
  HomogeneousView view = BuildHomogeneousView(g);
  // Each typed edge appears in both directions.
  EXPECT_EQ(view.adjacency.NumNonZeros(), 2 * g.TotalEdges());
}

TEST(HomogeneousView, EdgesLandAtGlobalCoordinates) {
  HinGraph g = testing::BuildFig4Graph();
  HomogeneousView view = BuildHomogeneousView(g);
  TypeId author = *g.schema().TypeByCode('A');
  TypeId paper = *g.schema().TypeByCode('P');
  Index tom = *g.FindNode(author, "Tom");
  Index p1 = *g.FindNode(paper, "p1");
  EXPECT_EQ(view.adjacency.At(view.GlobalId(author, tom), view.GlobalId(paper, p1)),
            1.0);
  EXPECT_EQ(view.adjacency.At(view.GlobalId(paper, p1), view.GlobalId(author, tom)),
            1.0);
  // No author-author edges exist in the bibliographic schema.
  EXPECT_EQ(view.adjacency.At(view.GlobalId(author, 0), view.GlobalId(author, 1)),
            0.0);
}

TEST(HomogeneousView, NoIntraTypeBlockForBipartiteRelations) {
  HinGraph g = testing::BuildFig4Graph();
  HomogeneousView view = BuildHomogeneousView(g);
  for (Index i = 0; i < 3; ++i) {
    for (Index j = 0; j < 3; ++j) {
      EXPECT_EQ(view.adjacency.At(i, j), 0.0);
    }
  }
}

}  // namespace
}  // namespace hetesim
