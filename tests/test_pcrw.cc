#include "baselines/pcrw.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/path_matrix.h"
#include "test_util.h"

namespace hetesim {
namespace {

MetaPath Parse(const HinGraph& g, const char* spec) {
  return *MetaPath::Parse(g.schema(), spec);
}

TEST(Pcrw, MatrixEqualsReachProbability) {
  HinGraph g = testing::BuildFig4Graph();
  MetaPath apc = Parse(g, "APC");
  EXPECT_TRUE(PcrwMatrix(g, apc).ApproxEquals(
      ReachProbability(g, apc).ToDense(), 1e-12));
}

TEST(Pcrw, RowsAreDistributions) {
  HinGraph g = testing::RandomTripartite(7, 9, 6, 0.3, 81);
  DenseMatrix m = PcrwMatrix(g, Parse(g, "ABC"));
  for (Index i = 0; i < m.rows(); ++i) {
    double sum = 0.0;
    for (Index j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m(i, j), 0.0);
      sum += m(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Pcrw, KnownValuesOnFig4) {
  HinGraph g = testing::BuildFig4Graph();
  DenseMatrix m = PcrwMatrix(g, Parse(g, "APC"));
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);          // Tom -> KDD (p1, p2 both KDD)
  EXPECT_NEAR(m(1, 0), 2.0 / 3.0, 1e-12);  // Mary -> KDD (p2, p3 of her 3)
  EXPECT_DOUBLE_EQ(m(2, 1), 1.0);          // Bob -> SIGMOD (p4, p5 both SIGMOD)
}

TEST(Pcrw, IsAsymmetricAcrossDirections) {
  // The motivating deficiency (Tables 3-4): PCRW(a, c | P) differs from
  // PCRW(c, a | P^-1) in general, while HeteSim coincides.
  HinGraph g = testing::BuildFig4Graph();
  MetaPath apc = Parse(g, "APC");
  DenseMatrix forward = PcrwMatrix(g, apc);
  DenseMatrix backward = PcrwMatrix(g, apc.Reverse());
  // Tom -> KDD is 1.0, but KDD -> Tom shares KDD's mass among 3 papers and
  // their authors: strictly less than 1.
  EXPECT_DOUBLE_EQ(forward(0, 0), 1.0);
  EXPECT_LT(backward(0, 0), 1.0);
}

TEST(Pcrw, SingleSourceMatchesMatrix) {
  HinGraph g = testing::RandomTripartite(6, 8, 5, 0.35, 82);
  MetaPath abc = Parse(g, "ABC");
  DenseMatrix m = PcrwMatrix(g, abc);
  for (Index s = 0; s < m.rows(); ++s) {
    std::vector<double> row = *PcrwSingleSource(g, abc, s);
    for (Index j = 0; j < m.cols(); ++j) {
      EXPECT_NEAR(row[static_cast<size_t>(j)], m(s, j), 1e-12);
    }
  }
}

TEST(Pcrw, PairMatchesMatrix) {
  HinGraph g = testing::BuildFig4Graph();
  MetaPath apc = Parse(g, "APC");
  DenseMatrix m = PcrwMatrix(g, apc);
  for (Index a = 0; a < 3; ++a) {
    for (Index c = 0; c < 2; ++c) {
      EXPECT_NEAR(*PcrwPair(g, apc, a, c), m(a, c), 1e-12);
    }
  }
}

TEST(Pcrw, OutOfRangeErrors) {
  HinGraph g = testing::BuildFig4Graph();
  MetaPath apc = Parse(g, "APC");
  EXPECT_TRUE(PcrwSingleSource(g, apc, 99).status().IsOutOfRange());
  EXPECT_TRUE(PcrwPair(g, apc, 0, 99).status().IsOutOfRange());
  EXPECT_TRUE(PcrwPair(g, apc, 99, 0).status().IsOutOfRange());
}

}  // namespace
}  // namespace hetesim
