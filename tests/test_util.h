#ifndef HETESIM_TESTS_TEST_UTIL_H_
#define HETESIM_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/random_hin.h"
#include "hin/builder.h"
#include "hin/graph.h"
#include "matrix/sparse.h"

namespace hetesim::testing {

/// The paper's Fig. 4 network: authors {Tom, Mary, Bob}, papers
/// {p1..p5}, conferences {KDD, SIGMOD}. Tom wrote p1, p2 (both KDD);
/// Mary wrote p2, p3 (KDD) and p4 (SIGMOD); Bob wrote p4, p5 (SIGMOD).
/// Only P1 and P2 are published in KDD's "meeting" example of the paper's
/// Example 2, so this helper places p1, p2 in KDD and p3, p4, p5 in SIGMOD
/// when `example2 = true`; the default uses the richer placement above.
inline HinGraph BuildFig4Graph(bool example2 = false) {
  HinGraphBuilder builder;
  TypeId author = builder.AddObjectType("author", 'A').value();
  TypeId paper = builder.AddObjectType("paper", 'P').value();
  TypeId conf = builder.AddObjectType("conference", 'C').value();
  RelationId writes = builder.AddRelation("writes", author, paper).value();
  RelationId published = builder.AddRelation("published_in", paper, conf).value();
  for (const char* name : {"Tom", "Mary", "Bob"}) builder.AddNode(author, name);
  for (const char* name : {"p1", "p2", "p3", "p4", "p5"}) builder.AddNode(paper, name);
  for (const char* name : {"KDD", "SIGMOD"}) builder.AddNode(conf, name);
  auto edge = [&](RelationId rel, const char* s, const char* t) {
    HETESIM_CHECK(builder.AddEdgeByName(rel, s, t).ok());
  };
  edge(writes, "Tom", "p1");
  edge(writes, "Tom", "p2");
  edge(writes, "Mary", "p2");
  edge(writes, "Mary", "p3");
  edge(writes, "Mary", "p4");
  edge(writes, "Bob", "p4");
  edge(writes, "Bob", "p5");
  if (example2) {
    edge(published, "p1", "KDD");
    edge(published, "p2", "KDD");
    edge(published, "p3", "SIGMOD");
    edge(published, "p4", "SIGMOD");
    edge(published, "p5", "SIGMOD");
  } else {
    edge(published, "p1", "KDD");
    edge(published, "p2", "KDD");
    edge(published, "p3", "KDD");
    edge(published, "p4", "SIGMOD");
    edge(published, "p5", "SIGMOD");
  }
  return std::move(builder).Build();
}

/// The paper's Fig. 5(a) bipartite graph used for the atomic-relation
/// decomposition example: A = {a1, a2, a3}, B = {b1, b2, b3, b4} with
/// edges a1-b1, a1-b2, a2-b2, a2-b3, a2-b4, a3-b4 (unit weights).
inline HinGraph BuildFig5Graph() {
  HinGraphBuilder builder;
  TypeId a = builder.AddObjectType("typeA", 'A').value();
  TypeId b = builder.AddObjectType("typeB", 'B').value();
  RelationId rel = builder.AddRelation("rel", a, b).value();
  for (const char* name : {"a1", "a2", "a3"}) builder.AddNode(a, name);
  for (const char* name : {"b1", "b2", "b3", "b4"}) builder.AddNode(b, name);
  auto edge = [&](const char* s, const char* t) {
    HETESIM_CHECK(builder.AddEdgeByName(rel, s, t).ok());
  };
  edge("a1", "b1");
  edge("a1", "b2");
  edge("a2", "b2");
  edge("a2", "b3");
  edge("a2", "b4");
  edge("a3", "b4");
  return std::move(builder).Build();
}

/// Random networks shared with the benchmarks live in the library proper;
/// re-exported here so tests keep their historical spelling.
using ::hetesim::RandomBipartiteAdjacency;
using ::hetesim::RandomTripartite;

}  // namespace hetesim::testing

#endif  // HETESIM_TESTS_TEST_UTIL_H_
