// Client-side resilience machinery (DESIGN.md §13): decorrelated-jitter
// backoff, the circuit breaker, and the deadline-honoring RetryingClient.
// Everything here runs on fake clocks — the breaker and the retry loop take
// injected time, so these tests never sleep for real.

#include <algorithm>
#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "service/backoff.h"
#include "service/client.h"
#include "service/protocol.h"

namespace hetesim::service {
namespace {

// ---------------------------------------------------------------------------
// Decorrelated-jitter backoff

TEST(Backoff, EveryDelayStaysWithinBaseAndCap) {
  BackoffOptions options;  // base 2, cap 200, multiplier 3
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    DecorrelatedJitterBackoff backoff(options, seed);
    for (int i = 0; i < 200; ++i) {
      const double delay = backoff.NextDelayMs();
      EXPECT_GE(delay, options.base_ms);
      EXPECT_LE(delay, options.cap_ms);
    }
  }
}

TEST(Backoff, FirstDrawIsBoundedByBaseTimesMultiplier) {
  BackoffOptions options;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    DecorrelatedJitterBackoff backoff(options, seed);
    const double first = backoff.NextDelayMs();
    EXPECT_GE(first, options.base_ms);
    EXPECT_LE(first, options.base_ms * options.multiplier);
  }
}

TEST(Backoff, GrowsStochasticallyTowardTheCapAndResets) {
  BackoffOptions options;
  DecorrelatedJitterBackoff backoff(options, /*seed=*/7);
  // The expected delay grows multiplicatively; over 1000 draws some must
  // land in the top half of the range, which a non-growing jitter around
  // the base could never reach.
  double max_seen = 0;
  for (int i = 0; i < 1000; ++i) max_seen = std::max(max_seen, backoff.NextDelayMs());
  EXPECT_GT(max_seen, options.cap_ms / 2);
  // Reset snaps the state back to the base: the next draw is again bounded
  // by base * multiplier.
  backoff.Reset();
  EXPECT_LE(backoff.NextDelayMs(), options.base_ms * options.multiplier);
}

TEST(Backoff, IsDeterministicPerSeed) {
  BackoffOptions options;
  DecorrelatedJitterBackoff a(options, 42), b(options, 42);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(a.NextDelayMs(), b.NextDelayMs());
}

// ---------------------------------------------------------------------------
// Circuit breaker (explicit fake time points)

TEST(Breaker, OpensAtThresholdAndRefusesUntilCooldown) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_ms = 1000;
  CircuitBreaker breaker(options);
  const CircuitBreaker::Clock::time_point t0 = CircuitBreaker::Clock::now();

  EXPECT_TRUE(breaker.AllowRequest(t0));
  breaker.RecordFailure(t0);
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest(t0));  // 2 < threshold, still closed
  breaker.RecordFailure(t0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.consecutive_failures(), 3);

  // Open: refused locally until the cooldown elapses.
  EXPECT_FALSE(breaker.AllowRequest(t0 + std::chrono::milliseconds(999)));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
}

TEST(Breaker, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 100;
  CircuitBreaker breaker(options);
  const CircuitBreaker::Clock::time_point t0 = CircuitBreaker::Clock::now();
  breaker.RecordFailure(t0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  const CircuitBreaker::Clock::time_point t1 = t0 + std::chrono::milliseconds(100);
  EXPECT_TRUE(breaker.AllowRequest(t1));  // the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest(t1));  // probe in flight: refuse
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(Breaker, FailedProbeReopensWithAFreshCooldown) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 100;
  CircuitBreaker breaker(options);
  const CircuitBreaker::Clock::time_point t0 = CircuitBreaker::Clock::now();
  breaker.RecordFailure(t0);
  const CircuitBreaker::Clock::time_point t1 = t0 + std::chrono::milliseconds(100);
  ASSERT_TRUE(breaker.AllowRequest(t1));
  breaker.RecordFailure(t1);  // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  // The cooldown restarts from the probe failure, not the original trip.
  EXPECT_FALSE(breaker.AllowRequest(t1 + std::chrono::milliseconds(99)));
  EXPECT_TRUE(breaker.AllowRequest(t1 + std::chrono::milliseconds(100)));
}

// ---------------------------------------------------------------------------
// RetryingClient on a fake clock

/// Scripted base client: returns canned responses in order and records the
/// deadline each attempt carried. The last response repeats if the script
/// runs dry.
class ScriptedClient : public ServiceClient {
 public:
  explicit ScriptedClient(std::vector<QueryResponse> script)
      : script_(std::move(script)) {}

  QueryResponse Execute(const QueryRequest& request) override {
    attempt_deadlines_ms.push_back(request.deadline_ms);
    const size_t index = std::min(calls_, script_.size() - 1);
    ++calls_;
    QueryResponse response = script_[index];
    response.id = request.id;
    return response;
  }

  size_t calls() const { return calls_; }
  std::vector<double> attempt_deadlines_ms;

 private:
  std::vector<QueryResponse> script_;
  size_t calls_ = 0;
};

QueryResponse Outcome(ResponseOutcome outcome, double retry_after_ms = 0) {
  QueryResponse response;
  response.outcome = outcome;
  response.retry_after_ms = retry_after_ms;
  response.status_code =
      outcome == ResponseOutcome::kOk ? StatusCode::kOk : StatusCode::kIOError;
  return response;
}

/// Harness owning the fake clock: `now` only advances when the retry loop
/// sleeps (or the test advances it directly), and every sleep is recorded.
struct FakeTime {
  Clock::time_point now = Clock::now();
  std::vector<double> sleeps_ms;

  RetryingClient::NowFn now_fn() {
    return [this] { return now; };
  }
  RetryingClient::SleepFn sleep_fn() {
    return [this](double ms) {
      sleeps_ms.push_back(ms);
      now += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double, std::milli>(ms));
    };
  }
};

RetryOptions SmallRetryOptions(int max_attempts) {
  RetryOptions options;
  options.max_attempts = max_attempts;
  options.seed = 99;
  return options;
}

TEST(RetryingClient, RetriesRejectionThenSucceeds) {
  auto base = std::make_unique<ScriptedClient>(std::vector<QueryResponse>{
      Outcome(ResponseOutcome::kRejected), Outcome(ResponseOutcome::kOk)});
  ScriptedClient* script = base.get();
  FakeTime time;
  RetryingClient client(std::move(base), SmallRetryOptions(3), time.now_fn(),
                        time.sleep_fn());
  QueryRequest request;
  request.deadline_ms = 1000;
  const QueryResponse response = client.Execute(request);
  EXPECT_EQ(response.outcome, ResponseOutcome::kOk);
  EXPECT_EQ(script->calls(), 2u);
  EXPECT_EQ(client.retries_attempted(), 1u);
  ASSERT_EQ(time.sleeps_ms.size(), 1u);
  EXPECT_GE(time.sleeps_ms[0], 2.0);  // at least the backoff base
}

TEST(RetryingClient, ServerRetryAfterHintOverridesSmallerBackoffDraw) {
  auto base = std::make_unique<ScriptedClient>(std::vector<QueryResponse>{
      Outcome(ResponseOutcome::kShed, /*retry_after_ms=*/50),
      Outcome(ResponseOutcome::kOk)});
  FakeTime time;
  RetryingClient client(std::move(base), SmallRetryOptions(2), time.now_fn(),
                        time.sleep_fn());
  QueryRequest request;  // no deadline
  const QueryResponse response = client.Execute(request);
  EXPECT_EQ(response.outcome, ResponseOutcome::kOk);
  // First backoff draw is at most base*multiplier = 6 ms; the 50 ms server
  // hint must win.
  ASSERT_EQ(time.sleeps_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(time.sleeps_ms[0], 50.0);
}

TEST(RetryingClient, NeverSleepsPastTheDeadlineWall) {
  auto base = std::make_unique<ScriptedClient>(
      std::vector<QueryResponse>{Outcome(ResponseOutcome::kRejected)});
  FakeTime time;
  const Clock::time_point start = time.now;
  RetryingClient client(std::move(base), SmallRetryOptions(100), time.now_fn(),
                        time.sleep_fn());
  QueryRequest request;
  request.deadline_ms = 10;
  const QueryResponse response = client.Execute(request);
  // The loop gives up with the last rejection once a delay cannot fit; the
  // fake clock must never have advanced past the wall.
  EXPECT_EQ(response.outcome, ResponseOutcome::kRejected);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(time.now - start).count();
  EXPECT_LT(elapsed_ms, 10.0);
  EXPECT_FALSE(time.sleeps_ms.empty());  // it did try before giving up
}

TEST(RetryingClient, HugeRetryAfterHintReturnsImmediatelyUnderDeadline) {
  auto base = std::make_unique<ScriptedClient>(std::vector<QueryResponse>{
      Outcome(ResponseOutcome::kRejected, /*retry_after_ms=*/5000)});
  ScriptedClient* script = base.get();
  FakeTime time;
  RetryingClient client(std::move(base), SmallRetryOptions(5), time.now_fn(),
                        time.sleep_fn());
  QueryRequest request;
  request.deadline_ms = 100;
  const QueryResponse response = client.Execute(request);
  EXPECT_EQ(response.outcome, ResponseOutcome::kRejected);
  EXPECT_EQ(script->calls(), 1u);       // no second attempt
  EXPECT_TRUE(time.sleeps_ms.empty());  // and no pointless sleep
  EXPECT_EQ(client.retries_attempted(), 0u);
}

TEST(RetryingClient, AttemptDeadlinesShrinkToTheRemainingBudget) {
  auto base = std::make_unique<ScriptedClient>(
      std::vector<QueryResponse>{Outcome(ResponseOutcome::kRejected),
                                 Outcome(ResponseOutcome::kRejected),
                                 Outcome(ResponseOutcome::kOk)});
  ScriptedClient* script = base.get();
  FakeTime time;
  RetryingClient client(std::move(base), SmallRetryOptions(3), time.now_fn(),
                        time.sleep_fn());
  QueryRequest request;
  request.deadline_ms = 1000;
  (void)client.Execute(request);
  ASSERT_EQ(script->attempt_deadlines_ms.size(), 3u);
  EXPECT_DOUBLE_EQ(script->attempt_deadlines_ms[0], 1000.0);
  // Each sleep consumed budget, so later attempts carry strictly less.
  EXPECT_LT(script->attempt_deadlines_ms[1], script->attempt_deadlines_ms[0]);
  EXPECT_LT(script->attempt_deadlines_ms[2], script->attempt_deadlines_ms[1]);
}

TEST(RetryingClient, NonRetryableOutcomesReturnImmediately) {
  for (ResponseOutcome outcome :
       {ResponseOutcome::kOk, ResponseOutcome::kError,
        ResponseOutcome::kDeadlineExceeded, ResponseOutcome::kCancelled,
        ResponseOutcome::kDegraded}) {
    auto base = std::make_unique<ScriptedClient>(
        std::vector<QueryResponse>{Outcome(outcome)});
    ScriptedClient* script = base.get();
    FakeTime time;
    RetryingClient client(std::move(base), SmallRetryOptions(5), time.now_fn(),
                          time.sleep_fn());
    const QueryResponse response = client.Execute(QueryRequest{});
    EXPECT_EQ(response.outcome, outcome);
    EXPECT_EQ(script->calls(), 1u) << ResponseOutcomeName(outcome);
  }
}

TEST(RetryingClient, TransportFailuresTripTheBreaker) {
  auto base = std::make_unique<ScriptedClient>(
      std::vector<QueryResponse>{Outcome(ResponseOutcome::kTransportError)});
  ScriptedClient* script = base.get();
  FakeTime time;
  RetryOptions options = SmallRetryOptions(10);
  options.breaker.failure_threshold = 4;
  RetryingClient client(std::move(base), options, time.now_fn(), time.sleep_fn());
  const QueryResponse response = client.Execute(QueryRequest{});  // no deadline
  // Four attempts reach the wire and trip the breaker; the fifth is refused
  // locally (the fake clock never advances past the cooldown while the
  // sleeps are shorter than open_ms).
  EXPECT_EQ(script->calls(), 4u);
  EXPECT_EQ(response.outcome, ResponseOutcome::kTransportError);
  EXPECT_EQ(response.message, "circuit breaker open");
  EXPECT_EQ(response.status_code, StatusCode::kResourceExhausted);
  EXPECT_EQ(client.breaker().state(), CircuitBreaker::State::kOpen);
}

TEST(RetryingClient, ServerRejectionsDoNotFeedTheBreaker) {
  // Rejections prove the transport healthy: the breaker must stay closed no
  // matter how many the server issues.
  auto base = std::make_unique<ScriptedClient>(
      std::vector<QueryResponse>{Outcome(ResponseOutcome::kRejected)});
  FakeTime time;
  RetryOptions options = SmallRetryOptions(10);
  options.breaker.failure_threshold = 2;
  RetryingClient client(std::move(base), options, time.now_fn(), time.sleep_fn());
  const QueryResponse response = client.Execute(QueryRequest{});
  EXPECT_EQ(response.outcome, ResponseOutcome::kRejected);
  EXPECT_EQ(client.breaker().state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(client.retries_attempted(), 9u);  // all attempts were made
}

TEST(RetryingClient, OversleptRetryIsReportedAsDeadlineExceeded) {
  // The planned delay fits the budget, but the "OS" oversleeps past the
  // wall. The next attempt must not reach the server: the loop reports
  // kDeadlineExceeded instead of issuing a doomed request.
  auto base = std::make_unique<ScriptedClient>(
      std::vector<QueryResponse>{Outcome(ResponseOutcome::kRejected)});
  ScriptedClient* script = base.get();
  FakeTime time;
  RetryingClient::SleepFn oversleep = [&time](double ms) {
    time.sleeps_ms.push_back(ms);
    time.now += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms + 50));
  };
  RetryingClient client(std::move(base), SmallRetryOptions(3), time.now_fn(),
                        oversleep);
  QueryRequest request;
  request.deadline_ms = 20;  // first backoff draw (<= 6 ms) fits this
  const QueryResponse response = client.Execute(request);
  EXPECT_EQ(response.outcome, ResponseOutcome::kDeadlineExceeded);
  EXPECT_EQ(response.status_code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(script->calls(), 1u);  // only the pre-sleep attempt went out
}

}  // namespace
}  // namespace hetesim::service
