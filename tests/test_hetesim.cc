#include "core/hetesim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/materialize.h"
#include "test_util.h"

namespace hetesim {
namespace {

MetaPath Parse(const HinGraph& g, const char* spec) {
  return *MetaPath::Parse(g.schema(), spec);
}

// --- The paper's worked examples ---

TEST(HeteSimPaper, Example2TomKddUnnormalized) {
  // Example 2 of the paper: with O(Tom|AP) = {p1, p2} and
  // I(KDD|PC) = {p1, p2}, HeteSim(Tom, KDD | APC) = 0.5 before
  // normalization ("they meet at the same papers with probability 0.5").
  HinGraph g = testing::BuildFig4Graph(/*example2=*/true);
  HeteSimEngine raw(g, {.normalized = false});
  MetaPath apc = Parse(g, "APC");
  TypeId author = *g.schema().TypeByCode('A');
  TypeId conf = *g.schema().TypeByCode('C');
  Index tom = *g.FindNode(author, "Tom");
  Index kdd = *g.FindNode(conf, "KDD");
  EXPECT_NEAR(*raw.ComputePair(apc, tom, kdd), 0.5, 1e-12);
}

TEST(HeteSimPaper, Example2NormalizedIsOne) {
  // Tom publishes only in KDD and KDD publishes only Tom's papers, so the
  // two reach distributions over the edge objects coincide: cosine = 1.
  HinGraph g = testing::BuildFig4Graph(/*example2=*/true);
  HeteSimEngine engine(g);
  MetaPath apc = Parse(g, "APC");
  EXPECT_NEAR(*engine.ComputePair(apc, 0, 0), 1.0, 1e-12);
}

TEST(HeteSimPaper, Fig5UnnormalizedValues) {
  // Fig. 5(c): the relatedness of a2 to (b1, b2, b3, b4) before
  // normalization is (0, 1/6, 1/3, 1/6); a1 to b1 is 1/2, a1 to b2 is 1/4.
  HinGraph g = testing::BuildFig5Graph();
  HeteSimEngine raw(g, {.normalized = false});
  MetaPath ab = Parse(g, "AB");
  DenseMatrix scores = raw.Compute(ab);
  EXPECT_NEAR(scores(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(scores(1, 1), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(scores(1, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(scores(1, 3), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(scores(0, 0), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(scores(0, 1), 1.0 / 4.0, 1e-12);
}

TEST(HeteSimPaper, Fig5SelfSimilarityBelowOneBeforeNormalization) {
  // The paper observes that unnormalized a2-to-a2 relatedness along the
  // decomposed relation is 1/3, motivating normalization.
  HinGraph g = testing::BuildFig5Graph();
  HeteSimEngine raw(g, {.normalized = false});
  // Path A-B-A: a2's reach distribution over B is (0, 1/3, 1/3, 1/3); the
  // meeting probability with itself is 3 * (1/3)^2 = 1/3, the paper's 0.33.
  MetaPath aba = *MetaPath::FromRelations(g.schema(), {"rel", "~rel"});
  EXPECT_NEAR(*raw.ComputePair(aba, 1, 1), 1.0 / 3.0, 1e-12);
  // After normalization the self-relatedness is exactly 1.
  HeteSimEngine engine(g);
  EXPECT_NEAR(*engine.ComputePair(aba, 1, 1), 1.0, 1e-12);
}

TEST(HeteSimPaper, Fig5NormalizedMoreReasonable) {
  // Fig. 5(d): after normalization a2 is most related to b3 (its exclusive
  // neighbor), and every score lies in [0, 1].
  HinGraph g = testing::BuildFig5Graph();
  HeteSimEngine engine(g);
  DenseMatrix scores = engine.Compute(Parse(g, "AB"));
  EXPECT_GT(scores(1, 2), scores(1, 1));
  EXPECT_GT(scores(1, 2), scores(1, 3));
  EXPECT_EQ(scores(1, 0), 0.0);
  for (Index i = 0; i < scores.rows(); ++i) {
    for (Index j = 0; j < scores.cols(); ++j) {
      EXPECT_GE(scores(i, j), 0.0);
      EXPECT_LE(scores(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(HeteSimPaper, Equation5MatrixForm) {
  // Equation 5 of the paper in its original U·V form: for the even path
  // A-P-C, HeteSim_unnormalized(A, C | APC) = U_AP * V_PC where U is the
  // row-normalized and V the column-normalized adjacency (Definition 8).
  // Our implementation computes PM_PL * PM_(PR^-1)' instead; Property 2
  // (V_AB = U_BA') makes them equal, and this test pins that down.
  HinGraph g = testing::BuildFig4Graph();
  RelationId writes = *g.schema().RelationByName("writes");
  RelationId published = *g.schema().RelationByName("published_in");
  SparseMatrix u_ap = g.Adjacency(writes).RowNormalized();
  SparseMatrix v_pc = g.Adjacency(published).ColNormalized();
  DenseMatrix expected = u_ap.Multiply(v_pc).ToDense();
  HeteSimEngine raw(g, {.normalized = false});
  DenseMatrix actual = raw.Compute(Parse(g, "APC"));
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-12));
}

TEST(HeteSimPaper, Equation5LongerChain) {
  // Same identity on the length-4 path A-P-C-P-A: U_AP U_PC V_CP V_PA.
  HinGraph g = testing::BuildFig4Graph();
  RelationId writes = *g.schema().RelationByName("writes");
  RelationId published = *g.schema().RelationByName("published_in");
  SparseMatrix u_ap = g.Adjacency(writes).RowNormalized();
  SparseMatrix u_pc = g.Adjacency(published).RowNormalized();
  SparseMatrix v_cp = g.AdjacencyTranspose(published).ColNormalized();
  SparseMatrix v_pa = g.AdjacencyTranspose(writes).ColNormalized();
  DenseMatrix expected =
      u_ap.Multiply(u_pc).Multiply(v_cp).Multiply(v_pa).ToDense();
  HeteSimEngine raw(g, {.normalized = false});
  DenseMatrix actual = raw.Compute(Parse(g, "APCPA"));
  EXPECT_TRUE(actual.ApproxEquals(expected, 1e-12));
}

// --- Semi-metric properties (Section 4.5) ---

TEST(HeteSimProperties, SymmetryOnFig4) {
  // Property 3: HeteSim(a, b | P) == HeteSim(b, a | P^-1).
  HinGraph g = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  MetaPath apc = Parse(g, "APC");
  MetaPath cpa = apc.Reverse();
  DenseMatrix forward = engine.Compute(apc);
  DenseMatrix backward = engine.Compute(cpa);
  EXPECT_TRUE(forward.ApproxEquals(backward.Transpose(), 1e-12));
}

TEST(HeteSimProperties, SymmetryOnRandomGraphsOddAndEvenPaths) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    HinGraph g = testing::RandomTripartite(7, 9, 6, 0.3, seed);
    HeteSimEngine engine(g);
    for (const char* spec : {"AB", "ABC", "ABA", "ABCBA", "BCB"}) {
      MetaPath path = Parse(g, spec);
      DenseMatrix forward = engine.Compute(path);
      DenseMatrix backward = engine.Compute(path.Reverse());
      EXPECT_TRUE(forward.ApproxEquals(backward.Transpose(), 1e-10))
          << spec << " seed " << seed;
    }
  }
}

TEST(HeteSimProperties, SelfMaximumOnSymmetricPaths) {
  // Property 4: for symmetric P, HeteSim(a, a | P) == 1 (when a reaches the
  // middle type at all) and every value lies in [0, 1].
  HinGraph g = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  for (const char* spec : {"APA", "APCPA", "PCP"}) {
    MetaPath path = Parse(g, spec);
    DenseMatrix scores = engine.Compute(path);
    for (Index i = 0; i < scores.rows(); ++i) {
      EXPECT_NEAR(scores(i, i), 1.0, 1e-12) << spec;
      for (Index j = 0; j < scores.cols(); ++j) {
        EXPECT_GE(scores(i, j), -1e-15) << spec;
        EXPECT_LE(scores(i, j), 1.0 + 1e-12) << spec;
      }
    }
  }
}

TEST(HeteSimProperties, RangeZeroOneOnArbitraryPaths) {
  HinGraph g = testing::RandomTripartite(8, 10, 7, 0.25, 44);
  HeteSimEngine engine(g);
  for (const char* spec : {"AB", "ABC", "ABCBA", "CBA"}) {
    DenseMatrix scores = engine.Compute(Parse(g, spec));
    for (Index i = 0; i < scores.rows(); ++i) {
      for (Index j = 0; j < scores.cols(); ++j) {
        EXPECT_GE(scores(i, j), -1e-15);
        EXPECT_LE(scores(i, j), 1.0 + 1e-12);
      }
    }
  }
}

TEST(HeteSimProperties, NoOutNeighborsMeansZeroRelevance) {
  // The paper's convention: O(s|R1) empty => relevance 0 to everything.
  HinGraphBuilder builder;
  TypeId a = *builder.AddObjectType("alpha");
  TypeId b = *builder.AddObjectType("beta");
  RelationId r = *builder.AddRelation("r", a, b);
  builder.AddNode(a, "connected");
  builder.AddNode(a, "isolated");
  builder.AddNode(b, "target");
  EXPECT_TRUE(builder.AddEdge(r, 0, 0).ok());
  HinGraph g = std::move(builder).Build();
  HeteSimEngine engine(g);
  MetaPath ab = Parse(g, "AB");
  EXPECT_EQ(*engine.ComputePair(ab, 1, 0), 0.0);
  std::vector<double> row = *engine.ComputeSingleSource(ab, 1);
  for (double v : row) EXPECT_EQ(v, 0.0);
  DenseMatrix scores = engine.Compute(ab);
  EXPECT_EQ(scores(1, 0), 0.0);
  EXPECT_NEAR(scores(0, 0), 1.0, 1e-12);
}

// --- API consistency ---

class HeteSimConsistencyTest : public ::testing::TestWithParam<const char*> {
 protected:
  HeteSimConsistencyTest() : graph_(testing::RandomTripartite(6, 8, 5, 0.35, 99)) {}
  HinGraph graph_;
};

TEST_P(HeteSimConsistencyTest, PairMatchesMatrix) {
  HeteSimEngine engine(graph_);
  MetaPath path = Parse(graph_, GetParam());
  DenseMatrix scores = engine.Compute(path);
  for (Index i = 0; i < scores.rows(); ++i) {
    for (Index j = 0; j < scores.cols(); ++j) {
      EXPECT_NEAR(*engine.ComputePair(path, i, j), scores(i, j), 1e-10);
    }
  }
}

TEST_P(HeteSimConsistencyTest, SingleSourceMatchesMatrix) {
  HeteSimEngine engine(graph_);
  MetaPath path = Parse(graph_, GetParam());
  DenseMatrix scores = engine.Compute(path);
  for (Index i = 0; i < scores.rows(); ++i) {
    std::vector<double> row = *engine.ComputeSingleSource(path, i);
    ASSERT_EQ(row.size(), static_cast<size_t>(scores.cols()));
    for (Index j = 0; j < scores.cols(); ++j) {
      EXPECT_NEAR(row[static_cast<size_t>(j)], scores(i, j), 1e-10);
    }
  }
}

TEST_P(HeteSimConsistencyTest, CachedEngineAgreesWithUncached) {
  auto cache = std::make_shared<PathMatrixCache>();
  HeteSimEngine cached(graph_, {}, cache);
  HeteSimEngine uncached(graph_);
  MetaPath path = Parse(graph_, GetParam());
  EXPECT_TRUE(cached.Compute(path).ApproxEquals(uncached.Compute(path), 1e-12));
  EXPECT_NEAR(*cached.ComputePair(path, 0, 0), *uncached.ComputePair(path, 0, 0),
              1e-12);
  std::vector<double> cached_row = *cached.ComputeSingleSource(path, 1);
  std::vector<double> uncached_row = *uncached.ComputeSingleSource(path, 1);
  for (size_t j = 0; j < cached_row.size(); ++j) {
    EXPECT_NEAR(cached_row[j], uncached_row[j], 1e-12);
  }
}

TEST_P(HeteSimConsistencyTest, UnnormalizedEqualsLeftDotRight) {
  HeteSimEngine raw(graph_, {.normalized = false});
  MetaPath path = Parse(graph_, GetParam());
  PathDecomposition d = DecomposePath(graph_, path);
  SparseMatrix left = LeftReachMatrix(d);
  SparseMatrix right = RightReachMatrix(d);
  DenseMatrix scores = raw.Compute(path);
  for (Index i = 0; i < scores.rows(); ++i) {
    for (Index j = 0; j < scores.cols(); ++j) {
      EXPECT_NEAR(scores(i, j), left.RowDot(i, right, j), 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, HeteSimConsistencyTest,
                         ::testing::Values("AB", "ABC", "ABA", "ABCBA", "BAB",
                                           "CBA", "BCB"));

TEST_P(HeteSimConsistencyTest, BatchPairsMatchSinglePairs) {
  MetaPath path = Parse(graph_, GetParam());
  const Index num_sources = graph_.NumNodes(path.SourceType());
  const Index num_targets = graph_.NumNodes(path.TargetType());
  std::vector<std::pair<Index, Index>> pairs;
  for (Index s = 0; s < num_sources; ++s) {
    pairs.push_back({s, s % num_targets});
    pairs.push_back({s, (s + 1) % num_targets});
  }
  pairs.push_back(pairs.front());  // repeated pair exercises memoization
  for (bool use_cache : {false, true}) {
    auto cache = use_cache ? std::make_shared<PathMatrixCache>() : nullptr;
    HeteSimEngine engine(graph_, {}, cache);
    std::vector<double> batch = *engine.ComputePairs(path, pairs);
    ASSERT_EQ(batch.size(), pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_NEAR(batch[i],
                  *engine.ComputePair(path, pairs[i].first, pairs[i].second),
                  1e-12)
          << GetParam() << (use_cache ? " cached" : " uncached");
    }
  }
}

TEST(HeteSimBatch, EmptyPairListIsEmptyResult) {
  HinGraph g = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  MetaPath apc = Parse(g, "APC");
  EXPECT_TRUE(engine.ComputePairs(apc, {})->empty());
}

TEST(HeteSimBatch, RejectsAnyBadIdAtomically) {
  HinGraph g = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  MetaPath apc = Parse(g, "APC");
  EXPECT_TRUE(engine.ComputePairs(apc, {{0, 0}, {99, 0}}).status().IsOutOfRange());
  EXPECT_TRUE(engine.ComputePairs(apc, {{0, 0}, {0, 99}}).status().IsOutOfRange());
}

// --- Error handling ---

TEST(HeteSimErrors, ForeignSchemaPathRejected) {
  // A meta-path parsed against one graph's schema cannot be evaluated
  // against another graph (even a structural twin): fallible entry points
  // return InvalidArgument, Compute aborts.
  HinGraph g = testing::BuildFig4Graph();
  HinGraph twin = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  MetaPath foreign = Parse(twin, "APC");
  EXPECT_TRUE(engine.ComputePair(foreign, 0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(engine.ComputeSingleSource(foreign, 0).status().IsInvalidArgument());
  EXPECT_TRUE(engine.ComputePairs(foreign, {{0, 0}}).status().IsInvalidArgument());
  EXPECT_DEATH({ (void)engine.Compute(foreign); }, "different schema");
}

TEST(HeteSimErrors, OutOfRangeIds) {
  HinGraph g = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  MetaPath apc = Parse(g, "APC");
  EXPECT_TRUE(engine.ComputePair(apc, -1, 0).status().IsOutOfRange());
  EXPECT_TRUE(engine.ComputePair(apc, 0, 99).status().IsOutOfRange());
  EXPECT_TRUE(engine.ComputeSingleSource(apc, 99).status().IsOutOfRange());
}

TEST(HeteSimErrors, SimRankSeriesValidation) {
  HinGraph g = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  RelationId writes = *g.schema().RelationByName("writes");
  EXPECT_TRUE(engine.SimRankSeries(99, 0, 0, 3).status().IsInvalidArgument());
  EXPECT_TRUE(engine.SimRankSeries(writes, 0, 0, 0).status().IsInvalidArgument());
  EXPECT_TRUE(engine.SimRankSeries(writes, 0, 0, 2).ok());
}

TEST(HeteSimEdgeCases, EmptyTargetType) {
  // A type with zero objects: queries along paths ending there return
  // empty results rather than failing.
  HinGraphBuilder builder;
  TypeId a = *builder.AddObjectType("alpha");
  TypeId b = *builder.AddObjectType("beta");
  RelationId r = *builder.AddRelation("r", a, b);
  builder.AddNode(a, "only");
  (void)r;
  (void)b;
  HinGraph g = std::move(builder).Build();
  HeteSimEngine engine(g);
  MetaPath ab = Parse(g, "AB");
  DenseMatrix scores = engine.Compute(ab);
  EXPECT_EQ(scores.rows(), 1);
  EXPECT_EQ(scores.cols(), 0);
  EXPECT_TRUE(engine.ComputeSingleSource(ab, 0)->empty());
  EXPECT_TRUE(engine.ComputePair(ab, 0, 0).status().IsOutOfRange());
}

TEST(HeteSimEdgeCases, RelationWithNoEdges) {
  HinGraphBuilder builder;
  TypeId a = *builder.AddObjectType("alpha");
  TypeId b = *builder.AddObjectType("beta");
  RelationId r = *builder.AddRelation("r", a, b);
  builder.AddNodes(a, 3);
  builder.AddNodes(b, 2);
  (void)r;
  HinGraph g = std::move(builder).Build();
  HeteSimEngine engine(g);
  MetaPath ab = Parse(g, "AB");
  DenseMatrix scores = engine.Compute(ab);
  for (Index i = 0; i < scores.rows(); ++i) {
    for (Index j = 0; j < scores.cols(); ++j) EXPECT_EQ(scores(i, j), 0.0);
  }
  MetaPath aba = Parse(g, "ABA");
  EXPECT_EQ(*engine.ComputePair(aba, 0, 0), 0.0);  // even self-relevance is 0
}

// --- Semantics sanity on Fig. 4 ---

TEST(HeteSimSemantics, PathDependentScores) {
  // Along APC Tom is unrelated to SIGMOD; along APAPC (through coauthors)
  // he becomes related, because Mary publishes there — the paper's
  // motivating example for path semantics (Section 4.2).
  HinGraph g = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  Index tom = 0;
  Index sigmod = 1;
  EXPECT_EQ(*engine.ComputePair(Parse(g, "APC"), tom, sigmod), 0.0);
  EXPECT_GT(*engine.ComputePair(Parse(g, "APAPC"), tom, sigmod), 0.0);
}

TEST(HeteSimSemantics, ExclusiveAuthorScoresHighest) {
  HinGraph g = testing::BuildFig4Graph();
  HeteSimEngine engine(g);
  DenseMatrix scores = engine.Compute(Parse(g, "APC"));
  // Bob publishes exclusively in SIGMOD whose papers p4, p5 include only
  // Bob+Mary: Bob-SIGMOD should be the highest author-conference score.
  double best = 0.0;
  for (Index a = 0; a < 3; ++a) {
    for (Index c = 0; c < 2; ++c) best = std::max(best, scores(a, c));
  }
  EXPECT_DOUBLE_EQ(scores(2, 1), best);
}

}  // namespace
}  // namespace hetesim
